#!/usr/bin/env python3
"""Barnes-Hut N-body simulation over the DIVA runtime.

Simulates a Plummer star cluster on a simulated 8x8 mesh machine with the
paper's five data-management strategies, and prints the per-phase
congestion/time breakdown that the paper reports in Figures 8-10.

Run:  python examples/nbody_cluster.py  [n_bodies]
"""

import sys

from repro import Mesh2D, get_strategy
from repro.apps import barneshut


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    mesh = Mesh2D(8, 8)
    print(f"Barnes-Hut: {n} bodies on a {mesh.rows}x{mesh.cols} mesh, "
          f"theta = {barneshut.THETA}, 2 measured time-steps\n")

    results = {}
    for name in ("fixed-home", "16-ary", "4-ary", "2-ary"):
        strategy = get_strategy(name, mesh, seed=3)
        results[name] = barneshut.run(mesh, strategy, n, steps=3, warm=1)

    print(f"{'strategy':>12s} {'exec time':>10s} {'congestion':>11s} {'cache hits':>10s} {'locks':>7s}")
    print("-" * 56)
    for name, res in results.items():
        print(
            f"{name:>12s} {res.time:9.2f}s {res.congestion_msgs:8d}msg "
            f"{100 * res.hit_ratio:8.1f}% {res.lock_acquisitions:7d}"
        )

    print("\nper-phase breakdown (4-ary access tree):")
    res = results["4-ary"]
    print(f"{'phase':>12s} {'time':>8s} {'congestion':>11s} {'messages':>9s}")
    for ph in res.phases:
        if ph.name in barneshut.PHASES:
            print(
                f"{ph.name:>12s} {ph.time:7.2f}s {ph.stats.congestion_msgs:8d}msg "
                f"{ph.stats.total_msgs:9d}"
            )

    tb_fh = results["fixed-home"].phase("treebuild")
    tb_at = res.phase("treebuild")
    print(
        f"\ntree-building congestion: fixed home {tb_fh.stats.congestion_msgs} msg vs "
        f"4-ary {tb_at.stats.congestion_msgs} msg\n"
        "-> the root cell is read by every processor; the fixed home serves\n"
        "   each copy one by one while the access tree multicasts it down\n"
        "   its hierarchy (the paper's Figure 9 bottleneck)."
    )


if __name__ == "__main__":
    main()
