#!/usr/bin/env python3
"""Writing your own application against the DIVA API.

This example implements a shared work queue with a global result table --
an access pattern none of the paper's benchmarks has -- to show the full
programming interface: transparent reads/writes on global variables,
locks, barriers, and virtual-compute charging.

Each processor repeatedly locks a shared queue variable, pops a task,
computes on it, and publishes the result into a per-task global variable;
processors reading their neighbours' results afterwards exercise the copy
distribution.

Run:  python examples/custom_application.py
"""

from repro import GCEL, Mesh2D, Runtime, get_strategy


def main() -> None:
    mesh = Mesh2D(4, 4)
    n_tasks = 64
    shared = {}
    results_seen = []

    def program(env):
        # rank 0 creates the queue and the result table.
        if env.rank == 0:
            shared["queue"] = env.create("queue", 64, value=tuple(range(n_tasks)))
            shared["results"] = [
                env.create(f"result{i}", 32, value=None) for i in range(n_tasks)
            ]
        yield from env.barrier(phase="work")

        queue = shared["queue"]
        # Self-scheduling loop: pop under mutual exclusion.
        while True:
            yield from env.lock(queue)
            tasks = yield from env.read(queue)
            if not tasks:
                yield from env.unlock(queue)
                break
            task, rest = tasks[0], tasks[1:]
            yield from env.write(queue, rest)
            yield from env.unlock(queue)

            yield from env.compute(ops=50_000)  # simulate real work
            yield from env.write(shared["results"][task], (task, task * task))

        yield from env.barrier(phase="reduce")
        # Everyone validates three pseudo-random results (read sharing).
        for k in range(3):
            idx = (env.rank * 7 + k * 13) % n_tasks
            val = yield from env.read(shared["results"][idx])
            assert val == (idx, idx * idx)
            results_seen.append(val)
        yield from env.barrier(phase="done")

    for name in ("4-ary", "fixed-home"):
        results_seen.clear()
        shared.clear()
        strategy = get_strategy(name, mesh, seed=0)
        rt = Runtime(mesh, strategy, GCEL)
        res = rt.run(program)
        assert len(results_seen) == 3 * mesh.n_nodes
        work = res.phase("work")
        reduce_ = res.phase("reduce")
        print(
            f"{name:>12s}: total {res.time:6.3f}s | work {work.time:6.3f}s "
            f"(lock acquisitions {res.lock_acquisitions}) | "
            f"reduce congestion {reduce_.stats.congestion_bytes:6.0f}B"
        )
    print(
        "\nSame program, different data management.  The serialized work"
        "\nqueue dominates total time for both strategies, but the result"
        "\nfan-out (reduce phase) congests less under the access tree --"
        "\nshared read-mostly data is where it wins."
    )


if __name__ == "__main__":
    main()
