#!/usr/bin/env python3
"""Quickstart: compare the access tree strategy against fixed home on the
paper's matrix-multiplication workload.

Run:  python examples/quickstart.py
"""

from repro import Mesh2D, get_strategy
from repro.apps import matmul


def main() -> None:
    mesh = Mesh2D(8, 8)  # 64 simulated processors (the GCel scales to 32x32)
    block = 1024  # integers per matrix block

    # The hand-optimized message-passing baseline: minimal congestion.
    base = matmul.run_handopt(mesh, block_entries=block)

    print(f"matrix square on {mesh.rows}x{mesh.cols} mesh, block = {block} ints\n")
    print(f"{'strategy':>12s} {'comm time':>10s} {'congestion':>11s} {'total load':>11s} ratio")
    print("-" * 60)
    print(
        f"{'hand-opt':>12s} {base.time:9.3f}s {base.congestion_bytes / 1024:9.0f}KB "
        f"{base.total_bytes / 1e6:9.1f}MB   1.00"
    )
    for name in ("4-ary", "2-ary", "fixed-home"):
        strategy = get_strategy(name, mesh, seed=1)
        res = matmul.run_diva(mesh, strategy, block_entries=block)
        assert res.extra["verified"], "distributed result must equal numpy"
        print(
            f"{name:>12s} {res.time:9.3f}s {res.congestion_bytes / 1024:9.0f}KB "
            f"{res.total_bytes / 1e6:9.1f}MB {res.time / base.time:6.2f}"
        )
    print(
        "\nThe access tree strategy transparently caches and replicates the"
        "\nshared blocks with near-minimal congestion; the fixed home"
        "\nstrategy funnels every miss through one random processor per"
        "\nblock and congests the mesh (the paper's headline result)."
    )


if __name__ == "__main__":
    main()
