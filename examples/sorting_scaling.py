#!/usr/bin/env python3
"""Bitonic sorting: how the strategies scale with the network size.

Reproduces the paper's Figure 7 experiment in miniature: the fixed home
strategy's congestion ratio (relative to hand-optimized message passing)
keeps growing with the mesh, while the access tree converges to a small
constant because the merging circuits' locality matches the hierarchical
mesh decomposition.

Run:  python examples/sorting_scaling.py
"""

from repro import Mesh2D, get_strategy
from repro.apps import bitonic


def main() -> None:
    keys = 1024
    print(f"bitonic sort, {keys} keys per processor\n")
    print(f"{'mesh':>8s} {'P':>5s} {'hand-opt':>9s} | {'2-4-ary':>18s} | {'fixed-home':>18s}")
    print(f"{'':>8s} {'':>5s} {'time':>9s} | {'time':>8s} {'ratio':>9s} | {'time':>8s} {'ratio':>9s}")
    print("-" * 70)
    for side in (4, 8, 16):
        mesh = Mesh2D(side, side)
        base = bitonic.run_handopt(mesh, keys)
        at = bitonic.run_diva(mesh, get_strategy("2-4-ary", mesh), keys)
        fh = bitonic.run_diva(mesh, get_strategy("fixed-home", mesh), keys)
        assert at.extra["verified"] and fh.extra["verified"]
        print(
            f"{side:>6d}x{side} {mesh.n_nodes:>5d} {base.time:8.2f}s | "
            f"{at.time:7.2f}s {at.time / base.time:8.2f}x | "
            f"{fh.time:7.2f}s {fh.time / base.time:8.2f}x"
        )
    print(
        "\nThe access tree's ratio grows far more slowly than fixed home's"
        "\n(which roughly doubles per 4x processor increase) -- the paper's"
        "\nFigure 7 shape."
    )


if __name__ == "__main__":
    main()
