#!/usr/bin/env python3
"""Scale smoke gate: run one large xscale cell inside a memory envelope.

Used by the CI ``scale-smoke`` job and by hand::

    python tools/scale_smoke.py                       # 2^14-node mesh cell
    python tools/scale_smoke.py --nodes 131072 --topology hypercube
    python tools/scale_smoke.py --update-baseline     # refresh the ceiling

Runs a single ``xscale`` cell (default: 2^14 nodes, mesh, 2-4-ary, the
quick-scale op count) with ``tracemalloc`` tracing Python allocations,
records the process peak RSS (``resource.getrusage``), writes the memory
report to ``benchmarks/results/MEM_scale.json``, and exits non-zero when
peak RSS exceeds the committed ceiling in
``benchmarks/baselines/MEM_scale.baseline.json``.

The ceiling is a *hard* number, not a ratio: the point of the algebraic
router + sparse stats overhaul is that memory no longer scales with
``nodes^2``, and the committed ceiling is what keeps that property from
silently regressing.  ``--update-baseline`` rewrites the ceiling as
``headroom x`` the just-measured peak (default 1.5x) -- regenerate it
deliberately, on the CI runner class, when the envelope legitimately
changes.

Tracemalloc's Python-heap peak is reported alongside RSS for diagnosis
(it shows *which* side grew: Python objects vs numpy/C buffers), but only
RSS is gated -- it is what the machine actually provisions.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import sys
import time
import tracemalloc

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_REPORT = REPO_ROOT / "benchmarks" / "results" / "MEM_scale.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "MEM_scale.baseline.json"

#: The pinned smoke cell (CI: one 2^14-node machine at quick-scale ops).
DEFAULT_NODES = 1 << 14
DEFAULT_TOPOLOGY = "mesh"
DEFAULT_STRATEGY = "2-4-ary"
DEFAULT_OPS = 4


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def run_cell(nodes: int, topology: str, strategy: str, ops: int) -> dict:
    """Run the smoke cell under tracemalloc; returns the memory report."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.experiments import xscale_cell

    tracemalloc.start()
    t0 = time.perf_counter()
    rows = xscale_cell(nodes=nodes, topology=topology, strategy=strategy, ops=ops)
    wall = time.perf_counter() - t0
    _, py_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert rows and rows[0]["total_msgs"] > 0
    return {
        "bench": "scale_smoke",
        "cell": {
            "nodes": nodes,
            "topology": topology,
            "strategy": strategy,
            "ops": ops,
        },
        "engine": "pure" if os.environ.get("REPRO_PURE_PYTHON") else "c",
        "wall_seconds": wall,
        "peak_rss_mb": peak_rss_mb(),
        "tracemalloc_peak_mb": py_peak / (1024.0 * 1024.0),
        "congestion_per_node": rows[0]["congestion_per_node"],
        "total_msgs": rows[0]["total_msgs"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES,
                        help=f"machine size (default {DEFAULT_NODES})")
    parser.add_argument("--topology", default=DEFAULT_TOPOLOGY,
                        choices=("mesh", "torus", "hypercube"))
    parser.add_argument("--strategy", default=DEFAULT_STRATEGY)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--report", type=pathlib.Path, default=DEFAULT_REPORT,
                        help="memory report output path")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="committed ceiling JSON")
    parser.add_argument("--headroom", type=float, default=1.5,
                        help="ceiling = headroom * measured peak "
                             "(--update-baseline; default 1.5)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="measure, then rewrite the ceiling")
    args = parser.parse_args(argv)

    report = run_cell(args.nodes, args.topology, args.strategy, args.ops)
    args.report.parent.mkdir(parents=True, exist_ok=True)
    args.report.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"scale smoke: {args.nodes} nodes / {args.topology} / "
        f"{report['engine']} engine: peak RSS {report['peak_rss_mb']:.1f} MiB "
        f"(python heap {report['tracemalloc_peak_mb']:.1f} MiB, "
        f"{report['wall_seconds']:.1f}s) -> {args.report}"
    )

    if args.update_baseline:
        ceiling = {
            "bench": "scale_smoke",
            "cell": report["cell"],
            "ceiling_mb": round(args.headroom * report["peak_rss_mb"], 1),
            "measured_peak_rss_mb": round(report["peak_rss_mb"], 1),
            "headroom": args.headroom,
        }
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(ceiling, indent=2, sort_keys=True) + "\n")
        print(f"ceiling updated: {ceiling['ceiling_mb']} MiB -> {args.baseline}")
        return 0

    try:
        baseline = json.loads(args.baseline.read_text())
    except OSError as exc:
        raise SystemExit(f"scale_smoke: cannot read {args.baseline}: {exc}") from exc
    if baseline.get("cell") != report["cell"]:
        raise SystemExit(
            "scale_smoke: the measured cell differs from the committed "
            "ceiling's cell; refresh deliberately with --update-baseline"
        )
    ceiling = float(baseline["ceiling_mb"])
    print(
        f"memory ceiling: {report['peak_rss_mb']:.1f} MiB used of "
        f"{ceiling:.1f} MiB committed"
    )
    if report["peak_rss_mb"] > ceiling:
        print(
            f"FAIL: peak RSS {report['peak_rss_mb']:.1f} MiB exceeds the "
            f"committed ceiling {ceiling:.1f} MiB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
