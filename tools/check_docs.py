#!/usr/bin/env python3
"""Docs checker: the CI docs job's single entry point.

Two checks over README.md, EXPERIMENTS.md and docs/ARCHITECTURE.md:

1. **Relative links resolve** -- every ``[text](path)`` markdown link that
   is not absolute (``http(s)://``, ``mailto:``) or a pure fragment
   (``#...``) must point at an existing file, resolved relative to the
   document that contains it.
2. **Code fences actually run** -- every ``repro`` / ``python -m repro``
   command inside a ``bash``/``console``/``sh`` fence is executed with
   ``REPRO_SCALE=quick`` and an isolated results directory, so the
   quickstart never rots.  ``pip`` and ``pytest`` lines are setup/test
   commands, not doc examples to smoke, and are skipped (CI runs the test
   suite in its own jobs).

Usage::

    python tools/check_docs.py             # links + command smoke
    python tools/check_docs.py --no-smoke  # links only (fast)

Exit status 0 when everything passes; failures are listed on stderr.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
from typing import List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The documents under contract.
DOCS = ("README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)

#: Fence languages whose lines are shell commands.
_SHELL_LANGS = {"bash", "console", "sh", "shell"}


def check_links(root: pathlib.Path = REPO_ROOT) -> List[str]:
    """Return one error string per broken relative link."""
    errors: List[str] = []
    for doc in DOCS:
        path = root / doc
        if not path.is_file():
            errors.append(f"{doc}: document missing")
            continue
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).resolve().exists():
                errors.append(f"{doc}: broken relative link -> {target}")
    return errors


def extract_commands(root: pathlib.Path = REPO_ROOT) -> List[Tuple[str, str]]:
    """``(doc, command)`` pairs for every runnable fence line, in document
    order, de-duplicated (the docs repeat the quickstart commands)."""
    seen = set()
    commands: List[Tuple[str, str]] = []
    for doc in DOCS:
        path = root / doc
        if not path.is_file():
            continue
        for lang, body in _FENCE.findall(path.read_text()):
            if lang.lower() not in _SHELL_LANGS:
                continue
            for line in body.splitlines():
                line = line.strip()
                if line.startswith("$ "):
                    line = line[2:]
                if not line or line.startswith("#"):
                    continue
                line = line.split(" #", 1)[0].strip()  # inline comments
                # Strip leading VAR=value assignments (REPRO_SCALE=... etc.;
                # the smoke environment pins its own).
                words = line.split()
                while words and re.fullmatch(r"[A-Z_][A-Z0-9_]*=\S*", words[0]):
                    words.pop(0)
                line = " ".join(words)
                # The console-script alias needs no install to smoke.
                if line.startswith("repro "):
                    line = "python -m " + line
                if not line.startswith("python -m repro"):
                    continue  # pip installs, pytest runs: not doc examples
                if line not in seen:
                    seen.add(line)
                    commands.append((doc, line))
    return commands


def smoke_commands(commands: List[Tuple[str, str]]) -> List[str]:
    """Run each command at quick scale in a shared isolated results dir
    (shared so ``run-all`` warms the cache for the rest).  Returns one
    error string per failing command."""
    errors: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as tmp:
        env = dict(os.environ)
        env["REPRO_SCALE"] = "quick"
        env["REPRO_RESULTS_DIR"] = tmp
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for doc, cmd in commands:
            print(f"[docs-smoke] {doc}: {cmd}", flush=True)
            proc = subprocess.run(
                cmd.split(), cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            if proc.returncode != 0:
                tail = "\n".join(proc.stdout.splitlines()[-15:])
                errors.append(f"{doc}: `{cmd}` exited {proc.returncode}\n{tail}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-smoke", action="store_true",
                        help="only link-check; skip running the code fences")
    args = parser.parse_args(argv)

    errors = check_links()
    commands = extract_commands()
    if not commands:
        errors.append("no runnable `repro` commands found in any doc fence "
                      "(quickstart contract broken?)")
    if not args.no_smoke and commands:
        errors.extend(smoke_commands(commands))

    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    n = len(commands) if not args.no_smoke else 0
    print(f"docs ok: {len(DOCS)} documents link-checked, {n} commands smoked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
