#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh bench result to its baseline.

Used by the CI ``perf`` job and by hand::

    python benchmarks/bench_engine_perf.py
    python tools/bench_compare.py                      # default paths
    python tools/bench_compare.py --update-baseline    # refresh the baseline
    python tools/bench_compare.py \\
        --current benchmarks/results/BENCH_serve.json \\
        --baseline benchmarks/baselines/BENCH_serve.baseline.json
    python tools/bench_compare.py --history            # committed trend

Compares the freshly measured throughput metric AND ``peak_rss_mb``
against the committed baseline and fails (exit 1) when either throughput
regressed (dropped) or peak memory regressed (grew) by more than
``--threshold`` (default 0.20 = 20%, overridable via
``$REPRO_BENCH_TOLERANCE``).  The throughput metric is detected from the
files: ``cells_per_sec`` for the engine bench, ``requests_per_sec`` for
the serving bench -- whichever key both sides carry.  Improvements and
small fluctuations pass; a baseline with a different ``bench_version``,
engine, or pinned configuration fails loudly (the trajectory broke --
re-baseline deliberately with ``--update-baseline``, which refreshes
both metrics at once).  When one side lacks ``peak_rss_mb`` (a pre-v2
result file) only throughput is gated, with a note.

The pure-Python engine has its own baseline
(``BENCH_engine.pure.baseline.json``); point ``--current``/``--baseline``
at the ``.pure`` files to gate it (the CI perf job gates both engines,
plus the serving bench on the C engine).

``--history`` prints the committed ``benchmarks/BENCH_history.json``
trajectory (optionally filtered with ``--bench``/``--engine``) and
exits -- the dated-trend companion to the point-in-time gate.

The deltas are printed human-readably, and appended as a Markdown table
to ``$GITHUB_STEP_SUMMARY`` when that file is available (the CI job
summary).

Caveat: cells/sec is machine-dependent.  The committed baseline tracks the
CI runner class; on other hardware use the tool with a locally produced
baseline, or read the delta and ignore the exit status.  Peak RSS is far
less machine-sensitive (same interpreter -> same allocations).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_engine.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_engine.baseline.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "BENCH_history.json"
DEFAULT_THRESHOLD = 0.20

#: Throughput keys a bench result may gate on, in detection order.
METRIC_KEYS = ("cells_per_sec", "requests_per_sec")

#: Allowed drift below the best-ever throughput (the ratchet): a result
#: may fluctuate against the rolling baseline, but falling more than 30%
#: under the recorded best means sustained decay slipped through the
#: incremental gate -- fail loudly.
BEST_THRESHOLD = 0.30


def load(path: pathlib.Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"bench_compare: {path} is not valid JSON: {exc}") from exc
    for key in ("bench_version", "pinned"):
        if key not in payload:
            raise SystemExit(f"bench_compare: {path} lacks required key {key!r}")
    if not any(key in payload for key in METRIC_KEYS):
        raise SystemExit(
            f"bench_compare: {path} carries none of the known throughput "
            f"metrics {METRIC_KEYS}"
        )
    return payload


def metric_key(current: dict, baseline: dict) -> str:
    """The throughput key both sides carry (``cells_per_sec`` for the
    engine bench, ``requests_per_sec`` for the serving bench)."""
    for key in METRIC_KEYS:
        if key in current and key in baseline:
            return key
    raise SystemExit(
        "bench_compare: current and baseline share no throughput metric "
        f"(candidates: {METRIC_KEYS}) -- comparing results of different "
        "benches?"
    )


def compare(current: dict, baseline: dict, threshold: float) -> dict:
    """Comparison verdict: ``{'ok': bool, 'throughput': {...},
    'memory': {...} | None, ...}``.

    Throughput regresses downward (``ratio < 1 - threshold`` fails);
    memory regresses upward (``ratio > 1 + threshold`` fails).  The
    memory entry is ``None`` when either side predates ``peak_rss_mb``.
    """
    if current["bench_version"] != baseline["bench_version"]:
        raise SystemExit(
            "bench_compare: bench_version mismatch "
            f"(current {current['bench_version']} vs baseline "
            f"{baseline['bench_version']}); the pinned cell changed -- "
            "refresh the baseline deliberately with --update-baseline"
        )
    if current["pinned"] != baseline["pinned"]:
        raise SystemExit(
            "bench_compare: pinned cell configuration differs from the "
            "baseline; refresh the baseline deliberately with --update-baseline"
        )
    if current.get("engine", "c") != baseline.get("engine", "c"):
        raise SystemExit(
            "bench_compare: engine mismatch "
            f"(current {current.get('engine', 'c')!r} vs baseline "
            f"{baseline.get('engine', 'c')!r}); compare each engine "
            "against its own baseline"
        )
    key = metric_key(current, baseline)
    cur = float(current[key])
    base = float(baseline[key])
    ratio = cur / base if base > 0 else float("inf")
    throughput = {
        "ok": ratio >= 1.0 - threshold,
        "ratio": ratio,
        "current": cur,
        "baseline": base,
        "metric": key,
    }
    memory = None
    if "peak_rss_mb" in current and "peak_rss_mb" in baseline:
        cur_m = float(current["peak_rss_mb"])
        base_m = float(baseline["peak_rss_mb"])
        m_ratio = cur_m / base_m if base_m > 0 else float("inf")
        memory = {
            "ok": m_ratio <= 1.0 + threshold,
            "ratio": m_ratio,
            "current": cur_m,
            "baseline": base_m,
        }
    # The ratchet: the committed baseline also remembers the best-ever
    # throughput; current must stay within BEST_THRESHOLD of it.  A
    # baseline predating the ratchet ratchets against itself.
    best_val = float(baseline.get("best", {}).get(key, baseline[key]))
    b_ratio = cur / best_val if best_val > 0 else float("inf")
    best = {
        "ok": b_ratio >= 1.0 - BEST_THRESHOLD,
        "ratio": b_ratio,
        "current": cur,
        "best": best_val,
        "metric": key,
    }
    return {
        "ok": throughput["ok"] and best["ok"] and (memory is None or memory["ok"]),
        "throughput": throughput,
        "memory": memory,
        "best": best,
        "threshold": threshold,
        "engine": current.get("engine", "c"),
        "bench": current.get("bench", "engine"),
    }


def emit_summary(verdict: dict) -> None:
    """Append a Markdown table to the GitHub job summary, if present."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    thr = verdict["throughput"]
    t_pct = (thr["ratio"] - 1.0) * 100.0
    t_status = "✅ pass" if thr["ok"] else "❌ regression"
    label = thr["metric"].replace("_per_sec", "/sec")
    lines = [
        f"### {verdict['bench'].capitalize()} perf gate "
        f"({verdict['engine']} engine)",
        "",
        "| metric | baseline | current | delta | status |",
        "|---|---|---|---|---|",
        (
            f"| {label} | {thr['baseline']:.2f} | {thr['current']:.2f} "
            f"| {t_pct:+.1f}% | {t_status} |"
        ),
    ]
    best = verdict["best"]
    b_pct = (best["ratio"] - 1.0) * 100.0
    b_status = "✅ pass" if best["ok"] else "❌ decayed"
    lines.append(
        f"| {label} vs best | {best['best']:.2f} | {best['current']:.2f} "
        f"| {b_pct:+.1f}% | {b_status} |"
    )
    mem = verdict["memory"]
    if mem is not None:
        m_pct = (mem["ratio"] - 1.0) * 100.0
        m_status = "✅ pass" if mem["ok"] else "❌ regression"
        lines.append(
            f"| peak RSS (MiB) | {mem['baseline']:.1f} | {mem['current']:.1f} "
            f"| {m_pct:+.1f}% | {m_status} |"
        )
    lines += [
        "",
        (
            f"_Fails below -{verdict['threshold'] * 100:.0f}% throughput or "
            f"above +{verdict['threshold'] * 100:.0f}% memory._"
        ),
        "",
    ]
    with open(path, "a") as fh:
        fh.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT,
                        help="freshly measured BENCH_engine.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                                     DEFAULT_THRESHOLD)),
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy --current over --baseline and exit")
    parser.add_argument("--history", action="store_true",
                        help="print the committed perf trajectory and exit")
    parser.add_argument("--bench", default=None,
                        help="with --history: only rows for this bench")
    parser.add_argument("--engine", default=None,
                        help="with --history: only rows for this engine")
    args = parser.parse_args(argv)

    if args.history:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.exp.history import format_trend, load_history

        print(format_trend(load_history(DEFAULT_HISTORY),
                           bench=args.bench, engine=args.engine))
        return 0

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        current = load(args.current)
        # Carry the ratchet forward: new best = max(old best, current)
        # per throughput metric (min for peak RSS), reset when the pinned
        # cell or bench version changed (numbers no longer comparable).
        best: dict = {}
        if args.baseline.exists():
            old = json.loads(args.baseline.read_text())
            if (old.get("bench_version") == current.get("bench_version")
                    and old.get("pinned") == current.get("pinned")):
                best = dict(old.get("best", {}))
                for key in METRIC_KEYS:
                    if key in old and key not in best:
                        best[key] = old[key]
                if "peak_rss_mb" in old and "peak_rss_mb" not in best:
                    best["peak_rss_mb"] = old["peak_rss_mb"]
        for key in METRIC_KEYS:
            if key in current:
                best[key] = max(float(best.get(key, current[key])),
                                float(current[key]))
        if "peak_rss_mb" in current:
            best["peak_rss_mb"] = min(
                float(best.get("peak_rss_mb", current["peak_rss_mb"])),
                float(current["peak_rss_mb"]),
            )
        current["best"] = best
        args.baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline} (best: {best})")
        return 0

    current = load(args.current)
    baseline = load(args.baseline)
    verdict = compare(current, baseline, args.threshold)
    thr = verdict["throughput"]
    delta_pct = (thr["ratio"] - 1.0) * 100.0
    label = thr["metric"].replace("_per_sec", "/sec")
    name = verdict["bench"]
    print(
        f"{name} perf [{verdict['engine']}]: {thr['current']:.2f} {label} "
        f"vs baseline {thr['baseline']:.2f} ({delta_pct:+.1f}%; gate at "
        f"-{args.threshold * 100:.0f}%)"
    )
    best = verdict["best"]
    b_pct = (best["ratio"] - 1.0) * 100.0
    print(
        f"{name} best [{verdict['engine']}]: {best['current']:.2f} {label} "
        f"vs best-ever {best['best']:.2f} ({b_pct:+.1f}%; ratchet at "
        f"-{BEST_THRESHOLD * 100:.0f}%)"
    )
    mem = verdict["memory"]
    if mem is not None:
        m_pct = (mem["ratio"] - 1.0) * 100.0
        print(
            f"{name} mem  [{verdict['engine']}]: {mem['current']:.1f} MiB peak "
            f"vs baseline {mem['baseline']:.1f} ({m_pct:+.1f}%; gate at "
            f"+{args.threshold * 100:.0f}%)"
        )
    else:
        print("note: peak_rss_mb absent on one side; gating throughput only")
    emit_summary(verdict)
    if not verdict["ok"]:
        if not thr["ok"]:
            print("FAIL: throughput regressed beyond the allowed threshold",
                  file=sys.stderr)
        if not best["ok"]:
            print("FAIL: throughput drifted more than "
                  f"{BEST_THRESHOLD * 100:.0f}% below the recorded best",
                  file=sys.stderr)
        if mem is not None and not mem["ok"]:
            print("FAIL: peak RSS regressed beyond the allowed threshold",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
