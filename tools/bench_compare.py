#!/usr/bin/env python3
"""Engine perf-regression gate: compare BENCH_engine.json to the baseline.

Used by the CI ``perf`` job and by hand::

    python benchmarks/bench_engine_perf.py
    python tools/bench_compare.py                      # default paths
    python tools/bench_compare.py --update-baseline    # refresh the baseline

Compares the freshly measured ``cells_per_sec`` against the committed
baseline (``benchmarks/baselines/BENCH_engine.baseline.json``) and fails
(exit 1) when throughput regressed by more than ``--threshold`` (default
0.20 = 20%, overridable via ``$REPRO_BENCH_TOLERANCE``).  Improvements
and small fluctuations pass; a baseline with a different ``bench_version``
or pinned configuration fails loudly (the trajectory broke -- re-baseline
deliberately with ``--update-baseline``).

The delta is printed human-readably, and appended as a Markdown table to
``$GITHUB_STEP_SUMMARY`` when that file is available (the CI job summary).

Caveat: cells/sec is machine-dependent.  The committed baseline tracks the
CI runner class; on other hardware use the tool with a locally produced
baseline, or read the delta and ignore the exit status.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_engine.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_engine.baseline.json"
DEFAULT_THRESHOLD = 0.20


def load(path: pathlib.Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"bench_compare: {path} is not valid JSON: {exc}") from exc
    for key in ("cells_per_sec", "bench_version", "pinned"):
        if key not in payload:
            raise SystemExit(f"bench_compare: {path} lacks required key {key!r}")
    return payload


def compare(current: dict, baseline: dict, threshold: float) -> dict:
    """Comparison verdict: ``{'ok': bool, 'ratio': float, ...}``."""
    if current["bench_version"] != baseline["bench_version"]:
        raise SystemExit(
            "bench_compare: bench_version mismatch "
            f"(current {current['bench_version']} vs baseline "
            f"{baseline['bench_version']}); the pinned cell changed -- "
            "refresh the baseline deliberately with --update-baseline"
        )
    if current["pinned"] != baseline["pinned"]:
        raise SystemExit(
            "bench_compare: pinned cell configuration differs from the "
            "baseline; refresh the baseline deliberately with --update-baseline"
        )
    cur = float(current["cells_per_sec"])
    base = float(baseline["cells_per_sec"])
    ratio = cur / base if base > 0 else float("inf")
    return {
        "ok": ratio >= 1.0 - threshold,
        "ratio": ratio,
        "current": cur,
        "baseline": base,
        "threshold": threshold,
    }


def emit_summary(verdict: dict) -> None:
    """Append a Markdown table to the GitHub job summary, if present."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    delta_pct = (verdict["ratio"] - 1.0) * 100.0
    status = "✅ pass" if verdict["ok"] else "❌ regression"
    lines = [
        "### Engine perf gate",
        "",
        "| metric | baseline | current | delta | status |",
        "|---|---|---|---|---|",
        (
            f"| cells/sec | {verdict['baseline']:.2f} | {verdict['current']:.2f} "
            f"| {delta_pct:+.1f}% | {status} |"
        ),
        "",
        f"_Fails below -{verdict['threshold'] * 100:.0f}%._",
        "",
    ]
    with open(path, "a") as fh:
        fh.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT,
                        help="freshly measured BENCH_engine.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                                     DEFAULT_THRESHOLD)),
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy --current over --baseline and exit")
    args = parser.parse_args(argv)

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    current = load(args.current)
    baseline = load(args.baseline)
    verdict = compare(current, baseline, args.threshold)
    delta_pct = (verdict["ratio"] - 1.0) * 100.0
    print(
        f"engine perf: {verdict['current']:.2f} cells/sec vs baseline "
        f"{verdict['baseline']:.2f} ({delta_pct:+.1f}%; gate at "
        f"-{args.threshold * 100:.0f}%)"
    )
    emit_summary(verdict)
    if not verdict["ok"]:
        print("FAIL: throughput regressed beyond the allowed threshold",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
