"""The DIVA programming interface for simulated SPMD programs.

Programs are written as Python *generator functions* taking an :class:`Env`;
every potentially-communicating operation is requested with ``yield from``:

    def program(env: Env):
        v = env.create(f"x{env.rank}", payload_bytes=64, value=0)
        yield from env.barrier()
        val = yield from env.read(v)
        yield from env.write(v, val + 1)
        yield from env.compute(ops=1000)

The launcher (:mod:`repro.runtime.launcher`) drives all P generators
through the event simulator: a ``yield`` suspends the processor until the
operation's virtual completion time.  This mirrors DIVA's fully transparent
access to global variables -- the program never mentions homes, copies or
messages.

Values are treated as immutable: programs must write a *new* object rather
than mutate a previously read one in place (numpy arrays returned by
``read`` are shared, not copied, for speed).
"""

from __future__ import annotations

from typing import Any, Optional

from .variables import GlobalVariable

__all__ = [
    "Env",
    "ReadReq",
    "WriteReq",
    "ComputeReq",
    "BarrierReq",
    "LockReq",
    "UnlockReq",
    "SendReq",
    "RecvReq",
    "MarkReq",
]


class ReadReq:
    __slots__ = ("var",)

    def __init__(self, var: GlobalVariable):
        self.var = var


class WriteReq:
    __slots__ = ("var", "value")

    def __init__(self, var: GlobalVariable, value: Any):
        self.var = var
        self.value = value


class ComputeReq:
    __slots__ = ("seconds", "ops")

    def __init__(self, seconds: float = 0.0, ops: float = 0.0):
        self.seconds = seconds
        self.ops = ops


class BarrierReq:
    __slots__ = ("phase", "reset")

    def __init__(self, phase: Optional[str] = None, reset: bool = False):
        self.phase = phase
        self.reset = reset


class LockReq:
    __slots__ = ("var",)

    def __init__(self, var: GlobalVariable):
        self.var = var


class UnlockReq:
    __slots__ = ("var",)

    def __init__(self, var: GlobalVariable):
        self.var = var


class SendReq:
    """Explicit message passing (hand-optimized baselines): asynchronous
    send of ``value`` (``payload_bytes`` on the wire) to ``dst`` under
    ``tag``; completes once the message is injected."""

    __slots__ = ("dst", "payload_bytes", "tag", "value")

    def __init__(self, dst: int, payload_bytes: int, tag: Any, value: Any):
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.tag = tag
        self.value = value


class RecvReq:
    """Blocking receive of the next message with ``tag``."""

    __slots__ = ("tag",)

    def __init__(self, tag: Any):
        self.tag = tag


class MarkReq:
    """Runtime control marks.  ``reset_measurement`` zeroes all traffic and
    phase accounting (used by Barnes-Hut, which measures only the last
    time-steps, like the paper)."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        self.kind = kind


class Env:
    """Per-processor view of the runtime, passed to every program."""

    __slots__ = ("_rt", "rank")

    def __init__(self, runtime: "Runtime", rank: int):  # noqa: F821
        self._rt = runtime
        self.rank = rank

    # ------------------------------------------------------------- topology
    @property
    def nprocs(self) -> int:
        return self._rt.sim.topology.n_nodes

    @property
    def topology(self):
        return self._rt.sim.topology

    @property
    def mesh(self):
        """The topology's grid view (historic name; same object as
        :attr:`topology` -- every topology exposes grid coordinates)."""
        return self._rt.sim.topology

    @property
    def coord(self):
        return self._rt.sim.topology.coord(self.rank)

    @property
    def machine(self):
        return self._rt.sim.machine

    # ------------------------------------------------------ shared variables
    def create(self, name: str, payload_bytes: int, value: Any = None) -> GlobalVariable:
        """Create a global variable whose initial sole copy lives on this
        processor.  Creation is local bookkeeping (no messages): DIVA
        allocates variables out of a local pool."""
        return self._rt.create_var(name, payload_bytes, self.rank, value)

    def read(self, var: GlobalVariable):
        """Read a global variable (``yield from``); returns its value."""
        value = yield ReadReq(var)
        return value

    def write(self, var: GlobalVariable, value: Any):
        """Write a global variable (``yield from``)."""
        yield WriteReq(var, value)

    # ---------------------------------------------------------------- time
    def compute(self, ops: float = 0.0, seconds: float = 0.0):
        """Charge local computation time (``ops`` elementary operations at
        the machine's speed, plus raw ``seconds``)."""
        yield ComputeReq(seconds=seconds, ops=ops)

    # ------------------------------------------------------- synchronization
    def barrier(self, phase: Optional[str] = None, reset: bool = False):
        """Barrier across all processors.  If ``phase`` is given, the runtime
        closes the current accounting phase at the barrier and starts a new
        one named ``phase`` (all ranks must pass the same label).  With
        ``reset=True`` the measurement window additionally restarts at the
        barrier boundary (warm-up discard, the paper's Barnes-Hut
        methodology); all ranks must agree on the flag."""
        yield BarrierReq(phase, reset)

    def lock(self, var: GlobalVariable):
        yield LockReq(var)

    def unlock(self, var: GlobalVariable):
        yield UnlockReq(var)

    # -------------------------------------------------------- message passing
    def send(self, dst: int, value: Any, payload_bytes: int, tag: Any = 0):
        yield SendReq(dst, payload_bytes, tag, value)

    def recv(self, tag: Any = 0):
        value = yield RecvReq(tag)
        return value

    # --------------------------------------------------------------- control
    def reset_measurement(self):
        """Zero traffic/phase accounting from this instant (call from rank 0
        directly after a barrier, at a globally quiescent point)."""
        yield MarkReq("reset_measurement")
