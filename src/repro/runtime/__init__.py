"""DIVA runtime: variables, memory, program API, barrier/locks, launcher."""

from .api import Env
from .launcher import Runtime, run_spmd
from .memory import LocalMemory, MemoryBook
from .results import RunResult
from .variables import GlobalVariable, VariableRegistry

__all__ = [
    "Env",
    "Runtime",
    "run_spmd",
    "RunResult",
    "GlobalVariable",
    "VariableRegistry",
    "LocalMemory",
    "MemoryBook",
]
