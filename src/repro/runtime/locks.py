"""Locking of global variables.

DIVA provides lock/unlock on global variables; the paper's Barnes-Hut tree
construction relies on them ("locks are used in order to avoid different
processors simultaneously changing the data of the same body") and shows
that the access-tree implementation relieves the contention hotspot that a
centralized lock would suffer at the root cell.

Two managers:

* :class:`RaymondTreeLock` -- Raymond's token-based tree mutual exclusion
  run on the variable's access tree: requests climb toward the token but
  stop at the first node that already has an outstanding request
  (combining!); the token travels along tree edges from holder to holder.
  All traffic follows tree edges, exactly the "elegant algorithms that use
  access trees" the paper alludes to.
* :class:`HomeLock` -- a FIFO queue at the variable's fixed home: every
  request and every grant is a round trip to the home, which serializes at
  the home's NIC.  This is the natural companion of the fixed home
  strategy.

Raymond invariants: following ``dir`` pointers from any node reaches the
token; each node has at most one outstanding forwarded request
(``asked``); other requests queue locally.  ``dir`` pointers are
initialized lazily toward the token's *initial* position, which is sound
because the token can only ever have moved across nodes that some earlier
request already touched (an untouched node is therefore still on the same
side of the token as initially).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..core.decomposition import DecompositionTree
from ..core.embedding import Embedding
from ..sim.engine import Simulator

__all__ = ["RaymondTreeLock", "HomeLock"]

GrantCallback = Callable[[float], None]

#: Marker meaning "the token is here / the request is ours".
_SELF = -1


class _RaymondState:
    """Per-variable Raymond state (lazily created on first lock op)."""

    __slots__ = ("dir", "queue", "asked", "busy", "holder", "grants", "init_token")

    def __init__(self, init_token: int):
        self.dir: Dict[int, int] = {init_token: _SELF}
        self.queue: Dict[int, Deque[int]] = {}
        self.asked: Dict[int, bool] = {}
        self.busy = False
        self.holder: Optional[int] = None  # processor currently in the CS
        self.grants: Dict[int, GrantCallback] = {}  # leaf node -> callback
        self.init_token = init_token


class RaymondTreeLock:
    """Raymond's algorithm on the access tree of each variable."""

    def __init__(self, sim: Simulator, tree: DecompositionTree, embedding: Embedding):
        self.sim = sim
        self.tree = tree
        self.embedding = embedding
        self._states: Dict[int, _RaymondState] = {}
        self.acquisitions = 0

    # ------------------------------------------------------------- plumbing
    def _state(self, vid: int, creator: int) -> _RaymondState:
        st = self._states.get(vid)
        if st is None:
            st = _RaymondState(self.tree.leaf_of_proc[creator])
            self._states[vid] = st
        return st

    def _dir(self, st: _RaymondState, node: int) -> int:
        d = st.dir.get(node)
        if d is None:
            path = self.tree.tree_path(node, st.init_token)
            d = path[1] if len(path) > 1 else _SELF
            st.dir[node] = d
        return d

    def _q(self, st: _RaymondState, node: int) -> Deque[int]:
        q = st.queue.get(node)
        if q is None:
            q = st.queue[node] = deque()
        return q

    def _leg(self, vid: int, a: int, b: int, t: float) -> float:
        return self.sim.send_leg(
            self.embedding.host(vid, a), self.embedding.host(vid, b), 0, t, is_data=False
        )

    # ------------------------------------------------------------------ API
    def lock(self, proc: int, vid: int, creator: int, t: float, grant: GrantCallback) -> None:
        """Request the lock; ``grant(time)`` fires on acquisition."""
        st = self._state(vid, creator)
        leaf = self.tree.leaf_of_proc[proc]
        if leaf in st.grants:
            raise RuntimeError(f"processor {proc} already waiting for lock on var {vid}")
        st.grants[leaf] = grant
        self._request(st, vid, leaf, _SELF, t)

    def unlock(self, proc: int, vid: int, creator: int, t: float) -> float:
        """Release the lock; returns the (local) completion time."""
        st = self._state(vid, creator)
        leaf = self.tree.leaf_of_proc[proc]
        if not st.busy or st.holder != proc:
            raise RuntimeError(f"processor {proc} releases lock on var {vid} it does not hold")
        st.busy = False
        st.holder = None
        if self._q(st, leaf):
            self._pass_token(st, vid, leaf, t)
        return t

    def holder(self, vid: int) -> Optional[int]:
        st = self._states.get(vid)
        return st.holder if st is not None else None

    # ------------------------------------------------------------- protocol
    def _request(self, st: _RaymondState, vid: int, node: int, frm: int, t: float) -> None:
        """A request from direction ``frm`` (``_SELF`` = this node's own
        processor) arrives at ``node`` at time ``t``."""
        q = self._q(st, node)
        q.append(frm)
        d = self._dir(st, node)
        if d == _SELF:
            if not st.busy and len(q) == 1:
                # Token idle here and nothing ahead of us: serve immediately.
                self._pass_token(st, vid, node, t)
            # else: token holder busy or earlier requests pending; stay queued.
            return
        if not st.asked.get(node, False):
            st.asked[node] = True
            t_arr = self._leg(vid, node, d, t)
            self._request(st, vid, d, node, t_arr)

    def _pass_token(self, st: _RaymondState, vid: int, node: int, t: float) -> None:
        """The token rests (idle) at ``node``; serve the head of its queue."""
        q = self._q(st, node)
        if not q:
            return
        d = q.popleft()
        if d == _SELF:
            st.busy = True
            leaf_node = self.tree.nodes[node]
            st.holder = self.tree.mesh.node(leaf_node.row0, leaf_node.col0)
            grant = st.grants.pop(node)
            self.acquisitions += 1
            grant(t)
            return
        # Move the token one tree edge toward the requester.
        st.asked[node] = False
        st.dir[node] = d
        t_tok = self._leg(vid, node, d, t)  # PRIVILEGE message
        if q:
            # Remaining local requests: immediately re-request from the new
            # token location (standard Raymond piggy-back).
            st.asked[node] = True
            self._leg(vid, node, d, t)  # REQUEST message travels behind token
            self._q(st, d).append(node)
        st.dir[d] = _SELF
        st.asked[d] = False
        self._pass_token(st, vid, d, t_tok)


class HomeLock:
    """FIFO lock queue at the variable's home processor."""

    def __init__(self, sim: Simulator, home_of: Callable[[int], int]):
        self.sim = sim
        self.home_of = home_of
        self._held: Dict[int, int] = {}  # vid -> holder proc
        self._queues: Dict[int, Deque[Tuple[int, float, GrantCallback]]] = {}
        self.acquisitions = 0

    def lock(self, proc: int, vid: int, creator: int, t: float, grant: GrantCallback) -> None:
        home = self.home_of(vid)
        t_home = self.sim.send_leg(proc, home, 0, t, is_data=False)
        if vid not in self._held:
            self._held[vid] = proc
            self.acquisitions += 1
            t_grant = self.sim.send_leg(home, proc, 0, t_home, is_data=False)
            grant(t_grant)
        else:
            self._queues.setdefault(vid, deque()).append((proc, t_home, grant))

    def unlock(self, proc: int, vid: int, creator: int, t: float) -> float:
        home = self.home_of(vid)
        if self._held.get(vid) != proc:
            raise RuntimeError(f"processor {proc} releases lock on var {vid} it does not hold")
        t_home = self.sim.send_leg(proc, home, 0, t, is_data=False)
        q = self._queues.get(vid)
        if q:
            nxt, t_req, grant = q.popleft()
            self._held[vid] = nxt
            self.acquisitions += 1
            t_grant = self.sim.send_leg(home, nxt, 0, max(t_home, t_req), is_data=False)
            grant(t_grant)
        else:
            del self._held[vid]
        return t

    def holder(self, vid: int) -> Optional[int]:
        return self._held.get(vid)
