"""Barrier synchronization.

The DIVA library "provides routines for barrier synchronization ... these
routines are implementations of elegant algorithms that use access trees".
We implement the natural such algorithm: a combining tree over the mesh
decomposition tree.  Every processor's leaf sends an *arrive* message to
its parent; an interior node forwards one arrive upward once all of its
children have arrived; the root then broadcasts a *release* downward.  All
traffic follows tree edges, so barrier congestion is small and balanced.

A *central* barrier (one coordinator collects P-1 arrivals and sends P-1
releases, serializing at its NIC) is provided for ablations; it shows the
hotspot behaviour that a fixed central service exhibits on large meshes.

Timing note: the combining pass is computed when the last processor
arrives -- by then the arrival times of all processors are known and the
leg times can be computed in one post-order sweep.  Barrier messages are
control-sized, so acquiring their link reservations slightly late has no
measurable effect on the surrounding traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.decomposition import DecompositionTree, build_tree
from ..core.embedding import ModifiedEmbedding
from ..sim.engine import Simulator

__all__ = ["TreeBarrier", "CentralBarrier", "make_barrier"]

#: Sentinel vid for the (single, shared) barrier tree embedding.
_BARRIER_VID = -1


class TreeBarrier:
    """Combining-tree barrier over a decomposition tree."""

    kind = "tree"

    def __init__(self, sim: Simulator, tree: Optional[DecompositionTree] = None, seed: int = 0):
        self.sim = sim
        self.tree = tree if tree is not None else build_tree(sim.topology, stride=2, terminal=1)
        self.embedding = ModifiedEmbedding(self.tree, seed=seed ^ 0xBA221E2)
        self._arrivals: Dict[int, float] = {}
        self._callbacks: Dict[int, Callable[[int, float], None]] = {}
        self.episodes = 0

    @property
    def n_procs(self) -> int:
        return self.sim.topology.n_nodes

    def _host(self, node: int) -> int:
        return self.embedding.host(_BARRIER_VID, node)

    def arrive(self, proc: int, t: float, callback: Callable[[int, float], None]) -> None:
        """Processor ``proc`` reaches the barrier at time ``t``;
        ``callback(proc, release_time)`` fires when the barrier opens."""
        if proc in self._arrivals:
            raise RuntimeError(f"processor {proc} arrived twice at the same barrier")
        self._arrivals[proc] = t
        self._callbacks[proc] = callback
        if len(self._arrivals) == self.n_procs:
            self._complete()

    def _complete(self) -> None:
        sim, tree = self.sim, self.tree
        ready: Dict[int, float] = {}

        # Post-order: time at which each tree node has collected its subtree.
        order: List[int] = []
        stack = [tree.root]
        while stack:
            n = stack.pop()
            order.append(n)
            stack.extend(tree.nodes[n].children)
        for n in reversed(order):
            node = tree.nodes[n]
            if node.is_leaf:
                proc = tree.mesh.node(node.row0, node.col0)
                ready[n] = self._arrivals[proc]
            else:
                t = 0.0
                host = self._host(n)
                for c in node.children:
                    t_arr = sim.send_leg(self._host(c), host, 0, ready[c], is_data=False)
                    if t_arr > t:
                        t = t_arr
                ready[n] = t

        # Pre-order: broadcast release.
        release: Dict[int, float] = {tree.root: ready[tree.root]}
        for n in order:
            node = tree.nodes[n]
            host = self._host(n)
            for c in node.children:
                release[c] = sim.send_leg(host, self._host(c), 0, release[n], is_data=False)

        callbacks = self._callbacks
        arrivals = dict(self._arrivals)
        self._arrivals.clear()
        self._callbacks = {}
        self.episodes += 1
        for n in order:
            node = tree.nodes[n]
            if node.is_leaf:
                proc = tree.mesh.node(node.row0, node.col0)
                callbacks[proc](proc, release[n])
        del arrivals


class CentralBarrier:
    """Central-coordinator barrier (ablation baseline): every processor
    sends an arrive message to one coordinator, which replies to each."""

    kind = "central"

    def __init__(self, sim: Simulator, coordinator: int = 0):
        self.sim = sim
        self.coordinator = coordinator
        self._arrivals: Dict[int, float] = {}
        self._callbacks: Dict[int, Callable[[int, float], None]] = {}
        self.episodes = 0

    @property
    def n_procs(self) -> int:
        return self.sim.topology.n_nodes

    def arrive(self, proc: int, t: float, callback: Callable[[int, float], None]) -> None:
        if proc in self._arrivals:
            raise RuntimeError(f"processor {proc} arrived twice at the same barrier")
        self._arrivals[proc] = t
        self._callbacks[proc] = callback
        if len(self._arrivals) == self.n_procs:
            self._complete()

    def _complete(self) -> None:
        sim, coord = self.sim, self.coordinator
        t_all = 0.0
        for proc, t in self._arrivals.items():
            if proc == coord:
                t_arr = t
            else:
                t_arr = sim.send_leg(proc, coord, 0, t, is_data=False)
            if t_arr > t_all:
                t_all = t_arr
        callbacks = self._callbacks
        procs = list(self._arrivals.keys())
        self._arrivals.clear()
        self._callbacks = {}
        self.episodes += 1
        for proc in procs:
            if proc == coord:
                callbacks[proc](proc, t_all)
            else:
                rel = sim.send_leg(coord, proc, 0, t_all, is_data=False)
                callbacks[proc](proc, rel)


def make_barrier(kind: str, sim: Simulator, seed: int = 0):
    """Factory: ``"tree"`` (DIVA default) or ``"central"`` (ablation)."""
    if kind == "tree":
        return TreeBarrier(sim, seed=seed)
    if kind == "central":
        return CentralBarrier(sim)
    raise ValueError(f"unknown barrier kind {kind!r}; expected 'tree' or 'central'")
