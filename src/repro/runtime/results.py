"""Run results: the measured quantities of one simulated execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..metrics import MetricsBundle
from ..network.stats import PhaseStats, StatsSnapshot

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything the paper measures, for one application run.

    Attributes
    ----------
    time:
        Virtual execution time of the measured window (seconds).  For most
        runs the window is the whole execution; Barnes-Hut resets the
        window after its warm-up steps, like the paper.
    stats:
        Traffic snapshot of the measured window; ``stats.congestion_bytes``
        and ``stats.congestion_msgs`` are the paper's congestion in data
        volume and in messages.
    phases:
        Per-phase congestion/time breakdown (Figures 9/10); phases with the
        same label accumulate across time-steps.
    compute_time:
        Virtual seconds charged as local computation inside the window,
        summed per processor and maximized (the "local computation time"
        line of Figure 10 reports the per-phase variant).
    hits / misses:
        Strategy cache statistics (reads served from a local copy vs reads
        that needed communication).
    latency_p50 / latency_p95 / latency_p99 / storage_cost:
        The schema-v7 metric suite (see :mod:`repro.metrics`): simulated
        issue->completion latency percentiles over every read/write in
        the measured window, and the time integral of excess replica
        bytes.  :attr:`metrics` bundles them (plus the derived hit rate
        and effective network usage) for emission.
    requests_failed / requests_stalled / requests_retried / repairs /
    failure_events:
        Availability accounting under a failure schedule (schema v6; all
        zero without one).  ``requests_failed`` counts route resolutions
        that found the pair unreachable, ``requests_stalled`` counts
        resolutions detoured around down links (each distinct
        ``(src, dst)`` pair counted once per failure epoch),
        ``requests_retried`` counts requests that were the first to touch
        a variable after a repair hook fixed it, ``repairs`` the repaired
        variables, and ``failure_events`` the schedule events applied.
    extra:
        Application-specific outputs (verification data etc.).
    """

    strategy: str
    mesh: str
    time: float
    end_time: float
    stats: StatsSnapshot
    phases: List[PhaseStats] = field(default_factory=list)
    compute_time: float = 0.0
    hits: int = 0
    misses: int = 0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    storage_cost: float = 0.0
    lock_acquisitions: int = 0
    evictions: int = 0
    barrier_episodes: int = 0
    requests_failed: int = 0
    requests_stalled: int = 0
    requests_retried: int = 0
    repairs: int = 0
    failure_events: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def congestion_bytes(self) -> float:
        return self.stats.congestion_bytes

    @property
    def congestion_msgs(self) -> int:
        return self.stats.congestion_msgs

    @property
    def total_bytes(self) -> float:
        return self.stats.total_bytes

    @property
    def metrics(self) -> MetricsBundle:
        """The metric suite of this run (schema v7): the bundle cells
        spread into result rows via ``metrics.to_row()``."""
        return MetricsBundle(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            total_bytes=self.total_bytes,
            latency_p50=self.latency_p50,
            latency_p95=self.latency_p95,
            latency_p99=self.latency_p99,
            storage_cost=self.storage_cost,
        )

    @property
    def hit_ratio(self) -> float:
        return self.metrics.hit_rate

    def phase(self, name: str) -> Optional[PhaseStats]:
        for ph in self.phases:
            if ph.name == name:
                return ph
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "mesh": self.mesh,
            "time": self.time,
            "congestion_bytes": self.congestion_bytes,
            "congestion_msgs": self.congestion_msgs,
            "total_bytes": self.total_bytes,
            "total_msgs": self.stats.total_msgs,
            "max_startups": self.stats.max_startups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "storage_cost": self.storage_cost,
            "effective_network_usage": self.metrics.effective_network_usage,
            "lock_acquisitions": self.lock_acquisitions,
            "evictions": self.evictions,
            "compute_time": self.compute_time,
            "requests_failed": self.requests_failed,
            "requests_stalled": self.requests_stalled,
            "requests_retried": self.requests_retried,
            "repairs": self.repairs,
            "failure_events": self.failure_events,
            "phases": [p.as_dict() for p in self.phases],
        }
