"""The SPMD launcher: drives P program generators through the simulator.

This is DIVA's runtime loop.  Every processor runs one program (a generator
over :mod:`repro.runtime.api` requests); the launcher dispatches each
request to the data-management strategy, the barrier component, the lock
manager or the message-passing layer, advancing virtual time through the
event heap.  Zero-cost completions (cache hits, local writes) are resumed
inline to keep large runs fast.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..metrics import latency_percentiles
from ..network.machine import GCEL, MachineModel
from ..network.stats import LinkStats, PhaseStats, StatsSnapshot
from ..network.topology import Topology
from ..sim.engine import SimDeadlock, Simulator
from .api import (
    BarrierReq,
    ComputeReq,
    Env,
    LockReq,
    MarkReq,
    ReadReq,
    RecvReq,
    SendReq,
    UnlockReq,
    WriteReq,
)
from .barrier import make_barrier
from .memory import MemoryBook
from .results import RunResult
from .variables import GlobalVariable, VariableRegistry

__all__ = ["Runtime", "run_spmd"]

ProgramFactory = Callable[[Env], Any]


def _describe_block(req: Any) -> str:
    """Human-readable description of the request a processor is stuck on
    (formatted lazily: the hot path only stores the request object)."""
    cls = req.__class__
    if cls is ReadReq:
        return f"read({req.var.name})"
    if cls is WriteReq:
        return f"write({req.var.name})"
    if cls is LockReq:
        return f"lock({req.var.name})"
    if cls is UnlockReq:
        return f"unlock({req.var.name})"
    if cls is RecvReq:
        return f"recv(tag={req.tag!r})"
    if cls is BarrierReq:
        return "barrier"
    if cls is SendReq:
        return f"send(dst={req.dst})"
    if cls is ComputeReq:
        return "compute"
    return str(req)


class _PhaseAcc:
    """Accumulated per-link traffic / time / compute of one named phase."""

    __slots__ = ("link_bytes", "link_msgs", "startups", "time", "compute",
                 "total_msgs", "data_msgs", "ctrl_msgs", "local_msgs")

    def __init__(self, n_links: int, n_procs: int):
        self.link_bytes = np.zeros(n_links)
        self.link_msgs = np.zeros(n_links, dtype=np.int64)
        self.startups = np.zeros(n_procs, dtype=np.int64)
        self.compute = np.zeros(n_procs)
        self.time = 0.0
        self.total_msgs = 0
        self.data_msgs = 0
        self.ctrl_msgs = 0
        self.local_msgs = 0

    def to_phase_stats(self, name: str) -> PhaseStats:
        snap = StatsSnapshot(
            congestion_bytes=float(self.link_bytes.max(initial=0.0)),
            congestion_msgs=int(self.link_msgs.max(initial=0)),
            total_bytes=float(self.link_bytes.sum()),
            total_msgs=self.total_msgs,
            max_startups=int(self.startups.max(initial=0)),
            total_startups=int(self.startups.sum()),
            data_msgs=self.data_msgs,
            ctrl_msgs=self.ctrl_msgs,
            local_msgs=self.local_msgs,
        )
        return PhaseStats(name=name, stats=snap, time=self.time)


class Runtime:
    """One simulated execution context: machine + strategy + programs.

    Parameters
    ----------
    topology, strategy, machine:
        Topology (mesh, torus, hypercube, ...), data-management strategy
        and cost model.
    charge_compute:
        ``False`` reproduces the paper's *communication time* measurements
        ("we have simply removed the code for local computations"): all
        ``compute`` charges become free.
    barrier:
        ``"tree"`` (DIVA combining tree, default) or ``"central"``.
    capacity_bytes:
        Per-processor memory capacity for cached copies (``None`` =
        unbounded, the paper's default situation).
    failures:
        Failure axis (``None`` / ``"none"`` = the paper's static network,
        byte-identical to not having the axis at all): a failure spec
        string (``"linkflap:rate=0.01:seed=7"``), an already-built
        :class:`repro.network.failures.FailureSchedule`, or ``None``.
        Non-empty schedules install a failure-aware route view into the
        engine, apply each topology delta at its timestamp, dispatch the
        strategy's repair hooks on node churn, and populate the
        availability counters of the result (schema v6).
    recorder:
        Optional trace recorder (:class:`repro.workloads.trace.TraceRecorder`
        or anything with the same ``attach`` / ``record_create`` /
        ``record_request`` surface): every variable creation and every
        program request is logged, producing a replayable access trace.
    """

    def __init__(
        self,
        topology: Topology,
        strategy,
        machine: MachineModel = GCEL,
        *,
        charge_compute: bool = True,
        barrier: str = "tree",
        seed: int = 0,
        capacity_bytes: Optional[float] = None,
        failures=None,
        recorder=None,
    ):
        self.sim = Simulator(topology, machine)
        self.registry = VariableRegistry()
        self.memory = MemoryBook(topology.n_nodes, capacity_bytes)
        self.charge_compute = charge_compute
        self.seed = seed
        # Failure axis: resolved before the strategy attaches (access
        # trees check for an installed view to privatize their embedding).
        # An empty schedule installs nothing -- the zero-failure fast path
        # is byte-identical to a build without the axis.
        self._failview = None
        self.failure_spec = "none"
        self.requests_retried = 0
        self.repairs = 0
        self._repaired_vids: set = set()
        if failures is not None:
            from ..network.failures import FailureView, build_schedule

            fail_schedule = build_schedule(failures, topology)
            self.failure_spec = fail_schedule.spec
            if not fail_schedule.is_empty:
                view = FailureView(topology, fail_schedule)
                self._failview = view
                self.sim.install_failures(view)
                # Scheduled before any program step: at equal timestamps
                # the topology delta (and repair) precedes the requests.
                for ev in fail_schedule:
                    self.sim.schedule(ev.time, self._apply_failure, ev)
        self.strategy = strategy
        strategy.attach(self)
        self.barrier = make_barrier(barrier, self.sim, seed)
        self._recorder = recorder
        if recorder is not None:
            recorder.attach(self)

        p = topology.n_nodes
        self._gens: List[Any] = [None] * p
        self._blocked_on: List[str] = ["start"] * p
        self._finished = 0
        self._final_time = [0.0] * p
        self.program_results: List[Any] = [None] * p

        # Per-request simulated latency (schema v7, see repro.metrics):
        # one float per completed read/write.  Requests whose flow blocks
        # (strategy returned None) stash their issue time per processor
        # and are closed out at the resume _step entry -- both engines
        # re-enter at the exact flow completion time, so the sample is
        # engine-identical.
        self._lat = array("d")
        self._lat_pending: List[Optional[float]] = [None] * p

        # message passing
        self._mailbox: Dict[Tuple[int, Any], List[Tuple[float, Any]]] = {}
        self._waiting_recv: Dict[Tuple[int, Any], bool] = {}

        # barrier bookkeeping
        self._barrier_releases: List[Tuple[int, float]] = []
        self._barrier_label: Optional[str] = None
        self._barrier_label_set = False
        self._barrier_reset = False

        # phase + measurement accounting
        self.measure_start = 0.0
        self._phase_name = "main"
        self._phase_order: List[str] = []
        self._phase_acc: Dict[str, _PhaseAcc] = {}
        self._ckpt = self.sim.stats.checkpoint()
        self._phase_start = 0.0
        self._compute_by_proc = np.zeros(p)
        self._phase_compute_mark = np.zeros(p)

    # ------------------------------------------------------------- variables
    def create_var(self, name: str, payload_bytes: int, creator: int, value: Any) -> GlobalVariable:
        var = self.registry.create(name, payload_bytes, creator, value)
        self.strategy.register(var)
        if self._recorder is not None:
            self._recorder.record_create(creator, var)
        return var

    # ------------------------------------------------------------------ run
    def run(self, program: ProgramFactory) -> RunResult:
        """Run ``program(env)`` on every processor to completion."""
        topo = self.sim.topology
        for p in range(topo.n_nodes):
            self._gens[p] = program(Env(self, p))
            self.sim.schedule(0.0, self._step, p, None)
        self.sim.run()
        if self._finished < topo.n_nodes:
            blocked = [
                f"p{p}:{_describe_block(self._blocked_on[p])}"
                for p in range(topo.n_nodes)
                if self._gens[p] is not None
            ]
            raise SimDeadlock(
                f"{topo.n_nodes - self._finished} processors never finished; "
                f"blocked: {', '.join(blocked[:10])}"
            )
        end = max(self._final_time)
        self._close_phase(end)
        phases = [self._phase_acc[n].to_phase_stats(n) for n in self._phase_order]
        stats = self.sim.stats.snapshot()
        # The base DataManagementStrategy guarantees the counters (and
        # NullStrategy inherits them), so no getattr defensiveness here.
        strategy = self.strategy
        view = self._failview
        lat_pct = latency_percentiles(self._lat)
        return RunResult(
            strategy=strategy.name,
            mesh=topo.label,
            time=end - self.measure_start,
            end_time=end,
            stats=stats,
            phases=phases,
            compute_time=float(self._compute_by_proc.max(initial=0.0)),
            hits=strategy.hits,
            misses=strategy.misses,
            latency_p50=lat_pct["p50"],
            latency_p95=lat_pct["p95"],
            latency_p99=lat_pct["p99"],
            storage_cost=strategy.storage_cost(end),
            lock_acquisitions=strategy.lock_acquisitions,
            evictions=self.memory.total_evictions,
            barrier_episodes=self.barrier.episodes,
            requests_failed=view.routes_lost if view is not None else 0,
            requests_stalled=view.routes_detoured if view is not None else 0,
            requests_retried=self.requests_retried,
            repairs=self.repairs,
            failure_events=view.events_applied if view is not None else 0,
            extra={},
        )

    # -------------------------------------------------------------- failures
    def _apply_failure(self, event) -> None:
        """Apply one failure-schedule event (scheduled at construction):
        the topology delta first (down sets + fresh route epoch in both
        engines), then the strategy's repair hook for node churn.  Vids
        the hook repaired are counted and flagged so the next request
        touching each counts as retried."""
        sim = self.sim
        sim.apply_failure_event(event)
        kind = event.kind
        if kind == "node_down":
            vids = self.strategy.on_node_down(
                event.target, sim.now, frozenset(self._failview.down_nodes)
            )
        elif kind == "node_up":
            vids = self.strategy.on_node_up(
                event.target, sim.now, frozenset(self._failview.down_nodes)
            )
        else:
            return
        vids = list(vids)
        self.repairs += len(vids)
        self._repaired_vids.update(vids)

    # ------------------------------------------------------------ scheduling
    def _step(self, p: int, value: Any) -> None:
        """Resume processor ``p`` with ``value``; run until it blocks.

        This is the request dispatch loop -- one iteration per program
        request, millions per large run -- so the hot collaborators
        (generator send, strategy entry points, scheduler) are bound to
        locals once and the zero-cost completion paths (``done <= now``)
        continue inline without touching the event heap.
        """
        gen_send = self._gens[p].send
        sim = self.sim
        strategy = self.strategy
        recorder = self._recorder
        schedule = sim.schedule
        lat_append = self._lat.append
        pending = self._lat_pending
        # A request whose flow blocked us completes exactly now: close
        # out its latency sample (see __init__).
        issued = pending[p]
        if issued is not None:
            pending[p] = None
            lat_append(sim.now - issued)
        # Retry accounting (None outside the failure axis: one dead-cheap
        # check per read/write keeps the zero-failure hot path intact).
        retried = self._repaired_vids if self._failview is not None else None
        while True:
            try:
                req = gen_send(value)
                if recorder is not None:
                    recorder.record_request(p, req)
            except StopIteration as stop:
                self._gens[p] = None
                self._finished += 1
                self._final_time[p] = sim.now
                self.program_results[p] = stop.value
                return
            cls = req.__class__
            now = sim.now
            if cls is ReadReq:
                if retried is not None and req.var.vid in retried:
                    retried.discard(req.var.vid)
                    self.requests_retried += 1
                res = strategy.read(p, req.var, now)
                if res is None:
                    # Miss: a flow was launched; it resumes us on completion.
                    pending[p] = now
                    self._blocked_on[p] = req
                    return
                done, value = res
                lat_append(done - now)
                if done <= now:
                    continue
                self._blocked_on[p] = req
                schedule(done, self._step, p, value)
                return
            if cls is WriteReq:
                if retried is not None and req.var.vid in retried:
                    retried.discard(req.var.vid)
                    self.requests_retried += 1
                done = strategy.write(p, req.var, req.value, now)
                value = None
                if done is None:
                    pending[p] = now
                    self._blocked_on[p] = req
                    return
                lat_append(done - now)
                if done <= now:
                    continue
                self._blocked_on[p] = req
                schedule(done, self._step, p, None)
                return
            if cls is ComputeReq:
                value = None
                if not self.charge_compute:
                    continue
                dt = req.seconds + sim.machine.compute_time(req.ops)
                if dt <= 0.0:
                    continue
                self._compute_by_proc[p] += dt
                self._blocked_on[p] = req
                schedule(now + dt, self._step, p, None)
                return
            if cls is BarrierReq:
                self._blocked_on[p] = req
                if req.phase is not None:
                    if self._barrier_label_set and self._barrier_label != req.phase:
                        raise RuntimeError(
                            f"inconsistent barrier phase labels: "
                            f"{self._barrier_label!r} vs {req.phase!r}"
                        )
                    self._barrier_label = req.phase
                    self._barrier_label_set = True
                if req.reset:
                    self._barrier_reset = True
                self.barrier.arrive(p, now, self._on_barrier_release)
                return
            if cls is LockReq:
                self._blocked_on[p] = req
                var = req.var

                def grant(t: float, _p: int = p) -> None:
                    schedule(t, self._step, _p, None)

                strategy.lock(p, var, now, grant)
                return
            if cls is UnlockReq:
                done = strategy.unlock(p, req.var, now)
                value = None
                if done <= now:
                    continue
                self._blocked_on[p] = req
                schedule(done, self._step, p, None)
                return
            if cls is SendReq:
                nic_before = max(now, sim.nic_free[p])
                is_data = req.payload_bytes > 0
                wire = (
                    req.payload_bytes + sim.machine.header_bytes
                    if is_data
                    else sim.machine.ctrl_bytes
                )
                arrival = sim.send_leg(p, req.dst, req.payload_bytes, now, is_data=is_data)
                self._deliver(req.dst, req.tag, arrival, req.value)
                value = None
                t_cont = nic_before + sim.machine.nic_overhead(wire) if req.dst != p else now
                if t_cont <= now:
                    continue
                self._blocked_on[p] = req
                schedule(t_cont, self._step, p, None)
                return
            if cls is RecvReq:
                key = (p, req.tag)
                box = self._mailbox.get(key)
                if box:
                    arrival, value = box.pop(0)
                    if arrival <= now:
                        continue
                    self._blocked_on[p] = req
                    schedule(arrival, self._step, p, value)
                    return
                self._blocked_on[p] = req
                self._waiting_recv[key] = True
                return
            if cls is MarkReq:
                if req.kind == "reset_measurement":
                    self._reset_measurement()
                    value = None
                    continue
                raise ValueError(f"unknown mark {req.kind!r}")
            raise TypeError(f"program on p{p} yielded unexpected object {req!r}")

    def resume(self, proc: int, t: float, value: Any) -> None:
        """Called by strategy flows when a blocking operation completes."""
        self.sim.schedule(t, self._step, proc, value)

    def resume_event(self, proc: int, value: Any) -> tuple:
        """``(callback, args)`` continuation equivalent to
        :meth:`resume`\\ ``(proc, completion_time, value)``, for the
        engine's flow builders (``resume_event=``): the engine schedules
        it *at* the flow's completion time, which the compiled kernel does
        without re-entering Python.  Honors test harnesses that override
        :meth:`resume` on the instance to capture completions."""
        if "resume" in self.__dict__:
            return (self._call_resume_override, (proc, value))
        return (self._step, (proc, value))

    def _call_resume_override(self, proc: int, value: Any) -> None:
        """Dispatch an overridden :meth:`resume` at the completion event
        (``sim.now`` is the completion time when this runs)."""
        self.resume(proc, self.sim.now, value)

    # -------------------------------------------------------------- barriers
    def _on_barrier_release(self, proc: int, t: float) -> None:
        self._barrier_releases.append((proc, t))
        if len(self._barrier_releases) == self.sim.topology.n_nodes:
            releases = self._barrier_releases
            self._barrier_releases = []
            boundary = max(t for _, t in releases)
            label = self._barrier_label if self._barrier_label_set else None
            if self._barrier_label_set:
                self._barrier_label = None
                self._barrier_label_set = False
                self._close_phase(boundary)
                self._phase_name = label
                self._phase_start = boundary
            if self._barrier_reset:
                self._barrier_reset = False
                self._reset_measurement(at=boundary)
                if label is not None:
                    self._phase_name = label
            for proc_, t_ in releases:
                self.sim.schedule(t_, self._step, proc_, None)

    # ------------------------------------------------------ message passing
    def _deliver(self, dst: int, tag: Any, arrival: float, value: Any) -> None:
        key = (dst, tag)
        if self._waiting_recv.pop(key, None):
            self.sim.schedule(arrival, self._step, dst, value)
        else:
            self._mailbox.setdefault(key, []).append((arrival, value))

    # ------------------------------------------------- phases / measurement
    def _close_phase(self, t: float) -> None:
        name = self._phase_name
        acc = self._phase_acc.get(name)
        if acc is None:
            acc = self._phase_acc[name] = _PhaseAcc(
                self.sim.topology.n_links, self.sim.topology.n_nodes
            )
            self._phase_order.append(name)
        stats = self.sim.stats
        cur = stats.checkpoint()
        acc.link_bytes += cur.link_bytes - self._ckpt.link_bytes
        acc.link_msgs += cur.link_msgs - self._ckpt.link_msgs
        acc.startups += cur.startups - self._ckpt.startups
        acc.total_msgs += cur.total_msgs - self._ckpt.total_msgs
        acc.data_msgs += cur.data_msgs - self._ckpt.data_msgs
        acc.ctrl_msgs += cur.ctrl_msgs - self._ckpt.ctrl_msgs
        acc.local_msgs += cur.local_msgs - self._ckpt.local_msgs
        acc.time += max(0.0, t - self._phase_start)
        acc.compute += self._compute_by_proc - self._phase_compute_mark
        self._phase_compute_mark = self._compute_by_proc.copy()
        self._ckpt = cur

    def _reset_measurement(self, at: Optional[float] = None) -> None:
        """Zero all traffic and phase accounting from instant ``at``
        (default: now)."""
        t = self.sim.now if at is None else at
        self.sim.stats = LinkStats(self.sim.topology)
        self.measure_start = t
        self._phase_order = []
        self._phase_acc = {}
        self._ckpt = self.sim.stats.checkpoint()
        self._phase_start = t
        self._compute_by_proc[:] = 0.0
        self._phase_compute_mark[:] = 0.0
        # No request is in flight at a measurement boundary (it is a
        # barrier boundary: every processor has arrived), so the latency
        # sample restarts cleanly and the storage integral re-anchors at
        # the boundary with the currently-held copies still accruing.
        del self._lat[:]
        strategy = self.strategy
        reset = getattr(strategy, "reset_counters", None)
        if reset is not None:
            reset()
        reset_storage = getattr(strategy, "reset_storage", None)
        if reset_storage is not None:
            reset_storage(t)


def run_spmd(
    topology: Topology,
    strategy,
    program: ProgramFactory,
    machine: MachineModel = GCEL,
    **kwargs,
) -> RunResult:
    """Convenience one-shot: build a :class:`Runtime`, run, return the result."""
    rt = Runtime(topology, strategy, machine, **kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    return result
