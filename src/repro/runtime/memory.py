"""Per-processor local memory modules with LRU replacement.

The paper: "If the local memory module is full then data objects will be
replaced in least recently used fashion.  However, in all our experiments
there will be a sufficient amount of memory so that no data objects have to
be replaced (unless otherwise stated)."  The exception is the 2-ary access
tree at 60,000 bodies in Figure 8, whose congestion kink is caused by copy
replacement.

We reproduce that capability: capacity is optional (``None`` = unbounded,
the default, like the paper); when bounded, inserting a copy beyond capacity
evicts least-recently-used *evictable* entries.  An entry is evictable when
the owning strategy says so -- the access tree strategy must keep its copy
set connected, so only copies whose tree node has degree <= 1 inside the
copy subtree may be dropped, and the very last copy of an object is never
evictable (it is the authoritative data).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, List, Optional

__all__ = ["LocalMemory", "MemoryBook"]


class LocalMemory:
    """LRU-ordered set of copy entries hosted on one processor.

    Entries are opaque hashable keys supplied by the strategy (for the
    access tree strategy ``(vid, tree_node)``, for fixed home ``vid``);
    each has a byte size.  ``OrderedDict`` gives O(1) LRU maintenance.
    """

    def __init__(self, capacity_bytes: Optional[float] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive or None")
        self.capacity = capacity_bytes
        self._entries: "OrderedDict[Hashable, int]" = OrderedDict()
        self.used_bytes = 0
        self.evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most recently used."""
        self._entries.move_to_end(key)

    def insert(
        self,
        key: Hashable,
        size: int,
        evictable: Callable[[Hashable], bool],
        on_evict: Optional[Callable[[Hashable], None]] = None,
    ) -> List[Hashable]:
        """Insert (or refresh) an entry; return the keys evicted to make room.

        ``evictable(key)`` is consulted in LRU order; non-evictable entries
        are skipped (and keep their LRU position).  ``on_evict(key)`` fires
        *immediately after each individual eviction*, before the next
        candidate is examined -- the access-tree strategy updates its copy
        component there, so the connectivity checks inside ``evictable``
        always see current state (deciding a whole batch against stale
        state could evict both endpoints of a two-node component).

        If capacity cannot be met the memory is allowed to overflow -- the
        strategies guarantee progress over strict capacity, mirroring
        DIVA's treatment of the capacity as a soft target for cached
        (non-authoritative) copies.
        """
        if key in self._entries:
            self.touch(key)
            return []
        self._entries[key] = size
        self.used_bytes += size
        evicted: List[Hashable] = []
        if self.capacity is None:
            return evicted
        if self.used_bytes <= self.capacity:
            return evicted
        # Scan from least-recently-used; evict until under capacity or
        # nothing more can be dropped.
        for cand in list(self._entries.keys()):
            if self.used_bytes <= self.capacity:
                break
            if cand == key or not evictable(cand):
                continue
            self.remove(cand)
            evicted.append(cand)
            self.evictions += 1
            if on_evict is not None:
                on_evict(cand)
        return evicted

    def remove(self, key: Hashable) -> None:
        size = self._entries.pop(key)
        self.used_bytes -= size

    def keys(self):
        return self._entries.keys()


class MemoryBook:
    """The collection of all processors' local memories."""

    def __init__(self, n_procs: int, capacity_bytes: Optional[float] = None):
        self.capacity = capacity_bytes
        self.mems = [LocalMemory(capacity_bytes) for _ in range(n_procs)]

    def __getitem__(self, proc: int) -> LocalMemory:
        return self.mems[proc]

    @property
    def total_evictions(self) -> int:
        return sum(m.evictions for m in self.mems)

    @property
    def max_used_bytes(self) -> int:
        return max((m.used_bytes for m in self.mems), default=0)
