"""Global variables (shared data objects) and their registry.

A DIVA *global variable* is a shared data object that any processor can read
or write transparently.  The registry is the single source of truth for the
variable's current value: because protocol operations serialize atomically
at initiation (see :mod:`repro.sim.engine`), the "current value" is always
well defined, and the copy sets kept by the strategies are pure placement
metadata that determines message traffic -- exactly the quantity the paper
measures.

Variables carry a payload size in bytes, which drives the bandwidth cost of
every data message about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["GlobalVariable", "VariableRegistry"]


@dataclass(frozen=True)
class GlobalVariable:
    """Handle of a shared data object.

    Attributes
    ----------
    vid:
        Dense integer id (index into the registry).
    name:
        Debugging label, e.g. ``"A[2,3]"`` or ``"cell#117"``.
    payload_bytes:
        Size of the object's value on the wire.
    creator:
        Processor that created/initialized the variable; the initial sole
        copy lives there (matching the paper's matrix-multiplication setup).
    """

    vid: int
    name: str
    payload_bytes: int
    creator: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Var({self.vid}:{self.name}, {self.payload_bytes}B@p{self.creator})"


class VariableRegistry:
    """Allocates variables and stores their authoritative values."""

    def __init__(self) -> None:
        self._vars: List[GlobalVariable] = []
        self._values: List[Any] = []

    def create(
        self,
        name: str,
        payload_bytes: int,
        creator: int,
        value: Any = None,
    ) -> GlobalVariable:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        var = GlobalVariable(len(self._vars), name, payload_bytes, creator)
        self._vars.append(var)
        self._values.append(value)
        return var

    def get(self, var: GlobalVariable) -> Any:
        return self._values[var.vid]

    def set(self, var: GlobalVariable, value: Any) -> None:
        self._values[var.vid] = value

    def by_id(self, vid: int) -> GlobalVariable:
        return self._vars[vid]

    def __len__(self) -> int:
        return len(self._vars)

    def __iter__(self):
        return iter(self._vars)
