"""The migratory strategy: single-copy owner migration.

The migration scheme from the data-grid replication taxonomy, adapted to
the paper's machine model: every global variable has exactly **one** copy
at all times, held by its current *owner*.

* A **write** by a non-owner *migrates* the copy: the request travels to
  the owner (via the variable's directory, below) and the copy travels
  back to the writer, who becomes the new owner.  Owner writes are free.
* A **read** by a non-owner is *forwarded*: the request travels to the
  owner and the value travels back, but the copy stays put -- the reader
  keeps nothing, so repeated reads keep paying the round trip.  Owner
  reads are local hits.

Owner lookup is served by a **directory** at the variable's creator (the
copy's birthplace): requests hop requester -> directory -> owner as
control messages and the value returns along the same path, so the
traffic shape matches the fixed-home round trip with the home pinned at
the creator.  Locks are a FIFO queue at the directory
(:class:`~repro.runtime.locks.HomeLock`), like fixed home.

Under bounded memory the sole copy is the authoritative value and is
therefore never evictable; the strategy still registers it with the
:class:`~repro.runtime.memory.MemoryBook` so capacity accounting sees it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..network.topology import Topology
from ..runtime.locks import HomeLock
from ..runtime.variables import GlobalVariable
from .strategy import DataManagementStrategy, GrantCallback, next_live_node

__all__ = ["MigratoryStrategy"]


def _never_evictable(key) -> bool:
    return False


class _VarState:
    __slots__ = ("directory", "owner")

    def __init__(self, directory: int, owner: int):
        self.directory = directory
        self.owner = owner


class MigratoryStrategy(DataManagementStrategy):
    """Single-copy owner migration with read forwarding."""

    name = "migratory"

    def __init__(self, topology: Topology, seed: int = 0):
        self.topology = topology
        self.seed = seed
        self._states: Dict[int, _VarState] = {}
        self.migrations = 0
        self.forwards = 0
        self.write_local = 0
        self.write_remote = 0

    def attach(self, runtime) -> None:
        super().attach(runtime)
        self._locks = HomeLock(self.sim, self.directory_of)
        self._track_mem = self.memory.capacity is not None
        # Per-variable compiled leg cost shapes (request = control, reply =
        # data), resolved once at registration, like the access tree's.
        self._leg_costs: Dict[int, Tuple[float, ...]] = {}

    # ----------------------------------------------------------- inspection
    def directory_of(self, vid: int) -> int:
        return self._states[vid].directory

    def owner_of(self, var: GlobalVariable) -> int:
        return self._states[var.vid].owner

    def copy_procs(self, var: GlobalVariable) -> Set[int]:
        return {self._states[var.vid].owner}

    @property
    def lock_acquisitions(self) -> int:
        return self._locks.acquisitions

    # ------------------------------------------------------------- plumbing
    def _mem_insert(self, var: GlobalVariable, proc: int) -> None:
        if self._track_mem:
            # The sole copy is authoritative: never evictable.
            self.memory[proc].insert(var.vid, var.payload_bytes, _never_evictable)

    def _hosts(self, proc: int, st: _VarState) -> list:
        """Request path ``proc -> directory -> owner`` with consecutive
        duplicates collapsed (the directory may be the requester or the
        owner)."""
        hosts = [proc]
        if st.directory != proc:
            hosts.append(st.directory)
        if st.owner != hosts[-1]:
            hosts.append(st.owner)
        return hosts

    # ------------------------------------------------------------------ API
    def register(self, var: GlobalVariable) -> None:
        self._states[var.vid] = _VarState(var.creator, var.creator)
        sim = self.sim
        cwire = sim._ctrl_bytes
        dwire = var.payload_bytes + sim._header_bytes
        self._leg_costs[var.vid] = (
            cwire,
            sim._nic_fixed + cwire * sim._nic_byte,
            cwire / sim._bandwidth,
            dwire,
            sim._nic_fixed + dwire * sim._nic_byte,
            dwire / sim._bandwidth,
        )
        self._mem_insert(var, var.creator)

    def read(self, proc: int, var: GlobalVariable, t: float) -> Optional[Tuple[float, Any]]:
        """Owner reads are local hits; everything else is forwarded to the
        owner and back (no replication)."""
        st = self._states[var.vid]
        if proc == st.owner:
            self.hits += 1
            if self._track_mem and var.vid in self.memory[proc]:
                self.memory[proc].touch(var.vid)
            return t, self.registry.get(var)
        self.misses += 1
        self.forwards += 1
        value = self.registry.get(var)
        hosts = self._hosts(proc, st)
        cwire, cover, cocc, dwire, dover, docc = self._leg_costs[var.vid]
        self.sim.push_updown(
            t, hosts, cwire, cover, cocc, dwire, dover, docc,
            resume_event=self.runtime.resume_event(proc, value),
        )
        return None

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> Optional[float]:
        """Owner writes are free; a non-owner write migrates the copy to
        the writer (request up to the owner, the copy back down)."""
        st = self._states[var.vid]
        if proc == st.owner:
            self.write_local += 1
            self.registry.set(var, value)
            if self._track_mem and var.vid in self.memory[proc]:
                self.memory[proc].touch(var.vid)
            return t
        self.write_remote += 1
        self.migrations += 1
        hosts = self._hosts(proc, st)
        old_owner = st.owner
        # --- state update (atomic at initiation) ---
        st.owner = proc
        self.registry.set(var, value)
        if self._track_mem:
            old_mem = self.memory[old_owner]
            if var.vid in old_mem:
                old_mem.remove(var.vid)
            self._mem_insert(var, proc)
        # --- timing flow: control request up, the migrating copy down ---
        cwire, cover, cocc, dwire, dover, docc = self._leg_costs[var.vid]
        self.sim.push_updown(
            t, hosts, cwire, cover, cocc, dwire, dover, docc,
            resume_event=self.runtime.resume_event(proc, None),
        )
        return None

    # --------------------------------------------------------------- repair
    def on_node_down(self, proc, t, down=frozenset()):
        """Fail-stop repair: a dead directory moves to the next live
        processor (control message); a dead owner hands the sole copy
        off -- it is never dropped -- to the (repaired) directory when
        live, else to the next live processor (data message)."""
        n = self.topology.n_nodes
        repaired = []
        for vid in sorted(self._states):
            st = self._states[vid]
            touched = False
            if st.directory == proc:
                st.directory = next_live_node(proc, n, down)
                self.sim.send_leg(proc, st.directory, 0, t, is_data=False)
                touched = True
            if st.owner == proc:
                var = self.registry.by_id(vid)
                target = st.directory if st.directory not in down else (
                    next_live_node(proc, n, down)
                )
                if self._track_mem and vid in self.memory[proc]:
                    self.memory[proc].remove(vid)
                st.owner = target
                self._mem_insert(var, target)
                self.sim.send_leg(proc, target, var.payload_bytes, t, is_data=True)
                touched = True
            if touched:
                repaired.append(vid)
        return repaired

    # ---------------------------------------------------------------- locks
    def lock(self, proc: int, var: GlobalVariable, t: float, grant: GrantCallback) -> None:
        self._locks.lock(proc, var.vid, var.creator, t, grant)

    def unlock(self, proc: int, var: GlobalVariable, t: float) -> float:
        return self._locks.unlock(proc, var.vid, var.creator, t)

    def reset_counters(self) -> None:
        super().reset_counters()
        self.write_local = 0
        self.write_remote = 0
        # migrations tracks write_remote and forwards tracks misses; they
        # must cover the same measured window as their counterparts.
        self.migrations = 0
        self.forwards = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MigratoryStrategy(seed={self.seed}, {self.topology!r})"
