"""Threshold-based dynamic replication with write-invalidation.

The classic threshold scheme from the data-grid replication literature,
layered on the fixed-home directory: a variable's home tracks its copies
and its owner exactly as in :class:`~repro.core.fixed_home.FixedHomeStrategy`,
but a reader only *earns* a local replica after ``threshold`` remote
reads of the variable -- below the threshold the read is served by the
home round trip and the reader keeps nothing.

* **threshold = 1** replicates on the first remote read: behaviorally
  identical to fixed home (pinned by ``tests/core/test_dynrep.py``).
* **Larger thresholds** trade read latency for invalidation traffic: a
  variable that is written between a processor's reads never becomes a
  replica there, so the write's invalidation multicast stays small -- the
  scheme's advantage on mixed read/write workloads, where fixed home
  pays one invalidation per reader-of-record.

A **write** invalidates all replicas through the home (star multicast +
acks, inherited) and makes the writer the owner of the sole copy; it
also resets the variable's replication counters -- destroyed replicas
must re-earn their place, which is what keeps write-heavy variables from
re-replicating.  LRU eviction of a replica (bounded memory) likewise
restarts that processor's count on the next miss.

Locks are the home-FIFO service, inherited.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..network.topology import Topology
from ..runtime.variables import GlobalVariable
from .fixed_home import FixedHomeStrategy

__all__ = ["DynRepStrategy"]


class DynRepStrategy(FixedHomeStrategy):
    """Fixed-home directory + replicate-after-``threshold``-remote-reads."""

    def __init__(self, topology: Topology, seed: int = 0, threshold: int = 2):
        if threshold < 1:
            raise ValueError(
                f"dynrep threshold must be >= 1 (1 replicates on the first "
                f"remote read, i.e. fixed-home), got {threshold}"
            )
        super().__init__(topology, seed=seed)
        self.threshold = threshold
        self.name = f"dynrep:threshold={threshold}"
        #: vid -> proc -> remote reads since the variable's last
        #: invalidation (or since the proc's replica was evicted).
        self._read_counts: Dict[int, Dict[int, int]] = {}
        self.replications = 0

    # ------------------------------------------------------------------ API
    def _read_replicates(self, st, proc: int, var: GlobalVariable) -> bool:
        """The one divergence from fixed home: a read miss leaves a copy
        at the reader only once ``proc`` has accumulated ``threshold``
        remote reads of the variable (hit path and miss flow are fully
        inherited)."""
        counts = self._read_counts.setdefault(var.vid, {})
        count = counts.get(proc, 0) + 1
        if count >= self.threshold:
            counts.pop(proc, None)
            self.replications += 1
            return True
        counts[proc] = count
        return False

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> Optional[float]:
        """Fixed-home write (invalidate all, writer becomes owner) plus a
        replication-counter reset: destroyed replicas re-earn their place."""
        done = super().write(proc, var, value, t)
        if done is None:
            # Remote write: all replicas were invalidated.
            self._read_counts.pop(var.vid, None)
        return done

    def reset_counters(self) -> None:
        super().reset_counters()
        self.replications = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynRepStrategy(threshold={self.threshold}, seed={self.seed}, "
            f"{self.topology!r})"
        )
