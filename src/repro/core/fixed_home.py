"""The fixed home strategy (the paper's CC-NUMA-like baseline).

Each global variable is assigned a *home* processor chosen uniformly at
random; the home keeps track of the variable's copies using the classical
**ownership scheme**:

* at any time either some processor or the home ("main memory") is the
  owner;
* a **write** by a non-owner invalidates all existing copies (the home
  sends one invalidation per copy holder and collects acknowledgements)
  and makes the writer the owner holding the sole copy; writes by the
  owner are free;
* a **read** by a processor without a valid copy asks the home; if a
  processor owns the variable, the home first fetches the value (moving
  ownership back to the home, the previous owner keeping a non-owner
  copy), then answers with a data message.

If every write is preceded by a read of the same processor -- true for all
three applications -- this behaves like a P-ary access tree, which is why
the paper considers it the right baseline.

Locks are served by a FIFO queue at the variable's home.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from ..network.topology import Topology
from ..runtime.locks import HomeLock
from ..runtime.variables import GlobalVariable
from ..sim.flows import chain, multicast_acks
from .strategy import DataManagementStrategy, GrantCallback, next_live_node

__all__ = ["FixedHomeStrategy"]

#: Owner sentinel: the home/main-memory is the owner.
HOME = -1


class _VarState:
    __slots__ = ("home", "copies", "owner")

    def __init__(self, home: int, creator: int):
        self.home = home
        # The creator initialized the variable: it holds the sole copy and
        # the ownership, exactly as after a write (matching the paper's
        # matrix-multiplication initial configuration).
        self.copies: Set[int] = {creator}
        self.owner = creator


class FixedHomeStrategy(DataManagementStrategy):
    """Fixed home + ownership scheme."""

    name = "fixed-home"

    def __init__(self, topology: Topology, seed: int = 0):
        self.topology = topology
        self.mesh = topology  # historic alias
        self.seed = seed
        self._states: Dict[int, _VarState] = {}
        self.write_local = 0
        self.write_remote = 0

    def attach(self, runtime) -> None:
        super().attach(runtime)
        self._locks = HomeLock(self.sim, self.home_of)
        # LRU bookkeeping is only needed under bounded memory.
        self._track_mem = self.memory.capacity is not None

    # ----------------------------------------------------------- inspection
    def home_of(self, vid: int) -> int:
        return self._states[vid].home

    def copy_procs(self, var: GlobalVariable) -> Set[int]:
        return set(self._states[var.vid].copies)

    def owner_of(self, var: GlobalVariable) -> int:
        """Current owner processor, or ``HOME`` (-1)."""
        return self._states[var.vid].owner

    @property
    def lock_acquisitions(self) -> int:
        return self._locks.acquisitions

    # ------------------------------------------------------------- plumbing
    def _mem_insert(self, st: _VarState, var: GlobalVariable, proc: int, t: float) -> None:
        if not self._track_mem:
            return
        mem = self.memory[proc]

        def evictable(vid2) -> bool:
            st2 = self._states[vid2]
            if st2.owner == proc:
                return False  # the owner's copy is authoritative
            if st2.owner == HOME and proc == st2.home:
                return False  # ditto for the home's copy
            return True

        def on_evict(vid2) -> None:
            st2 = self._states[vid2]
            if proc in st2.copies:
                st2.copies.discard(proc)
                self._storage_delta(-self.registry.by_id(vid2).payload_bytes, t)
            # Dropping a cached copy must be announced to the home, which
            # tracks all copies for invalidation.
            self.sim.send_leg(proc, st2.home, 0, t, is_data=False)

        mem.insert(var.vid, var.payload_bytes, evictable, on_evict)

    # ------------------------------------------------------------------ API
    def register(self, var: GlobalVariable) -> None:
        rng = random.Random((self.seed * 1000003 + var.vid) ^ 0x5EED)
        home = rng.randrange(self.topology.n_nodes)
        st = _VarState(home, var.creator)
        self._states[var.vid] = st
        if self._track_mem:
            self._mem_insert(st, var, var.creator, 0.0)

    def read(self, proc: int, var: GlobalVariable, t: float) -> Optional[Tuple[float, Any]]:
        """Serve a read.  Returns ``(t, value)`` for a local hit; otherwise
        launches the home round-trip flow and returns ``None``."""
        st = self._states[var.vid]
        if proc in st.copies:
            self.hits += 1
            if self._track_mem:
                mem = self.memory[proc]
                if var.vid in mem:
                    mem.touch(var.vid)
            return t, self.registry.get(var)
        self.misses += 1
        self._read_miss_flow(st, proc, var, t, replicate=self._read_replicates(st, proc, var))
        return None

    def _read_replicates(self, st: _VarState, proc: int, var: GlobalVariable) -> bool:
        """Whether this read miss leaves a copy at the reader: always for
        the fixed home scheme; :class:`~repro.core.dynrep.DynRepStrategy`
        overrides *only* this decision, inheriting hit path and miss flow,
        so the two protocols can never drift apart."""
        return True

    def _read_miss_flow(
        self, st: _VarState, proc: int, var: GlobalVariable, t: float, replicate: bool
    ) -> None:
        """The home round-trip of a read miss: request up ``proc -> home
        [-> owner]`` as control messages, the value back down as data
        (both read flows compile to the engine's up/down chain form).
        """
        payload = var.payload_bytes
        hosts: List[int] = [proc, st.home]
        if st.owner != HOME:
            # The home first fetches the value from the current owner,
            # moving the ownership back to the main memory.
            hosts.append(st.owner)
            st.owner = HOME
            if st.home not in st.copies:
                st.copies.add(st.home)
                self._storage_delta(payload, t)
            self._mem_insert(st, var, st.home, t)
        if replicate:
            st.copies.add(proc)
            self._storage_delta(payload, t)
            self._mem_insert(st, var, proc, t)
        value = self.registry.get(var)
        runtime = self.runtime
        sim = self.sim
        cwire = sim._ctrl_bytes
        dwire = payload + sim._header_bytes
        sim.push_updown(
            t,
            hosts,
            cwire,
            sim._nic_fixed + cwire * sim._nic_byte,
            cwire / sim._bandwidth,
            dwire,
            sim._nic_fixed + dwire * sim._nic_byte,
            dwire / sim._bandwidth,
            resume_event=runtime.resume_event(proc, value),
        )

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> Optional[float]:
        """Serve a write.  Owner writes are free; otherwise the home
        invalidates all copies (serializing at its NIC -- the hotspot the
        paper attributes to this strategy), collects acknowledgements and
        grants ownership to the writer."""
        st = self._states[var.vid]
        if st.owner == proc:
            self.write_local += 1
            self.registry.set(var, value)
            if self._track_mem:
                mem = self.memory[proc]
                if var.vid in mem:
                    mem.touch(var.vid)
            return t
        self.write_remote += 1
        home = st.home
        holders = sorted(st.copies - {proc})
        # --- state update (atomic at initiation) ---
        if self._track_mem:
            for q in holders:
                mem = self.memory[q]
                if var.vid in mem:
                    mem.remove(var.vid)
        self._storage_delta((1 - len(st.copies)) * var.payload_bytes, t)
        st.copies = {proc}
        st.owner = proc
        self.registry.set(var, value)
        self._mem_insert(st, var, proc, t)

        # --- timing flow: request; star-multicast invalidations + acks
        # through the home; ownership grant back to the writer. ---
        mc_children = {-1: list(range(len(holders)))}
        mc_hosts = {-1: home}
        for i, q in enumerate(holders):
            mc_hosts[i] = q
        sim = self.sim
        runtime = self.runtime

        def after_request(t1: float) -> None:
            multicast_acks(sim, -1, mc_children, mc_hosts, t1, after_acks)

        def after_acks(t2: float) -> None:
            chain(sim, [(home, proc, 0, False)], t2, lambda t3: runtime.resume(proc, t3, None))

        chain(sim, [(proc, home, 0, False)], t, after_request)
        return None

    # --------------------------------------------------------------- repair
    def on_node_down(self, proc, t, down=frozenset()):
        """Fail-stop repair: re-home directories whose home died (the
        next live processor takes over, announced by a control message),
        return ownership held by the dead node to main memory (the home
        re-materializes the authoritative copy), and drop dead cached
        copies from the copy sets.

        Repair messages sourced at the dead node resolve to zero-link
        routes (its links are already down), so repair costs NIC/local
        overhead but no link traffic -- deterministic and identical in
        both engines."""
        repaired = []
        for vid in sorted(self._states):
            st = self._states[vid]
            touched = False
            var = self.registry.by_id(vid)
            n_before = len(st.copies)
            if st.home == proc:
                # The directory died with its node: the next live
                # processor becomes the new home.
                new_home = next_live_node(proc, self.topology.n_nodes, down)
                self.sim.send_leg(proc, new_home, 0, t, is_data=False)
                if st.owner == HOME and proc in st.copies:
                    # Main memory's authoritative copy moves with the home.
                    st.copies.discard(proc)
                    if self._track_mem and vid in self.memory[proc]:
                        self.memory[proc].remove(vid)
                    st.copies.add(new_home)
                    st.home = new_home
                    self._mem_insert(st, var, new_home, t)
                    self.sim.send_leg(proc, new_home, var.payload_bytes, t, is_data=True)
                else:
                    st.home = new_home
                touched = True
            if st.owner == proc:
                # The owner died holding the sole authoritative copy:
                # ownership reverts to main memory at the (live) home.
                st.owner = HOME
                st.copies.discard(proc)
                if self._track_mem and vid in self.memory[proc]:
                    self.memory[proc].remove(vid)
                st.copies.add(st.home)
                self._mem_insert(st, var, st.home, t)
                self.sim.send_leg(proc, st.home, var.payload_bytes, t, is_data=True)
                touched = True
            if proc in st.copies:
                # A plain cached copy needs no message: the home simply
                # forgets the dead holder.
                st.copies.discard(proc)
                if self._track_mem and vid in self.memory[proc]:
                    self.memory[proc].remove(vid)
                touched = True
            if touched:
                delta = (len(st.copies) - n_before) * var.payload_bytes
                if delta:
                    self._storage_delta(delta, t)
                repaired.append(vid)
        return repaired

    # ---------------------------------------------------------------- locks
    def lock(self, proc: int, var: GlobalVariable, t: float, grant: GrantCallback) -> None:
        self._locks.lock(proc, var.vid, var.creator, t, grant)

    def unlock(self, proc: int, var: GlobalVariable, t: float) -> float:
        return self._locks.unlock(proc, var.vid, var.creator, t)

    def reset_counters(self) -> None:
        super().reset_counters()
        self.write_local = 0
        self.write_remote = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedHomeStrategy(seed={self.seed}, {self.topology!r})"
