"""The strategy registry: pluggable, parameterized data-management strategies.

This mirrors the workload registry (:mod:`repro.workloads.base`): a
strategy *family* registers under a name, and every surface that accepts a
strategy -- the workloads' ``run(topology, strategy, ...)``, the CLI's
``--strategy``, the experiment cells -- resolves it through
:func:`get_strategy`.  Adding a strategy is one builder plus one
``register_strategy`` call; no edits to the cells, the CLI, or the
workloads.

A strategy is addressed by a **spec string**::

    name[:token][:token]...

where each ``token`` is either ``key=value`` or a bare positional value
the family interprets (the tree family's arity).  Examples::

    fixed-home                  # the paper's baseline
    4-ary                       # paper access-tree variant (alias of tree)
    tree:4-8:embed=random       # parameterized access tree
    migratory                   # single-copy owner migration
    dynrep:threshold=3          # replicate after 3 remote reads

Families ship in this package:

* the paper's strategies -- the access-tree arity variants and
  ``fixed-home`` (re-registered adapters over
  :mod:`repro.core.access_tree` / :mod:`repro.core.fixed_home`; their
  behavior is untouched), plus ``handopt`` (no data management);
* ``tree`` -- the access tree with the arity/embedding/remapping knobs
  exposed as spec parameters;
* ``migratory`` (:mod:`repro.core.migratory`) -- single-copy owner
  migration: the copy moves to the writer, reads are forwarded;
* ``dynrep`` (:mod:`repro.core.dynrep`) -- threshold-based dynamic
  replication with write-invalidation;
* ``adaptive`` (:mod:`repro.core.adaptive`) -- online-adaptive
  replication from a decaying access-popularity estimator whose scores
  survive write invalidations.

:data:`~repro.core.strategy.STRATEGY_NAMES` is *derived* from this
registry (a live view); :func:`get_strategy` is the one factory every
caller goes through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .specs import SpecGrammar

__all__ = [
    "StrategyFamily",
    "register_strategy",
    "get_strategy",
    "parse_strategy_spec",
    "format_strategy_spec",
    "strategy_names",
    "STRATEGIES",
]

#: Any ``<k>-ary`` / ``<l>-<k>-ary`` string resolves to the tree family
#: even when the specific arity is not a registered alias (the historic
#: factory contract: ``"4-32-ary"`` works).
_ARITY_PATTERN = re.compile(r"^\d+(-\d+)?-ary$")


@dataclass(frozen=True)
class StrategyFamily:
    """One registered strategy family.

    Attributes
    ----------
    name:
        Registry name (the spec's leading segment).
    description:
        One-line description for listings.
    build:
        ``build(topology, params, *, seed, embedding, remap_threshold)``
        returning an attached-ready
        :class:`~repro.core.strategy.DataManagementStrategy`.  ``params``
        is the resolved spec parameter dict.
    defaults:
        Spec parameters and their defaults; unknown ``key=value`` tokens
        are rejected.  A ``None`` default means "not set in the spec, use
        the call-site value" (the tree family's embedding/remapping).
    param_types:
        Coercion targets for parameters whose default is ``None``
        (otherwise the default's type coerces).
    positional:
        Parameter a bare (non ``key=value``) spec token assigns, or
        ``None`` if the family takes no positional.
    normalize:
        Optional normalizer for the positional parameter's value, applied
        to bare tokens and to its ``key=value`` form alike (the tree
        family turns ``"4-8"`` into ``"4-8-ary"``).
    locked:
        Parameter names a spec may NOT override (they are the family's
        identity): the paper alias ``4-ary`` pins ``arity``, so
        ``4-ary:arity=2-ary`` is rejected instead of silently building a
        strategy that contradicts the family name recorded in results.
    validate:
        Optional ``validate(params)`` raising ``ValueError`` on malformed
        parameter combinations (``dynrep:threshold=0``).
    """

    name: str
    description: str
    build: Callable[..., Any]
    defaults: Dict[str, Any] = field(default_factory=dict)
    param_types: Dict[str, type] = field(default_factory=dict)
    positional: Optional[str] = None
    normalize: Optional[Callable[[str], str]] = None
    locked: frozenset = frozenset()
    validate: Optional[Callable[[Dict[str, Any]], None]] = None


#: The global name -> family registry (registration order preserved; the
#: derived ``STRATEGY_NAMES`` view iterates it).
STRATEGIES: Dict[str, StrategyFamily] = {}


def register_strategy(family: StrategyFamily) -> StrategyFamily:
    """Register ``family`` under its name (idempotent for the same
    builder; re-registering a different builder is a bug)."""
    existing = STRATEGIES.get(family.name)
    if existing is not None and existing.build is not family.build:
        raise ValueError(
            f"strategy name {family.name!r} already registered by "
            f"{existing.build!r}"
        )
    STRATEGIES[family.name] = family
    return family


def strategy_names() -> List[str]:
    """Registered strategy names, in registration order (the paper's
    variants first, like the historic ``STRATEGY_NAMES`` tuple)."""
    return list(STRATEGIES)


class _DerivedNames(Sequence):
    """Live, tuple-like view of :func:`strategy_names` -- the derived
    ``STRATEGY_NAMES``: registering a strategy extends it, no frozen
    tuple to keep in sync."""

    def __iter__(self):
        return iter(strategy_names())

    def __getitem__(self, i):
        return strategy_names()[i]

    def __len__(self) -> int:
        return len(STRATEGIES)

    def __contains__(self, name) -> bool:
        return name in STRATEGIES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"STRATEGY_NAMES{tuple(strategy_names())!r}"


def _unknown_strategy(head: str) -> str:
    return (
        f"unknown strategy {head!r}; valid: {', '.join(strategy_names())} "
        f"(or any <l>-<k>-ary access-tree variant)"
    )


def _resolve_arity(head: str) -> Optional[tuple]:
    """Unregistered arity variants fall through to the tree family; the
    head IS the arity, so it is pinned like the alias families'."""
    if _ARITY_PATTERN.match(head) and "tree" in STRATEGIES:
        family = STRATEGIES["tree"]
        params = dict(family.defaults)
        params[family.positional] = head
        return family, params, family.locked | {family.positional}
    return None


def _locked_strategy(family: StrategyFamily, key: str, value: str) -> str:
    return (
        f"strategy {family.name!r} pins {key!r} (it is the "
        f"family's identity); use the generic family instead "
        f"(e.g. tree:{value})"
    )


#: The strategy registration against the shared grammar
#: (:mod:`repro.core.specs`): all parsing/formatting/coercion lives
#: there, this module only supplies the registry and its messages.
_GRAMMAR = SpecGrammar(
    spec_kind="strategy",
    entry_kind="strategy",
    registry=STRATEGIES,
    unknown_head=_unknown_strategy,
    resolve_head=_resolve_arity,
    locked_message=_locked_strategy,
)


def parse_strategy_spec(spec: str) -> Tuple[StrategyFamily, Dict[str, Any]]:
    """Parse ``spec`` into ``(family, params)``; raises ``ValueError``
    with the valid alternatives on unknown names or malformed tokens."""
    return _GRAMMAR.parse(spec)


def format_strategy_spec(family, params: Optional[Dict[str, Any]] = None) -> str:
    """Canonical spec string for ``(family, params)``: every unlocked
    parameter in registration order, so ``parse -> format -> parse``
    round-trips (locked identity parameters -- ``4-ary``'s arity -- ride
    in the name, ``None`` knobs meaning "use the call site's value" are
    omitted)."""
    return _GRAMMAR.format(family, params)


def get_strategy(
    spec: str,
    topology,
    *,
    seed: int = 0,
    embedding: str = "modified",
    remap_threshold: Optional[int] = None,
):
    """Build the strategy addressed by ``spec`` on ``topology``.

    ``seed``, ``embedding`` and ``remap_threshold`` are the call-site
    knobs every surface already threads through; spec parameters override
    them (``tree:embed=random`` wins over ``embedding="modified"``).
    """
    family, params = parse_strategy_spec(spec)
    return family.build(
        topology, params, seed=seed, embedding=embedding, remap_threshold=remap_threshold
    )


# ----------------------------------------------------------- built-in families
def _normalize_arity(token: str) -> str:
    """``"4" -> "4-ary"``, ``"4-8" -> "4-8-ary"``; full names pass through."""
    return token if token.endswith("-ary") else f"{token}-ary"


def _validate_tree(params: Dict[str, Any]) -> None:
    from .decomposition import parse_arity

    parse_arity(params["arity"])  # raises ValueError listing valid forms
    if params["embed"] not in (None, "modified", "random"):
        raise ValueError(
            f"tree embedding must be 'modified' or 'random', got {params['embed']!r}"
        )
    if params["remap"] is not None and params["remap"] < 1:
        raise ValueError(f"remap threshold must be >= 1, got {params['remap']}")


def _build_tree(topology, params, *, seed, embedding, remap_threshold):
    from .access_tree import AccessTreeStrategy

    embed = params.get("embed")
    remap = params.get("remap")
    return AccessTreeStrategy(
        topology,
        arity=params["arity"],
        seed=seed,
        embedding=embed if embed is not None else embedding,
        remap_threshold=remap if remap is not None else remap_threshold,
    )


def _build_fixed_home(topology, params, *, seed, embedding, remap_threshold):
    from .fixed_home import FixedHomeStrategy

    return FixedHomeStrategy(topology, seed=seed)


def _build_handopt(topology, params, *, seed, embedding, remap_threshold):
    from .strategy import NullStrategy

    return NullStrategy()


def _build_migratory(topology, params, *, seed, embedding, remap_threshold):
    from .migratory import MigratoryStrategy

    return MigratoryStrategy(topology, seed=seed)


def _validate_dynrep(params: Dict[str, Any]) -> None:
    if params["threshold"] < 1:
        raise ValueError(
            f"dynrep threshold must be >= 1 (1 replicates on the first "
            f"remote read, i.e. fixed-home), got {params['threshold']}"
        )


def _build_dynrep(topology, params, *, seed, embedding, remap_threshold):
    from .dynrep import DynRepStrategy

    return DynRepStrategy(topology, seed=seed, threshold=params["threshold"])


def _validate_adaptive(params: Dict[str, Any]) -> None:
    if params["halflife"] <= 0:
        raise ValueError(f"adaptive halflife must be > 0, got {params['halflife']}")
    if params["promote"] <= 0:
        raise ValueError(f"adaptive promote must be > 0, got {params['promote']}")
    if not 0 <= params["demote"] < params["promote"]:
        raise ValueError(
            f"adaptive demote must satisfy 0 <= demote < promote, "
            f"got {params['demote']}"
        )


def _build_adaptive(topology, params, *, seed, embedding, remap_threshold):
    from .adaptive import AdaptiveStrategy

    return AdaptiveStrategy(
        topology,
        seed=seed,
        halflife=params["halflife"],
        promote=params["promote"],
        demote=params["demote"],
    )


def _tree_knobs() -> Dict[str, Any]:
    return {"embed": None, "remap": None}


def _register_builtins() -> None:
    # The paper's variants first, in the historic STRATEGY_NAMES order.
    for arity in ("2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary"):
        register_strategy(StrategyFamily(
            name=arity,
            description=f"the paper's {arity} access tree",
            build=_build_tree,
            defaults={"arity": arity, **_tree_knobs()},
            param_types={"embed": str, "remap": int},
            locked=frozenset({"arity"}),
            validate=_validate_tree,
        ))
    register_strategy(StrategyFamily(
        name="fixed-home",
        description="fixed home + ownership scheme (the paper's baseline)",
        build=_build_fixed_home,
    ))
    register_strategy(StrategyFamily(
        name="handopt",
        description="no data management (hand-optimized message passing)",
        build=_build_handopt,
    ))
    register_strategy(StrategyFamily(
        name="tree",
        description="parameterized access tree (arity positional, embed=, remap=)",
        build=_build_tree,
        defaults={"arity": "4-ary", **_tree_knobs()},
        param_types={"embed": str, "remap": int},
        positional="arity",
        normalize=_normalize_arity,
        validate=_validate_tree,
    ))
    register_strategy(StrategyFamily(
        name="migratory",
        description="single-copy owner migration (copy moves to the writer)",
        build=_build_migratory,
    ))
    register_strategy(StrategyFamily(
        name="dynrep",
        description="threshold-based dynamic replication with write-invalidation",
        build=_build_dynrep,
        defaults={"threshold": 2},
        validate=_validate_dynrep,
    ))
    register_strategy(StrategyFamily(
        name="adaptive",
        description="decayed-popularity replication (scores survive writes)",
        build=_build_adaptive,
        defaults={"halflife": 50.0, "promote": 3.0, "demote": 0.5},
        validate=_validate_adaptive,
    ))


_register_builtins()
