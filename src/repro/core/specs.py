"""The one spec grammar shared by every parameterized registry.

Three registries accept compact **spec strings** of the same shape::

    name[:token][:token]...

where each ``token`` is ``key=value`` or a bare positional value the
entry interprets -- strategies (``dynrep:threshold=3``,
:mod:`repro.core.registry`), failure models (``churn:nodes=0.05``,
:mod:`repro.network.failures`) and arrival processes
(``bursty:burst=16``, :mod:`repro.serve.loadgen`).  Historically each
registry carried its own copy of the parser; this module is the single
implementation all three register against.

A :class:`SpecGrammar` is parameterized by the registry dict it resolves
names in and by the two words its error messages use (``entry_kind`` --
"strategy" / "failure model" / "arrival process" -- and ``spec_kind`` --
"strategy" / "failure" / "arrival"), so every grammar's historic
messages reproduce byte for byte.  Registry *entries* are duck-typed:
any object with ``name`` and ``defaults`` works; ``param_types``,
``positional``, ``normalize``, ``locked`` and ``validate`` are optional
refinements (see :class:`repro.core.registry.StrategyFamily` for the
full vocabulary).

Parsing and formatting are inverses: :meth:`SpecGrammar.format` emits
the canonical spec (every unlocked, non-``None`` parameter in
registration order) and ``parse(format(parse(s)))`` is a fixed point for
every valid ``s`` -- the cross-grammar round-trip suite pins this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

__all__ = ["COERCERS", "SpecGrammar"]

#: ``key=value`` coercers per parameter type (specs are strings).  The
#: shared table formerly copied into each registry.
COERCERS: Dict[type, Callable[[str], Any]] = {
    str: str,
    int: int,
    float: float,
    bool: lambda s: {"true": True, "1": True, "false": False, "0": False}[s.lower()],
}


class SpecGrammar:
    """Parser/formatter for one registry's spec strings.

    Parameters
    ----------
    spec_kind:
        The word naming the *spec* in messages ("strategy spec must
        be..."): ``"strategy"`` / ``"failure"`` / ``"arrival"``.
    entry_kind:
        The word naming the *entry* in messages ("failure model 'churn'
        has no parameter..."): ``"strategy"`` / ``"failure model"`` /
        ``"arrival process"``.
    registry:
        The live ``name -> entry`` mapping (the grammar reads it on
        every parse, so late registrations are visible).
    unknown_head:
        ``unknown_head(head) -> str`` building the error message for an
        unresolvable leading segment (each registry lists its own valid
        alternatives).
    resolve_head:
        Optional fallthrough ``resolve_head(head) -> (entry, params,
        locked) | None`` consulted when ``head`` is not a registered
        name (the strategy registry's ``<l>-<k>-ary`` arity aliases).
    locked_message:
        Optional ``locked_message(entry, key, value) -> str`` for specs
        overriding a locked parameter; only grammars with locked
        entries need one.
    """

    def __init__(
        self,
        *,
        spec_kind: str,
        entry_kind: str,
        registry: Mapping[str, Any],
        unknown_head: Callable[[str], str],
        resolve_head: Optional[Callable[[str], Optional[tuple]]] = None,
        locked_message: Optional[Callable[[Any, str, str], str]] = None,
    ):
        self.spec_kind = spec_kind
        self.entry_kind = entry_kind
        self.registry = registry
        self._unknown_head = unknown_head
        self._resolve_head = resolve_head
        self._locked_message = locked_message

    # ------------------------------------------------------------- coerce
    def coerce(
        self, entry_name: str, key: str, value: str, default: Any,
        target: Optional[type] = None,
    ) -> Any:
        """Coerce one ``key=value`` string to the parameter's type (the
        explicit ``target`` when the default is ``None``, else the
        default's own type)."""
        kind = target if target is not None else type(default)
        fn = COERCERS.get(kind)
        if fn is None:  # pragma: no cover - registration-time bug
            raise TypeError(
                f"{self.entry_kind} {entry_name!r}: no coercer for parameter {key!r}"
            )
        try:
            return fn(value)
        except (ValueError, KeyError):
            raise ValueError(
                f"{self.entry_kind} {entry_name!r}: parameter {key!r} expects "
                f"{kind.__name__}, got {value!r}"
            ) from None

    # -------------------------------------------------------------- parse
    def parse(self, spec: str) -> Tuple[Any, Dict[str, Any]]:
        """Parse ``spec`` into ``(entry, params)``; raises ``ValueError``
        with the valid alternatives on unknown names or malformed
        tokens."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(
                f"{self.spec_kind} spec must be a non-empty string, got {spec!r}"
            )
        head, *tokens = spec.strip().split(":")
        entry = self.registry.get(head)
        if entry is not None:
            params = dict(entry.defaults)
            locked = getattr(entry, "locked", frozenset())
        else:
            resolved = self._resolve_head(head) if self._resolve_head else None
            if resolved is None:
                raise ValueError(self._unknown_head(head))
            entry, params, locked = resolved
        positional = getattr(entry, "positional", None)
        normalize = getattr(entry, "normalize", None)
        param_types = getattr(entry, "param_types", {})
        for token in tokens:
            token = token.strip()
            if not token:
                raise ValueError(f"{self.spec_kind} spec {spec!r} has an empty segment")
            if "=" in token:
                key, _, value = token.partition("=")
                if key in locked:
                    raise ValueError(self._locked_msg(entry, key, value))
                if key not in params:
                    valid = ", ".join(sorted(set(params) - locked)) or "(none)"
                    raise ValueError(
                        f"{self.entry_kind} {entry.name!r} has no parameter "
                        f"{key!r}; valid: {valid}"
                    )
                coerced = self.coerce(
                    entry.name, key, value, entry.defaults[key], param_types.get(key)
                )
                if key == positional and normalize is not None:
                    coerced = normalize(coerced)
                params[key] = coerced
            else:
                if positional is None or positional in locked:
                    raise ValueError(
                        f"{self.entry_kind} {head!r} takes no positional spec "
                        f"segment, got {token!r}"
                    )
                coerced = self.coerce(
                    entry.name, positional, token,
                    entry.defaults[positional], param_types.get(positional),
                )
                params[positional] = normalize(coerced) if normalize else coerced
        validate = getattr(entry, "validate", None)
        if validate is not None:
            validate(params)
        return entry, params

    def _locked_msg(self, entry: Any, key: str, value: str) -> str:
        if self._locked_message is not None:
            return self._locked_message(entry, key, value)
        return (  # pragma: no cover - every locked grammar installs its own
            f"{self.entry_kind} {entry.name!r} pins {key!r}"
        )

    # ------------------------------------------------------------- format
    def format(self, entry: Any, params: Optional[Dict[str, Any]] = None) -> str:
        """Canonical spec string for ``(entry, params)``: every unlocked,
        non-``None`` parameter in registration order, so
        ``parse -> format -> parse`` round-trips.  ``entry`` may be a
        registered name."""
        if isinstance(entry, str):
            entry = self.registry[entry]
        merged = dict(entry.defaults)
        merged.update(params or {})
        locked = getattr(entry, "locked", frozenset())
        tokens = [entry.name]
        for key in entry.defaults:
            value = merged[key]
            if key in locked or value is None:
                continue
            if isinstance(value, bool):
                tokens.append(f"{key}={'true' if value else 'false'}")
            elif isinstance(value, float):
                tokens.append(f"{key}={value!r}")
            else:
                tokens.append(f"{key}={value}")
        return ":".join(tokens)
