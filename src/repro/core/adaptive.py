"""Online-adaptive replication driven by a decaying popularity estimator.

Where :class:`~repro.core.dynrep.DynRepStrategy` counts raw remote reads
and *resets* its counters on every invalidation, the adaptive strategy
keeps a per-``(variable, processor)`` **access score** that decays with
the variable's access clock and -- crucially -- survives writes:

* every read of a variable advances the variable's access clock ``n``;
  the reader's score is first decayed by ``0.5 ** (dn / halflife)``
  (``dn`` = clock ticks since the reader's last access) and then
  incremented by one, so a score approximates the reader's share of the
  variable's recent accesses;
* a read **miss** leaves a replica at the reader once its score reaches
  ``promote`` (fixed-home hit path and miss flow are fully inherited);
* on a read miss the home also **demotes** copy holders whose decayed
  score has fallen below ``demote`` (one control message each), never
  touching the authoritative copy (the owner's, or the home's while main
  memory owns);
* a **write** invalidates all replicas exactly as fixed home does, but
  the scores persist -- a processor that was hot before the write
  re-earns its replica on the *first* miss afterwards, which is the
  scheme's edge over ``dynrep`` when the working set drifts
  (:func:`~repro.analysis.experiments.xadapt_cell`).

Spec: ``adaptive[:halflife=H][:promote=P][:demote=D]`` via the shared
grammar (:mod:`repro.core.specs`), e.g. ``adaptive:halflife=50:promote=3``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..network.topology import Topology
from ..runtime.variables import GlobalVariable
from .fixed_home import HOME, FixedHomeStrategy

__all__ = ["AdaptiveStrategy"]


class AdaptiveStrategy(FixedHomeStrategy):
    """Fixed-home directory + decayed-score promotion/demotion."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        halflife: float = 50.0,
        promote: float = 3.0,
        demote: float = 0.5,
    ):
        if halflife <= 0:
            raise ValueError(f"adaptive halflife must be > 0, got {halflife}")
        if promote <= 0:
            raise ValueError(f"adaptive promote must be > 0, got {promote}")
        if not 0 <= demote < promote:
            raise ValueError(
                f"adaptive demote must satisfy 0 <= demote < promote, got {demote}"
            )
        super().__init__(topology, seed=seed)
        self.halflife = float(halflife)
        self.promote = float(promote)
        self.demote = float(demote)
        self.name = f"adaptive:halflife={self.halflife:g}:promote={self.promote:g}"
        #: vid -> access clock (number of reads of the variable so far).
        self._n_access: Dict[int, int] = {}
        #: vid -> proc -> (score at last access, clock at last access).
        self._scores: Dict[int, Dict[int, Tuple[float, int]]] = {}
        self.replications = 0
        self.demotions = 0

    # ----------------------------------------------------------- estimator
    def _decayed(self, entry: Optional[Tuple[float, int]], n: int) -> float:
        if entry is None:
            return 0.0
        score, last_n = entry
        if n == last_n:
            return score
        return score * 0.5 ** ((n - last_n) / self.halflife)

    # ------------------------------------------------------------------ API
    def read(self, proc: int, var: GlobalVariable, t: float):
        """Advance the variable's clock, credit the reader's score, demote
        cold holders on a miss, then serve the read as fixed home does."""
        vid = var.vid
        n = self._n_access.get(vid, 0) + 1
        self._n_access[vid] = n
        scores = self._scores.setdefault(vid, {})
        scores[proc] = (self._decayed(scores.get(proc), n) + 1.0, n)
        st = self._states[vid]
        if proc not in st.copies:
            self._demote_cold(st, var, t)
        return super().read(proc, var, t)

    def _read_replicates(self, st, proc: int, var: GlobalVariable) -> bool:
        """The promotion decision: replicate once the reader's (already
        credited) score reaches ``promote``."""
        n = self._n_access.get(var.vid, 0)
        if self._decayed(self._scores.get(var.vid, {}).get(proc), n) >= self.promote:
            self.replications += 1
            return True
        return False

    def _demote_cold(self, st, var: GlobalVariable, t: float) -> None:
        """Drop replicas whose decayed score fell below ``demote``: the
        home knows every holder, so each demotion is one control message
        (holder memory and copy set updated at initiation, like writes).
        The authoritative copy -- the owner's, or the home's while main
        memory owns -- is never demoted."""
        vid = var.vid
        n = self._n_access.get(vid, 0)
        scores = self._scores.get(vid, {})
        payload = var.payload_bytes
        for q in sorted(st.copies):
            if q == st.owner:
                continue
            if st.owner == HOME and q == st.home:
                continue
            if self._decayed(scores.get(q), n) < self.demote:
                st.copies.discard(q)
                if self._track_mem and vid in self.memory[q]:
                    self.memory[q].remove(vid)
                self._storage_delta(-payload, t)
                self.sim.send_leg(st.home, q, 0, t, is_data=False)
                scores.pop(q, None)
                self.demotions += 1

    def reset_counters(self) -> None:
        super().reset_counters()
        self.replications = 0
        self.demotions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveStrategy(halflife={self.halflife:g}, "
            f"promote={self.promote:g}, demote={self.demote:g}, "
            f"seed={self.seed}, {self.topology!r})"
        )
