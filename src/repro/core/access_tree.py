"""The access tree strategy (the paper's Section 2).

For every global variable ``x`` an *access tree* -- a copy of the mesh
decomposition tree -- is embedded into the mesh.  A simple caching protocol
runs on the tree:

* the tree nodes holding a copy of ``x`` always form a **connected
  component** of the tree;
* **read** from node ``v``: a request hops along tree edges from ``v``'s
  leaf to the nearest tree node ``u`` holding a copy; the value hops back,
  and a copy is created on every tree node of the path;
* **write** from node ``v``: the new value hops to the nearest copy holder
  ``u``; ``u`` multicasts invalidations over the copy component (which
  acknowledges back along tree edges), modifies its copy, and sends it back
  to ``v``, leaving copies exactly on the tree path ``u .. v``.

All messages between neighbouring tree nodes travel along the
dimension-order mesh path between their host processors; every intermediate
tree node pays startup cost (the motivation for flatter, higher-arity
trees).

The connected copy component is tracked with its node set plus the
*topmost* node (the unique member of minimum depth).  The request path from
a leaf ``l`` is the prefix of the tree path ``l -> top`` up to its first
member of the component; connectivity makes that member the closest one:
walking up from ``l``, the first node whose subtree intersects the
component must itself hold a copy, because the component hangs together
under ``top``.

LRU replacement under bounded memory may silently drop copies whose tree
node is a *leaf of the component* (degree <= 1 inside it) -- dropping any
other node would disconnect the component; the last copy is never dropped
(it is the authoritative value).  A control message notifies the tree
neighbour so its direction information stays sound.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..network.topology import Topology
from ..runtime.locks import RaymondTreeLock
from ..runtime.variables import GlobalVariable
from ..sim.flows import multicast_acks
from .decomposition import DecompositionTree, build_tree, parse_arity
from .embedding import make_embedding
from .strategy import DataManagementStrategy, GrantCallback

__all__ = ["AccessTreeStrategy"]


class _CopySet:
    """Connected copy component of one variable: node set + topmost node."""

    __slots__ = ("nodes", "top")

    def __init__(self, leaf: int):
        self.nodes: Set[int] = {leaf}
        self.top = leaf


class AccessTreeStrategy(DataManagementStrategy):
    """The access tree strategy in any of its arity variants.

    Parameters
    ----------
    topology:
        Any :class:`~repro.network.topology.Topology` (fixes the
        decomposition tree: submeshes on mesh/torus, subcubes on the
        hypercube).
    arity:
        ``"2-ary"``, ``"4-ary"``, ``"16-ary"`` or the terminated
        ``"<l>-<k>-ary"`` variants (see
        :func:`repro.core.decomposition.parse_arity`).
    embedding:
        ``"modified"`` (the paper's practical embedding, default;
        per-topology variant selected automatically) or ``"random"``
        (the theoretical analysis).
    """

    def __init__(
        self,
        topology: Topology,
        arity: str = "4-ary",
        seed: int = 0,
        embedding: str = "modified",
        remap_threshold: Optional[int] = None,
    ):
        stride, terminal = parse_arity(arity)
        self.topology = topology
        self.mesh = topology  # historic alias
        self.tree: DecompositionTree = build_tree(topology, stride=stride, terminal=terminal)
        # The embedding memo is shared across runs (hosts are pure in
        # (seed, vid, node)) unless remapping may mutate placements.
        self.embedding = make_embedding(
            embedding, self.tree, seed=seed, shared=remap_threshold is None
        )
        self._embed_kind = embedding
        self.name = arity
        self.arity = arity
        self.seed = seed
        self._copies: Dict[int, _CopySet] = {}
        self.write_local = 0
        self.write_remote = 0
        # Optional remapping (the theoretical strategy's feature the paper
        # omits): after `remap_threshold` protocol messages have stopped at
        # the same tree node, its host is re-randomized within its submesh.
        self.remap_threshold = remap_threshold
        self._access_counts: Dict[Tuple[int, int], int] = {}
        self._remap_serial: Dict[Tuple[int, int], int] = {}
        self.remaps = 0

    def attach(self, runtime) -> None:
        super().attach(runtime)
        # Under a failure schedule repair overrides tree-node hosts; the
        # process-wide shared embedding memo must never see those, so
        # failure runs get a private instance (same hosts pre-override).
        if (
            getattr(runtime, "_failview", None) is not None
            and self.remap_threshold is None
        ):
            self.embedding = make_embedding(
                self._embed_kind, self.tree, seed=self.seed, shared=False
            )
        self._locks = RaymondTreeLock(self.sim, self.tree, self.embedding)
        # LRU bookkeeping is only needed under bounded memory; the common
        # unbounded case (the paper's default) skips it on the hot paths.
        self._track_mem = self.memory.capacity is not None
        self._leaf_of_proc = self.tree.leaf_of_proc
        # Per-variable compiled leg cost shapes (request = control, reply =
        # data), resolved once at registration for the engine's inline
        # chain events: (cwire, cover, cocc, dwire, dover, docc).
        self._leg_costs: Dict[int, Tuple[float, ...]] = {}

    # ----------------------------------------------------------- inspection
    def copy_nodes(self, var: GlobalVariable) -> Set[int]:
        """Tree node ids currently holding a copy (for tests/analysis)."""
        return set(self._copies[var.vid].nodes)

    def copy_procs(self, var: GlobalVariable) -> Set[int]:
        """Processors hosting at least one copy."""
        emb = self.embedding
        return {emb.host(var.vid, n) for n in self._copies[var.vid].nodes}

    @property
    def lock_acquisitions(self) -> int:
        return self._locks.acquisitions

    # ------------------------------------------------------------- plumbing
    def _host(self, vid: int, node: int) -> int:
        return self.embedding.host(vid, node)

    def _note_accesses(self, vid: int, path: List[int], t: float) -> None:
        """Remapping bookkeeping ("the embedding of an access tree node is
        changed when too many accesses are directed to the same node"):
        every internal node of the path served one stop; over-threshold
        nodes are re-randomized within their submesh.  The copy (if any)
        migrates with the node: one data message to the new host."""
        threshold = self.remap_threshold
        counts = self._access_counts
        tree = self.tree
        for node in path:
            tn = tree.nodes[node]
            if tn.size == 1:
                continue  # leaves are pinned to their processor
            key = (vid, node)
            c = counts.get(key, 0) + 1
            if c >= threshold:
                counts[key] = 0
                self._remap_node(vid, node, t)
            else:
                counts[key] = c

    def _remap_node(self, vid: int, node: int, t: float) -> None:
        """Move the host of ``(vid, node)`` to a fresh random processor of
        its submesh (deterministic in the remap serial number)."""
        import random as _random

        serial = self._remap_serial.get((vid, node), 0) + 1
        self._remap_serial[(vid, node)] = serial
        tn = self.tree.nodes[node]
        old_host = self._host(vid, node)
        rng = _random.Random((self.seed * 1_000_003 + vid) * 131 + node * 31 + serial)
        r = tn.row0 + rng.randrange(tn.rows)
        c = tn.col0 + rng.randrange(tn.cols)
        new_host = self.tree.mesh.node(r, c)
        self.embedding.override(vid, node, new_host)
        self.remaps += 1
        if new_host != old_host:
            var = self.registry.by_id(vid)
            cs = self._copies[vid]
            payload = var.payload_bytes if node in cs.nodes else 0
            # Migrate the node's state (and its copy, if it holds one).
            self.sim.send_leg(old_host, new_host, payload, t, is_data=payload > 0)
            if self._track_mem and node in cs.nodes:
                key = (vid, node)
                old_mem = self.memory[old_host]
                if key in old_mem:
                    old_mem.remove(key)
                self._mem_insert(var, cs, node, t)

    # --------------------------------------------------------------- repair
    def on_node_down(self, proc, t, down=frozenset()):
        """Fail-stop repair: re-embed every internal tree node hosted at
        the dead processor.

        For each registered variable, every internal node whose host
        resolves to ``proc`` moves to the first live processor of its own
        submesh region (deterministic row-major scan; if the whole region
        is dead, the next live processor globally).  A copy held at a
        moving node migrates with it -- copies are never dropped, so the
        tree component stays connected and the last-copy invariant holds
        structurally.  Leaves are pinned to their processor by definition
        and never move."""
        from .strategy import next_live_node

        tree = self.tree
        emb = self.embedding
        repaired = []
        for vid in sorted(self._copies):
            cs = self._copies[vid]
            moved = False
            for node, tn in enumerate(tree.nodes):
                if tn.size == 1:
                    continue  # leaves are pinned
                if emb.host(vid, node) != proc:
                    continue
                new_host = None
                for r in range(tn.rows):
                    for c in range(tn.cols):
                        cand = tree.mesh.node(tn.row0 + r, tn.col0 + c)
                        if cand not in down:
                            new_host = cand
                            break
                    if new_host is not None:
                        break
                if new_host is None:
                    new_host = next_live_node(proc, self.topology.n_nodes, down)
                emb.override(vid, node, new_host)
                payload = 0
                if node in cs.nodes:
                    var = self.registry.by_id(vid)
                    payload = var.payload_bytes
                    if self._track_mem:
                        key = (vid, node)
                        old_mem = self.memory[proc]
                        if key in old_mem:
                            old_mem.remove(key)
                        self._mem_insert(var, cs, node, t)
                self.sim.send_leg(proc, new_host, payload, t, is_data=payload > 0)
                moved = True
            if moved:
                repaired.append(vid)
        return repaired

    def _request_path(self, cs: _CopySet, leaf: int) -> List[int]:
        """Tree nodes from ``leaf`` to the nearest copy holder (inclusive)."""
        path = self.tree.path_between(leaf, cs.top)
        nodes = cs.nodes
        out: List[int] = []
        for n in path:
            out.append(n)
            if n in nodes:
                return out
        raise AssertionError("copy component unreachable from leaf (broken invariant)")

    def _add_copies(self, var: GlobalVariable, cs: _CopySet, path: List[int], t: float) -> None:
        """Insert copies for every node of ``path`` (memory + component).

        ``path`` runs from the requesting leaf to a node already in the
        component; nodes are added in *reverse* (component side outward) so
        the component stays connected after every single insertion -- the
        LRU eviction triggered by an insert inspects component degrees and
        relies on that invariant.
        """
        depth = self.tree.depth
        track = self._track_mem
        payload = var.payload_bytes
        for n in reversed(path):
            if n not in cs.nodes:
                cs.nodes.add(n)
                self._storage_delta(payload, t)
                if depth[n] < depth[cs.top]:
                    cs.top = n
                if track:
                    self._mem_insert(var, cs, n, t)
            elif track:
                mem = self.memory[self._host(var.vid, n)]
                key = (var.vid, n)
                if key in mem:
                    mem.touch(key)

    def _mem_insert(self, var: GlobalVariable, cs: _CopySet, node: int, t: float) -> None:
        host = self._host(var.vid, node)
        mem = self.memory[host]

        def evictable(key) -> bool:
            vid2, node2 = key
            cs2 = self._copies[vid2]
            if len(cs2.nodes) <= 1:
                return False  # never drop the last (authoritative) copy
            return self._component_degree(cs2, node2) <= 1

        def on_evict(key) -> None:
            vid2, node2 = key
            self._drop_copy(vid2, node2, host, t)

        mem.insert((var.vid, node), var.payload_bytes, evictable, on_evict)

    def _component_degree(self, cs: _CopySet, node: int) -> int:
        deg = 0
        tn = self.tree.nodes[node]
        if tn.parent is not None and tn.parent in cs.nodes:
            deg += 1
        for c in tn.children:
            if c in cs.nodes:
                deg += 1
        return deg

    def _drop_copy(self, vid: int, node: int, host: int, t: float) -> None:
        """Evict the copy at ``node``; notify its component neighbour so the
        tree's direction information stays consistent (one control leg)."""
        cs = self._copies[vid]
        cs.nodes.discard(node)
        self._storage_delta(-self.registry.by_id(vid).payload_bytes, t)
        tn = self.tree.nodes[node]
        neighbour: Optional[int] = None
        if tn.parent is not None and tn.parent in cs.nodes:
            neighbour = tn.parent
        else:
            for c in tn.children:
                if c in cs.nodes:
                    neighbour = c
                    break
        if neighbour is None:
            raise AssertionError(
                f"evicted copy of var {vid} at node {node} had no component "
                f"neighbour (component {sorted(cs.nodes)[:8]}...): the "
                "connectivity invariant is broken"
            )
        if node == cs.top:
            # The unique component neighbour of a dropped degree-1 top is the
            # new top (it is the shallowest remaining node of the component).
            cs.top = neighbour
        self.sim.send_leg(host, self._host(vid, neighbour), 0, t, is_data=False)

    # ------------------------------------------------------------------ API
    def register(self, var: GlobalVariable) -> None:
        leaf = self.tree.leaf_of_proc[var.creator]
        cs = _CopySet(leaf)
        self._copies[var.vid] = cs
        sim = self.sim
        cwire = sim._ctrl_bytes
        dwire = var.payload_bytes + sim._header_bytes
        self._leg_costs[var.vid] = (
            cwire,
            sim._nic_fixed + cwire * sim._nic_byte,
            cwire / sim._bandwidth,
            dwire,
            sim._nic_fixed + dwire * sim._nic_byte,
            dwire / sim._bandwidth,
        )
        if self._track_mem:
            self._mem_insert(var, cs, leaf, 0.0)

    def read(self, proc: int, var: GlobalVariable, t: float) -> Optional[Tuple[float, Any]]:
        """Serve a read.  Returns ``(t, value)`` for a local hit; otherwise
        launches the request/reply flow and returns ``None`` (the runtime is
        resumed at completion time with the value)."""
        cs = self._copies[var.vid]
        leaf = self._leaf_of_proc[proc]
        if leaf in cs.nodes:
            self.hits += 1
            if self._track_mem:
                mem = self.memory[proc]
                key = (var.vid, leaf)
                if key in mem:
                    mem.touch(key)
            return t, self.registry.get(var)
        self.misses += 1
        vid = var.vid
        path = self._request_path(cs, leaf)
        if self.remap_threshold is not None:
            self._note_accesses(vid, path, t)
        emb = self.embedding
        per_var = emb.per_var_hosts(vid)
        hosts = []
        for n in path:
            h = per_var[n]
            hosts.append(h if h is not None else emb.host(vid, n))
        value = self.registry.get(var)  # the value the fetched copy carries
        self._add_copies(var, cs, path, t)
        # Compiled request/reply chain: the request climbs as control
        # messages, the value descends as data -- the two cost shapes
        # precomputed at registration.
        cwire, cover, cocc, dwire, dover, docc = self._leg_costs[vid]
        runtime = self.runtime
        self.sim.push_updown(
            t, hosts, cwire, cover, cocc, dwire, dover, docc,
            resume_event=runtime.resume_event(proc, value),
        )
        return None

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> Optional[float]:
        """Serve a write.  Returns ``t`` for a purely local write (sole copy
        at the writer); otherwise launches the invalidation flow and returns
        ``None``."""
        cs = self._copies[var.vid]
        leaf = self._leaf_of_proc[proc]
        if leaf in cs.nodes and len(cs.nodes) == 1:
            self.write_local += 1
            self.registry.set(var, value)
            if self._track_mem:
                mem = self.memory[proc]
                key = (var.vid, leaf)
                if key in mem:
                    mem.touch(key)
            return t
        self.write_remote += 1
        vid = var.vid

        if leaf in cs.nodes:
            u = leaf
            path = [leaf]
        else:
            path = self._request_path(cs, leaf)
            u = path[-1]
        if self.remap_threshold is not None:
            self._note_accesses(vid, path, t)
        emb = self.embedding
        per_var = emb.per_var_hosts(vid)
        hosts = []
        for n in path:
            h = per_var[n]
            hosts.append(h if h is not None else emb.host(vid, n))
        payload = var.payload_bytes

        # Snapshot the component structure (rooted at u) for the
        # invalidation multicast before the state collapses.
        mc_children: Dict[int, List[int]] = {}
        mc_hosts: Dict[int, int] = {}
        tree_nodes = self.tree.nodes
        stack = [(u, -1)]
        while stack:
            n, frm = stack.pop()
            h = per_var[n]
            mc_hosts[n] = h if h is not None else emb.host(vid, n)
            tn = tree_nodes[n]
            kids = []
            if tn.parent is not None and tn.parent in cs.nodes and tn.parent != frm:
                kids.append(tn.parent)
            for c in tn.children:
                if c in cs.nodes and c != frm:
                    kids.append(c)
            mc_children[n] = kids
            stack.extend((k, n) for k in kids)

        # --- state update (atomic at initiation) ---
        if self._track_mem:
            for n in cs.nodes - set(path):
                mem = self.memory[self._host(vid, n)]
                key = (vid, n)
                if key in mem:
                    mem.remove(key)
        self._storage_delta((1 - len(cs.nodes)) * payload, t)
        cs.nodes = {u}
        cs.top = u
        self._add_copies(var, cs, path, t)
        self.registry.set(var, value)

        # --- timing flow ---
        sim = self.sim
        runtime = self.runtime
        # Both chains carry the value ("a message including the new value"
        # to u; the modified copy back, leaving copies on the path): the
        # data cost shape precomputed at registration.
        dwire, dover, docc = self._leg_costs[vid][3:]
        single = len(hosts) == 1  # writer already at u: no request travel

        def after_request(t1: float) -> None:
            multicast_acks(sim, u, mc_children, mc_hosts, t1, after_inval)

        def after_inval(t2: float) -> None:
            if single:
                runtime.resume(proc, t2, None)
                return
            sim.push_path(
                t2, hosts, dwire, dover, docc, True, True,
                resume_event=runtime.resume_event(proc, None),
            )

        if single:
            after_request(t)
        else:
            sim.push_path(t, hosts, dwire, dover, docc, True, False, after_request)
        return None

    # ---------------------------------------------------------------- locks
    def lock(self, proc: int, var: GlobalVariable, t: float, grant: GrantCallback) -> None:
        self._locks.lock(proc, var.vid, var.creator, t, grant)

    def unlock(self, proc: int, var: GlobalVariable, t: float) -> float:
        return self._locks.unlock(proc, var.vid, var.creator, t)

    def reset_counters(self) -> None:
        super().reset_counters()
        self.write_local = 0
        self.write_remote = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessTreeStrategy({self.arity}, {self.embedding.name}, {self.topology!r})"
