"""Embeddings of access trees into the network.

For each global variable the access tree (a copy of the decomposition tree)
is embedded into the topology: every tree node is hosted by a processor of
the region (submesh / subring / subcube) it represents.  Two embeddings are
implemented for the paper's mesh:

* :class:`RandomEmbedding` -- the theoretical version analysed in Maggs et
  al.: each node is mapped *independently and uniformly at random* to a
  processor of its submesh.
* :class:`ModifiedEmbedding` -- the paper's practical improvement
  ("Practical improvements to the access tree strategy"): the root is
  mapped at random; every other node ``v`` with parent ``v'`` inherits the
  parent's submesh-local coordinates modulo its own submesh size:
  if ``v'`` sits in row ``i`` / column ``j`` *of its submesh* ``M'``, then
  ``v`` is hosted at row ``i mod m1``, column ``j mod m2`` of its submesh
  ``M`` (``m1 x m2``).  This shortens the expected distance between
  neighbouring tree nodes at the price of correlated placements (the paper
  saw no bad effects, and neither do our ablations).

Both embeddings are deterministic functions of ``(seed, variable id)`` and
are computed lazily, node by node: Barnes-Hut creates hundreds of thousands
of variables, and only the tree nodes actually touched by the protocol ever
need a host.

Per-topology variants (selected by :func:`make_embedding` from the tree's
topology; the mesh classes above are untouched so mesh results stay
byte-identical):

* :class:`TorusModifiedEmbedding` -- the modified embedding with
  **wrap-aware subtree placement**: the child is hosted at the position of
  its box nearest to the parent's host around each ring (wrap included),
  so parent-child tree edges are as short as the torus allows instead of
  inheriting the mesh's reflection a half-box away.
* :class:`SubcubeEmbedding` -- the hypercube's **subcube-recursive**
  analogue of the modified embedding: a child subcube's host agrees with
  its parent's host on all free (low-order) address bits of the child;
  only the newly fixed dimensions change, so the parent-child hop count is
  at most the number of dimensions fixed between the two tree levels.

A leaf's region is a single processor, so every leaf is hosted by "its"
processor under every embedding -- requests enter and answers leave the
tree at the requesting processor, as the protocol requires.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from .decomposition import DecompositionTree

__all__ = [
    "Embedding",
    "RandomEmbedding",
    "ModifiedEmbedding",
    "TorusModifiedEmbedding",
    "SubcubeEmbedding",
    "make_embedding",
]

_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 1000003


def _key(seed: int, vid: int, node: int) -> int:
    """Stable scalar seed for (run seed, variable, tree node)."""
    return (seed * _MIX2 + vid + 1) * _MIX2 + node ^ _MIX1


class Embedding:
    """Base class: lazy per-variable ``host(vid, node) -> processor`` map.

    The per-variable memo is a flat ``None``-filled list indexed by tree
    node id (trees are small and shared, and list indexing is the protocol
    hot path) rather than a dict.
    """

    name = "abstract"

    def __init__(self, tree: DecompositionTree, seed: int = 0):
        self.tree = tree
        self.seed = seed
        self._n_tree_nodes = len(tree.nodes)
        self._cache: Dict[int, List[Optional[int]]] = {}

    def host(self, vid: int, node: int) -> int:
        """Processor hosting tree ``node`` of variable ``vid``'s access tree."""
        per_var = self._cache.get(vid)
        if per_var is None:
            per_var = self._cache[vid] = [None] * self._n_tree_nodes
        h = per_var[node]
        if h is None:
            h = self._compute(vid, node, per_var)
            per_var[node] = h
        return h

    def per_var_hosts(self, vid: int) -> List[Optional[int]]:
        """The variable's mutable host memo (hot-path accessor: strategies
        index it directly and fall back to :meth:`host` on ``None``)."""
        per_var = self._cache.get(vid)
        if per_var is None:
            per_var = self._cache[vid] = [None] * self._n_tree_nodes
        return per_var

    def hosts_for(self, vid: int, nodes) -> List[int]:
        return [self.host(vid, n) for n in nodes]

    def override(self, vid: int, node: int, host: int) -> None:
        """Pin ``node``'s host (the node-remapping feature)."""
        self.per_var_hosts(vid)[node] = host

    def _compute(self, vid: int, node: int, per_var: List[Optional[int]]) -> int:
        raise NotImplementedError

    def forget(self, vid: int) -> None:
        """Drop the lazy cache of a variable (used when variables die)."""
        self._cache.pop(vid, None)


class RandomEmbedding(Embedding):
    """Theoretical embedding: independent uniform host per tree node."""

    name = "random"

    def _compute(self, vid: int, node: int, per_var: List[Optional[int]]) -> int:
        n = self.tree.nodes[node]
        if n.size == 1:
            return self.tree.mesh.node(n.row0, n.col0)
        rng = random.Random(_key(self.seed, vid, node))
        r = n.row0 + rng.randrange(n.rows)
        c = n.col0 + rng.randrange(n.cols)
        return self.tree.mesh.node(r, c)


class ModifiedEmbedding(Embedding):
    """The paper's regular embedding: child inherits parent's submesh-local
    coordinates modulo its own submesh size; only the root is random."""

    name = "modified"

    def _compute(self, vid: int, node: int, per_var: List[Optional[int]]) -> int:
        tree = self.tree
        n = tree.nodes[node]
        if n.size == 1:
            return tree.mesh.node(n.row0, n.col0)
        if n.parent is None:  # root: random in the whole mesh
            rng = random.Random(_key(self.seed, vid, node))
            r = n.row0 + rng.randrange(n.rows)
            c = n.col0 + rng.randrange(n.cols)
            return tree.mesh.node(r, c)
        parent_host = self.host(vid, n.parent)  # memoized recursion
        p = tree.nodes[n.parent]
        pr, pc = tree.mesh.coord(parent_host)
        li, lj = pr - p.row0, pc - p.col0  # parent's submesh-local coords
        r = n.row0 + (li % n.rows)
        c = n.col0 + (lj % n.cols)
        return tree.mesh.node(r, c)


def _nearest_in_ring(p: int, lo: int, size: int, ring: int) -> int:
    """The coordinate of ``[lo, lo + size)`` nearest to ``p`` around a ring
    of circumference ``ring`` (``p`` itself when it lies inside; ties go to
    the low edge)."""
    off = (p - lo) % ring
    if off < size:
        return lo + off
    # Outside the box: the low edge is (ring - off) away going one way
    # around, the high edge (off - size + 1) the other way.
    return lo if (ring - off) <= (off - size + 1) else lo + size - 1


class TorusModifiedEmbedding(ModifiedEmbedding):
    """The modified embedding with wrap-aware subtree placement.

    The mesh's modified embedding inherits the parent's *submesh-local
    coordinates* modulo the child's box size.  On a torus that formula
    ignores the wraparound: a parent hosted in the far half of its box is
    reflected a half-box away from the child's boundary even when the
    child's box is one wrap hop from the parent.  Here the child is
    instead hosted at the position of its box **nearest to the parent's
    host around each ring** -- a parent inside the child's box keeps its
    exact position, a parent outside maps to the nearer box edge, wrap
    included.  Parent-child tree edges are therefore as short as the torus
    allows given the decomposition, at the price of edge positions being
    favoured for faraway parents (the same correlated-placement trade the
    paper accepts for the mesh embedding).
    """

    name = "modified"

    def _compute(self, vid: int, node: int, per_var: List[Optional[int]]) -> int:
        tree = self.tree
        n = tree.nodes[node]
        if n.size == 1:
            return tree.mesh.node(n.row0, n.col0)
        if n.parent is None:  # root: random in the whole torus
            rng = random.Random(_key(self.seed, vid, node))
            r = n.row0 + rng.randrange(n.rows)
            c = n.col0 + rng.randrange(n.cols)
            return tree.mesh.node(r, c)
        parent_host = self.host(vid, n.parent)  # memoized recursion
        topo = tree.mesh
        pr, pc = topo.coord(parent_host)
        r = _nearest_in_ring(pr, n.row0, n.rows, topo.rows)
        c = _nearest_in_ring(pc, n.col0, n.cols, topo.cols)
        return topo.node(r, c)


class SubcubeEmbedding(Embedding):
    """Subcube-recursive embedding for hypercubes.

    Decomposition-tree nodes are aligned subcubes ``[base, base + size)``
    (see :mod:`repro.core.decomposition`); the child's host keeps the
    parent host's low ``log2(size)`` address bits and adopts the child's
    fixed high bits: ``host = base | (parent_host & (size - 1))``.  The
    parent-child distance is therefore the Hamming weight of the newly
    fixed bits alone -- the hypercube analogue of the paper's "child
    inherits the parent's submesh-local coordinates".  Only the root is
    random.
    """

    name = "subcube"

    def _compute(self, vid: int, node: int, per_var: List[Optional[int]]) -> int:
        tree = self.tree
        n = tree.nodes[node]
        if n.size == 1:
            return tree.mesh.node(n.row0, n.col0)
        if n.parent is None:  # root: random in the whole cube
            rng = random.Random(_key(self.seed, vid, node))
            return tree.mesh.node(n.row0 + rng.randrange(n.rows), 0)
        parent_host = self.host(vid, n.parent)  # memoized recursion
        # Grid view: the subcube is the id range [row0, row0 + rows).
        return n.row0 + ((parent_host - n.row0) % n.rows)


def make_embedding(
    kind: str, tree: DecompositionTree, seed: int = 0, shared: bool = False
) -> Embedding:
    """Factory: ``"modified"`` (paper default) or ``"random"`` (theoretical).

    ``"modified"`` resolves to the topology-appropriate variant -- the
    paper's mesh embedding (unchanged), the wrap-aware torus embedding, or
    the hypercube's subcube-recursive embedding.  ``"random"`` is
    topology-agnostic (uniform over the region's grid view).

    ``shared=True`` returns one instance per ``(kind, seed)`` memoized on
    the (itself memoized) tree, so repeated runs and sweep cells reuse the
    warmed host memo.  Hosts are pure functions of ``(seed, vid, node)``,
    so sharing is invisible -- callers that *mutate* placements
    (:meth:`Embedding.override`, the remapping feature) must request a
    private instance.
    """
    if kind not in ("random", "modified"):
        raise ValueError(f"unknown embedding {kind!r}; expected 'modified' or 'random'")
    if shared:
        memo = tree._embedding_memo
        hit = memo.get((kind, seed))
        if hit is None:
            hit = memo[(kind, seed)] = make_embedding(kind, tree, seed, shared=False)
        return hit
    if kind == "random":
        return RandomEmbedding(tree, seed)
    topo_kind = getattr(tree.mesh, "kind", "mesh")
    if topo_kind == "torus":
        return TorusModifiedEmbedding(tree, seed)
    if topo_kind == "hypercube":
        return SubcubeEmbedding(tree, seed)
    return ModifiedEmbedding(tree, seed)
