"""Embeddings of access trees into the mesh.

For each global variable the access tree (a copy of the decomposition tree)
is embedded into the mesh: every tree node is hosted by a processor of the
submesh it represents.  Two embeddings are implemented:

* :class:`RandomEmbedding` -- the theoretical version analysed in Maggs et
  al.: each node is mapped *independently and uniformly at random* to a
  processor of its submesh.
* :class:`ModifiedEmbedding` -- the paper's practical improvement
  ("Practical improvements to the access tree strategy"): the root is
  mapped at random; every other node ``v`` with parent ``v'`` inherits the
  parent's submesh-local coordinates modulo its own submesh size:
  if ``v'`` sits in row ``i`` / column ``j`` *of its submesh* ``M'``, then
  ``v`` is hosted at row ``i mod m1``, column ``j mod m2`` of its submesh
  ``M`` (``m1 x m2``).  This shortens the expected distance between
  neighbouring tree nodes at the price of correlated placements (the paper
  saw no bad effects, and neither do our ablations).

Both embeddings are deterministic functions of ``(seed, variable id)`` and
are computed lazily, node by node: Barnes-Hut creates hundreds of thousands
of variables, and only the tree nodes actually touched by the protocol ever
need a host.

A leaf's submesh is a single processor, so every leaf is hosted by "its"
processor under both embeddings -- requests enter and answers leave the
tree at the requesting processor, as the protocol requires.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .decomposition import DecompositionTree

__all__ = ["Embedding", "RandomEmbedding", "ModifiedEmbedding", "make_embedding"]

_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 1000003


def _key(seed: int, vid: int, node: int) -> int:
    """Stable scalar seed for (run seed, variable, tree node)."""
    return (seed * _MIX2 + vid + 1) * _MIX2 + node ^ _MIX1


class Embedding:
    """Base class: lazy per-variable ``host(vid, node) -> processor`` map."""

    name = "abstract"

    def __init__(self, tree: DecompositionTree, seed: int = 0):
        self.tree = tree
        self.seed = seed
        self._cache: Dict[int, Dict[int, int]] = {}

    def host(self, vid: int, node: int) -> int:
        """Processor hosting tree ``node`` of variable ``vid``'s access tree."""
        per_var = self._cache.get(vid)
        if per_var is None:
            per_var = self._cache[vid] = {}
        h = per_var.get(node)
        if h is None:
            h = self._compute(vid, node, per_var)
            per_var[node] = h
        return h

    def hosts_for(self, vid: int, nodes) -> List[int]:
        return [self.host(vid, n) for n in nodes]

    def _compute(self, vid: int, node: int, per_var: Dict[int, int]) -> int:
        raise NotImplementedError

    def forget(self, vid: int) -> None:
        """Drop the lazy cache of a variable (used when variables die)."""
        self._cache.pop(vid, None)


class RandomEmbedding(Embedding):
    """Theoretical embedding: independent uniform host per tree node."""

    name = "random"

    def _compute(self, vid: int, node: int, per_var: Dict[int, int]) -> int:
        n = self.tree.nodes[node]
        if n.size == 1:
            return self.tree.mesh.node(n.row0, n.col0)
        rng = random.Random(_key(self.seed, vid, node))
        r = n.row0 + rng.randrange(n.rows)
        c = n.col0 + rng.randrange(n.cols)
        return self.tree.mesh.node(r, c)


class ModifiedEmbedding(Embedding):
    """The paper's regular embedding: child inherits parent's submesh-local
    coordinates modulo its own submesh size; only the root is random."""

    name = "modified"

    def _compute(self, vid: int, node: int, per_var: Dict[int, int]) -> int:
        tree = self.tree
        n = tree.nodes[node]
        if n.size == 1:
            return tree.mesh.node(n.row0, n.col0)
        if n.parent is None:  # root: random in the whole mesh
            rng = random.Random(_key(self.seed, vid, node))
            r = n.row0 + rng.randrange(n.rows)
            c = n.col0 + rng.randrange(n.cols)
            return tree.mesh.node(r, c)
        parent_host = self.host(vid, n.parent)  # memoized recursion
        p = tree.nodes[n.parent]
        pr, pc = tree.mesh.coord(parent_host)
        li, lj = pr - p.row0, pc - p.col0  # parent's submesh-local coords
        r = n.row0 + (li % n.rows)
        c = n.col0 + (lj % n.cols)
        return tree.mesh.node(r, c)


def make_embedding(kind: str, tree: DecompositionTree, seed: int = 0) -> Embedding:
    """Factory: ``"modified"`` (paper default) or ``"random"`` (theoretical)."""
    if kind == "modified":
        return ModifiedEmbedding(tree, seed)
    if kind == "random":
        return RandomEmbedding(tree, seed)
    raise ValueError(f"unknown embedding {kind!r}; expected 'modified' or 'random'")
