"""Hierarchical mesh decomposition and decomposition trees.

Section 2 of the paper: the access tree strategy is based on a recursive
decomposition of the mesh.  A mesh ``M`` with side lengths ``m1 >= m2`` is
partitioned into two non-overlapping submeshes of size ``ceil(m1/2) x m2``
and ``floor(m1/2) x m2``, which are decomposed recursively; the recursion
ends at single processors.  The *decomposition tree* has one node per
submesh produced this way.

Variants (all implemented here through one builder):

* **2-ary** -- the tree exactly as above.
* **4-ary** -- "just skips the odd decomposition levels of the 2-ary
  decomposition": every kept node's children are its binary grandchildren.
* **16-ary** -- skips the odd levels of the 4-ary decomposition (stride 4
  over binary levels).
* **l-k-ary** (``l in {2, 4}``, ``k >= l``) -- an l-ary decomposition that
  "terminates at submeshes of size k": a node representing a submesh of
  ``k0 <= k`` processors gets ``k0`` children, one per processor.

In every variant the leaves of the tree are the individual processors, so
each processor has a unique leaf (``leaf_of_proc``), and the processor
numbering induced by reading the leaves left to right is exactly the
numbering the paper uses for its locality-preserving assignment of bitonic
wires and Barnes-Hut costzones.

Topologies
----------
The builder works on any :class:`~repro.network.topology.Topology` through
its *grid view* (``rows``/``cols``/``node``/``submesh_nodes``).  On the
mesh and the torus the view is the physical grid, so the decomposition is
the paper's.  On the hypercube the view is the ``P x 1`` column of node
ids: halving the aligned id range ``[base, base + size)`` is exactly
fixing the next-highest address bit, so the same builder produces the
classic **subcube decomposition** -- every tree node is an aligned
subcube, every leaf a single processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..network.topology import Topology

__all__ = ["DecompNode", "DecompositionTree", "build_tree", "parse_arity"]


@dataclass
class DecompNode:
    """One node of a decomposition tree = one submesh.

    ``row0, col0, rows, cols`` describe the submesh; leaves have
    ``rows == cols == 1``.
    """

    idx: int
    row0: int
    col0: int
    rows: int
    cols: int
    parent: Optional[int]
    depth: int
    children: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecompNode({self.idx}, d{self.depth}, "
            f"[{self.row0}:{self.row0 + self.rows})x[{self.col0}:{self.col0 + self.cols}))"
        )


class DecompositionTree:
    """A decomposition tree over a mesh, with tree-path utilities.

    The same tree object is shared by *all* access trees of a strategy
    (every variable's access tree is "a copy of the decomposition tree");
    only the embedding (node -> hosting processor) differs per variable.
    """

    def __init__(self, mesh: Topology, nodes: List[DecompNode], label: str):
        # ``mesh`` is the historic attribute name; any grid-view topology
        # fits (``self.topology`` is the neutral alias).
        self.mesh = mesh
        self.topology = mesh
        self.nodes = nodes
        self.label = label
        self.root = 0
        self.leaf_of_proc: List[int] = [-1] * mesh.n_nodes
        for n in nodes:
            if n.is_leaf:
                proc = mesh.node(n.row0, n.col0)
                if self.leaf_of_proc[proc] != -1:
                    raise AssertionError(f"duplicate leaf for processor {proc}")
                self.leaf_of_proc[proc] = n.idx
        missing = [p for p, leaf in enumerate(self.leaf_of_proc) if leaf == -1]
        if missing:
            raise AssertionError(f"processors without leaves: {missing[:5]}...")
        self.parent = [(-1 if n.parent is None else n.parent) for n in nodes]
        self.depth = [n.depth for n in nodes]
        self.height = max(self.depth)
        self.max_degree = max((len(n.children) for n in nodes), default=0)
        self._path_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # Shared-embedding memo, keyed (embedding kind, seed): see
        # repro.core.embedding.make_embedding(shared=True).
        self._embedding_memo: Dict[Tuple[str, int], object] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    # ----------------------------------------------------------- tree paths
    def tree_path(self, a: int, b: int) -> List[int]:
        """Node ids on the unique tree path ``a .. b`` (inclusive)."""
        if a == b:
            return [a]
        depth = self.depth
        parent = self.parent
        up_a: List[int] = [a]
        up_b: List[int] = [b]
        x, y = a, b
        while depth[x] > depth[y]:
            x = parent[x]
            up_a.append(x)
        while depth[y] > depth[x]:
            y = parent[y]
            up_b.append(y)
        while x != y:
            x = parent[x]
            y = parent[y]
            up_a.append(x)
            up_b.append(y)
        # x == y == LCA; up_a ends with LCA, up_b ends with LCA.
        up_b.pop()  # drop duplicate LCA
        return up_a + up_b[::-1]

    def path_between(self, a: int, b: int) -> Tuple[int, ...]:
        """Memoized :meth:`tree_path` as an immutable tuple.

        Strategies resolve the same (leaf, component-top) pairs over and
        over; the memo turns the repeat walks into one dict lookup.  The
        tuple is shared -- callers must not mutate it."""
        key = (a, b)
        path = self._path_cache.get(key)
        if path is None:
            path = self._path_cache[key] = tuple(self.tree_path(a, b))
        return path

    def tree_distance(self, a: int, b: int) -> int:
        return len(self.tree_path(a, b)) - 1

    def leaves_under(self, node: int) -> Iterator[int]:
        """All leaf node ids in the subtree of ``node``."""
        stack = [node]
        while stack:
            n = self.nodes[stack.pop()]
            if n.is_leaf:
                yield n.idx
            else:
                stack.extend(n.children)

    def procs_under(self, node: int) -> List[int]:
        """Processors of the submesh represented by ``node``."""
        n = self.nodes[node]
        return self.mesh.submesh_nodes(n.row0, n.col0, n.rows, n.cols)

    def leaves_inorder(self) -> List[int]:
        """Leaf node ids left to right (defines the locality-preserving
        processor numbering used by bitonic sorting and costzones)."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            n = self.nodes[stack.pop()]
            if n.is_leaf:
                out.append(n.idx)
            else:
                stack.extend(reversed(n.children))
        return out

    def procs_inorder(self) -> List[int]:
        """Processor ids in leaf left-to-right order."""
        return [self.mesh.node(self.nodes[l].row0, self.nodes[l].col0) for l in self.leaves_inorder()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DecompositionTree({self.label}, {len(self.nodes)} nodes, height {self.height})"


# --------------------------------------------------------------------- build
def _split(rows: int, cols: int, row0: int, col0: int) -> List[Tuple[int, int, int, int]]:
    """Binary split of a submesh: halve the longer side (ceil/floor);
    ties split rows, matching the paper's ``m1 >= m2`` orientation."""
    if rows >= cols:
        top = (rows + 1) // 2
        return [(row0, col0, top, cols), (row0 + top, col0, rows - top, cols)]
    left = (cols + 1) // 2
    return [(row0, col0, rows, left), (row0, col0 + left, rows, cols - left)]


def _binary_children(
    box: Tuple[int, int, int, int],
    stride: int,
    terminal: int,
) -> List[Tuple[int, int, int, int]]:
    """Descend ``stride`` binary levels from ``box``, stopping early at
    single processors or at submeshes of size <= ``terminal``."""
    frontier = [box]
    for _ in range(stride):
        nxt: List[Tuple[int, int, int, int]] = []
        for r0, c0, r, c in frontier:
            if r * c == 1 or r * c <= terminal:
                nxt.append((r0, c0, r, c))
            else:
                nxt.extend(_split(r, c, r0, c0))
        frontier = nxt
    return frontier


#: Memoized trees: a decomposition tree is a pure function of
#: ``(topology, stride, terminal, label)``, is immutable after
#: construction (the path memo inside only accumulates), and is shared by
#: every access tree of a strategy anyway -- so strategies across runs of
#: a sweep share one instance and its warmed-up path cache.
_TREE_MEMO: Dict[Tuple[Topology, int, int, Optional[str]], "DecompositionTree"] = {}


def build_tree(
    mesh: Topology,
    stride: int = 2,
    terminal: int = 1,
    label: Optional[str] = None,
) -> DecompositionTree:
    """Build a decomposition tree over any grid-view topology (memoized).

    Parameters
    ----------
    stride:
        Binary levels contracted into one tree level: 1 -> 2-ary,
        2 -> 4-ary, 4 -> 16-ary.
    terminal:
        ``k`` of the l-k-ary variants: the decomposition stops at submeshes
        of ``<= k`` processors, which then get one child per processor.
        ``terminal=1`` reproduces the plain variants.
    """
    key = (mesh, stride, terminal, label)
    cached = _TREE_MEMO.get(key)
    if cached is not None:
        return cached
    tree = _build_tree_uncached(mesh, stride, terminal, label)
    _TREE_MEMO[key] = tree
    return tree


def _build_tree_uncached(
    mesh: Topology,
    stride: int = 2,
    terminal: int = 1,
    label: Optional[str] = None,
) -> DecompositionTree:
    if stride not in (1, 2, 4):
        raise ValueError(f"stride must be 1, 2 or 4 (2-, 4-, 16-ary); got {stride}")
    if terminal < 1:
        raise ValueError("terminal submesh size must be >= 1")

    nodes: List[DecompNode] = []

    def add(box: Tuple[int, int, int, int], parent: Optional[int], depth: int) -> int:
        r0, c0, r, c = box
        node = DecompNode(len(nodes), r0, c0, r, c, parent, depth)
        nodes.append(node)
        return node.idx

    root = add((0, 0, mesh.rows, mesh.cols), None, 0)
    stack = [root]
    while stack:
        idx = stack.pop()
        n = nodes[idx]
        if n.size == 1:
            continue  # leaf processor
        if n.size <= terminal:
            # Terminal node of the l-k-ary variant: one child per processor.
            for r in range(n.row0, n.row0 + n.rows):
                for c in range(n.col0, n.col0 + n.cols):
                    add((r, c, 1, 1), idx, n.depth + 1)
                    n.children.append(len(nodes) - 1)
            continue
        for box in _binary_children((n.row0, n.col0, n.rows, n.cols), stride, terminal):
            child = add(box, idx, n.depth + 1)
            n.children.append(child)
            stack.append(child)

    if label is None:
        base = {1: "2-ary", 2: "4-ary", 4: "16-ary"}[stride]
        label = base if terminal == 1 else f"{ {1: 2, 2: 4, 4: 16}[stride] }-{terminal}-ary"
    return DecompositionTree(mesh, nodes, label)


#: Named variants evaluated in the paper -> (stride, terminal).
_ARITIES: Dict[str, Tuple[int, int]] = {
    "2-ary": (1, 1),
    "4-ary": (2, 1),
    "16-ary": (4, 1),
    "2-4-ary": (1, 4),
    "4-8-ary": (2, 8),
    "4-16-ary": (2, 16),
}


def parse_arity(name: str) -> Tuple[int, int]:
    """Map a strategy-variant name to ``(stride, terminal)``.

    Supports the paper's named variants plus the general patterns
    ``"<l>-ary"`` and ``"<l>-<k>-ary"`` with ``l in {2, 4, 16}``.
    """
    if name in _ARITIES:
        return _ARITIES[name]
    parts = name.split("-")
    try:
        if len(parts) == 2 and parts[1] == "ary":
            stride = {2: 1, 4: 2, 16: 4}[int(parts[0])]
            return stride, 1
        if len(parts) == 3 and parts[2] == "ary":
            stride = {2: 1, 4: 2, 16: 4}[int(parts[0])]
            k = int(parts[1])
            if k < int(parts[0]):
                raise KeyError
            return stride, k
    except (KeyError, ValueError):
        pass
    raise ValueError(
        f"unknown access-tree arity {name!r}; expected one of {sorted(_ARITIES)} "
        "or '<l>-ary' / '<l>-<k>-ary' with l in {2,4,16} and k >= l"
    )
