"""The paper's data-management strategies and their building blocks."""

from .access_tree import AccessTreeStrategy
from .decomposition import DecompositionTree, build_tree, parse_arity
from .embedding import Embedding, ModifiedEmbedding, RandomEmbedding, make_embedding
from .fixed_home import FixedHomeStrategy
from .strategy import STRATEGY_NAMES, DataManagementStrategy, NullStrategy, make_strategy

__all__ = [
    "AccessTreeStrategy",
    "FixedHomeStrategy",
    "DataManagementStrategy",
    "NullStrategy",
    "make_strategy",
    "STRATEGY_NAMES",
    "DecompositionTree",
    "build_tree",
    "parse_arity",
    "Embedding",
    "RandomEmbedding",
    "ModifiedEmbedding",
    "make_embedding",
]
