"""The data-management strategies (paper + post-paper) and their building
blocks, behind the strategy registry."""

from .access_tree import AccessTreeStrategy
from .decomposition import DecompositionTree, build_tree, parse_arity
from .dynrep import DynRepStrategy
from .embedding import Embedding, ModifiedEmbedding, RandomEmbedding, make_embedding
from .fixed_home import FixedHomeStrategy
from .migratory import MigratoryStrategy
from .registry import (
    STRATEGIES,
    StrategyFamily,
    get_strategy,
    parse_strategy_spec,
    register_strategy,
    strategy_names,
)
from .strategy import STRATEGY_NAMES, DataManagementStrategy, NullStrategy

__all__ = [
    "AccessTreeStrategy",
    "FixedHomeStrategy",
    "MigratoryStrategy",
    "DynRepStrategy",
    "DataManagementStrategy",
    "NullStrategy",
    "StrategyFamily",
    "STRATEGIES",
    "register_strategy",
    "get_strategy",
    "parse_strategy_spec",
    "strategy_names",
    "STRATEGY_NAMES",
    "DecompositionTree",
    "build_tree",
    "parse_arity",
    "Embedding",
    "RandomEmbedding",
    "ModifiedEmbedding",
    "make_embedding",
]
