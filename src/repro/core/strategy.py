"""Data-management strategy interface and factory.

A strategy decides, for every read and write of a global variable, which
messages flow where (and therefore what congestion arises), and it provides
the lock service for its variables.  The two families from the paper:

* the **access tree strategy** (:mod:`repro.core.access_tree`) in all its
  arity/embedding variants, and
* the **fixed home strategy** (:mod:`repro.core.fixed_home`),

plus the post-paper families (:mod:`repro.core.migratory`,
:mod:`repro.core.dynrep`).  All of them register with the strategy
registry (:mod:`repro.core.registry`), which resolves the parameterized
spec strings (``"4-ary"``, ``"tree:4-8:embed=random"``,
``"dynrep:threshold=3"``) every surface accepts through
:func:`repro.core.registry.get_strategy`; :data:`STRATEGY_NAMES` is a
live view derived from that registry.

Hand-optimized message-passing programs bypass data management entirely and
run under :class:`NullStrategy`.

Strategies are attached to a :class:`repro.runtime.launcher.Runtime` before
the run; reads/writes return *completion times* in virtual seconds, having
recorded their traffic in the simulator (atomic-at-initiation discipline,
see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Tuple

from ..runtime.variables import GlobalVariable
from .registry import _DerivedNames

__all__ = [
    "DataManagementStrategy",
    "NullStrategy",
    "next_live_node",
    "STRATEGY_NAMES",
]


def next_live_node(start: int, n_nodes: int, down: FrozenSet[int]) -> int:
    """First live processor scanning ``start+1, start+2, ... (mod n)``.

    The deterministic re-homing rule every repair hook shares: where a
    dead node held a directory/home/copy, responsibility moves to the
    next live node in processor order.  Raises when every node is down
    (schedules built by :mod:`repro.network.failures` always leave a
    survivor)."""
    for k in range(1, n_nodes + 1):
        cand = (start + k) % n_nodes
        if cand not in down:
            return cand
    raise RuntimeError("no live node remains in the topology")

GrantCallback = Callable[[float], None]


class DataManagementStrategy:
    """Abstract base: the runtime calls these entry points."""

    #: Human-readable name used in result tables.
    name: str = "abstract"

    #: Cache counters, guaranteed on every strategy (reads served from a
    #: local copy vs reads that needed communication); :meth:`attach`
    #: re-zeros them per run, and the launcher reads them directly.
    hits: int = 0
    misses: int = 0

    #: Storage-cost accumulator (schema v7, see :mod:`repro.metrics`):
    #: the time integral of excess replica bytes, advanced by
    #: :meth:`_storage_delta` at every copy add/drop event.  Class-level
    #: zeros keep unattached strategies reporting 0.0.
    _sc_integral: float = 0.0
    _sc_excess: float = 0.0
    _sc_last: float = 0.0

    def attach(self, runtime) -> None:
        """Bind to a runtime (simulator, registry, memory book)."""
        self.runtime = runtime
        self.sim = runtime.sim
        self.registry = runtime.registry
        self.memory = runtime.memory
        self.hits = 0
        self.misses = 0
        self._sc_integral = 0.0
        self._sc_excess = 0.0
        self._sc_last = 0.0

    def register(self, var: GlobalVariable) -> None:
        """A variable was created; place its initial sole copy."""
        raise NotImplementedError

    def read(self, proc: int, var: GlobalVariable, t: float) -> Tuple[float, Any]:
        """Serve a read issued by ``proc`` at time ``t``; returns
        ``(completion_time, value)``."""
        raise NotImplementedError

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> float:
        """Serve a write; returns its completion time."""
        raise NotImplementedError

    def lock(self, proc: int, var: GlobalVariable, t: float, grant: GrantCallback) -> None:
        raise NotImplementedError

    def unlock(self, proc: int, var: GlobalVariable, t: float) -> float:
        raise NotImplementedError

    @property
    def lock_acquisitions(self) -> int:
        return 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------- storage cost
    # Replica-bytes x time accounting (schema v7's ``storage_cost``, see
    # repro.metrics).  Strategies that replicate call _storage_delta at
    # every event that adds or removes a copy *beyond the authoritative
    # one* -- +payload when a copy materializes, -payload when one is
    # dropped/invalidated/evicted -- stamped at the event's initiation
    # time, which both engines agree on.  Single-copy strategies never
    # call it and report exactly 0.0.

    def _storage_delta(self, delta: float, t: float) -> None:
        """Excess replica bytes changed by ``delta`` at virtual time ``t``."""
        if t > self._sc_last:
            self._sc_integral += self._sc_excess * (t - self._sc_last)
            self._sc_last = t
        self._sc_excess += delta

    def storage_cost(self, t_end: float) -> float:
        """The integral up to ``t_end`` (replica-bytes x seconds)."""
        tail = self._sc_excess * (t_end - self._sc_last) if t_end > self._sc_last else 0.0
        return self._sc_integral + tail

    def reset_storage(self, at: float) -> None:
        """Restart the integral at time ``at`` (measurement reset: the
        copies currently held keep accruing from here)."""
        self._sc_integral = 0.0
        self._sc_last = at

    # ---------------------------------------------------------- repair
    # Failure-axis hooks (see repro.network.failures): the runtime calls
    # these right after applying a node_down / node_up topology delta.
    # A strategy repairs its metadata and copies so that subsequent
    # requests resolve to live nodes; it returns the vids it repaired
    # (the launcher counts them in `repairs` and flags the next request
    # touching each as retried).  The base implementation is a no-op:
    # strategies without per-node state (NullStrategy) need none.

    def on_node_down(
        self, proc: int, t: float, down: FrozenSet[int] = frozenset()
    ) -> Iterable[int]:
        """``proc`` fail-stopped at virtual time ``t`` (``down`` is the
        full current down set).  Returns repaired vids."""
        return ()

    def on_node_up(
        self, proc: int, t: float, down: FrozenSet[int] = frozenset()
    ) -> Iterable[int]:
        """``proc`` came back at ``t``.  State lost at death stays
        repaired (fail-stop: a revived node returns empty); returns
        repaired vids."""
        return ()


class NullStrategy(DataManagementStrategy):
    """No shared data management: for pure message-passing programs
    (the paper's hand-optimized baselines)."""

    name = "handopt"

    def register(self, var: GlobalVariable) -> None:
        raise RuntimeError("NullStrategy programs must not create global variables")

    def read(self, proc, var, t):
        raise RuntimeError("NullStrategy programs must not read global variables")

    def write(self, proc, var, value, t):
        raise RuntimeError("NullStrategy programs must not write global variables")

    def lock(self, proc, var, t, grant):
        raise RuntimeError("NullStrategy programs must not lock global variables")

    def unlock(self, proc, var, t):
        raise RuntimeError("NullStrategy programs must not unlock global variables")


#: Strategy names accepted by the spec parser (and therefore by
#: :func:`repro.core.registry.get_strategy`).  A live view **derived from
#: the registry** -- registering a strategy family extends it; there is
#: no frozen tuple to keep in sync.
STRATEGY_NAMES = _DerivedNames()
