"""Data-management strategy interface and factory.

A strategy decides, for every read and write of a global variable, which
messages flow where (and therefore what congestion arises), and it provides
the lock service for its variables.  The two families from the paper:

* the **access tree strategy** (:mod:`repro.core.access_tree`) in all its
  arity/embedding variants, and
* the **fixed home strategy** (:mod:`repro.core.fixed_home`).

Hand-optimized message-passing programs bypass data management entirely and
run under :class:`NullStrategy`.

Strategies are attached to a :class:`repro.runtime.launcher.Runtime` before
the run; reads/writes return *completion times* in virtual seconds, having
recorded their traffic in the simulator (atomic-at-initiation discipline,
see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from ..network.topology import Topology
from ..runtime.variables import GlobalVariable

__all__ = ["DataManagementStrategy", "NullStrategy", "make_strategy", "STRATEGY_NAMES"]

GrantCallback = Callable[[float], None]


class DataManagementStrategy:
    """Abstract base: the runtime calls these entry points."""

    #: Human-readable name used in result tables.
    name: str = "abstract"

    def attach(self, runtime) -> None:
        """Bind to a runtime (simulator, registry, memory book)."""
        self.runtime = runtime
        self.sim = runtime.sim
        self.registry = runtime.registry
        self.memory = runtime.memory
        self.hits = 0
        self.misses = 0

    def register(self, var: GlobalVariable) -> None:
        """A variable was created; place its initial sole copy."""
        raise NotImplementedError

    def read(self, proc: int, var: GlobalVariable, t: float) -> Tuple[float, Any]:
        """Serve a read issued by ``proc`` at time ``t``; returns
        ``(completion_time, value)``."""
        raise NotImplementedError

    def write(self, proc: int, var: GlobalVariable, value: Any, t: float) -> float:
        """Serve a write; returns its completion time."""
        raise NotImplementedError

    def lock(self, proc: int, var: GlobalVariable, t: float, grant: GrantCallback) -> None:
        raise NotImplementedError

    def unlock(self, proc: int, var: GlobalVariable, t: float) -> float:
        raise NotImplementedError

    @property
    def lock_acquisitions(self) -> int:
        return 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


class NullStrategy(DataManagementStrategy):
    """No shared data management: for pure message-passing programs
    (the paper's hand-optimized baselines)."""

    name = "handopt"

    def register(self, var: GlobalVariable) -> None:
        raise RuntimeError("NullStrategy programs must not create global variables")

    def read(self, proc, var, t):
        raise RuntimeError("NullStrategy programs must not read global variables")

    def write(self, proc, var, value, t):
        raise RuntimeError("NullStrategy programs must not write global variables")

    def lock(self, proc, var, t, grant):
        raise RuntimeError("NullStrategy programs must not lock global variables")

    def unlock(self, proc, var, t):
        raise RuntimeError("NullStrategy programs must not unlock global variables")


#: Strategy names accepted by :func:`make_strategy` (the paper's variants).
STRATEGY_NAMES = (
    "2-ary",
    "4-ary",
    "16-ary",
    "2-4-ary",
    "4-8-ary",
    "4-16-ary",
    "fixed-home",
    "handopt",
)


def make_strategy(
    name: str,
    topology: Topology,
    seed: int = 0,
    embedding: str = "modified",
    remap_threshold=None,
):
    """Build a strategy by paper name, on any topology.

    ``name`` is one of the access-tree variants (``"2-ary"``, ``"4-ary"``,
    ``"16-ary"``, ``"2-4-ary"``, ``"4-8-ary"``, ``"4-16-ary"``, or any
    ``"<l>-<k>-ary"``), ``"fixed-home"``, or ``"handopt"``.
    ``embedding`` selects ``"modified"`` (paper default; the
    topology-appropriate variant is chosen automatically) or ``"random"``
    (the theoretical analysis) for access trees; ``remap_threshold``
    enables the theoretical strategy's node remapping (the paper omits it;
    ``None`` = off) after that many stops at the same tree node.
    """
    if name == "fixed-home":
        from .fixed_home import FixedHomeStrategy

        return FixedHomeStrategy(topology, seed=seed)
    if name == "handopt":
        return NullStrategy()
    from .access_tree import AccessTreeStrategy

    return AccessTreeStrategy(
        topology, arity=name, seed=seed, embedding=embedding, remap_threshold=remap_threshold
    )
