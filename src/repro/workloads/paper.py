"""The paper's three applications as registered workloads.

Thin adapters over :mod:`repro.apps`: the applications keep their
programs, baselines and verification; this module only gives them the
uniform :class:`~repro.workloads.base.Workload` surface (name, parameter
dict, strategy-by-name, topology compatibility) that the experiment
cells, the ``--workload`` CLI axis and the trace recorder consume.
``strategy="handopt"`` selects the hand-optimized message-passing
baseline where the paper provides one (matrix square and bitonic sort;
Barnes-Hut has none, exactly as in the paper).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..apps import barneshut, bitonic, matmul
from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.results import RunResult
from .base import Workload, register

__all__ = ["MatmulWorkload", "BitonicWorkload", "BarnesHutWorkload"]


class MatmulWorkload(Workload):
    """Matrix squaring (Section 3.1); ``variant="general"`` selects the
    invalidation-free general multiplication used by the invalidation
    ablation."""

    name = "matmul"
    description = "blocked matrix square (Section 3.1); variant=general for C := A*B"
    kinds = ("mesh", "torus")  # needs true 2-D grid coordinates
    defaults = {"block_entries": 256, "variant": "square"}
    size_param = "block_entries"
    has_handopt = True

    def run(
        self,
        topology: Topology,
        strategy: str = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        params: Optional[Dict[str, Any]] = None,
        **runtime_kwargs: Any,
    ) -> RunResult:
        self.check_topology(topology)
        p = self.resolve_params(params)
        if p["variant"] not in ("square", "general"):
            raise ValueError(f"matmul variant must be square/general, got {p['variant']!r}")
        if strategy == "handopt":
            if p["variant"] != "square":
                raise ValueError("the hand-optimized matmul baseline only squares")
            return matmul.run_handopt(
                topology, p["block_entries"], machine=machine, seed=seed, **runtime_kwargs
            )
        strat = self.make_strategy(strategy, topology, seed=seed, embedding=embedding)
        runner = matmul.run_diva if p["variant"] == "square" else matmul.run_diva_general
        return runner(
            topology, strat, p["block_entries"], machine=machine, seed=seed, **runtime_kwargs
        )


class BitonicWorkload(Workload):
    """Bitonic sorting (Section 3.2); runs on every topology because it
    only depends on the decomposition-tree leaf numbering."""

    name = "bitonic"
    description = "bitonic merge sort over decomposition-tree wires (Section 3.2)"
    kinds = None
    defaults = {"keys": 1024}
    size_param = "keys"
    has_handopt = True

    def run(
        self,
        topology: Topology,
        strategy: str = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        params: Optional[Dict[str, Any]] = None,
        **runtime_kwargs: Any,
    ) -> RunResult:
        self.check_topology(topology)
        p = self.resolve_params(params)
        if strategy == "handopt":
            return bitonic.run_handopt(
                topology, p["keys"], machine=machine, seed=seed, **runtime_kwargs
            )
        strat = self.make_strategy(strategy, topology, seed=seed, embedding=embedding)
        return bitonic.run_diva(
            topology, strat, p["keys"], machine=machine, seed=seed, **runtime_kwargs
        )


class BarnesHutWorkload(Workload):
    """Barnes-Hut N-body (Section 3.3, SPLASH-2 structure)."""

    name = "barneshut"
    description = "Barnes-Hut N-body with costzones partitioning (Section 3.3)"
    kinds = None
    defaults = {"bodies": 256, "steps": 3, "warm": 1}
    size_param = "bodies"
    has_handopt = False

    def run(
        self,
        topology: Topology,
        strategy: str = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        params: Optional[Dict[str, Any]] = None,
        **runtime_kwargs: Any,
    ) -> RunResult:
        self.check_topology(topology)
        p = self.resolve_params(params)
        if strategy == "handopt":
            raise ValueError("Barnes-Hut has no hand-optimized baseline (as in the paper)")
        strat = self.make_strategy(strategy, topology, seed=seed, embedding=embedding)
        return barneshut.run(
            topology,
            strat,
            p["bodies"],
            steps=p["steps"],
            warm=p["warm"],
            machine=machine,
            seed=seed,
            **runtime_kwargs,
        )


register(MatmulWorkload())
register(BitonicWorkload())
register(BarnesHutWorkload())
