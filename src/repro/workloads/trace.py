"""Access-trace record and replay.

Recording hooks into the runtime (``Runtime(recorder=...)``): every
variable creation and every program request (read, write, lock, unlock,
barrier, send, recv, compute, mark) is appended to a per-processor op
list.  The resulting :class:`Trace` is the application's *access stream*
-- everything the data-management strategy ever sees -- with the
application logic stripped out.

Replay re-issues the recorded stream under **any strategy × topology**
(same processor count): a recorded Barnes-Hut run can be re-simulated
against every strategy without re-running tree builds or force
traversals.  Replayed under the *same* configuration, the stream drives
the simulator through the identical sequence of timed operations, so
traffic totals and execution time reproduce exactly (the equivalence
tests pin this).

Mechanics worth knowing:

* **Creates are hoisted.**  Variable creation is local bookkeeping (zero
  messages, zero time), so replay pre-creates all variables -- in
  recorded vid order, by the recorded creator -- before the programs
  start.  Recorded vids therefore map to replay vids *identically*, and
  a stream op can reference a variable that a slower processor only
  creates "later": timing shifts under a different strategy can never
  order a use before its creation.  (Corollary: replay under *bounded*
  memory can evict differently than the live run, which interleaved
  creates with accesses.)
* **Values are not replayed.**  Payload sizes determine all traffic;
  replayed writes store tokens.  Anything value-dependent already
  happened when the trace was recorded.
* The machine model is not serialized; pass the same ``machine`` to
  :func:`replay` that the recording ran under (default GCEL) when
  comparing times.

On disk a trace is one JSON document (gzip-compressed when the path ends
in ``.gz``): a header (format version, workload, params, topology spec,
strategy, seed, barrier kind, compute charging) plus one op array per
processor, each op a compact tagged list (``["r", vid]``,
``["s", dst, payload, tag]``, ...).
"""

from __future__ import annotations

import gzip
import json
import math
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.registry import get_strategy
from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.api import (
    BarrierReq,
    ComputeReq,
    LockReq,
    MarkReq,
    ReadReq,
    RecvReq,
    SendReq,
    UnlockReq,
    WriteReq,
)
from ..runtime.launcher import Runtime
from ..runtime.results import RunResult
from .base import Workload, get_workload

__all__ = [
    "Trace",
    "TraceRecorder",
    "record",
    "replay",
    "retarget_topology",
    "topology_spec",
    "topology_from_spec",
    "TRACE_FORMAT_VERSION",
]

TRACE_FORMAT_VERSION = 1

#: Tag values a recorded send/recv may carry (JSON round-trip must
#: preserve identity and hashability).
_TAG_TYPES = (str, int, float, bool, type(None))


def topology_spec(topology: Topology) -> Dict[str, Any]:
    """JSON description from which :func:`topology_from_spec` rebuilds
    the topology."""
    if topology.kind in ("mesh", "torus"):
        return {"kind": topology.kind, "rows": topology.rows, "cols": topology.cols}
    if topology.kind == "hypercube":
        return {"kind": "hypercube", "dim": topology.n_nodes.bit_length() - 1}
    raise ValueError(f"cannot serialize topology kind {topology.kind!r}")


def retarget_topology(spec: Dict[str, Any], kind: str) -> Topology:
    """A ``kind`` topology with the same processor count as the recorded
    spec -- and the same grid shape where both are grids (a 2x8 torus
    trace retargets to the 2x8 mesh, not a re-squared 4x4)."""
    if kind == spec["kind"]:
        return topology_from_spec(spec)
    if spec["kind"] in ("mesh", "torus"):
        n = spec["rows"] * spec["cols"]
    else:
        n = 1 << spec["dim"]
    if kind in ("mesh", "torus"):
        if spec["kind"] in ("mesh", "torus"):
            rows, cols = spec["rows"], spec["cols"]
        else:
            rows = cols = math.isqrt(n)
            if rows * cols != n:
                raise ValueError(
                    f"cannot shape {n} processors into a square grid for "
                    f"topology {kind!r}"
                )
        return topology_from_spec({"kind": kind, "rows": rows, "cols": cols})
    if kind == "hypercube":
        dim = n.bit_length() - 1
        if 1 << dim != n:
            raise ValueError(
                f"hypercube needs a power-of-two processor count, got {n}"
            )
        return topology_from_spec({"kind": "hypercube", "dim": dim})
    raise ValueError(f"unknown topology kind {kind!r}")


def topology_from_spec(spec: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_spec` output."""
    kind = spec["kind"]
    if kind == "mesh":
        from ..network.mesh import Mesh2D

        return Mesh2D(spec["rows"], spec["cols"])
    if kind == "torus":
        from ..network.torus import Torus2D

        return Torus2D(spec["rows"], spec["cols"])
    if kind == "hypercube":
        from ..network.topology import Hypercube

        return Hypercube(spec["dim"])
    raise ValueError(f"unknown topology kind {kind!r}")


@dataclass
class Trace:
    """A recorded access stream: header + one op list per processor."""

    header: Dict[str, Any]
    ops: List[List[list]]

    @property
    def n_procs(self) -> int:
        return len(self.ops)

    def creates(self) -> List[Tuple[int, int, int]]:
        """All variable creations as ``(vid, creator, payload_bytes)``,
        in vid order (the original global creation order)."""
        out: List[Tuple[int, int, int]] = []
        for proc, stream in enumerate(self.ops):
            for op in stream:
                if op[0] == "c":
                    out.append((op[1], proc, op[2]))
        out.sort()
        for i, (vid, _, _) in enumerate(out):
            if vid != i:
                raise ValueError(f"trace creates are not dense: expected vid {i}, got {vid}")
        return out

    def counts(self) -> Dict[str, int]:
        """Op-tag histogram (diagnostics / tests)."""
        out: Dict[str, int] = {}
        for stream in self.ops:
            for op in stream:
                out[op[0]] = out.get(op[0], 0) + 1
        return out

    # -------------------------------------------------------------- on disk
    def save(self, path: Union[str, os.PathLike]) -> pathlib.Path:
        """Write the trace as JSON (gzipped when ``path`` ends in .gz)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"header": self.header, "ops": self.ops}
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        if path.suffix == ".gz":
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                fh.write(blob)
        else:
            path.write_text(blob)
        return path

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Trace":
        path = pathlib.Path(path)
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                payload = json.load(fh)
        else:
            payload = json.loads(path.read_text())
        header = payload["header"]
        if header.get("format") != "repro-trace":
            raise ValueError(f"{path}: not a repro trace file")
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace format version {header.get('version')!r}, "
                f"expected {TRACE_FORMAT_VERSION}"
            )
        return cls(header=header, ops=payload["ops"])


class TraceRecorder:
    """Runtime hook that accumulates the access stream of one run.

    Pass as ``Runtime(..., recorder=TraceRecorder())`` (every workload
    and app runner forwards it through ``**runtime_kwargs``), then call
    :meth:`to_trace` after the run.
    """

    def __init__(self) -> None:
        self.ops: Optional[List[List[list]]] = None
        self._runtime: Optional[Runtime] = None

    # ------------------------------------------------------- runtime hooks
    def attach(self, runtime: Runtime) -> None:
        if self._runtime is not None:
            raise RuntimeError("a TraceRecorder records exactly one run")
        self._runtime = runtime
        self.ops = [[] for _ in range(runtime.sim.topology.n_nodes)]

    def record_create(self, proc: int, var) -> None:
        self.ops[proc].append(["c", var.vid, var.payload_bytes])

    def record_gap(self, proc: int, seconds: float) -> None:
        """Append a pure think-time op (``["k", 0.0, seconds]``) that had no
        live request behind it.  The serving layer uses this for the idle
        gap a parked processor spent waiting for its next request: the
        wake-up kick already positioned simulated time at the arrival, so
        nothing was yielded live, but replay needs the gap op to reproduce
        the exact issue time."""
        self.ops[proc].append(["k", 0.0, seconds])

    def record_request(self, proc: int, req) -> None:
        cls = req.__class__
        stream = self.ops[proc]
        if cls is ReadReq:
            stream.append(["r", req.var.vid])
        elif cls is WriteReq:
            stream.append(["w", req.var.vid])
        elif cls is ComputeReq:
            stream.append(["k", req.ops, req.seconds])
        elif cls is BarrierReq:
            stream.append(["b", req.phase, bool(req.reset)])
        elif cls is LockReq:
            stream.append(["l", req.var.vid])
        elif cls is UnlockReq:
            stream.append(["u", req.var.vid])
        elif cls is SendReq:
            if not isinstance(req.tag, _TAG_TYPES):
                raise TypeError(
                    f"trace recording needs JSON-scalar message tags, got {req.tag!r}"
                )
            stream.append(["s", req.dst, req.payload_bytes, req.tag])
        elif cls is RecvReq:
            if not isinstance(req.tag, _TAG_TYPES):
                raise TypeError(
                    f"trace recording needs JSON-scalar message tags, got {req.tag!r}"
                )
            stream.append(["v", req.tag])
        elif cls is MarkReq:
            stream.append(["m", req.kind])
        else:  # pragma: no cover - new request kinds must be added here
            raise TypeError(f"trace recorder cannot encode request {req!r}")

    # ------------------------------------------------------------- product
    def to_trace(
        self,
        workload: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        embedding: str = "modified",
    ) -> Trace:
        if self._runtime is None:
            raise RuntimeError("recorder was never attached to a Runtime")
        rt = self._runtime
        header = {
            "format": "repro-trace",
            "version": TRACE_FORMAT_VERSION,
            "workload": workload,
            "params": dict(params or {}),
            "topology": topology_spec(rt.sim.topology),
            "n_procs": rt.sim.topology.n_nodes,
            "strategy": rt.strategy.name,
            "embedding": embedding,
            "seed": rt.seed,
            "barrier": getattr(rt.barrier, "kind", "tree"),
            "charge_compute": rt.charge_compute,
            # Failure axis (canonical spec; "none" when absent).  Added
            # within format version 1: readers default via header.get,
            # so pre-failure traces stay loadable.
            "failures": getattr(rt, "failure_spec", "none"),
        }
        return Trace(header=header, ops=self.ops)


def record(
    workload: Union[str, Workload],
    topology: Topology,
    strategy: str = "4-ary",
    *,
    machine: MachineModel = GCEL,
    seed: int = 0,
    embedding: str = "modified",
    params: Optional[Dict[str, Any]] = None,
    path: Optional[Union[str, os.PathLike]] = None,
    **runtime_kwargs: Any,
) -> Tuple[RunResult, Trace]:
    """Run ``workload`` with recording on; returns ``(result, trace)``
    and saves the trace to ``path`` when given."""
    wl = get_workload(workload) if isinstance(workload, str) else workload
    recorder = TraceRecorder()
    result = wl.run(
        topology,
        strategy,
        machine=machine,
        seed=seed,
        embedding=embedding,
        params=params,
        recorder=recorder,
        **runtime_kwargs,
    )
    trace = recorder.to_trace(
        workload=wl.name, params=wl.resolve_params(params), embedding=embedding
    )
    if path is not None:
        trace.save(path)
    return result, trace


def replay(
    trace: Union[Trace, str, os.PathLike],
    topology: Optional[Topology] = None,
    strategy: Optional[str] = None,
    *,
    machine: MachineModel = GCEL,
    seed: Optional[int] = None,
    embedding: Optional[str] = None,
    barrier: Optional[str] = None,
    charge_compute: Optional[bool] = None,
    failures: Optional[str] = None,
    **runtime_kwargs: Any,
) -> RunResult:
    """Re-simulate a recorded access stream.

    Every axis defaults to the recorded configuration -- including the
    failure schedule, so a trace recorded under failures replays under
    the identical schedule; override ``topology`` (same processor
    count), ``strategy`` and/or ``failures`` (``"none"`` disables the
    recorded schedule) to re-evaluate the identical stream elsewhere.
    """
    if not isinstance(trace, Trace):
        trace = Trace.load(trace)
    header = trace.header
    if topology is None:
        topology = topology_from_spec(header["topology"])
    if topology.n_nodes != trace.n_procs:
        raise ValueError(
            f"trace was recorded on {trace.n_procs} processors; "
            f"replay topology has {topology.n_nodes}"
        )
    strategy = strategy if strategy is not None else header["strategy"]
    seed = seed if seed is not None else header.get("seed", 0)
    embedding = embedding if embedding is not None else header.get("embedding", "modified")
    barrier = barrier if barrier is not None else header.get("barrier", "tree")
    if charge_compute is None:
        charge_compute = header.get("charge_compute", True)
    if failures is None:
        failures = header.get("failures", "none")

    strat = get_strategy(strategy, topology, seed=seed, embedding=embedding)
    rt = Runtime(
        topology,
        strat,
        machine,
        charge_compute=charge_compute,
        barrier=barrier,
        seed=seed,
        failures=failures,
        **runtime_kwargs,
    )
    # Hoist creates (see module docstring): recorded vid order, recorded
    # creator, so vids map identically and no use precedes its creation.
    for vid, creator, payload in trace.creates():
        var = rt.create_var(f"t{vid}", payload, creator, value=0)
        assert var.vid == vid

    ops = trace.ops

    def program(env):
        registry = env._rt.registry
        by_id = registry.by_id
        for op in ops[env.rank]:
            tag = op[0]
            if tag == "r":
                yield ReadReq(by_id(op[1]))
            elif tag == "w":
                yield WriteReq(by_id(op[1]), 0)
            elif tag == "k":
                yield ComputeReq(ops=op[1], seconds=op[2])
            elif tag == "b":
                yield BarrierReq(op[1], op[2])
            elif tag == "l":
                yield LockReq(by_id(op[1]))
            elif tag == "u":
                yield UnlockReq(by_id(op[1]))
            elif tag == "s":
                yield SendReq(op[1], op[2], op[3], 0)
            elif tag == "v":
                yield RecvReq(op[1])
            elif tag == "m":
                yield MarkReq(op[1])
            elif tag == "c":
                pass  # hoisted
            else:
                raise ValueError(f"unknown trace op tag {tag!r}")

    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "trace-replay"
    result.extra["workload"] = header.get("workload")
    result.extra["recorded_strategy"] = header["strategy"]
    result.extra["recorded_topology"] = dict(header["topology"])
    return result
