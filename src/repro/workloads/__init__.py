"""Workload layer: pluggable access-pattern generators + trace replay.

* :mod:`repro.workloads.base` -- the :class:`Workload` abstraction and
  the name registry behind the CLI's ``--workload`` axis.
* :mod:`repro.workloads.paper` -- the paper's three applications
  (``matmul``, ``bitonic``, ``barneshut``) as registered workloads.
* :mod:`repro.workloads.synthetic` -- parameterized synthetic kernels
  (``zipf``, ``uniform``, ``prodcons``, ``lock-contention``) sweeping the
  access-pattern axes the paper's programs pin.
* :mod:`repro.workloads.trace` -- record any run's access stream and
  replay it under any strategy × topology.

See EXPERIMENTS.md ("Workloads") for the user-facing tour.
"""

from . import paper, synthetic  # noqa: F401  (import-time registration)
from .base import WORKLOADS, Workload, get_workload, register, workload_names
from .trace import Trace, TraceRecorder, record, replay

__all__ = [
    "Workload",
    "WORKLOADS",
    "register",
    "get_workload",
    "workload_names",
    "Trace",
    "TraceRecorder",
    "record",
    "replay",
]
