"""The workload abstraction: what runs *on* a strategy × topology.

The paper evaluates its data-management strategies through exactly three
hand-written applications; this module turns "application" into a
first-class axis next to strategy and topology.  A :class:`Workload` is a
named, parameterized generator of one simulated execution: given a
topology, a strategy name and a parameter dict, it produces the SPMD
program(s), drives them through the runtime, and returns the
:class:`~repro.runtime.results.RunResult` every experiment cell consumes.

Workloads register by name (:func:`register`); the experiment layer, the
CLI's ``--workload`` axis and the trace recorder all resolve them through
:func:`get_workload`, so adding a workload is one subclass plus one
``register`` call -- no edits to the cells, the registry, or the CLI.

Three families ship in this package:

* the paper's applications (:mod:`repro.workloads.paper`) -- thin adapters
  over :mod:`repro.apps`;
* parameterized synthetic kernels (:mod:`repro.workloads.synthetic`) --
  the access-pattern axes (read/write ratio, skew, locality, lock
  contention) the paper's three programs cannot sweep;
* recorded traces (:mod:`repro.workloads.trace`) -- replay a recorded
  access stream under any strategy × topology.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.registry import get_strategy
from ..core.strategy import DataManagementStrategy
from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.results import RunResult

__all__ = ["Workload", "register", "get_workload", "workload_names", "WORKLOADS"]


class Workload:
    """One named application / access-pattern generator.

    Subclasses set :attr:`name`, :attr:`defaults` and implement
    :meth:`run`.  The contract mirrors the experiment cells': ``run`` is a
    pure function of ``(topology, strategy, machine, seed, params)`` --
    same arguments, same :class:`RunResult` numbers -- so cells built on
    workloads stay cacheable and pool-shardable.
    """

    #: Registry name (also the CLI ``--workload`` value).
    name: str = "abstract"

    #: One-line description for listings.
    description: str = ""

    #: Topology kinds the workload can run on (``None`` = any).  The
    #: paper's matmul needs true 2-D grid coordinates, for example.
    kinds: Optional[Tuple[str, ...]] = None

    #: Parameter defaults; ``run`` rejects unknown parameter names.
    defaults: Dict[str, Any] = {}

    #: The parameter that scales the per-processor load (the generic
    #: ``size`` knob of the ablation cells): ``block_entries`` for matmul,
    #: ``keys`` for bitonic, ``ops`` for the synthetic kernels, ...
    size_param: Optional[str] = None

    #: Whether the workload supports the hand-optimized message-passing
    #: baseline (``strategy="handopt"``).
    has_handopt: bool = False

    def check_topology(self, topology: Topology) -> None:
        """Raise ``ValueError`` if the workload cannot run on ``topology``."""
        if self.kinds is not None and topology.kind not in self.kinds:
            raise ValueError(
                f"workload {self.name!r} needs a topology in "
                f"{'/'.join(self.kinds)}, got {topology.kind!r}"
            )

    def resolve_params(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge ``params`` over :attr:`defaults`, rejecting unknown keys."""
        merged = dict(self.defaults)
        for key, value in (params or {}).items():
            if key not in merged:
                raise ValueError(
                    f"workload {self.name!r} has no parameter {key!r}; "
                    f"valid: {', '.join(sorted(merged)) or '(none)'}"
                )
            merged[key] = value
        return merged

    def make_strategy(
        self,
        name: str,
        topology: Topology,
        seed: int = 0,
        embedding: str = "modified",
        remap_threshold: Optional[int] = None,
    ) -> DataManagementStrategy:
        """Build the strategy a run uses (overridable hook).  ``name`` is
        any registry spec (:func:`repro.core.registry.get_strategy`)."""
        return get_strategy(
            name, topology, seed=seed, embedding=embedding, remap_threshold=remap_threshold
        )

    def run(
        self,
        topology: Topology,
        strategy: str = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        params: Optional[Dict[str, Any]] = None,
        **runtime_kwargs: Any,
    ) -> RunResult:
        """Run the workload under ``strategy`` on ``topology``.

        ``strategy`` is a strategy-registry spec
        (:func:`repro.core.registry.get_strategy` -- any registered name
        or parameterized spec like ``"dynrep:threshold=3"``;
        ``"handopt"`` selects the hand-optimized baseline where one
        exists); ``params`` overrides :attr:`defaults`;
        ``runtime_kwargs`` pass through to the
        :class:`~repro.runtime.launcher.Runtime` (``barrier=``,
        ``capacity_bytes=``, ``recorder=``, ...).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name}>"


#: The global name -> workload registry.
WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Register ``workload`` under its name (idempotent for equal names
    of the same class; re-registering a different class is a bug)."""
    existing = WORKLOADS.get(workload.name)
    if existing is not None and type(existing) is not type(workload):
        raise ValueError(
            f"workload name {workload.name!r} already registered by "
            f"{type(existing).__name__}"
        )
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Workload registered under ``name``; raises ``KeyError`` listing
    the valid names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; valid: {', '.join(workload_names())}"
        ) from None


def workload_names() -> List[str]:
    """Registered workload names, sorted (the CLI axis choices)."""
    return sorted(WORKLOADS)
