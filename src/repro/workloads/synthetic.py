"""Parameterized synthetic access-pattern kernels.

Workload-characterization studies of replication strategies identify
read/write ratio and access skew as the axes that flip strategy rankings;
the paper's three applications pin both.  These kernels expose the axes
directly:

* :class:`ZipfWorkload` (``"zipf"``) -- every processor issues ``ops``
  accesses over ``n_vars`` shared variables; the target variable is drawn
  from a Zipf distribution with exponent ``alpha`` (0 = uniform, larger =
  hotter hotspot) and each access is a read with probability
  ``read_frac``.  The one-knob hotspot/read-mix sweep.
* :class:`UniformSweepWorkload` (``"uniform"``) -- every processor reads
  the whole shared array each round (staggered start so the sweep fronts
  don't stampede one variable), then owners write their slice back,
  invalidating all copies.  The broadcast-then-invalidate extreme.
* :class:`ProducerConsumerWorkload` (``"prodcons"``) -- a ring pipeline:
  per round every processor writes its stage variable, then reads its
  predecessor's.  Single-reader/single-writer locality, the access-tree
  strategy's best case.
* :class:`LockContentionWorkload` (``"lock-contention"``) -- processors
  repeatedly lock/increment/unlock counters chosen Zipf-style from a
  small set; stresses the lock service rather than the copy protocol.

Determinism: all randomness derives from ``numpy`` generators seeded by
``(seed, kernel-tag, rank)``, so the access stream -- and therefore every
simulated quantity -- is a pure function of the parameters.  Each kernel
asserts its own invariant after the run (e.g. the lock kernel checks the
counters sum to the op count) so a broken generator fails loudly instead
of producing plausible traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.launcher import Runtime
from ..runtime.results import RunResult
from .base import Workload, register

__all__ = [
    "SyntheticWorkload",
    "ZipfWorkload",
    "HotspotDriftWorkload",
    "UniformSweepWorkload",
    "ProducerConsumerWorkload",
    "LockContentionWorkload",
    "zipf_weights",
]


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Zipf probability vector over ``n`` items: ``p_i ∝ (i+1)^-alpha``
    (``alpha=0`` is uniform)."""
    if n < 1:
        raise ValueError("need at least one item")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    w = np.arange(1, n + 1, dtype=float) ** -alpha
    return w / w.sum()


class SyntheticWorkload(Workload):
    """Shared runner for the synthetic kernels: build strategy + runtime,
    run the kernel's program factory, tag the result."""

    has_handopt = False

    def make_program(
        self, topology: Topology, machine: MachineModel, seed: int, params: Dict[str, Any]
    ) -> Callable:
        """Return ``(program_factory, check)``; ``check(runtime)`` runs
        the kernel's post-run invariant (may be ``None``)."""
        raise NotImplementedError

    def run(
        self,
        topology: Topology,
        strategy: str = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        params: Optional[Dict[str, Any]] = None,
        **runtime_kwargs: Any,
    ) -> RunResult:
        self.check_topology(topology)
        p = self.resolve_params(params)
        if strategy == "handopt":
            raise ValueError(f"synthetic workload {self.name!r} has no hand-optimized baseline")
        strat = self.make_strategy(strategy, topology, seed=seed, embedding=embedding)
        program, check = self.make_program(topology, machine, seed, p)
        rt = Runtime(topology, strat, machine, seed=seed, **runtime_kwargs)
        result = rt.run(program)
        if check is not None:
            check(rt)
        result.extra["runtime"] = rt
        result.extra["app"] = self.name
        result.extra["workload"] = self.name
        result.extra["params"] = dict(p)
        return result


#: Bounded memo of per-rank zipf access streams.  The streams are pure
#: functions of their key, so reusing them changes nothing observable;
#: recomputing them (one PCG init + choice() alias setup per rank) was
#: ~15% of the engine benchmark's pinned cell, and cross-strategy /
#: cross-topology sweeps at equal P re-derive identical streams anyway.
_ZIPF_STREAMS: Dict[tuple, tuple] = {}
_ZIPF_STREAMS_MAX_ENTRIES = 1 << 16  # one entry per (config, rank)


def _zipf_stream(seed: int, rank: int, n_vars: int, ops: int, alpha: float,
                 read_frac: float) -> tuple:
    """``(target_var_index, is_read)`` lists of one rank's access stream."""
    key = (seed, rank, n_vars, ops, alpha, read_frac)
    hit = _ZIPF_STREAMS.get(key)
    if hit is None:
        if len(_ZIPF_STREAMS) >= _ZIPF_STREAMS_MAX_ENTRIES:
            _ZIPF_STREAMS.clear()
        rng = np.random.default_rng((seed, 17, rank))
        targets = rng.choice(n_vars, size=ops, p=zipf_weights(n_vars, alpha))
        coins = rng.random(ops)
        hit = _ZIPF_STREAMS[key] = (targets.tolist(), (coins < read_frac).tolist())
    return hit


class ZipfWorkload(SyntheticWorkload):
    name = "zipf"
    description = "Zipf-hotspot read/write mix (alpha = skew, read_frac = read share)"
    defaults = {
        "n_vars": 64,
        "ops": 64,
        "alpha": 1.0,
        "read_frac": 0.9,
        "payload": 256,
        "think_ops": 0.0,
    }
    size_param = "ops"

    def make_program(self, topology, machine, seed, params):
        n_vars = int(params["n_vars"])
        ops = int(params["ops"])
        alpha = float(params["alpha"])
        read_frac = float(params["read_frac"])
        payload = int(params["payload"])
        think_ops = float(params["think_ops"])
        if not (0.0 <= read_frac <= 1.0):
            raise ValueError(f"read_frac must be in [0, 1], got {read_frac}")
        zipf_weights(n_vars, alpha)  # validate parameters eagerly
        # One global rank->variable permutation so the hotspot's home
        # processor varies with the seed instead of always being p0.
        perm = np.random.default_rng((seed, 23)).permutation(n_vars).tolist()
        handles: Dict[int, object] = {}

        def program(env):
            # The access loop yields raw request objects instead of going
            # through env.read/env.write: identical request stream, minus
            # one generator delegation per access (this kernel is the
            # engine throughput benchmark's pinned workload).
            from ..runtime.api import ReadReq, WriteReq

            nprocs = env.nprocs
            rank = env.rank
            for i in range(rank, n_vars, nprocs):
                handles[i] = env.create(f"z{i}", payload, value=0)
            yield from env.barrier(phase="access")
            targets, is_read = _zipf_stream(seed, rank, n_vars, ops, alpha, read_frac)
            for k in range(ops):
                var = handles[perm[targets[k]]]
                if is_read[k]:
                    yield ReadReq(var)
                else:
                    yield WriteReq(var, (rank, k))
                if think_ops > 0.0:
                    yield from env.compute(ops=think_ops)
            yield from env.barrier(phase="done")

        return program, None


class HotspotDriftWorkload(SyntheticWorkload):
    """The zipf kernel with a rotating head: the run is cut into
    ``drift + 1`` equal segments (boundaries at ``floor(ops * j / (drift
    + 1))``, exact in both engines) and in segment ``j`` every draw is
    shifted by ``j * shift`` variables (mod ``n_vars``), so the hot set
    moves mid-run while the per-rank draw streams -- shared with
    :class:`ZipfWorkload` through the ``_zipf_stream`` memo -- stay
    byte-identical for a given seed.  ``shift=0`` auto-spaces the
    segments across the variable range (``max(1, n_vars // (drift +
    1))``).  ``drift=0`` is exactly the zipf kernel."""

    name = "hotspot-drift"
    description = "Zipf mix whose hotspot head rotates mid-run (drift = rotations)"
    defaults = {
        "n_vars": 64,
        "ops": 64,
        "alpha": 1.0,
        "read_frac": 0.9,
        "payload": 256,
        "drift": 2,
        "shift": 0,
    }
    size_param = "ops"

    def make_program(self, topology, machine, seed, params):
        n_vars = int(params["n_vars"])
        ops = int(params["ops"])
        alpha = float(params["alpha"])
        read_frac = float(params["read_frac"])
        payload = int(params["payload"])
        drift = int(params["drift"])
        shift = int(params["shift"])
        if not (0.0 <= read_frac <= 1.0):
            raise ValueError(f"read_frac must be in [0, 1], got {read_frac}")
        if drift < 0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if shift < 0:
            raise ValueError(f"shift must be >= 0, got {shift}")
        zipf_weights(n_vars, alpha)  # validate parameters eagerly
        segments = drift + 1
        if shift == 0:
            shift = max(1, n_vars // segments)
        #: op index at which segment j (j >= 1) begins.
        starts = [ops * j // segments for j in range(1, segments)]
        perm = np.random.default_rng((seed, 23)).permutation(n_vars).tolist()
        handles: Dict[int, object] = {}

        def program(env):
            from ..runtime.api import ReadReq, WriteReq

            nprocs = env.nprocs
            rank = env.rank
            for i in range(rank, n_vars, nprocs):
                handles[i] = env.create(f"z{i}", payload, value=0)
            yield from env.barrier(phase="access")
            targets, is_read = _zipf_stream(seed, rank, n_vars, ops, alpha, read_frac)
            seg = 0
            offset = 0
            for k in range(ops):
                while seg < drift and k >= starts[seg]:
                    seg += 1
                    offset = (seg * shift) % n_vars
                var = handles[perm[(targets[k] + offset) % n_vars]]
                if is_read[k]:
                    yield ReadReq(var)
                else:
                    yield WriteReq(var, (rank, k))
            yield from env.barrier(phase="done")

        return program, None


class UniformSweepWorkload(SyntheticWorkload):
    name = "uniform"
    description = "uniform shared-array sweep: all-read rounds + owner write-back"
    defaults = {"n_vars": 64, "rounds": 2, "payload": 256, "write_back": True}
    size_param = "rounds"

    def make_program(self, topology, machine, seed, params):
        n_vars = int(params["n_vars"])
        rounds = int(params["rounds"])
        payload = int(params["payload"])
        write_back = bool(params["write_back"])
        handles: Dict[int, object] = {}

        def program(env):
            nprocs = env.nprocs
            mine = range(env.rank, n_vars, nprocs)
            for i in mine:
                handles[i] = env.create(f"u{i}", payload, value=0)
            yield from env.barrier(phase="sweep")
            for r in range(rounds):
                for k in range(n_vars):
                    yield from env.read(handles[(env.rank + k) % n_vars])
                yield from env.barrier()
                if write_back:
                    for i in mine:
                        yield from env.write(handles[i], r + 1)
                yield from env.barrier()
            yield from env.barrier(phase="done")

        return program, None


class ProducerConsumerWorkload(SyntheticWorkload):
    name = "prodcons"
    description = "ring pipeline: each stage writes its variable, reads its predecessor's"
    defaults = {"rounds": 8, "payload": 1024}
    size_param = "rounds"

    def make_program(self, topology, machine, seed, params):
        rounds = int(params["rounds"])
        payload = int(params["payload"])
        handles: Dict[int, object] = {}

        def program(env):
            handles[env.rank] = env.create(f"stage{env.rank}", payload, value=None)
            yield from env.barrier(phase="pipeline")
            pred = (env.rank - 1) % env.nprocs
            for r in range(rounds):
                yield from env.write(handles[env.rank], (env.rank, r))
                yield from env.barrier()
                got = yield from env.read(handles[pred])
                assert got == (pred, r)
                yield from env.barrier()
            yield from env.barrier(phase="done")

        return program, None


class LockContentionWorkload(SyntheticWorkload):
    name = "lock-contention"
    description = "lock/increment/unlock over a few Zipf-chosen shared counters"
    defaults = {"n_locks": 4, "ops": 16, "alpha": 1.0, "payload": 64}
    size_param = "ops"

    def make_program(self, topology, machine, seed, params):
        n_locks = int(params["n_locks"])
        ops = int(params["ops"])
        alpha = float(params["alpha"])
        payload = int(params["payload"])
        probs = zipf_weights(n_locks, alpha)
        handles: Dict[int, object] = {}

        def program(env):
            nprocs = env.nprocs
            for i in range(env.rank, n_locks, nprocs):
                handles[i] = env.create(f"ctr{i}", payload, value=0)
            yield from env.barrier(phase="contend")
            rng = np.random.default_rng((seed, 29, env.rank))
            targets = rng.choice(n_locks, size=ops, p=probs)
            for k in targets:
                var = handles[int(k)]
                yield from env.lock(var)
                v = yield from env.read(var)
                yield from env.write(var, v + 1)
                yield from env.unlock(var)
            yield from env.barrier(phase="done")

        def check(rt):
            total = sum(rt.registry.get(handles[i]) for i in range(n_locks))
            expect = ops * rt.sim.topology.n_nodes
            if total != expect:
                raise AssertionError(
                    f"lock-contention counters sum to {total}, expected {expect} "
                    "(an increment was lost: mutual exclusion is broken)"
                )

        return program, check


register(ZipfWorkload())
register(HotspotDriftWorkload())
register(UniformSweepWorkload())
register(ProducerConsumerWorkload())
register(LockContentionWorkload())
