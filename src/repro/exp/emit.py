"""JSON emitter: machine-readable experiment results for CI and tooling.

The text tables of :func:`repro.analysis.tables.format_table` stay the
human-facing output; this module produces the parallel JSON form that the
CI pipeline diffs and archives.  One file per (experiment, scale) under
``benchmarks/results/`` -- e.g. ``fig3.default.json`` -- with a
schema-versioned payload::

    {
      "schema_version": 5,
      "experiment": "fig3",
      "scale": "default",
      "workload": "matmul",     # --workload axis value (registry name)
      "topology": "mesh",       # --topology axis value, or the union an
                                # internal sweep covered ("mesh+torus")
      "params": {...},          # the resolved scale parameters
      "columns": [...],         # display column order
      "rows": [{...}, ...]      # every row field that is JSON-serializable
    }

Schema history: version 2 added the top-level ``topology`` field (the
cross-topology experiments additionally carry a per-row ``topology``);
version 3 added the top-level ``workload`` field (the ``--app`` axis
generalized to the workload registry; ``app`` was kept as an alias for
one cycle); version 4 removed the ``app`` alias on schedule -- readers
must use ``workload``; version 5 (the strategy registry) added the
cache-behavior row fields ``hits`` / ``misses`` / ``hit_rate`` /
``evictions`` to every cell row, and the ``xstrat`` / ``xcap`` rows
additionally carry ``strategy_family`` / ``strategy_params`` (the
resolved spec parameters) and -- for ``xcap`` -- ``capacity_bytes``;
version 6 (the failure axis) added the ``xfail`` rows' ``failures`` /
``failure_model`` fields and the availability columns
``requests_failed`` / ``requests_stalled`` / ``requests_retried`` /
``repairs`` / ``failure_events`` (zero-failure experiments are
otherwise row-identical to v5); version 7 (the metric suite,
:mod:`repro.metrics`) added the per-row metric columns
``latency_p50`` / ``latency_p95`` / ``latency_p99`` (simulated
issue->completion latency percentiles), ``storage_cost`` (time
integral of excess replica bytes) and ``effective_network_usage``
(bytes moved per access) to every cell row, emitted through one
shared ``MetricsBundle.to_row()``, plus the ``xadapt`` rows' ``drift``
field (v5/v6 simulated quantities are byte-identical, the new columns
ride along).

Sanitization policy: non-serializable row fields (e.g. the ``result``
:class:`~repro.runtime.results.RunResult` objects some legacy runners
attach) are stripped **here**, at the emit layer -- formatting and
emission must never mutate the rows the experiment produced.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "default_results_dir",
    "field_union",
    "json_path",
    "result_payload",
    "sanitize_rows",
    "sanitize_value",
    "topology_union",
    "write_json",
]

Row = Dict[str, object]

#: Version of the result-file schema consumed by CI.
SCHEMA_VERSION = 7

_DROP = object()  # sentinel: value is not JSON-serializable


def default_results_dir() -> pathlib.Path:
    """Where result files live.

    ``$REPRO_RESULTS_DIR`` if set; else ``benchmarks/results`` anchored at
    the repository root when running from a checkout, falling back to the
    current working directory for installed copies.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return pathlib.Path(env)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results"
    return pathlib.Path("benchmarks") / "results"


def json_path(name: str, scale: str, results_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Canonical result-file path: ``<results>/<name>.<scale>.json``."""
    root = pathlib.Path(results_dir) if results_dir is not None else default_results_dir()
    return root / f"{name}.{scale}.json"


def sanitize_value(value: Any) -> Any:
    """JSON-serializable form of ``value``, or the drop sentinel."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        out = [sanitize_value(v) for v in value]
        return _DROP if any(v is _DROP for v in out) else out
    if isinstance(value, Mapping):
        out = {str(k): sanitize_value(v) for k, v in value.items()}
        return _DROP if any(v is _DROP for v in out.values()) else out
    return _DROP


def sanitize_rows(rows: Sequence[Mapping[str, object]]) -> List[Row]:
    """Copy ``rows`` with every non-serializable field stripped.

    Never mutates the input: the simulation rows (which may carry live
    ``RunResult`` objects for phase-view derivation) stay intact.
    """
    out: List[Row] = []
    for row in rows:
        clean: Row = {}
        for k, v in row.items():
            sv = sanitize_value(v)
            if sv is not _DROP:
                clean[str(k)] = sv
        out.append(clean)
    return out


def field_union(
    rows: Sequence[Mapping[str, object]], key: str, default: Optional[str]
) -> Optional[str]:
    """The distinct per-row string values of ``key`` joined with ``+`` in
    first-seen order (internal sweeps span several), or ``default`` when
    no row carries one.  Used for the payload-level ``topology`` and
    ``workload`` labels."""
    values: List[str] = []
    for row in rows:
        v = row.get(key)
        if isinstance(v, str) and v not in values:
            values.append(v)
    return "+".join(values) if values else default


def topology_union(rows: Sequence[Mapping[str, object]], default: str = "mesh") -> str:
    """The ``topology`` label for a row set (see :func:`field_union`)."""
    return field_union(rows, "topology", default)


def result_payload(
    experiment: str,
    scale: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    params: Optional[Mapping[str, object]] = None,
    workload: Optional[str] = None,
    topology: str = "mesh",
) -> Dict[str, Any]:
    """Schema-versioned result payload (rows/params sanitized)."""
    clean_params: Dict[str, Any] = {}
    for k, v in dict(params or {}).items():
        sv = sanitize_value(v)
        if sv is not _DROP:
            clean_params[str(k)] = sv
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "scale": scale,
        "workload": workload,
        "topology": topology,
        "params": clean_params,
        "columns": list(columns),
        "rows": sanitize_rows(rows),
    }


def write_json(path: os.PathLike, payload: Mapping[str, Any]) -> pathlib.Path:
    """Atomically write ``payload`` as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        # mkstemp creates 0600; give result files normal umask-governed
        # permissions like the .txt tables written beside them.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
