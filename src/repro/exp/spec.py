"""Experiment specifications: cells and per-figure specs.

A :class:`Cell` is the unit of work of the orchestrator: one independent
simulation run (or one tightly coupled group, e.g. a hand-optimized
baseline plus the strategies measured against it), expressed as a
module-level function plus JSON-serializable keyword arguments.  Because
the function is addressed by its import path and the arguments are plain
data, a cell can be

* shipped to a ``multiprocessing`` worker (pickled by reference), and
* content-addressed for the result cache (:func:`cell_key`).

An :class:`ExperimentSpec` declares one figure or ablation of the paper:
how CLI-level parameters (scale, app) resolve to concrete parameters, how
those parameters expand into cells, and how the cell rows are turned into
the displayed table (columns, title, optional derivation step -- Figures
9/10 are derivations of the Figure 8 cells, so they share cache entries).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Cell", "ExperimentSpec", "cell_key", "CACHE_KEY_VERSION"]

Row = Dict[str, object]

#: Manual escape hatch: bump to invalidate every cached cell result even
#: when the source fingerprint below cannot see the change (e.g. an
#: external data file).
CACHE_KEY_VERSION = 2  # schema v7: rows carry the metric-suite columns

_FINGERPRINT: Optional[str] = None

#: Subpackages whose code determines cell *results*.  Presentation-layer
#: edits (CLI help text, this orchestration package, docstring-only
#: modules) must not discard hours of cached paper-scale results.
_SIMULATION_PACKAGES = ("core", "network", "runtime", "apps", "analysis", "sim", "workloads")


def _source_fingerprint() -> str:
    """Content hash of the simulation-relevant ``repro`` source, folded
    into each cell key so that any change that could alter a cell's
    numbers invalidates the cache -- stale results must never be served
    after a code edit.  Computed once per process (cells are pure
    functions of parameters + code)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for sub in _SIMULATION_PACKAGES:
            for path in sorted((package_root / sub).rglob("*.py")):
                digest.update(str(path.relative_to(package_root)).encode("utf-8"))
                digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """JSON-stable form of a cell argument (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def cell_key(fn: Callable[..., List[Row]], kwargs: Mapping[str, Any]) -> str:
    """Content address of one cell: function import path + parameters +
    source fingerprint.

    Stable across processes and sessions for unchanged code; changes
    whenever the function identity, any parameter, any ``repro`` source
    file, or :data:`CACHE_KEY_VERSION` changes.
    """
    payload = {
        "v": CACHE_KEY_VERSION,
        "src": _source_fingerprint(),
        "fn": f"{fn.__module__}.{fn.__qualname__}",
        "kwargs": _canonical(dict(kwargs)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``fn`` must be a module-level function (so it pickles by reference for
    the process pool) returning a list of JSON-serializable row dicts;
    ``kwargs`` must contain only JSON-serializable values.
    """

    fn: Callable[..., List[Row]]
    kwargs: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(fn: Callable[..., List[Row]], **kwargs: Any) -> "Cell":
        return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())))

    @property
    def key(self) -> str:
        return cell_key(self.fn, dict(self.kwargs))

    def run(self) -> List[Row]:
        return self.fn(**dict(self.kwargs))

    def describe(self) -> Dict[str, Any]:
        """Human-readable identity (stored next to cached rows)."""
        return {
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "kwargs": _canonical(dict(self.kwargs)),
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one figure / ablation.

    Attributes
    ----------
    name:
        CLI name (``fig3``, ``ablation-tree-degree``, ...).
    columns:
        Columns of the displayed table, in order.
    make_params:
        ``(scale, workload) -> params`` -- resolves the CLI-level knobs
        into the concrete parameter dict (via
        :func:`repro.analysis.scale_params` for the figures; fixed
        defaults for the ablations).
    make_cells:
        ``params -> [Cell, ...]`` -- pure expansion of parameters into
        independent cells; the runner preserves this order.
    title:
        ``(params, scale, workload) -> str`` -- table title
        (byte-compatible with the historic CLI output).
    derive:
        Optional ``(rows, params) -> rows`` applied to the concatenated
        cell rows (e.g. Figures 9/10 project phase columns out of the
        Figure 8 cells).
    uses_workload:
        Whether the ``--workload`` CLI axis (historic alias ``--app``)
        changes the experiment (the tree-degree and embedding ablations
        run any registered workload); result files for a non-default
        workload get a workload-suffixed name so axis values don't
        overwrite each other.
    uses_topology:
        Whether the ``--topology`` CLI axis changes the experiment: the
        resolved parameters gain a ``"topology"`` key the cell builder
        forwards into its cells.  Result files for a non-mesh topology get
        a topology-suffixed name.  (The cross-topology sweeps ``xtopo-*``
        and ``xwork-zipf`` iterate topologies *internally* and therefore
        do **not** set this.)
    """

    name: str
    columns: Tuple[str, ...]
    make_params: Callable[[Optional[str], str], Dict[str, Any]]
    make_cells: Callable[[Dict[str, Any]], List[Cell]]
    title: Callable[[Dict[str, Any], Optional[str], str], str]
    derive: Optional[Callable[[List[Row], Dict[str, Any]], List[Row]]] = None
    uses_workload: bool = field(default=False)
    uses_topology: bool = field(default=False)

    def params_for(
        self, scale: Optional[str] = None, workload: str = "matmul", topology: str = "mesh"
    ) -> Dict[str, Any]:
        """Resolve CLI-level knobs (scale, workload, topology) into
        parameters."""
        params = self.make_params(scale, workload)
        if self.uses_topology:
            params["topology"] = topology
        return params

    def cells(
        self,
        scale: Optional[str] = None,
        workload: str = "matmul",
        topology: str = "mesh",
    ) -> List[Cell]:
        return self.make_cells(self.params_for(scale, workload, topology))


def concat(cell_rows: Sequence[Optional[List[Row]]]) -> List[Row]:
    """Flatten per-cell row lists (in cell order) into one table."""
    rows: List[Row] = []
    for chunk in cell_rows:
        if chunk:
            rows.extend(chunk)
    return rows
