"""Experiment orchestration: registry, parallel runner, result cache, JSON.

The paper's evaluation is a grid of independent simulation runs
(figure x strategy x mesh size x scale).  This package turns that grid
into data:

* :mod:`repro.exp.spec` -- :class:`Cell` (one independent simulation run,
  a pure function of its parameters) and :class:`ExperimentSpec` (the
  declarative description of one figure/ablation: how to resolve scale
  parameters into cells, how to derive display rows, columns, title).
* :mod:`repro.exp.registry` -- one spec per figure/ablation of the paper;
  replaces the CLI's historic ``if/elif`` dispatch chain.
* :mod:`repro.exp.runner` -- shards a spec's cells across a
  ``multiprocessing`` pool (``--jobs N``) and reassembles rows in
  deterministic cell order, so parallel output is identical to serial.
* :mod:`repro.exp.cache` -- content-addressed JSON result cache keyed by
  the cell's function + parameters, so re-runs and resumed sweeps skip
  finished cells.
* :mod:`repro.exp.emit` -- the JSON emitter (schema-versioned result
  files under ``benchmarks/results/``) consumed by CI.

See EXPERIMENTS.md for the user-facing tour.
"""

from .cache import MemoryCache, ResultCache, default_cache_dir
from .emit import (
    SCHEMA_VERSION,
    default_results_dir,
    field_union,
    json_path,
    result_payload,
    sanitize_rows,
    topology_union,
    write_json,
)
from .registry import EXPERIMENTS, REGISTRY, get_spec
from .runner import ExperimentRun, run_cells, run_experiment
from .spec import Cell, ExperimentSpec, cell_key

__all__ = [
    "Cell",
    "ExperimentSpec",
    "cell_key",
    "EXPERIMENTS",
    "REGISTRY",
    "get_spec",
    "ExperimentRun",
    "run_cells",
    "run_experiment",
    "MemoryCache",
    "ResultCache",
    "default_cache_dir",
    "SCHEMA_VERSION",
    "default_results_dir",
    "field_union",
    "json_path",
    "result_payload",
    "sanitize_rows",
    "topology_union",
    "write_json",
]
