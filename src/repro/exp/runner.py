"""Parallel experiment runner.

Runs a spec's independent cells, optionally sharded across a
``multiprocessing`` pool (``jobs > 1``) and optionally backed by the
content-addressed :class:`~repro.exp.cache.ResultCache`.  Determinism
contract: results are reassembled **in cell order**, and every fresh cell
result is sanitized to its JSON form before use, so

* ``jobs=N`` output is identical to serial output, and
* a warm-cache run is byte-identical to the cold run that filled it.

Statistics sharding: the cell is the parallelism grain, so each worker
process accumulates traffic into its *own* :class:`~repro.network.stats
.LinkStats` (sparse above the dense-node limit) and reduces it to row
scalars at snapshot time -- the order-exact integer-sum path that
:meth:`~repro.network.stats.LinkStats.merge_from` pins down.  Nothing
per-link ever crosses a process boundary; what the parent folds across
workers is the **memory envelope**: every worker reports its peak RSS and
:func:`run_cells` returns the max as ``peak_rss_mb``, the number the
CI scale gate commits against.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.tables import format_table
from .cache import ResultCache
from .emit import field_union, json_path, result_payload, sanitize_rows, write_json
from .spec import Cell, ExperimentSpec, concat

__all__ = ["ExperimentRun", "peak_rss_mb", "run_cells", "run_experiment"]

Row = Dict[str, object]


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalize so the
    committed memory ceilings mean one thing everywhere."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _run_cell(cell: Cell) -> Tuple[List[Row], float]:
    """Pool worker: execute one cell; returns its sanitized (JSON-form)
    rows plus the worker's peak RSS so the parent can fold the envelope."""
    return sanitize_rows(cell.run()), peak_rss_mb()


class CellResults(list):
    """Per-cell row lists (a plain list), annotated with the max peak RSS
    observed across the processes that produced them.

    ``peak_rss_mb`` is ``None`` when every cell came from the cache (no
    simulation ran); in serial runs it is the parent's own peak, which
    upper-bounds the simulations it hosted."""

    peak_rss_mb: Optional[float] = None


def _pool(jobs: int):
    # Prefer fork on Linux so workers inherit sys.path (PYTHONPATH=src
    # checkouts); elsewhere use the platform default (fork is unsafe on
    # macOS, which is why CPython switched its default to spawn there).
    # Cell functions are module-level, so spawn works too.
    use_fork = (
        sys.platform == "linux"
        and "fork" in multiprocessing.get_all_start_methods()
    )
    ctx = multiprocessing.get_context("fork" if use_fork else None)
    return ctx.Pool(processes=jobs)


def run_cells(
    cells: List[Cell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> CellResults:
    """Run ``cells``, returning one row list per cell, in cell order.

    Cells with a cache entry are skipped; the remainder run serially
    (``jobs <= 1``) or on a process pool.  Fresh results are written back
    to the cache.  The returned list carries ``peak_rss_mb``: the max
    peak RSS across the worker processes that ran fresh cells.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[List[Row]]] = [None] * len(cells)
    pending: List[int] = []
    peak: Optional[float] = None
    for i, cell in enumerate(cells):
        hit = cache.get(cell) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            pending.append(i)
    if pending:
        todo = [cells[i] for i in pending]
        # Cache writes happen per cell as results arrive (imap), so an
        # interrupted or failed sweep keeps every finished cell -- that is
        # what makes paper-scale runs resumable.
        if jobs > 1 and len(todo) > 1:
            with _pool(min(jobs, len(todo))) as pool:
                for i, (rows, rss) in zip(
                    pending, pool.imap(_run_cell, todo, chunksize=1)
                ):
                    if cache is not None:
                        cache.put(cells[i], rows)
                    results[i] = rows
                    peak = rss if peak is None else max(peak, rss)
        else:
            for i, cell in zip(pending, todo):
                rows, rss = _run_cell(cell)
                if cache is not None:
                    cache.put(cell, rows)
                results[i] = rows
                peak = rss if peak is None else max(peak, rss)
    # Every index is filled by the cache pass or the pending loop; a hole
    # would mean lost results, which must fail loudly, not render as an
    # empty table section.
    assert all(rows is not None for rows in results)
    out = CellResults(rows for rows in results if rows is not None)
    out.peak_rss_mb = peak
    return out


@dataclass
class ExperimentRun:
    """One resolved, executed experiment: rows plus presentation metadata."""

    spec: ExperimentSpec
    params: Dict[str, Any]
    rows: List[Row]
    scale: Optional[str]
    workload: str
    topology: str = "mesh"
    cells_total: int = 0
    cells_cached: int = 0
    #: Max worker peak RSS (MiB) over the fresh cells of this run; None
    #: when everything came from the cache.  Reported out-of-band (stderr,
    #: memory-report tools) -- deliberately NOT part of payload(), which
    #: must stay byte-identical across machines and cache states.
    peak_rss_mb: Optional[float] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scale_label(self) -> str:
        """Effective scale for result-file naming (mirrors scale_params)."""
        return self.scale or os.environ.get("REPRO_SCALE", "default")

    @property
    def file_stem(self) -> str:
        """Result-file stem; non-default workload / topology axes get
        their own files so axis values don't overwrite each other."""
        stem = self.name
        if self.spec.uses_workload and self.workload != "matmul":
            stem = f"{stem}.{self.workload}"
        if self.spec.uses_topology and self.topology != "mesh":
            stem = f"{stem}.{self.topology}"
        return stem

    @property
    def topology_label(self) -> str:
        """Topology recorded in the JSON payload: the topologies the rows
        actually cover (``"mesh+torus"`` for an internal sweep), falling
        back to the axis value."""
        default = self.topology if self.spec.uses_topology else "mesh"
        return field_union(self.rows, "topology", default)

    @property
    def workload_label(self) -> str:
        """Workload recorded in the JSON payload: the workloads the rows
        actually cover (``"zipf"`` for the xwork sweeps), falling back to
        the axis value."""
        default = self.workload if self.spec.uses_workload else "matmul"
        return field_union(self.rows, "workload", default)

    @property
    def title(self) -> str:
        return self.spec.title(self.params, self.scale, self.workload)

    def table(self) -> str:
        return format_table(self.rows, list(self.spec.columns), title=self.title)

    def payload(self) -> Dict[str, Any]:
        return result_payload(
            self.name,
            self.scale_label,
            self.rows,
            self.spec.columns,
            params=self.params,
            workload=self.workload_label,
            topology=self.topology_label,
        )

    def write_json(self, results_dir: Optional[os.PathLike] = None):
        """Emit the JSON result file; returns its path."""
        return write_json(
            json_path(self.file_stem, self.scale_label, results_dir), self.payload()
        )


def run_experiment(
    spec: Union[str, ExperimentSpec],
    scale: Optional[str] = None,
    workload: str = "matmul",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    topology: str = "mesh",
    param_overrides: Optional[Dict[str, Any]] = None,
) -> ExperimentRun:
    """Resolve, shard, run, and reassemble one experiment.

    ``param_overrides`` replaces resolved parameter values after scale
    resolution (e.g. ``{"nodes": (16384, 131072)}`` to point ``xscale``
    at specific machine sizes); overriding a parameter the spec does not
    define is an error.
    """
    if isinstance(spec, str):
        from .registry import get_spec

        spec = get_spec(spec)
    params = spec.params_for(scale, workload, topology)
    if param_overrides:
        unknown = set(param_overrides) - set(params)
        if unknown:
            raise ValueError(
                f"{spec.name}: unknown parameter override(s) {sorted(unknown)}"
            )
        params = {**params, **param_overrides}
    cells = spec.make_cells(params)
    hits_before = cache.hits if cache is not None else 0
    cell_rows = run_cells(cells, jobs=jobs, cache=cache)
    rows = concat(cell_rows)
    if spec.derive is not None:
        rows = spec.derive(rows, params)
    return ExperimentRun(
        spec=spec,
        params=params,
        rows=rows,
        scale=scale,
        workload=workload,
        topology=topology,
        cells_total=len(cells),
        cells_cached=(cache.hits - hits_before) if cache is not None else 0,
        peak_rss_mb=cell_rows.peak_rss_mb,
    )
