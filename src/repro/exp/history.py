"""Committed perf-trajectory history: dated bench rows over time.

The bench scripts (``benchmarks/bench_engine_perf.py``,
``benchmarks/bench_serve.py``) write their headline numbers to gitignored
``benchmarks/results/`` for CI artifacts -- which left the repo's perf
*trajectory* empty.  This module maintains the committed companion:
``benchmarks/BENCH_history.json``, a flat list of dated rows

.. code-block:: json

    {"date": "2026-08-08", "bench": "serve", "engine": "c",
     "metric": "requests_per_sec", "value": 51234.0,
     "peak_rss_mb": 312.5, "bench_version": 1}

appended (or same-day-replaced: re-running a bench on one day updates
that day's row instead of stacking duplicates) by each bench ``main``.
``tools/bench_compare.py --history`` prints the trend.  Rows are only as
comparable as the hardware that produced them -- the date column is the
axis, the hardware caveat travels with the bench docs.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Any, Dict, List, Optional, Union

__all__ = ["append_history", "format_trend", "load_history"]

PathLike = Union[str, pathlib.Path]


def load_history(path: PathLike) -> List[Dict[str, Any]]:
    """The history rows at ``path`` (empty when the file doesn't exist)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    rows = json.loads(path.read_text())
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON list of history rows")
    return rows


def append_history(
    entry: Dict[str, Any],
    path: PathLike,
    date: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Add (or same-day replace) one dated row; returns the full list.

    ``entry`` needs ``bench``, ``engine``, ``metric`` and ``value``;
    anything else (``peak_rss_mb``, ``bench_version``, ...) rides along.
    The row key is ``(date, bench, engine)``.
    """
    for key in ("bench", "engine", "metric", "value"):
        if key not in entry:
            raise ValueError(f"history entry lacks required key {key!r}")
    row = {"date": date or datetime.date.today().isoformat(), **entry}
    rows = load_history(path)
    key = (row["date"], row["bench"], row["engine"])
    rows = [r for r in rows if (r.get("date"), r.get("bench"), r.get("engine")) != key]
    rows.append(row)
    rows.sort(key=lambda r: (r.get("date", ""), r.get("bench", ""), r.get("engine", "")))
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    return rows


def format_trend(
    rows: List[Dict[str, Any]],
    bench: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    """Human-readable trend table, oldest first, optionally filtered."""
    rows = [
        r for r in rows
        if (bench is None or r.get("bench") == bench)
        and (engine is None or r.get("engine") == engine)
    ]
    if not rows:
        return "(no history rows match)"
    header = f"{'date':<12} {'bench':<8} {'engine':<7} {'metric':<17} " \
             f"{'value':>12} {'peak MiB':>9}"
    lines = [header, "-" * len(header)]
    for r in rows:
        rss = r.get("peak_rss_mb")
        rss_col = f"{rss:>9.1f}" if rss is not None else f"{'-':>9}"
        lines.append(
            f"{r.get('date', '?'):<12} {r.get('bench', '?'):<8} "
            f"{r.get('engine', '?'):<7} {r.get('metric', '?'):<17} "
            f"{r.get('value', float('nan')):>12.2f} {rss_col}"
        )
    return "\n".join(lines)
