"""The experiment registry: one declarative spec per figure / ablation.

This replaces the historic ``if/elif`` dispatch chain of
``repro.__main__`` and its duplicated column tables.  Each spec resolves
CLI-level knobs (scale, app) into parameters, expands them into
independent :class:`~repro.exp.spec.Cell`\\ s for the parallel runner,
and carries the presentation metadata (columns, title) the CLI and the
JSON emitter share.

Figures 9 and 10 are *projections* of the Figure 8 runs (the paper
derives them from the same executions), so their specs expand to the
same cells as Figure 8 -- under a warm cache they cost nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..analysis import experiments as E
from .spec import Cell, ExperimentSpec

__all__ = ["REGISTRY", "EXPERIMENTS", "get_spec"]

Params = Dict[str, Any]

#: Strategies measured per figure (the paper's selections).
FIG3_STRATEGIES = ("fixed-home", "4-ary")
FIG6_STRATEGIES = ("fixed-home", "2-4-ary")
FIG11_STRATEGIES = ("fixed-home", "4-8-ary")
TREE_DEGREE_VARIANTS = ("2-ary", "2-4-ary", "4-ary", "4-16-ary", "16-ary")
#: Strategies compared at matched node counts across interconnects.
XTOPO_STRATEGIES = ("fixed-home", "4-ary", "2-4-ary")
#: Strategies swept over the synthetic-workload axes.
XWORK_STRATEGIES = ("fixed-home", "4-ary", "2-4-ary")
#: Strategies compared on the thousands-of-nodes scale axis (the node
#: counts live in analysis.scale_params("xscale", ...)).
XSCALE_STRATEGIES = ("fixed-home", "2-4-ary")
#: Strategy families compared head to head by the xstrat sweep: the
#: paper's two (an access tree per application family + fixed home) plus
#: the post-paper migration and dynamic-replication schemes.
XSTRAT_STRATEGIES = ("fixed-home", "4-ary", "2-4-ary", "migratory", "dynrep")
#: Read fractions of the xstrat zipf cells (read-heavy like the paper's
#: apps, and the mixed regime where invalidation traffic bites).
XSTRAT_READ_FRACS = (0.9, 0.5)
#: Strategies swept over the capacity-pressure axis (2-ary is the
#: paper's Figure 8 kink strategy; migratory cannot evict by design).
XCAP_STRATEGIES = ("fixed-home", "2-ary", "2-4-ary", "dynrep", "migratory")
#: Strategy families swept over the failure axis: every family with
#: repair hooks (all five -- the xfail sweep is the adversarial proof
#: that each survives link flaps and node churn).
XFAIL_STRATEGIES = ("fixed-home", "4-ary", "2-4-ary", "migratory", "dynrep")
#: Strategies compared on the adaptation axis: the online-adaptive
#: scheme against its threshold-counting ancestor, the static baseline
#: and the paper's access tree, under a drifting hotspot.
XADAPT_STRATEGIES = ("adaptive", "dynrep", "fixed-home", "4-ary")
#: Zipf skew exponents of the xwork-zipf sweep (0 = uniform).
XWORK_ZIPF_ALPHAS = (0.0, 0.8, 1.5)
#: Read fractions of the xwork-readfrac sweep (1.0 = read-only).
XWORK_READ_FRACS = (0.5, 0.8, 0.95, 1.0)


def _scale_title(name: str) -> Callable[[Params, Optional[str], str], str]:
    def title(params: Params, scale: Optional[str], workload: str) -> str:
        return f"{name} ({scale or 'default'} scale)"

    return title


def _fixed_title(text: str) -> Callable[[Params, Optional[str], str], str]:
    return lambda params, scale, workload: text


def _scaled_params(figure: str) -> Callable[[Optional[str], str], Params]:
    def make(scale: Optional[str], workload: str) -> Params:
        return E.scale_params(figure, scale)

    return make


def _workload_params(**defaults: Any) -> Callable[[Optional[str], str], Params]:
    """Parameters for the ``--workload``-sensitive ablations: the generic
    ``size`` knob keeps its historic value for the paper apps and falls
    back to the workload's own default size otherwise (a synthetic kernel
    sized like a matrix block would run for minutes)."""

    def make(scale: Optional[str], workload: str) -> Params:
        params = dict(defaults, workload=workload)
        if workload not in ("matmul", "bitonic"):
            from ..workloads import get_workload

            wl = get_workload(workload)
            if wl.size_param is not None:
                params["size"] = wl.defaults[wl.size_param]
        return params

    return make


def _fixed_params(**defaults: Any) -> Callable[[Optional[str], str], Params]:
    def make(scale: Optional[str], workload: str) -> Params:
        return dict(defaults)

    return make


# ------------------------------------------------------------- cell builders
def _fig2_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.fig2_cell, strategy=name, side=p["side"],
                  block_entries=p["block_entries"], seed=0)
        for name in ("fixed-home", "4-ary")
    ]


def _fig3_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.matmul_cell, side=p["side"], block_entries=block,
                  strategies=FIG3_STRATEGIES, seed=0)
        for block in p["blocks"]
    ]


def _fig4_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.matmul_cell, side=side, block_entries=p["block_entries"],
                  strategies=FIG3_STRATEGIES, seed=0)
        for side in p["sides"]
    ]


def _fig6_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.bitonic_cell, side=p["side"], keys=keys,
                  strategies=FIG6_STRATEGIES, seed=0,
                  topology=p.get("topology", "mesh"))
        for keys in p["keys"]
    ]


def _fig7_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.bitonic_cell, side=side, keys=p["keys"],
                  strategies=FIG6_STRATEGIES, seed=0,
                  topology=p.get("topology", "mesh"))
        for side in p["sides"]
    ]


def _xtopo_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.bitonic_cell, side=p["side"], keys=p["keys"],
                  strategies=p["strategies"], seed=0, topology=topology)
        for topology in p["topologies"]
    ]


def _xtopo_params(*topologies: str) -> Callable[[Optional[str], str], Params]:
    def make(scale: Optional[str], app: str) -> Params:
        params = E.scale_params("xtopo", scale)
        params["topologies"] = list(topologies)
        params["strategies"] = XTOPO_STRATEGIES
        return params

    return make


def _fig8_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.barneshut_cell, strategy=name, bodies=n, side=p["side"],
                  steps=p["steps"], warm=p["warm"], seed=0)
        for n in p["bodies"]
        for name in E.FIG8_STRATEGIES
    ]


def _fig11_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.barneshut_scaling_cell, strategy=name, mesh_rows=r, mesh_cols=c,
                  bodies_per_proc=p["bodies_per_proc"], steps=p["steps"],
                  warm=p["warm"], seed=0)
        for r, c in p["meshes"]
        for name in FIG11_STRATEGIES
    ]


def _tree_degree_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.tree_degree_cell, strategy=name, workload=p["workload"],
                  side=p["side"], size=p["size"], seed=0,
                  topology=p.get("topology", "mesh"))
        for name in TREE_DEGREE_VARIANTS
    ]


def _embedding_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.embedding_cell, embedding=embedding, workload=p["workload"],
                  side=p["side"], size=p["size"], strategy=p["strategy"], seed=0,
                  topology=p.get("topology", "mesh"))
        for embedding in ("modified", "random")
    ]


def _xwork_zipf_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xwork", scale)
    params["topologies"] = ["mesh", "torus", "hypercube"]
    params["alphas"] = list(XWORK_ZIPF_ALPHAS)
    params["read_frac"] = 0.9
    params["strategies"] = list(XWORK_STRATEGIES)
    return params


def _xwork_zipf_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.synthetic_cell, workload="zipf", strategy=name,
                  topology=topology, side=p["side"],
                  params={"alpha": alpha, "ops": p["ops"],
                          "read_frac": p["read_frac"]},
                  seed=0)
        for topology in p["topologies"]
        for alpha in p["alphas"]
        for name in p["strategies"]
    ]


def _xwork_readfrac_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xwork", scale)
    params["read_fracs"] = list(XWORK_READ_FRACS)
    params["alpha"] = 0.8
    params["strategies"] = list(XWORK_STRATEGIES)
    return params


def _xwork_readfrac_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.synthetic_cell, workload="zipf", strategy=name,
                  topology=p.get("topology", "mesh"), side=p["side"],
                  params={"alpha": p["alpha"], "ops": p["ops"],
                          "read_frac": read_frac},
                  seed=0)
        for read_frac in p["read_fracs"]
        for name in p["strategies"]
    ]


def _xscale_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xscale", scale)
    params["topologies"] = ["mesh", "torus", "hypercube"]
    params["strategies"] = list(XSCALE_STRATEGIES)
    return params


def _xscale_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.xscale_cell, nodes=nodes, topology=topology, strategy=name,
                  ops=p["ops"], seed=0)
        for nodes in p["nodes"]
        for topology in p["topologies"]
        for name in p["strategies"]
    ]


def _xstrat_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xstrat", scale)
    params["topologies"] = ["mesh", "torus", "hypercube"]
    params["strategies"] = list(XSTRAT_STRATEGIES)
    params["read_fracs"] = list(XSTRAT_READ_FRACS)
    return params


def _xstrat_cells(p: Params) -> List[Cell]:
    cells: List[Cell] = []
    for topology in p["topologies"]:
        for name in p["strategies"]:
            cells.append(Cell.make(E.xstrat_cell, workload="bitonic", strategy=name,
                                   topology=topology, side=p["side"],
                                   params={"keys": p["keys"]}, seed=0))
            for read_frac in p["read_fracs"]:
                cells.append(Cell.make(E.xstrat_cell, workload="zipf", strategy=name,
                                       topology=topology, side=p["side"],
                                       params={"ops": p["ops"], "alpha": 0.8,
                                               "read_frac": read_frac},
                                       seed=0))
    for name in p["strategies"]:
        # The paper's matmul needs true 2-D grid coordinates: mesh only.
        cells.append(Cell.make(E.xstrat_cell, workload="matmul", strategy=name,
                               topology="mesh", side=p["side"],
                               params={"block_entries": p["block"]}, seed=0))
    return cells


def _xcap_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xcap", scale)
    params["strategies"] = list(XCAP_STRATEGIES)
    return params


def _xcap_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.xcap_cell, capacity_copies=cap, strategy=name,
                  topology=p.get("topology", "mesh"), side=p["side"],
                  ops=p["ops"], seed=0)
        for cap in p["capacities"]
        for name in p["strategies"]
    ]


def _xfail_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xfail", scale)
    params["topologies"] = ["mesh", "torus", "hypercube"]
    params["strategies"] = list(XFAIL_STRATEGIES)
    params["failures"] = list(params["failures"])
    return params


def _xfail_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.xfail_cell, failures=failures, strategy=name,
                  topology=topology, side=p["side"], ops=p["ops"], seed=0)
        for failures in p["failures"]
        for topology in p["topologies"]
        for name in p["strategies"]
    ]


def _xadapt_params(scale: Optional[str], workload: str) -> Params:
    params = E.scale_params("xadapt", scale)
    params["topologies"] = ["mesh", "torus", "hypercube"]
    params["strategies"] = list(XADAPT_STRATEGIES)
    params["drifts"] = list(params["drifts"])
    return params


def _xadapt_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.xadapt_cell, drift=drift, strategy=name,
                  topology=topology, side=p["side"], ops=p["ops"], seed=0)
        for drift in p["drifts"]
        for topology in p["topologies"]
        for name in p["strategies"]
    ]


def _invalidation_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.invalidation_cell, strategy=name, variant=variant,
                  side=p["side"], block_entries=p["block_entries"], seed=0)
        for name in p["strategies"]
        for variant in ("square", "general")
    ]


def _remapping_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.remapping_cell, threshold=threshold, side=p["side"],
                  payload=p["payload"], rounds=p["rounds"],
                  strategy=p["strategy"], seed=0)
        for threshold in p["thresholds"]
    ]


def _barrier_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.barrier_cell, kind=kind, side=p["side"], keys=p["keys"],
                  strategy=p["strategy"], seed=0,
                  topology=p.get("topology", "mesh"))
        for kind in ("tree", "central")
    ]


def _bounded_memory_cells(p: Params) -> List[Cell]:
    return [
        Cell.make(E.bounded_memory_cell, cap=cap, side=p["side"],
                  bodies=p["bodies"], strategy=p["strategy"], seed=0)
        for cap in p["capacity_copies"]
    ]


def _derive_fig9(rows, params):
    return E.fig9_rows_from_cells(rows)


def _derive_fig10(rows, params):
    return E.fig10_rows_from_cells(rows)


REGISTRY: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in [
        ExperimentSpec(
            name="fig2",
            columns=("strategy", "mesh", "total_bytes", "congestion_bytes", "time"),
            make_params=_scaled_params("fig2"),
            make_cells=_fig2_cells,
            title=_scale_title("fig2"),
        ),
        ExperimentSpec(
            name="fig3",
            columns=("strategy", "block", "congestion_ratio", "time_ratio"),
            make_params=_scaled_params("fig3"),
            make_cells=_fig3_cells,
            title=_scale_title("fig3"),
        ),
        ExperimentSpec(
            name="fig4",
            columns=("strategy", "side", "congestion_ratio", "time_ratio"),
            make_params=_scaled_params("fig4"),
            make_cells=_fig4_cells,
            title=_scale_title("fig4"),
        ),
        ExperimentSpec(
            name="fig6",
            columns=("strategy", "keys", "congestion_ratio", "time_ratio"),
            make_params=_scaled_params("fig6"),
            make_cells=_fig6_cells,
            title=_scale_title("fig6"),
            uses_topology=True,
        ),
        ExperimentSpec(
            name="fig7",
            columns=("strategy", "side", "congestion_ratio", "time_ratio"),
            make_params=_scaled_params("fig7"),
            make_cells=_fig7_cells,
            title=_scale_title("fig7"),
            uses_topology=True,
        ),
        ExperimentSpec(
            name="xtopo-torus",
            columns=("topology", "network", "strategy", "congestion_ratio",
                     "time_ratio", "congestion_bytes", "time"),
            make_params=_xtopo_params("mesh", "torus"),
            make_cells=_xtopo_cells,
            title=_fixed_title("cross-topology: bitonic on mesh vs torus (256 nodes)"),
        ),
        ExperimentSpec(
            name="xtopo-hypercube",
            columns=("topology", "network", "strategy", "congestion_ratio",
                     "time_ratio", "congestion_bytes", "time"),
            make_params=_xtopo_params("mesh", "hypercube"),
            make_cells=_xtopo_cells,
            title=_fixed_title("cross-topology: bitonic on mesh vs hypercube (256 nodes)"),
        ),
        ExperimentSpec(
            name="xwork-zipf",
            columns=("topology", "alpha", "strategy", "congestion_bytes",
                     "total_bytes", "time", "hit_rate"),
            make_params=_xwork_zipf_params,
            make_cells=_xwork_zipf_cells,
            title=_fixed_title(
                "cross-workload: Zipf hotspot skew sweep "
                "(64 nodes, mesh+torus+hypercube)"
            ),
        ),
        ExperimentSpec(
            name="xwork-readfrac",
            columns=("read_frac", "strategy", "congestion_bytes",
                     "total_bytes", "time", "hit_rate"),
            make_params=_xwork_readfrac_params,
            make_cells=_xwork_readfrac_cells,
            title=_fixed_title(
                "cross-workload: read-fraction sweep (zipf hotspot, 64 nodes)"
            ),
            uses_topology=True,
        ),
        ExperimentSpec(
            name="xscale",
            columns=("nodes", "topology", "strategy", "congestion_bytes",
                     "congestion_per_node", "total_bytes", "time", "hit_rate"),
            make_params=_xscale_params,
            make_cells=_xscale_cells,
            title=_fixed_title(
                "scale axis: zipf hotspot at 1024-4096 nodes "
                "(mesh+torus+hypercube, fixed-home vs 2-4-ary)"
            ),
        ),
        ExperimentSpec(
            name="xstrat",
            columns=("workload", "topology", "strategy", "read_frac",
                     "congestion_bytes", "total_bytes", "time", "hit_rate"),
            make_params=_xstrat_params,
            make_cells=_xstrat_cells,
            title=_fixed_title(
                "cross-strategy: every family x paper apps + zipf "
                "(64 nodes, mesh+torus+hypercube)"
            ),
        ),
        ExperimentSpec(
            name="xcap",
            columns=("capacity_copies", "strategy", "evictions", "hit_rate",
                     "congestion_bytes", "time"),
            make_params=_xcap_params,
            make_cells=_xcap_cells,
            title=_fixed_title(
                "capacity pressure: zipf under per-processor copy capacity "
                "(LRU replacement)"
            ),
            uses_topology=True,
        ),
        ExperimentSpec(
            name="xfail",
            columns=("failures", "topology", "strategy", "congestion_bytes",
                     "time", "requests_failed", "requests_stalled",
                     "requests_retried", "repairs"),
            make_params=_xfail_params,
            make_cells=_xfail_cells,
            title=_fixed_title(
                "failure axis: zipf under link flaps and node churn "
                "(5 strategy families x mesh+torus+hypercube)"
            ),
        ),
        ExperimentSpec(
            name="xadapt",
            columns=("drift", "topology", "strategy", "time", "hit_rate",
                     "latency_p50", "latency_p95", "latency_p99",
                     "storage_cost", "effective_network_usage"),
            make_params=_xadapt_params,
            make_cells=_xadapt_cells,
            title=_fixed_title(
                "adaptation axis: drifting zipf hotspot "
                "(adaptive vs dynrep vs fixed-home vs 4-ary, "
                "mesh+torus+hypercube)"
            ),
        ),
        ExperimentSpec(
            name="fig8",
            columns=("strategy", "bodies", "congestion_msgs", "time", "hit_rate"),
            make_params=_scaled_params("fig8"),
            make_cells=_fig8_cells,
            title=_scale_title("fig8"),
        ),
        ExperimentSpec(
            name="fig9",
            columns=("strategy", "bodies", "congestion_msgs", "time"),
            make_params=_scaled_params("fig8"),
            make_cells=_fig8_cells,
            title=_scale_title("fig9"),
            derive=_derive_fig9,
        ),
        ExperimentSpec(
            name="fig10",
            columns=("strategy", "bodies", "congestion_msgs", "time",
                     "local_compute", "comm_share"),
            make_params=_scaled_params("fig8"),
            make_cells=_fig8_cells,
            title=_scale_title("fig10"),
            derive=_derive_fig10,
        ),
        ExperimentSpec(
            name="fig11",
            columns=("strategy", "mesh", "procs", "bodies", "congestion_msgs",
                     "time", "comm_time"),
            make_params=_scaled_params("fig11"),
            make_cells=_fig11_cells,
            title=_scale_title("fig11"),
        ),
        ExperimentSpec(
            name="ablation-tree-degree",
            columns=("strategy", "congestion_bytes", "time", "max_startups"),
            make_params=_workload_params(side=8, size=1024),
            make_cells=_tree_degree_cells,
            title=lambda params, scale, workload: f"tree-degree ablation ({workload})",
            uses_workload=True,
            uses_topology=True,
        ),
        ExperimentSpec(
            name="ablation-embedding",
            columns=("embedding", "congestion_bytes", "total_bytes", "time"),
            make_params=_workload_params(side=8, size=1024, strategy="4-ary"),
            make_cells=_embedding_cells,
            title=lambda params, scale, workload: f"embedding ablation ({workload})",
            uses_workload=True,
            uses_topology=True,
        ),
        ExperimentSpec(
            name="ablation-invalidation",
            columns=("strategy", "variant", "congestion_bytes", "ctrl_msgs", "time"),
            make_params=_fixed_params(side=8, block_entries=1024,
                                      strategies=("4-ary", "fixed-home")),
            make_cells=_invalidation_cells,
            title=_fixed_title("invalidation ablation (square vs general multiply)"),
        ),
        ExperimentSpec(
            name="ablation-remapping",
            columns=("remap_threshold", "remaps", "congestion_bytes", "time"),
            make_params=_fixed_params(side=8, payload=1024, rounds=8,
                                      thresholds=(None, 64, 16, 4), strategy="4-ary"),
            make_cells=_remapping_cells,
            title=_fixed_title("node remapping ablation (hot broadcast variable)"),
        ),
        ExperimentSpec(
            name="ablation-barrier",
            columns=("barrier", "congestion_bytes", "time", "max_startups"),
            make_params=_fixed_params(side=8, keys=1024, strategy="2-4-ary"),
            make_cells=_barrier_cells,
            title=_fixed_title("barrier ablation"),
            uses_topology=True,
        ),
        ExperimentSpec(
            name="bounded-memory",
            columns=("capacity_copies", "congestion_msgs", "evictions", "time"),
            make_params=_fixed_params(side=4, bodies=256,
                                      capacity_copies=(None, 64, 24), strategy="2-ary"),
            make_cells=_bounded_memory_cells,
            title=_fixed_title("bounded-memory / LRU replacement"),
        ),
    ]
}

#: Stable CLI listing (sorted, like the historic dispatch chain's list).
EXPERIMENTS: List[str] = sorted(REGISTRY)


def get_spec(name: str) -> ExperimentSpec:
    """Spec for ``name``; raises ``KeyError`` listing valid names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; valid: {', '.join(EXPERIMENTS)}"
        ) from None
