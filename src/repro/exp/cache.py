"""Content-addressed result cache for experiment cells.

Each finished :class:`repro.exp.spec.Cell` is stored as one JSON file
under ``benchmarks/results/cache/`` named by the cell's content address
(:func:`repro.exp.spec.cell_key`: a SHA-256 over the cell function's
import path, its parameters, and a cache-key version).  Any parameter
change produces a different key, so the cache never needs explicit
invalidation -- stale entries are simply never addressed again.  A
corrupt or mismatched file is treated as a miss.

This is what makes re-runs and resumed sweeps cheap: ``python -m repro
run-all`` skips every cell whose result is already on disk, and Figures
9/10 hit the Figure 8 cells' entries outright because they share cell
functions and parameters.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional

from .emit import write_json
from .spec import Cell

__all__ = ["MemoryCache", "ResultCache", "default_cache_dir"]

Row = Dict[str, object]

#: Format version of the cache files themselves (not the key).
_FILE_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_RESULTS_DIR/cache`` (see :func:`repro.exp.emit.default_results_dir`)."""
    from .emit import default_results_dir

    return default_results_dir() / "cache"


class MemoryCache:
    """In-process cell cache (same get/put surface as :class:`ResultCache`).

    Used by ``run-all --no-cache``: nothing touches disk, but experiments
    that share cells within one invocation (Figures 8/9/10) still compute
    each cell once.
    """

    def __init__(self) -> None:
        self._store: Dict[str, List[Row]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, cell: Cell) -> Optional[List[Row]]:
        rows = self._store.get(cell.key)
        if rows is None:
            self.misses += 1
            return None
        self.hits += 1
        return rows

    def put(self, cell: Cell, rows: List[Row]) -> None:
        self._store[cell.key] = rows


class ResultCache:
    """JSON file cache keyed by cell content address."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path(self, cell: Cell) -> pathlib.Path:
        return self.root / f"{cell.key}.json"

    def get(self, cell: Cell) -> Optional[List[Row]]:
        """Cached rows for ``cell``, or ``None`` on miss/corruption."""
        path = self.path(cell)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("file_version") != _FILE_VERSION
            or payload.get("key") != cell.key
            or not isinstance(payload.get("rows"), list)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["rows"]

    def put(self, cell: Cell, rows: List[Row]) -> pathlib.Path:
        """Persist ``rows`` for ``cell`` (atomic write)."""
        payload = {
            "file_version": _FILE_VERSION,
            "key": cell.key,
            "cell": cell.describe(),
            "rows": rows,
        }
        return write_json(self.path(cell), payload)
