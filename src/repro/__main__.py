"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig3 [--scale quick|default|paper]
    python -m repro fig8 --scale quick --jobs 4
    python -m repro ablation-tree-degree --app bitonic
    python -m repro fig6 --topology torus
    python -m repro xtopo-hypercube --json
    python -m repro run-all --scale quick --jobs 4 --json

Each command resolves the corresponding :class:`repro.exp.ExperimentSpec`
from the registry, shards its independent cells across ``--jobs``
processes, and prints the table; ``--json`` additionally writes the
machine-readable result file (``benchmarks/results/<name>.<scale>.json``)
that CI consumes.  Finished cells are cached content-addressed under
``benchmarks/results/cache/`` so re-runs and resumed sweeps skip them;
``--no-cache`` forces recomputation.  The ``--scale`` flag (or the
``REPRO_SCALE`` environment variable) selects the parameter set; see
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .exp import (
    EXPERIMENTS,
    MemoryCache,
    ResultCache,
    default_results_dir,
    get_spec,
    run_experiment,
)
from .network import TOPOLOGY_KINDS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures on the simulated GCel.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ["list", "run-all"],
                        help="figure / ablation to run, 'run-all', or 'list'")
    parser.add_argument("--scale", choices=["quick", "default", "paper"], default=None,
                        help="parameter scale (default: $REPRO_SCALE or 'default')")
    parser.add_argument("--app", choices=["matmul", "bitonic"], default="matmul",
                        help="application for the ablations")
    parser.add_argument("--topology", choices=list(TOPOLOGY_KINDS), default="mesh",
                        help="interconnect for topology-sensitive experiments "
                             "(bitonic figures and ablations); the xtopo-* "
                             "experiments sweep topologies themselves")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="shard independent cells across N worker processes")
    parser.add_argument("--json", action="store_true",
                        help="also write benchmarks/results/<name>.<scale>.json")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, ignoring cached results")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="result/cache root (default: $REPRO_RESULTS_DIR "
                             "or benchmarks/results)")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    results_dir = (
        pathlib.Path(args.results_dir) if args.results_dir else default_results_dir()
    )
    names = EXPERIMENTS if args.experiment == "run-all" else [args.experiment]
    if args.no_cache:
        # run-all still dedups cells shared across experiments (Figures
        # 8/9/10) in memory; single experiments recompute everything.
        cache = MemoryCache() if args.experiment == "run-all" else None
    else:
        cache = ResultCache(results_dir / "cache")
    for i, name in enumerate(names):
        if args.topology != "mesh" and not get_spec(name).uses_topology:
            why = (
                "sweeps its topologies internally"
                if name.startswith("xtopo-")
                else "experiment is mesh-bound"
            )
            print(
                f"[{name}] note: {why}; --topology {args.topology} has no effect",
                file=sys.stderr,
            )
        try:
            run = run_experiment(
                name, scale=args.scale, app=args.app, jobs=args.jobs, cache=cache,
                topology=args.topology,
            )
        except ValueError as exc:
            # run-all must not abort the sweep over one incompatible axis
            # combination (e.g. --topology hypercube with a matmul-app
            # ablation); a single named experiment still fails loudly.
            if args.experiment != "run-all":
                raise
            print(f"[{name}] skipped: {exc}", file=sys.stderr)
            continue
        if i:
            print()
        print(run.table())
        if args.json:
            path = run.write_json(results_dir)
            print(
                f"[{name}] wrote {path} "
                f"({run.cells_cached}/{run.cells_total} cells cached)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
