"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig3 [--scale quick|default|paper]
    python -m repro fig8 --scale quick
    python -m repro ablation-tree-degree --app bitonic

Each command runs the corresponding experiment of
:mod:`repro.analysis.experiments` and prints its table; the ``--scale``
flag (or the ``REPRO_SCALE`` environment variable) selects the parameter
set.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    ablation_barrier,
    ablation_embedding,
    ablation_invalidation,
    ablation_remapping,
    ablation_tree_degree,
    bounded_memory_experiment,
    fig2_single_block_flow,
    fig3_matmul_blocksize,
    fig4_matmul_network,
    fig6_bitonic_keys,
    fig7_bitonic_network,
    fig8_barneshut_bodies,
    fig9_fig10_phase_views,
    fig11_barneshut_scaling,
    format_table,
    scale_params,
)

_COLUMNS = {
    "fig2": ["strategy", "mesh", "total_bytes", "congestion_bytes", "time"],
    "fig3": ["strategy", "block", "congestion_ratio", "time_ratio"],
    "fig4": ["strategy", "side", "congestion_ratio", "time_ratio"],
    "fig6": ["strategy", "keys", "congestion_ratio", "time_ratio"],
    "fig7": ["strategy", "side", "congestion_ratio", "time_ratio"],
    "fig8": ["strategy", "bodies", "congestion_msgs", "time", "hit_ratio"],
    "fig9": ["strategy", "bodies", "congestion_msgs", "time"],
    "fig10": ["strategy", "bodies", "congestion_msgs", "time", "local_compute", "comm_share"],
    "fig11": ["strategy", "mesh", "procs", "bodies", "congestion_msgs", "time", "comm_time"],
}

EXPERIMENTS = sorted(
    ["fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
     "ablation-tree-degree", "ablation-embedding", "ablation-barrier",
     "ablation-invalidation", "ablation-remapping", "bounded-memory"]
)


def _run(name: str, scale: Optional[str], app: str) -> str:
    if name == "fig2":
        p = scale_params("fig2", scale)
        rows = fig2_single_block_flow(**p)
    elif name == "fig3":
        p = scale_params("fig3", scale)
        rows = fig3_matmul_blocksize(side=p["side"], blocks=p["blocks"])
    elif name == "fig4":
        p = scale_params("fig4", scale)
        rows = fig4_matmul_network(sides=p["sides"], block_entries=p["block_entries"])
    elif name == "fig6":
        p = scale_params("fig6", scale)
        rows = fig6_bitonic_keys(side=p["side"], keys=p["keys"])
    elif name == "fig7":
        p = scale_params("fig7", scale)
        rows = fig7_bitonic_network(sides=p["sides"], keys=p["keys"])
    elif name in ("fig8", "fig9", "fig10"):
        p = scale_params("fig8", scale)
        rows8 = fig8_barneshut_bodies(
            side=p["side"], bodies=p["bodies"], steps=p["steps"], warm=p["warm"]
        )
        if name == "fig8":
            rows = rows8
        else:
            fig9, fig10 = fig9_fig10_phase_views(rows8)
            rows = fig9 if name == "fig9" else fig10
    elif name == "fig11":
        p = scale_params("fig11", scale)
        rows = fig11_barneshut_scaling(
            meshes=p["meshes"], bodies_per_proc=p["bodies_per_proc"],
            steps=p["steps"], warm=p["warm"],
        )
    elif name == "ablation-tree-degree":
        rows = ablation_tree_degree(app=app)
        return format_table(rows, ["strategy", "congestion_bytes", "time", "max_startups"],
                            title=f"tree-degree ablation ({app})")
    elif name == "ablation-embedding":
        rows = ablation_embedding(app=app)
        return format_table(rows, ["embedding", "congestion_bytes", "total_bytes", "time"],
                            title=f"embedding ablation ({app})")
    elif name == "ablation-invalidation":
        rows = ablation_invalidation()
        return format_table(rows, ["strategy", "variant", "congestion_bytes", "ctrl_msgs", "time"],
                            title="invalidation ablation (square vs general multiply)")
    elif name == "ablation-remapping":
        rows = ablation_remapping()
        return format_table(rows, ["remap_threshold", "remaps", "congestion_bytes", "time"],
                            title="node remapping ablation (hot broadcast variable)")
    elif name == "ablation-barrier":
        rows = ablation_barrier()
        return format_table(rows, ["barrier", "congestion_bytes", "time", "max_startups"],
                            title="barrier ablation")
    elif name == "bounded-memory":
        rows = bounded_memory_experiment()
        return format_table(rows, ["capacity_copies", "congestion_msgs", "evictions", "time"],
                            title="bounded-memory / LRU replacement")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    for row in rows:
        row.pop("result", None)
    return format_table(rows, _COLUMNS[name], title=f"{name} ({scale or 'default'} scale)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures on the simulated GCel.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ["list"],
                        help="figure / ablation to run, or 'list'")
    parser.add_argument("--scale", choices=["quick", "default", "paper"], default=None,
                        help="parameter scale (default: $REPRO_SCALE or 'default')")
    parser.add_argument("--app", choices=["matmul", "bitonic"], default="matmul",
                        help="application for the ablations")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    print(_run(args.experiment, args.scale, args.app))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
