"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig3 [--scale quick|default|paper]
    python -m repro fig8 --scale quick --jobs 4
    python -m repro ablation-tree-degree --workload bitonic
    python -m repro ablation-embedding --workload zipf
    python -m repro fig6 --topology torus
    python -m repro xwork-zipf --json
    python -m repro xstrat --json
    python -m repro xcap --scale quick --json
    python -m repro run-all --scale quick --jobs 4 --json
    python -m repro trace-record --workload bitonic --strategy 2-4-ary \
        --side 4 --trace /tmp/bitonic.trace.gz
    python -m repro trace-replay --trace /tmp/bitonic.trace.gz --strategy fixed-home
    python -m repro loadgen --workload zipf --strategy migratory \
        --requests 20000 --rate 50000 --arrival bursty --json
    python -m repro serve --selfcheck
    python -m repro serve --port 7411

Each experiment command resolves the corresponding
:class:`repro.exp.ExperimentSpec` from the registry, shards its
independent cells across ``--jobs`` processes, and prints the table;
``--json`` additionally writes the machine-readable result file
(``benchmarks/results/<name>.<scale>.json``) that CI consumes.  Finished
cells are cached content-addressed under ``benchmarks/results/cache/`` so
re-runs and resumed sweeps skip them; ``--no-cache`` forces
recomputation.  The ``--scale`` flag (or the ``REPRO_SCALE`` environment
variable) selects the parameter set; see EXPERIMENTS.md.

``trace-record`` runs one workload with access-trace recording and saves
the trace; ``trace-replay`` re-simulates a saved trace under any strategy
× topology (every axis defaults to the recorded configuration).

``loadgen`` drives a serving session with a seeded open-loop request
stream (any registered arrival process over any workload's access mix)
and prints requests/sec plus latency percentiles; ``serve`` runs the
asyncio TCP frontend (``--selfcheck`` for a bounded self-test over a
real socket).  See ARCHITECTURE.md ("Serving").
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .exp import (
    EXPERIMENTS,
    MemoryCache,
    ResultCache,
    default_results_dir,
    get_spec,
    run_experiment,
)
from .network import TOPOLOGY_KINDS

_TRACE_COMMANDS = ("trace-record", "trace-replay")
_SERVE_COMMANDS = ("serve", "loadgen")


def _serve_main(args: argparse.Namespace) -> int:
    """The serve / loadgen commands (lazy imports: the serving layer is
    not needed for figure regeneration)."""
    import json

    from .core.registry import parse_strategy_spec
    from .network.topology import make_topology

    strategy = args.strategy or "4-ary"
    try:
        parse_strategy_spec(strategy)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.experiment == "serve":
        from .serve import ServeSession
        from .serve.frontend import selfcheck, serve_forever

        if args.selfcheck:
            out = selfcheck(side=args.side, strategy=strategy, seed=args.seed)
            print(json.dumps(out))
            return 0
        topo = make_topology(args.topology or "mesh", args.side)
        session = ServeSession(
            topo, strategy, seed=args.seed,
            max_queue=args.max_queue, max_inflight=args.max_inflight,
        )
        serve_forever(session, args.host, args.port)
        return 0

    from .analysis.tables import format_table
    from .serve import ServeSession, get_arrival, run_fleet, run_loadgen

    try:
        get_arrival(args.arrival)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.requests < 1 or args.rate <= 0:
        print("error: --requests must be >= 1 and --rate > 0", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and args.trace is not None:
        print("error: --trace needs a single session (--workers 1)",
              file=sys.stderr)
        return 2
    topo = make_topology(args.topology or "mesh", args.side)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    fleet = None
    if args.workers > 1:
        def make_session():
            return ServeSession(
                topo, strategy, seed=args.seed,
                max_queue=args.max_queue, max_inflight=args.max_inflight,
                exact_latency=args.exact_latency,
            )

        fleet = run_fleet(
            make_session, workers=args.workers,
            workload=args.workload, arrival=args.arrival,
            rate=args.rate, requests=args.requests, seed=args.seed,
        )
        report = None
    else:
        session = ServeSession(
            topo, strategy, seed=args.seed,
            max_queue=args.max_queue, max_inflight=args.max_inflight,
            exact_latency=args.exact_latency,
        )
        report = run_loadgen(
            session, workload=args.workload, arrival=args.arrival,
            rate=args.rate, requests=args.requests, seed=args.seed,
        )
    if profiler is not None:
        profiler.disable()

    results_dir = (
        pathlib.Path(args.results_dir) if args.results_dir
        else default_results_dir()
    )
    if args.trace is not None:
        path = session.trace(params=report.extra).save(args.trace)
        print(f"recorded served stream -> {path}", file=sys.stderr)
    if fleet is not None:
        f = fleet.fleet
        row = {
            "strategy": f["strategy"],
            "network": f["network"],
            "workers": f["workers"],
            "requests": f["requests"],
            "rejected": f["rejected"],
            "req/s": round(f["requests_per_sec"], 1),
            "p50": f["latency_p50"],
            "p95": f["latency_p95"],
            "p99": f["latency_p99"],
            "hit_rate": round(f["hit_rate"], 4),
        }
        payload = fleet.to_dict()
    else:
        row = {
            "strategy": report.strategy,
            "network": report.network,
            "requests": report.requests,
            "rejected": report.rejected,
            "req/s": round(report.requests_per_sec, 1),
            "p50": report.latency_p50,
            "p95": report.latency_p95,
            "p99": report.latency_p99,
            "hit_rate": round(report.hit_rate, 4),
        }
        payload = report.as_dict()
    print(format_table([row], list(row), title="loadgen"))
    if args.json:
        results_dir.mkdir(parents=True, exist_ok=True)
        path = results_dir / "SERVE_loadgen.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"[loadgen] wrote {path}", file=sys.stderr)
    if profiler is not None:
        results_dir.mkdir(parents=True, exist_ok=True)
        ppath = results_dir / "SERVE_profile.pstats"
        profiler.dump_stats(ppath)
        print(f"[loadgen] wrote {ppath}", file=sys.stderr)
    return 0


def _trace_main(args: argparse.Namespace) -> int:
    """The trace-record / trace-replay commands (lazy imports: the trace
    machinery is not needed for figure regeneration)."""
    from .analysis.tables import format_table
    from .core.registry import parse_strategy_spec
    from .network.topology import make_topology
    from .workloads import get_workload, record, replay
    from .workloads.trace import Trace

    if args.trace is None:
        print("error: --trace PATH is required for trace commands", file=sys.stderr)
        return 2
    if args.strategy is not None:
        try:
            # Any registry spec works ("dynrep:threshold=3", "tree:4-8");
            # reject malformed ones before running anything.
            parse_strategy_spec(args.strategy)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.failures is not None:
        from .network.failures import parse_failure_spec

        try:
            parse_failure_spec(args.failures)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.experiment == "trace-record":
        wl = get_workload(args.workload)
        topo = make_topology(args.topology or "mesh", args.side)
        params = None
        if args.size is not None:
            if wl.size_param is None:
                print(f"error: workload {wl.name!r} has no size parameter", file=sys.stderr)
                return 2
            params = {wl.size_param: args.size}
        result, trace = record(
            wl, topo, args.strategy or "4-ary", seed=args.seed, params=params,
            path=args.trace, failures=args.failures,
        )
        n_ops = sum(len(stream) for stream in trace.ops)
        print(f"recorded {wl.name} on {topo.label} under {result.strategy}: "
              f"{n_ops} ops, {len(trace.creates())} variables -> {args.trace}",
              file=sys.stderr)
        rows = [_summary_row(result)]
    else:
        from .workloads.trace import retarget_topology

        trace = Trace.load(args.trace)
        topo = None
        if args.topology is not None:
            try:
                topo = retarget_topology(trace.header["topology"], args.topology)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        result = replay(trace, topology=topo, strategy=args.strategy,
                        failures=args.failures)
        rows = [_summary_row(result)]
    print(format_table(rows, list(rows[0]), title=args.experiment))
    return 0


def _summary_row(result):
    row = {
        "strategy": result.strategy,
        "network": result.mesh,
        "time": result.time,
        "congestion_bytes": result.congestion_bytes,
        "congestion_msgs": result.congestion_msgs,
        "total_bytes": result.total_bytes,
        "total_msgs": result.stats.total_msgs,
    }
    if result.failure_events:
        # Zero-failure tables keep the historic shape; failure runs add
        # the availability columns.
        row.update(
            requests_failed=result.requests_failed,
            requests_stalled=result.requests_stalled,
            requests_retried=result.requests_retried,
            repairs=result.repairs,
            failure_events=result.failure_events,
        )
    return row


def main(argv: Optional[List[str]] = None) -> int:
    from .workloads import workload_names

    workloads = workload_names()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures on the simulated GCel.",
    )
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ["list", "run-all", *_TRACE_COMMANDS,
                                               *_SERVE_COMMANDS],
                        help="figure / ablation to run, 'run-all', 'list', "
                             "a trace command, or a serve command")
    parser.add_argument("--scale", choices=["quick", "default", "paper"], default=None,
                        help="parameter scale (default: $REPRO_SCALE or 'default')")
    parser.add_argument("--workload", "--app", choices=workloads, default="matmul",
                        dest="workload", metavar="NAME",
                        help="workload for the workload-sensitive experiments "
                             f"and trace-record ({', '.join(workloads)}; "
                             "--app is the deprecated alias)")
    parser.add_argument("--topology", choices=list(TOPOLOGY_KINDS), default=None,
                        help="interconnect for topology-sensitive experiments "
                             "(bitonic figures, ablations, xwork-readfrac, "
                             "xcap; default mesh) and the trace commands; the "
                             "xtopo-*/xwork-zipf/xscale/xstrat experiments "
                             "sweep topologies themselves")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="shard independent cells across N worker processes")
    parser.add_argument("--nodes", default=None, metavar="N[,N...]",
                        help="override the machine sizes swept by xscale "
                             "(comma-separated node counts, powers of two; "
                             "e.g. --nodes 16384,131072); only valid with "
                             "the xscale experiment")
    parser.add_argument("--json", action="store_true",
                        help="also write benchmarks/results/<name>.<scale>.json")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, ignoring cached results")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="result/cache root (default: $REPRO_RESULTS_DIR "
                             "or benchmarks/results)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="trace file to write (trace-record) or read "
                             "(trace-replay); .gz compresses")
    parser.add_argument("--strategy", default=None, metavar="SPEC",
                        help="strategy for the trace commands -- any registry "
                             "spec, e.g. 2-4-ary, migratory, dynrep:threshold=3, "
                             "tree:4-8:embed=random (trace-replay default: the "
                             "recorded one)")
    parser.add_argument("--failures", default=None, metavar="SPEC",
                        help="failure-schedule spec (e.g. "
                             "linkflap:rate=0.01:seed=7, churn:nodes=0.05, "
                             "nodedown:node=3:at=0.001, none): sweeps the "
                             "xfail experiment over just that spec, applies "
                             "to the trace commands (trace-replay default: "
                             "the recorded schedule); 'none' is the explicit "
                             "no-op accepted everywhere")
    parser.add_argument("--side", type=int, default=4, metavar="N",
                        help="grid side for trace-record (default 4)")
    parser.add_argument("--size", type=int, default=None, metavar="N",
                        help="workload size for trace-record (its size "
                             "parameter, e.g. keys/ops)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for trace-record and the serve commands")
    parser.add_argument("--requests", type=int, default=10000, metavar="N",
                        help="loadgen: requests to offer (default 10000)")
    parser.add_argument("--rate", type=float, default=50000.0, metavar="R",
                        help="loadgen: offered load in requests per simulated "
                             "second (default 50000)")
    parser.add_argument("--arrival", default="poisson", metavar="NAME",
                        help="loadgen: arrival process (poisson, bursty, or "
                             "any registered name; default poisson)")
    parser.add_argument("--max-queue", type=int, default=65536, metavar="N",
                        help="serve/loadgen: ingest-queue admission bound")
    parser.add_argument("--max-inflight", type=int, default=8192, metavar="N",
                        help="serve/loadgen: in-flight request window")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7411,
                        help="serve: TCP port (default 7411; 0 = ephemeral)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="serve: run a bounded self-test over a real "
                             "socket and exit (prints JSON)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="loadgen: shard the request stream across N "
                             "engine replicas in worker processes "
                             "(default 1 = single session, no fork)")
    parser.add_argument("--profile", action="store_true",
                        help="loadgen: run under cProfile and write "
                             "SERVE_profile.pstats next to the JSON report")
    parser.add_argument("--exact-latency", action="store_true",
                        help="loadgen: retain every latency sample "
                             "(exact percentiles, O(requests) memory) "
                             "instead of the streaming sketch")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    if args.experiment in _TRACE_COMMANDS:
        return _trace_main(args)
    if args.experiment in _SERVE_COMMANDS:
        return _serve_main(args)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    topology = args.topology or "mesh"
    param_overrides = None
    if args.nodes is not None:
        if args.experiment != "xscale":
            parser.error("--nodes only applies to the xscale experiment")
        try:
            nodes = tuple(int(tok) for tok in args.nodes.split(","))
        except ValueError:
            parser.error(f"--nodes expects comma-separated integers, got {args.nodes!r}")
        if not nodes or any(n < 2 for n in nodes):
            parser.error("--nodes values must be >= 2")
        param_overrides = {"nodes": nodes}
    if args.failures is not None:
        from .network.failures import parse_failure_spec

        try:
            parse_failure_spec(args.failures)
        except ValueError as exc:
            parser.error(str(exc))
        if args.experiment == "xfail":
            param_overrides = {**(param_overrides or {}),
                               "failures": (args.failures,)}
        elif args.failures != "none":
            # "none" is a universal no-op (the zero-failure fast path is
            # byte-identical); an actual schedule only drives xfail.
            parser.error("--failures SPEC only applies to the xfail "
                         "experiment and the trace commands "
                         "(--failures none is accepted everywhere)")

    results_dir = (
        pathlib.Path(args.results_dir) if args.results_dir else default_results_dir()
    )
    names = EXPERIMENTS if args.experiment == "run-all" else [args.experiment]
    if args.no_cache:
        # run-all still dedups cells shared across experiments (Figures
        # 8/9/10) in memory; single experiments recompute everything.
        cache = MemoryCache() if args.experiment == "run-all" else None
    else:
        cache = ResultCache(results_dir / "cache")
    for i, name in enumerate(names):
        if topology != "mesh" and not get_spec(name).uses_topology:
            why = (
                "sweeps its topologies internally"
                if name.startswith(("xtopo-", "xwork-", "xscale", "xstrat"))
                else "experiment is mesh-bound"
            )
            print(
                f"[{name}] note: {why}; --topology {topology} has no effect",
                file=sys.stderr,
            )
        try:
            run = run_experiment(
                name, scale=args.scale, workload=args.workload, jobs=args.jobs,
                cache=cache, topology=topology, param_overrides=param_overrides,
            )
        except ValueError as exc:
            # run-all must not abort the sweep over one incompatible axis
            # combination (e.g. --topology hypercube with a matmul-workload
            # ablation); a single named experiment still fails loudly.
            if args.experiment != "run-all":
                raise
            print(f"[{name}] skipped: {exc}", file=sys.stderr)
            continue
        if i:
            print()
        print(run.table())
        if run.peak_rss_mb is not None:
            print(f"[{name}] peak worker RSS: {run.peak_rss_mb:.1f} MiB",
                  file=sys.stderr)
        if args.json:
            path = run.write_json(results_dir)
            print(
                f"[{name}] wrote {path} "
                f"({run.cells_cached}/{run.cells_total} cells cached)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
