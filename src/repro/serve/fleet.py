"""Shard-parallel serving fleet: N engine replicas in worker processes.

One :class:`~repro.serve.session.ServeSession` is single-threaded by
construction (one event heap, one strategy state).  The fleet scales
serving *out* instead of up: the offered request stream is partitioned
deterministically across ``workers`` independent engine replicas, each
running the full session + loadgen stack in its own forked process with
a derived seed, and the per-worker results are merged into one
:class:`FleetReport`:

* counters (accepted / rejected / completed / hits / misses) merge by
  integer addition -- order-exact, so the aggregate is independent of
  worker scheduling;
* latency percentiles merge through the
  :class:`~repro.metrics.StreamingQuantiles` sketch (bucket addition):
  the merged percentiles equal a single sketch fed the concatenation of
  every worker's samples, which is what the fleet property tests pin;
* link traffic merges through :meth:`LinkStats.merge_state
  <repro.network.stats.LinkStats.merge_state>` into a fleet-wide
  accumulator (sharded :class:`~repro.network.stats.LinkStats`);
* throughput aggregates as total completed requests over the slowest
  worker's wall clock -- the fleet serves shards concurrently, so the
  makespan is the widest worker.

``workers=1`` never forks: :func:`run_fleet` falls through to a plain
:func:`~repro.serve.loadgen.run_loadgen` call in-process, byte-identical
to driving the session directly.

Determinism: worker ``i`` of ``N`` serves ``requests // N`` (+1 for the
first ``requests % N`` workers) requests with loadgen seed
``spawn_seed(seed, i)`` (derived via :class:`numpy.random.SeedSequence`
spawning, so worker streams are independent and reproducible).  The
same ``(seed, workers, requests)`` triple always produces the same
fleet report, whatever the interleaving of the worker processes.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..metrics import StreamingQuantiles, latency_percentiles
from .loadgen import run_loadgen
from .session import ServeReport, ServeSession

__all__ = ["FleetReport", "run_fleet", "spawn_seed", "split_requests"]


def split_requests(requests: int, workers: int) -> List[int]:
    """Deterministic shard sizes: as even as possible, remainder to the
    lowest-indexed workers, every shard nonempty when ``requests >=
    workers``."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if requests < workers:
        raise ValueError(
            f"cannot shard {requests} requests across {workers} workers "
            "(each worker needs at least one request)"
        )
    base, extra = divmod(requests, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def spawn_seed(seed: int, worker: int) -> int:
    """Worker ``worker``'s derived loadgen seed (SeedSequence spawning:
    independent streams, reproducible from the parent seed alone)."""
    child = np.random.SeedSequence(seed).spawn(worker + 1)[worker]
    return int(child.generate_state(1, dtype=np.uint64)[0])


@dataclass
class FleetReport:
    """Merged result of a fleet run: per-worker reports plus aggregates.

    ``workers`` holds each replica's full :class:`ServeReport` (its shard
    size, seed, and counters in ``extra``); ``fleet`` is the merged view
    -- summed counters, sketch-merged percentiles, fleet-wide link
    aggregates, and ``requests_per_sec`` = total completed / slowest
    worker wall clock."""

    workers: List[ServeReport]
    fleet: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fleet": dict(self.fleet),
            "workers": [w.as_dict() for w in self.workers],
        }


def _run_worker(
    index: int,
    make_session: Callable[[], ServeSession],
    loadgen_opts: Dict[str, Any],
    out_q,
) -> None:
    """Worker body (forked): fresh session, its shard of the load, state
    shipped back through the queue."""
    try:
        session = make_session()
        report = run_loadgen(session, **loadgen_opts)
        lat_sim = session._lat_sim
        lat_wall = session._lat_wall
        out_q.put((index, {
            "report": report,
            "links": session.rt.sim.stats.state(),
            "lat_sim": _lat_state(lat_sim),
            "lat_wall": _lat_state(lat_wall),
        }))
    except BaseException as exc:  # surfaced by the parent as a fleet error
        out_q.put((index, {"error": repr(exc)}))
        raise


def _lat_state(store) -> Dict[str, Any]:
    if isinstance(store, StreamingQuantiles):
        return {"kind": "sketch", "state": store.state()}
    return {"kind": "exact", "values": np.asarray(store, dtype=np.float64)}


def _lat_merge(states: List[Dict[str, Any]]):
    """One merged latency store from per-worker states: sketches merge by
    bucket addition; exact arrays concatenate."""
    if all(s["kind"] == "sketch" for s in states):
        merged = StreamingQuantiles()
        for s in states:
            merged.merge(StreamingQuantiles.from_state(s["state"]))
        return merged
    vals = np.concatenate([
        np.asarray(s["values"], dtype=np.float64) if s["kind"] == "exact"
        else np.empty(0)
        for s in states
    ])
    return vals


def run_fleet(
    make_session: Callable[[], ServeSession],
    *,
    workers: int = 1,
    requests: int = 10_000,
    seed: int = 0,
    **loadgen_opts: Any,
) -> FleetReport:
    """Run ``requests`` total requests across ``workers`` engine replicas.

    ``make_session`` builds one fresh :class:`ServeSession` (called once
    per worker, inside the forked process); remaining keyword options are
    forwarded to :func:`~repro.serve.loadgen.run_loadgen`.  With
    ``workers=1`` the call never forks and is byte-identical to
    ``run_loadgen(make_session(), requests=requests, seed=seed, ...)``.
    """
    if workers == 1:
        session = make_session()
        report = run_loadgen(session, requests=requests, seed=seed, **loadgen_opts)
        fleet = _aggregate(
            [report],
            [session.rt.sim.stats.state()],
            [_lat_state(session._lat_sim)],
            [_lat_state(session._lat_wall)],
            topology=session.rt.sim.topology,
        )
        return FleetReport(workers=[report], fleet=fleet)

    shards = split_requests(requests, workers)
    ctx = mp.get_context("fork")
    out_q = ctx.Queue()
    procs = []
    for i in range(workers):
        opts = dict(loadgen_opts)
        opts["requests"] = shards[i]
        opts["seed"] = spawn_seed(seed, i)
        p = ctx.Process(
            target=_run_worker, args=(i, make_session, opts, out_q)
        )
        p.start()
        procs.append(p)
    results: List[Optional[Dict[str, Any]]] = [None] * workers
    for _ in range(workers):
        i, payload = out_q.get()
        results[i] = payload
    for p in procs:
        p.join()
    errors = [
        f"worker {i}: {r['error']}"
        for i, r in enumerate(results)
        if r is not None and "error" in r
    ]
    if errors:
        raise RuntimeError("fleet worker(s) failed: " + "; ".join(errors))

    reports = [r["report"] for r in results]
    # Annotate each worker's report with its shard parameters so the
    # fleet JSON is self-describing.
    for i, rep in enumerate(reports):
        rep.extra.update(worker=i, workers=workers, parent_seed=seed)
    fleet = _aggregate(
        reports,
        [r["links"] for r in results],
        [r["lat_sim"] for r in results],
        [r["lat_wall"] for r in results],
        topology=None,
        make_session=make_session,
    )
    return FleetReport(workers=reports, fleet=fleet)


def _aggregate(
    reports: List[ServeReport],
    link_states: List[Dict[str, Any]],
    lat_sim_states: List[Dict[str, Any]],
    lat_wall_states: List[Dict[str, Any]],
    topology=None,
    make_session: Optional[Callable[[], ServeSession]] = None,
) -> Dict[str, Any]:
    """The merged fleet view (the ``"fleet"`` half of the report JSON)."""
    from ..network.stats import LinkStats

    if topology is None:
        # Rebuild a throwaway session to recover the topology shape for
        # the fleet-wide LinkStats accumulator (cheap: no requests run).
        topology = make_session().rt.sim.topology
    links = LinkStats(topology)
    for st in link_states:
        links.merge_state(st)
    snap = links.snapshot()

    lat_sim = _lat_merge(lat_sim_states)
    lat_wall = _lat_merge(lat_wall_states)
    pct = latency_percentiles(lat_sim)
    wall_pct = latency_percentiles(lat_wall)

    completed = sum(r.requests for r in reports)
    hits = sum(r.hits for r in reports)
    misses = sum(r.misses for r in reports)
    n_acc = hits + misses
    max_wall = max((r.wall_seconds for r in reports), default=0.0)
    sim_time = max((r.sim_time for r in reports), default=0.0)
    return {
        "workers": len(reports),
        "strategy": reports[0].strategy if reports else "",
        "network": reports[0].network if reports else "",
        "engine": reports[0].engine if reports else "",
        "requests": completed,
        "accepted": sum(r.accepted for r in reports),
        "rejected": sum(r.rejected for r in reports),
        "created": sum(r.created for r in reports),
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / n_acc if n_acc else 0.0,
        "evictions": sum(r.evictions for r in reports),
        "sim_time": sim_time,
        "wall_seconds": max_wall,
        "requests_per_sec": completed / max_wall if max_wall > 0 else 0.0,
        "latency_p50": pct["p50"],
        "latency_p95": pct["p95"],
        "latency_p99": pct["p99"],
        "wall_p50": wall_pct["p50"],
        "wall_p95": wall_pct["p95"],
        "wall_p99": wall_pct["p99"],
        "storage_cost": sum(r.storage_cost for r in reports),
        "total_bytes": snap.total_bytes,
        "total_msgs": snap.total_msgs,
        "congestion_bytes": snap.congestion_bytes,
        "congestion_msgs": snap.congestion_msgs,
        "effective_network_usage": (
            snap.total_bytes / completed if completed else 0.0
        ),
    }
