"""Asyncio TCP ingest frontend: newline-delimited JSON requests.

Wire protocol (one JSON object per line, response mirrors any ``id``):

.. code-block:: text

    {"op": "create", "proc": 0, "payload": 256}      -> {"ok": true, "vid": 0}
    {"op": "read",  "proc": 3, "vid": 0}             -> {"ok": true, "time": t, "value": v}
    {"op": "write", "proc": 3, "vid": 0, "value": 1} -> {"ok": true, "time": t}
    {"op": "stats"}                                  -> {"ok": true, ...snapshot...}

A rejected request (admission control) answers ``{"ok": false, "error":
"busy"}`` -- clients are expected to back off.  Reads and writes are
answered when the simulated operation *completes*; the frontend's pump
task micro-batches everything submitted since the last engine epoch
(every ``batch_interval`` wall seconds), so responses arrive in bursts.
Live requests are mapped onto the simulated clock ``tick`` seconds
apart (the open-loop :mod:`~repro.serve.loadgen` is the tool for
*controlled* arrival processes; the frontend serves whatever shows up).

Everything runs on one thread: handlers only touch the session between
pumps, and ``pump`` itself is a plain blocking call inside the event
loop -- micro-batching keeps each call short.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, Optional

from .session import ServeSession

__all__ = ["ServeFrontend", "selfcheck", "serve_forever"]


class ServeFrontend:
    """TCP server feeding a :class:`~repro.serve.session.ServeSession`."""

    def __init__(
        self,
        session: ServeSession,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick: float = 1e-6,
        batch_interval: float = 0.005,
    ):
        self.session = session
        self.host = host
        self.port = port
        self.tick = tick
        self.batch_interval = batch_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._closing = False

    async def start(self) -> "ServeFrontend":
        self._server = await asyncio.start_server(self._client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump_loop())
        return self

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()

    async def aclose(self) -> None:
        self._closing = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------ pump
    async def _pump_loop(self) -> None:
        sess = self.session
        while not self._closing:
            await asyncio.sleep(self.batch_interval)
            if sess.queue_depth or sess.inflight:
                # Serve everything that arrived since the last epoch.  No
                # horizon: live arrivals are assigned at the simulated
                # clock as they come in (there is no predetermined future
                # stream to stay behind, unlike the open-loop loadgen), so
                # a full drain is always timeline-exact.
                sess.pump()

    def _next_arrival(self) -> float:
        floor = self.session.arrival_floor + self.tick
        now = self.session.rt.sim.now
        return floor if floor > now else now

    # --------------------------------------------------------------- clients
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        tasks = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                tasks.append(asyncio.create_task(
                    self._handle(line, writer, wlock)))
        finally:
            for t in tasks:
                if not t.done():
                    t.cancel()
            writer.close()

    async def _handle(self, line: bytes, writer: asyncio.StreamWriter,
                      wlock: asyncio.Lock) -> None:
        reply: Dict[str, Any]
        msg_id = None
        try:
            msg = json.loads(line)
            msg_id = msg.get("id")
            reply = await self._dispatch(msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # malformed input must not kill the server
            reply = {"ok": False, "error": str(exc)}
        if msg_id is not None:
            reply["id"] = msg_id
        data = (json.dumps(reply, separators=(",", ":")) + "\n").encode()
        async with wlock:
            writer.write(data)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        sess = self.session
        op = msg.get("op")
        if op == "stats":
            return {"ok": True, **sess.snapshot()}
        if op == "create":
            vid = sess.create(int(msg.get("proc", 0)), int(msg.get("payload", 256)))
            return {"ok": True, "vid": vid}
        if op in ("read", "write"):
            fut = asyncio.get_running_loop().create_future()

            def done(_item, t, value, fut=fut):
                if not fut.done():
                    fut.set_result((t, value))

            ok = sess.try_submit(
                "r" if op == "read" else "w",
                int(msg["proc"]),
                int(msg["vid"]),
                value=msg.get("value", 0),
                arrival=self._next_arrival(),
                on_done=done,
            )
            if not ok:
                return {"ok": False, "error": "busy"}
            t, value = await fut
            reply = {"ok": True, "time": t}
            if op == "read":
                reply["value"] = value
            return reply
        return {"ok": False, "error": f"unknown op {op!r}"}


def serve_forever(
    session: ServeSession,
    host: str = "127.0.0.1",
    port: int = 7411,
    *,
    tick: float = 1e-6,
    batch_interval: float = 0.005,
) -> None:
    """Run the frontend until interrupted (the ``repro serve`` command)."""

    async def main() -> None:
        fe = await ServeFrontend(
            session, host, port, tick=tick, batch_interval=batch_interval
        ).start()
        print(f"serving {session.rt.strategy.name} on "
              f"{session.rt.sim.topology.label}: {fe.host}:{fe.port}",
              file=sys.stderr)
        try:
            await fe.wait_closed()
        finally:
            await fe.aclose()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


def selfcheck(
    side: int = 4,
    strategy: str = "4-ary",
    *,
    requests: int = 200,
    clients: int = 4,
    n_vars: int = 16,
    seed: int = 0,
) -> Dict[str, Any]:
    """End-to-end exercise over a real socket; returns summary metrics.

    Starts a frontend on an ephemeral port, runs ``clients`` concurrent
    TCP clients issuing seeded reads/writes, shuts down, and reports --
    bounded and self-contained, so documentation examples and CI can run
    ``repro serve --selfcheck`` without hanging.
    """
    import random

    from ..network.mesh import Mesh2D

    async def client(port: int, rank: int, count: int) -> int:
        rng = random.Random(seed * 1000003 + rank)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        answered = 0
        for i in range(count):
            op = "read" if rng.random() < 0.8 else "write"
            req = {"op": op, "proc": rng.randrange(side * side),
                   "vid": rng.randrange(n_vars), "id": i}
            if op == "write":
                req["value"] = i
            writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
        for _ in range(count):
            line = await reader.readline()
            reply = json.loads(line)
            if reply.get("ok"):
                answered += 1
        writer.close()
        return answered

    async def main() -> Dict[str, Any]:
        session = ServeSession(Mesh2D(side, side), strategy, seed=seed)
        for vid in range(n_vars):
            session.create(vid % session.n_procs, 256)
        fe = await ServeFrontend(session, batch_interval=0.002).start()
        per = requests // clients
        answered = sum(await asyncio.gather(
            *(client(fe.port, r, per) for r in range(clients))
        ))
        await fe.aclose()
        rep = session.close()
        return {
            "selfcheck": "ok",
            "clients": clients,
            "answered": answered,
            "requests": rep.requests,
            "rejected": rep.rejected,
            "requests_per_sec": rep.requests_per_sec,
            "latency_p50": rep.latency_p50,
            "latency_p99": rep.latency_p99,
            "hit_rate": rep.hit_rate,
        }

    return asyncio.run(main())
