"""Seeded open-loop load generation over registered workloads' access mixes.

An *arrival process* turns a target request rate into interarrival gaps
(registered by name -- see :func:`register_arrival` and ARCHITECTURE.md
"Adding an arrival process").  An *access sampler* turns a registered
workload into a distribution over ``(variable, read/write)`` draws: the
synthetic workloads expose their zipf/uniform parameters directly, and
any other workload is sampled *empirically* from a small recorded trace
of its read/write stream.  :func:`run_loadgen` composes the two into an
open-loop driver: arrivals are generated ahead of service (rejected
requests are counted, never silently dropped), fed to a
:class:`~repro.serve.session.ServeSession` epoch by epoch, and the
engine is pumped to each epoch's horizon.

Everything is driven by one seeded ``numpy`` generator, so a loadgen run
is reproducible draw for draw -- same seed, same trace, same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..core.specs import SpecGrammar
from ..workloads.base import get_workload
from ..workloads.synthetic import zipf_weights
from .session import ServeReport, ServeSession

__all__ = [
    "ArrivalProcess",
    "access_sampler",
    "arrival_names",
    "get_arrival",
    "register_arrival",
    "run_loadgen",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """One registered arrival process (the serving-side analogue of
    :class:`repro.core.registry.StrategyFamily`): a factory plus the
    spec parameters the shared grammar resolves."""

    name: str
    factory: Callable[..., Callable]
    defaults: Dict[str, Any] = field(default_factory=dict)
    param_types: Dict[str, type] = field(default_factory=dict)


#: name -> registered process; each wraps
#: factory(rate, **opts) -> draw(rng, size) -> gaps ndarray
_ARRIVALS: Dict[str, ArrivalProcess] = {}


def register_arrival(name: str, **defaults: Any) -> Callable:
    """Register an arrival-process factory under ``name``.

    The factory takes the target rate (requests per simulated second)
    plus keyword options and returns ``draw(rng, size)`` yielding
    ``size`` nonnegative interarrival gaps.  ``defaults`` declares the
    options addressable from a spec string (``bursty:burst=16``); an
    undeclared option stays callable-only.
    """

    def deco(factory: Callable) -> Callable:
        if name in _ARRIVALS:
            raise ValueError(f"arrival process {name!r} already registered")
        _ARRIVALS[name] = ArrivalProcess(
            name=name, factory=factory, defaults=dict(defaults)
        )
        return factory

    return deco


#: The arrival-process registration against the shared grammar
#: (:mod:`repro.core.specs`); spec strings are new here -- bare names
#: were the whole historic surface -- so only the unknown-name message
#: predates the grammar.
_GRAMMAR = SpecGrammar(
    spec_kind="arrival",
    entry_kind="arrival process",
    registry=_ARRIVALS,
    unknown_head=lambda head: (
        f"unknown arrival process {head!r} (have: {', '.join(arrival_names())})"
    ),
)


def get_arrival(spec: str) -> Callable:
    """The factory addressed by ``spec`` -- a bare registered name
    (``"poisson"``) or a parameterized spec string
    (``"bursty:burst=16"``).  Spec parameters become the factory's
    defaults; explicit keyword options at the call site win."""
    proc, params = _GRAMMAR.parse(spec)

    def factory(rate: float, **opts: Any) -> Callable:
        return proc.factory(rate, **{**params, **opts})

    return factory


def arrival_names() -> Tuple[str, ...]:
    return tuple(sorted(_ARRIVALS))


@register_arrival("poisson")
def _poisson(rate: float, **_: Any) -> Callable:
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    mean = 1.0 / rate

    def draw(rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(mean, size=size)

    return draw


@register_arrival("bursty", burst=8)
def _bursty(rate: float, *, burst: int = 8, **_: Any) -> Callable:
    """On/off arrivals: bursts of ``burst`` simultaneous requests, with
    exponential inter-burst gaps of mean ``burst/rate`` (same long-run
    rate as poisson, far spikier queueing)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if burst < 1:
        raise ValueError("burst must be >= 1")
    mean = burst / rate

    def draw(rng: np.random.Generator, size: int) -> np.ndarray:
        n_bursts = -(-size // burst)
        gaps = np.zeros(n_bursts * burst)
        gaps[::burst] = rng.exponential(mean, size=n_bursts)
        return gaps[:size]

    return draw


def access_sampler(
    workload: str = "zipf",
    params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
) -> Tuple[int, int, Callable]:
    """``(n_vars, payload_bytes, draw)`` sampling a workload's access mix.

    ``draw(rng, size)`` returns ``(vids, is_read)`` arrays.  Synthetic
    workloads with declared ``n_vars``/``alpha``/``read_frac`` parameters
    are sampled analytically; any other registered workload is sampled
    empirically from a small recorded trace of its read/write ops (vid
    popularity histogram + observed read fraction).
    """
    wl = get_workload(workload)
    resolved = wl.resolve_params(params)
    if "n_vars" in resolved:
        n_vars = int(resolved["n_vars"])
        alpha = float(resolved.get("alpha", 0.0))
        weights = zipf_weights(n_vars, alpha)
        read_frac = float(resolved.get("read_frac", 0.9))
        payload = int(resolved.get("payload", 256))
    else:
        if params:
            raise ValueError(
                f"workload {workload!r} is sampled empirically; its parameters "
                "are not adjustable from the loadgen"
            )
        from ..network.mesh import Mesh2D
        from ..workloads.trace import record as trace_record

        _, tr = trace_record(wl, Mesh2D(4, 4), "fixed-home", seed=seed)
        counts: Dict[int, int] = {}
        reads = writes = 0
        payload_by_vid: Dict[int, int] = {
            vid: payload for vid, _, payload in tr.creates()
        }
        for stream in tr.ops:
            for op in stream:
                if op[0] == "r":
                    reads += 1
                elif op[0] == "w":
                    writes += 1
                else:
                    continue
                counts[op[1]] = counts.get(op[1], 0) + 1
        if not counts:
            raise ValueError(
                f"workload {workload!r} has no read/write accesses to sample"
            )
        vids = sorted(counts)
        n_vars = len(vids)
        freq = np.array([counts[v] for v in vids], dtype=np.float64)
        weights = freq / freq.sum()
        read_frac = reads / (reads + writes)
        payload = int(np.mean([payload_by_vid.get(v, 256) for v in vids]))

    def draw(rng: np.random.Generator, size: int) -> Tuple[np.ndarray, np.ndarray]:
        vids = rng.choice(n_vars, size=size, p=weights)
        is_read = rng.random(size) < read_frac
        return vids, is_read

    return n_vars, payload, draw


def run_loadgen(
    session: ServeSession,
    *,
    workload: str = "zipf",
    params: Optional[Dict[str, Any]] = None,
    arrival: str = "poisson",
    arrival_opts: Optional[Dict[str, Any]] = None,
    rate: float = 50_000.0,
    requests: int = 10_000,
    seed: int = 0,
    chunk: int = 4096,
    snapshot_every: int = 0,
    on_snapshot: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ServeReport:
    """Drive ``session`` with an open-loop request stream and close it.

    ``rate`` is the offered load in requests per *simulated* second;
    ``chunk`` requests are generated per epoch, submitted, and the engine
    pumped to the epoch's last arrival (the bounded-run-ahead horizon).
    With ``snapshot_every=k``, ``on_snapshot`` (default: discard) gets a
    live :meth:`~repro.serve.session.ServeSession.snapshot` every ``k``
    epochs -- metrics without stalling the serve loop.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    rng = np.random.default_rng((seed, 1009))
    n_vars, payload, draw_access = access_sampler(workload, params, seed)
    n_procs = session.n_procs
    for vid in range(n_vars):
        session.create(vid % n_procs, payload)
    draw_gaps = get_arrival(arrival)(rate, **(arrival_opts or {}))
    t = 0.0
    remaining = requests
    epoch = 0
    submit_batch = session.submit_batch
    pump = session.pump
    while remaining:
        m = min(chunk, remaining)
        times = t + np.cumsum(draw_gaps(rng, m))
        t = float(times[-1])
        vids, is_read = draw_access(rng, m)
        procs = rng.integers(0, n_procs, size=m)
        submit_batch(is_read, procs, vids, times)
        pump(until=t)
        remaining -= m
        epoch += 1
        if snapshot_every and epoch % snapshot_every == 0:
            snap = session.snapshot()
            if on_snapshot is not None:
                on_snapshot(snap)
    report = session.close()
    report.extra.update(
        workload=workload,
        params=dict(params or {}),
        arrival=arrival,
        arrival_opts=dict(arrival_opts or {}),
        rate=rate,
        requests_offered=requests,
        n_vars=n_vars,
        seed=seed,
        chunk=chunk,
    )
    return report
