"""Live-traffic serving: streamed requests over the batch engine.

The batch runtime answers "how long does this recorded program take?";
this package answers "how much live traffic can the strategies sustain?".
A :class:`ServeSession` keeps one :class:`~repro.runtime.launcher.Runtime`
open as a long-running service: requests stream in through an in-process
``submit()`` API or the asyncio TCP frontend, a continuous micro-batcher
drains the ingest queue every engine epoch (bounded simulated run-ahead
via ``Simulator.run(until=...)``), and per-request latency percentiles
plus live LinkStats/hit-rate snapshots come out the other side.

Every served request is recorded through the trace layer, so a served
run replays bit-identically through the batch engine (the equivalence
tests pin LinkStats totals, hit counters and end time).

See ARCHITECTURE.md ("Serving") for the wire protocol, the parked-
dispatcher mechanics and how to add an arrival process.
"""

from .fleet import FleetReport, run_fleet
from .loadgen import access_sampler, arrival_names, get_arrival, register_arrival, run_loadgen
from .session import QueueFull, ServeReport, ServeSession

__all__ = [
    "FleetReport",
    "QueueFull",
    "ServeReport",
    "ServeSession",
    "access_sampler",
    "arrival_names",
    "get_arrival",
    "register_arrival",
    "run_fleet",
    "run_loadgen",
]
