"""The serving session: persistent dispatchers + continuous micro-batching.

How a request becomes engine events
-----------------------------------
Every processor runs one *dispatcher* -- a persistent generator driven by
the ordinary SPMD launcher.  A dispatcher with nothing to do parks by
yielding a ``RecvReq`` on a private tag (reusing the message-passing
blocking machinery: no launcher changes, no busy polling).  Injecting a
request for a parked processor delivers a wake-up "kick" through
``Runtime._deliver`` stamped at the request's simulated arrival time, so
the dispatcher resumes exactly when the request arrives; a busy
processor just gets the request appended to its run queue and issues it
after the current one completes (that wait *is* the queueing delay the
latency percentiles report).

The kernel fast path
--------------------
When the C kernel is active and the strategy's residency test is
side-effect-free (fixed-home, dynrep, migratory ownership; the access
tree's copy components; adaptive's write side), the whole dispatcher
state machine above is mirrored *inside* the kernel: queued requests
live in per-processor C rings, wake-up kicks and idle-until-arrival
timers are native ``K_SREQ`` events, and a request whose data is locally
resident (read hit / owner write) completes without re-entering Python
at all.  Only misses and remote writes cross back (``R_SREQ``), run the
unchanged strategy code, and re-sync the touched variable's residency
mirror.  Ingest is batched -- one Python->C call per queue drain
carrying packed ``(proc, vid, op, arrival)`` arrays -- and completions
come back the same way (packed arrays folded into the metric sketches).
Event keys ``(time, seq)`` are assigned at the same logical points as
the classic path, so a served run is **bit-identical** between the two
(pinned by the differential suite in ``tests/serve/test_replay.py``).

The mode is decided lazily at the first :meth:`ServeSession.pump`:
``fast=None`` (the default) picks the fast path when eligible, the
classic generators otherwise; submitting with an ``on_done`` callback
before the first pump commits the session to the classic path (the C
queues cannot carry Python callbacks).

Micro-batching and bounded run-ahead
------------------------------------
:meth:`ServeSession.pump` drains the ingest queue (admission-controlled
by ``max_queue``; the in-flight window by ``max_inflight``) and advances
the engine only up to a simulated horizon (``Simulator.run(until=...)``).
Bounding run-ahead is what keeps the serve timeline identical to the
batch timeline: all arrivals of the next epoch are at or beyond the
horizon, so no operation is ever initiated "in the past" relative to
work the engine already timed -- the atomic-at-initiation resource
ordering (see :mod:`repro.sim.engine`) comes out the same as if the
whole stream had been known up front.

Replayable by construction
--------------------------
The session records through :class:`ServeRecorder` (a
:class:`~repro.workloads.trace.TraceRecorder` that filters the internal
park wake-ups): inter-request idle gaps become pure think-time ops
(``["k", 0.0, gap]``), issued live as ``ComputeReq`` between queued
requests and written via ``record_gap`` for parked wake-ups, whose kick
already positioned simulated time at the arrival.  The fast path
reconstructs the identical op stream from its completion records (the
recorded effective issue time and the previous completion per processor
determine every gap).  Replaying the trace re-issues every operation at
the identical simulated time, so traffic totals, hit counters and end
time reproduce exactly.
"""

from __future__ import annotations

import time
from array import array
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from ..core.registry import get_strategy
from ..metrics import MetricsBundle, StreamingQuantiles, latency_percentiles
from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.api import ComputeReq, ReadReq, RecvReq, WriteReq
from ..runtime.launcher import Runtime
from ..sim.engine import ServeResume
from ..workloads.trace import Trace, TraceRecorder

__all__ = ["QueueFull", "ServeRecorder", "ServeReport", "ServeSession"]

#: Private mailbox tag of the park wake-up kick.  An ``object`` sentinel
#: cannot collide with any client-visible tag, and the recorder filters
#: it by identity.
_PARK = object()
_STOP = object()


class QueueFull(RuntimeError):
    """Admission control rejected a request (ingest queue at capacity)."""


class ServeRecorder(TraceRecorder):
    """Trace recorder that skips the serving layer's park wake-ups.

    The park ``RecvReq`` is internal control flow -- replaying it would
    deadlock on a message nobody sends -- so it never reaches the trace;
    everything else records exactly as in a batch run.
    """

    def record_request(self, proc: int, req: Any) -> None:
        if req.__class__ is RecvReq and req.tag is _PARK:
            return
        super().record_request(proc, req)


class _Item:
    """One queued request (slots: this is allocated per served request)."""

    __slots__ = ("kind", "proc", "vid", "value", "arrival", "eff", "wall", "cb")

    def __init__(self, kind, proc, vid, value, arrival, wall, cb):
        self.kind = kind
        self.proc = proc
        self.vid = vid
        self.value = value
        self.arrival = arrival  # requested simulated arrival (latency zero point)
        self.eff = arrival      # effective issue floor (clamped at injection)
        self.wall = wall
        self.cb = cb


@dataclass
class ServeReport:
    """Final metrics of one serving session (``as_dict`` for JSON).

    The metric-suite fields (latency percentiles, ``hit_rate``,
    ``evictions``, ``storage_cost``, ``effective_network_usage``) come
    from one :class:`~repro.metrics.MetricsBundle`, so a serving report
    and a batch result row speak the same schema-v7 vocabulary."""

    strategy: str
    network: str
    engine: str
    requests: int           # completed
    accepted: int
    rejected: int
    created: int
    sim_time: float         # last completion (simulated seconds)
    wall_seconds: float     # first submit -> close
    requests_per_sec: float      # completed / wall_seconds (the gated number)
    sim_requests_per_sec: float  # completed / sim_time
    latency_p50: float      # simulated enqueue -> completion
    latency_p95: float
    latency_p99: float
    wall_p50: float         # wall enqueue -> completion (batching included)
    wall_p95: float
    wall_p99: float
    hits: int
    misses: int
    hit_rate: float
    evictions: int
    storage_cost: float
    effective_network_usage: float
    total_bytes: float
    total_msgs: int
    congestion_bytes: float
    congestion_msgs: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


class ServeSession:
    """One long-running serving context over a strategy × topology.

    Parameters mirror the batch :class:`~repro.runtime.launcher.Runtime`
    (``strategy`` accepts any registry spec string or a built strategy);
    ``max_queue`` bounds the ingest queue (admission control) and
    ``max_inflight`` the injected-but-incomplete window (backpressure).
    ``record=False`` disables trace recording (slightly faster, not
    replayable).

    ``fast`` selects the request dispatch path: ``None`` (default) uses
    the kernel fast path when eligible (C kernel active, no failure
    schedule, no memory capacity, a mirrored strategy family) and the
    classic generator dispatchers otherwise; ``False`` forces classic;
    ``True`` raises if the fast path is unavailable.  Results are
    bit-identical either way.  ``exact_latency=True`` retains every
    per-request latency sample (exact percentiles, O(requests) memory)
    instead of the default fixed-size streaming sketch.
    """

    def __init__(
        self,
        topology: Topology,
        strategy: Union[str, Any] = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        max_queue: int = 65536,
        max_inflight: int = 8192,
        record: bool = True,
        failures=None,
        fast: Optional[bool] = None,
        exact_latency: bool = False,
    ):
        if max_queue < 1 or max_inflight < 1:
            raise ValueError("max_queue and max_inflight must be >= 1")
        if isinstance(strategy, str):
            strategy = get_strategy(strategy, topology, seed=seed, embedding=embedding)
        self.recorder: Optional[ServeRecorder] = ServeRecorder() if record else None
        self.rt = Runtime(
            topology, strategy, machine, seed=seed, failures=failures,
            recorder=self.recorder,
        )
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        n = topology.n_nodes
        self.n_procs = n
        self._ingest: deque = deque()
        self._queues = [deque() for _ in range(n)]
        self._parked = [False] * n
        self._park_time = [0.0] * n
        self._clock = [0.0] * n  # last completion per processor
        self._inflight = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.created = 0
        self._arrival_floor = 0.0
        self.exact_latency = exact_latency
        if exact_latency:
            self._lat_sim: Any = array("d")
            self._lat_wall: Any = array("d")
        else:
            self._lat_sim = StreamingQuantiles()
            self._lat_wall = StreamingQuantiles()
        self._wall_start: Optional[float] = None
        self._closed = False
        self._report: Optional[ServeReport] = None
        # Dispatch mode: None = undecided (decided lazily at the first
        # pump), "classic" = generator dispatchers, "fast" = C kernel.
        self._mode: Optional[str] = None
        self._fast_opt = fast
        self._hk = None           # kernel Sim handle while fast-armed
        self._lib = None
        self._kffi = None
        self._batches: list = []  # packed pending batches (fast ingest)
        self._buffered = 0
        self._sim_end = 0.0       # max completion time seen (fast mode)
        self._sync_vid: Optional[Callable[[int], None]] = None
        self._pre_sync: Optional[Callable[[int], None]] = None
        self._arm_var: Optional[Callable[[int], None]] = None
        self._tree_native = False
        self._rec_batches: list = []     # retained completion records
        self._rec_prev: Optional[list] = None  # per-proc prev completion
        # Start the dispatchers: every processor parks at t=0, ready to be
        # kicked awake by its first request.  Both modes start them (the
        # fast path leaves them parked forever): the t=0 startup events
        # consume identical event sequence numbers, which is part of what
        # keeps the two paths bit-identical.
        sim = self.rt.sim
        for p in range(n):
            self.rt._gens[p] = self._dispatch(p)
            sim.schedule(0.0, self.rt._step, p, None)
        sim.run(until=0.0)

    # ----------------------------------------------------------- dispatchers
    def _dispatch(self, p: int):
        sim = self.rt.sim
        q = self._queues[p]
        by_id = self.rt.registry.by_id
        lat = self._lat_sim
        wlat = self._lat_wall
        lat_add = lat.append if isinstance(lat, array) else lat.add
        wlat_add = wlat.append if isinstance(wlat, array) else wlat.add
        clock = self._clock
        perf = time.perf_counter
        while True:
            if not q:
                self._park_time[p] = sim.now
                self._parked[p] = True
                v = yield RecvReq(_PARK)
                if v is _STOP:
                    return
            it = q.popleft()
            gap = it.eff - sim.now
            if gap > 0.0:
                # Idle until the arrival; recorded as a think-time op so
                # replay issues the request at the identical instant.
                yield ComputeReq(seconds=gap)
            if it.kind == "r":
                value = yield ReadReq(by_id(it.vid))
            else:
                yield WriteReq(by_id(it.vid), it.value)
                value = None
            done = sim.now
            clock[p] = done
            lat_add(done - it.arrival)
            wlat_add(perf() - it.wall)
            self._inflight -= 1
            self.completed += 1
            cb = it.cb
            if cb is not None:
                cb(it, done, value)

    # ------------------------------------------------------- mode selection
    def _set_classic(self) -> None:
        self._mode = "classic"
        if self._batches:
            # Packed batches arrived before the mode was decided: unpack
            # them ahead of any scalar tail already in the ingest deque.
            items: deque = deque()
            for kinds, procs, vids, arr, walls in self._batches:
                for i in range(len(kinds)):
                    items.append(_Item(
                        "r" if kinds[i] == 0 else "w", int(procs[i]),
                        int(vids[i]), 0, float(arr[i]), float(walls[i]), None,
                    ))
            self._batches.clear()
            self._buffered = 0
            items.extend(self._ingest)
            self._ingest = items

    def _decide_mode(self) -> None:
        if self._fast_opt is False:
            self._set_classic()
            return
        if self._arm_fast():
            self._mode = "fast"
            return
        if self._fast_opt is True:
            raise RuntimeError(
                "fast=True but the kernel fast path is unavailable here "
                "(needs the C kernel, no failure schedule, no memory "
                "capacity, and a mirrored strategy family)"
            )
        self._set_classic()

    def _arm_fast(self) -> bool:
        """Mirror the strategy's residency state into the kernel and
        switch completion routing to native events.  Returns ``False``
        (leaving the session untouched) when ineligible."""
        rt = self.rt
        sim = rt.sim
        if sim._h is None or sim._failview is not None:
            return False
        strat = rt.strategy
        if getattr(strat, "_track_mem", False):
            return False  # bounded memory: hits touch the LRU
        from ..core.access_tree import AccessTreeStrategy
        from ..core.adaptive import AdaptiveStrategy
        from ..core.dynrep import DynRepStrategy
        from ..core.fixed_home import FixedHomeStrategy
        from ..core.migratory import MigratoryStrategy

        n = self.n_procs
        cls = type(strat)
        # Exact-class checks (like the engine's topology dispatch): an
        # unknown subclass may override the hit path, so it gets the
        # classic dispatchers.  nat_r/nat_w say whether the native hit /
        # local-write tests are side-effect-free for this family;
        # wl_rule selects the local-write predicate (0: owner == proc,
        # 1: sole copy at the requester's site).
        if cls is FixedHomeStrategy or cls is DynRepStrategy:
            nat_r, nat_w, rule = 1, 1, 0
            nsites, site_of = n, range(n)
            sync = self._sync_home
        elif cls is AdaptiveStrategy:
            # Every read advances the popularity estimator, so reads
            # always cross; writes are inherited from fixed home.
            nat_r, nat_w, rule = 0, 1, 0
            nsites, site_of = n, range(n)
            sync = self._sync_home
        elif cls is MigratoryStrategy:
            nat_r, nat_w, rule = 1, 1, 0
            nsites, site_of = n, range(n)
            sync = self._sync_migratory
        tree_native = False
        if cls is AccessTreeStrategy:
            nat_r, nat_w, rule = 1, 1, 1
            nsites = len(strat.tree.nodes)
            site_of = strat._leaf_of_proc
            sync = self._sync_tree
            # With remapping off the per-vid flow shape (hosts, costs,
            # path geometry) is static, so the whole read-miss flow is
            # compiled into the kernel: reads never cross into Python.
            tree_native = strat.remap_threshold is None
            if tree_native:
                sync = self._sync_tree_native
        elif cls not in (FixedHomeStrategy, DynRepStrategy, AdaptiveStrategy,
                         MigratoryStrategy):
            return False

        lib, ffi, h = sim._lib, sim._ffi, sim._h
        sim._reserve_stage(max(n, 2 * nsites))
        sim._stage_i[0:n] = list(site_of)
        lib.sim_serve_init(h, nsites, rule, self.max_inflight)
        self._hk, self._lib, self._kffi = h, lib, ffi
        self._nat = (nat_r, nat_w)
        self._sync_vid = sync
        if tree_native:
            tree = strat.tree
            sim._stage_i[0:nsites] = tree.parent
            sim._stage_i[nsites:2 * nsites] = tree.depth
            lib.sim_serve_tree_init(h)
            lib.sim_serve_storage_seed(
                h, strat._sc_integral, strat._sc_last, strat._sc_excess, 1
            )
            # Route the strategy's storage accounting into the kernel's
            # accumulator: ONE float accumulation sequence whichever side
            # (native miss / crossed write) applies the delta, so the
            # storage integral stays bit-identical to the pure path.
            strat._storage_delta = (
                lambda delta, t, _lib=lib, _h=h:
                    _lib.sim_serve_storage_delta(_h, delta, t)
            )
            self._pre_sync = self._pre_sync_tree
            self._arm_var = self._sync_tree_flow
            self._tree_native = True
        for vid in range(len(rt.registry)):
            sync(vid)
            if tree_native:
                self._sync_tree_flow(vid)
        # Completion routing: flows built by the strategies resolve their
        # continuation through these two runtime hooks -- override them
        # (instance attributes) so completions become native K_SDONE
        # events, pushed at the exact code points (and with the exact
        # sequence numbers) the classic path's resumes occupy.
        def _fast_resume(proc, t, value, _lib=lib, _h=h):
            _lib.sim_serve_push_done(_h, proc, t)

        rt.resume = _fast_resume
        rt.resume_event = lambda proc, value: ServeResume(proc)
        sim.serve_cb = self._serve_cb
        return True

    # ------------------------------------------------- fast-path internals
    def _sync_home(self, vid: int) -> None:
        st = self.rt.strategy._states[vid]
        members = st.copies
        k = len(members)
        sim = self.rt.sim
        sim._reserve_stage(k)
        sim._stage_i[0:k] = list(members)
        self._lib.sim_serve_sync_var(
            self._hk, vid, st.owner, k, k, self._nat[0], self._nat[1]
        )

    def _sync_migratory(self, vid: int) -> None:
        st = self.rt.strategy._states[vid]
        sim = self.rt.sim
        sim._stage_i[0] = st.owner
        self._lib.sim_serve_sync_var(
            self._hk, vid, st.owner, 1, 1, self._nat[0], self._nat[1]
        )

    def _sync_tree(self, vid: int) -> None:
        cs = self.rt.strategy._copies[vid]
        nodes = cs.nodes
        k = len(nodes)
        sim = self.rt.sim
        sim._reserve_stage(k)
        sim._stage_i[0:k] = list(nodes)
        self._lib.sim_serve_sync_var(
            self._hk, vid, 0, k, k, self._nat[0], self._nat[1]
        )

    def _sync_tree_native(self, vid: int) -> None:
        # Tree-native mode computes miss paths from the mirror, so the
        # component top must track the bitset exactly.
        self._sync_tree(vid)
        self._lib.sim_serve_set_top(
            self._hk, vid, self.rt.strategy._copies[vid].top
        )

    def _sync_tree_flow(self, vid: int) -> None:
        """Stage the vid's static flow shape -- node->host row, leg costs,
        payload, component top -- so the kernel can replay its read-miss
        flow without crossing (arm/create time only)."""
        strat = self.rt.strategy
        emb = strat.embedding
        nsites = len(strat.tree.nodes)
        sim = self.rt.sim
        sim._reserve_stage(nsites)
        sim._stage_i[0:nsites] = [emb.host(vid, node) for node in range(nsites)]
        var = self.rt.registry.by_id(vid)
        cs = strat._copies[vid]
        self._lib.sim_serve_var_flow(
            self._hk, vid, cs.top, float(var.payload_bytes),
            *strat._leg_costs[vid],
        )

    def _pre_sync_tree(self, vid: int) -> None:
        """Import the kernel's residency mirror (mutated by native read
        misses) back into the strategy's copy set before a crossed write
        runs the unchanged Python write path."""
        lib, h = self._lib, self._hk
        k = lib.sim_serve_members(h, vid)
        cs = self.rt.strategy._copies[vid]
        cs.nodes = set(self.rt.sim._stage_i[0:k])
        cs.top = lib.sim_serve_top(h, vid)

    def _serve_cb(self, out) -> None:
        """Handle an ``R_SREQ`` crossing: a request whose data is not
        locally resident runs the unchanged strategy code, the touched
        variable's residency mirror is re-synced, and the completion is
        routed back natively."""
        lib, h = self._lib, self._hk
        strat = self.rt.strategy
        by_id = self.rt.registry.by_id
        read = strat.read
        write = strat.write
        sync = self._sync_vid
        pre = self._pre_sync
        complete = lib.sim_serve_complete
        while True:
            p = out.a
            code = out.b
            vid = code >> 1
            t = out.time
            if pre is not None:
                pre(vid)
            if code & 1:
                done = write(p, by_id(vid), 0, t)
            else:
                res = read(p, by_id(vid), t)
                done = None if res is None else res[0]
            sync(vid)
            if done is None:
                return  # flow in flight: completes via K_SDONE
            if done > t:
                lib.sim_serve_push_done(h, p, done)
                return
            if not complete(h, out, p, done):
                return

    def _flush_batches(self) -> None:
        if self._ingest:
            items = self._ingest
            m = len(items)
            self._batches.append((
                np.fromiter((0 if it.kind == "r" else 1 for it in items),
                            dtype=np.int32, count=m),
                np.fromiter((it.proc for it in items), dtype=np.int32, count=m),
                np.fromiter((it.vid for it in items), dtype=np.int32, count=m),
                np.fromiter((it.arrival for it in items), dtype=np.float64,
                            count=m),
                np.fromiter((it.wall for it in items), dtype=np.float64,
                            count=m),
            ))
            self._buffered += m
            items.clear()
        if not self._batches:
            return
        lib, ffi, h = self._lib, self._kffi, self._hk
        cast = ffi.cast
        for kinds, procs, vids, arr, walls in self._batches:
            lib.sim_serve_ingest(
                h, len(kinds),
                cast("const int *", procs.ctypes.data),
                cast("const int *", vids.ctypes.data),
                cast("const int *", kinds.ctypes.data),
                cast("const double *", arr.ctypes.data),
                cast("const double *", walls.ctypes.data),
            )
        self._batches.clear()
        self._buffered = 0

    def _lat_feed(self, store, values: np.ndarray) -> None:
        if isinstance(store, array):
            store.frombytes(np.ascontiguousarray(values).tobytes())
        else:
            store.add_many(values)

    def _drain(self) -> None:
        """Pull the kernel's completion records (packed arrays) and fold
        them into the counters and latency sketches."""
        lib, ffi, h = self._lib, self._kffi, self._hk
        n = lib.sim_serve_stat(h, 5)
        if n:
            def cp(ptr, nbytes, dtype):
                return np.frombuffer(
                    ffi.buffer(ptr, n * nbytes), dtype=dtype
                ).copy()

            done = cp(lib.sim_serve_rec_done(h), 8, np.float64)
            arrv = cp(lib.sim_serve_rec_arr(h), 8, np.float64)
            self._lat_feed(self._lat_sim, done - arrv)
            walls = cp(lib.sim_serve_rec_wall(h), 8, np.float64)
            self._lat_feed(self._lat_wall, time.perf_counter() - walls)
            if self.recorder is not None:
                self._rec_batches.append((
                    cp(lib.sim_serve_rec_proc(h), 4, np.int32),
                    cp(lib.sim_serve_rec_vid(h), 4, np.int32),
                    cp(lib.sim_serve_rec_kind(h), 4, np.int32),
                    cp(lib.sim_serve_rec_eff(h), 8, np.float64),
                    done,
                ))
            self.completed += int(n)
            end = float(done.max())
            if end > self._sim_end:
                self._sim_end = end
            lib.sim_serve_rec_reset(h)
        strat = self.rt.strategy
        strat.hits += int(lib.sim_serve_stat(h, 2))
        strat.write_local += int(lib.sim_serve_stat(h, 3))
        if self._tree_native:
            strat.misses += int(lib.sim_serve_stat(h, 6))
            # The kernel owns the storage accumulator; copy its state back
            # so storage_cost() stays correct from the Python side.
            strat._sc_integral = lib.sim_serve_storage_get(h, 0)
            strat._sc_last = lib.sim_serve_storage_get(h, 1)
            strat._sc_excess = lib.sim_serve_storage_get(h, 2)
        lib.sim_serve_counters_reset(h)

    def _pump_fast(self, until: Optional[float]) -> None:
        lib, h = self._lib, self._hk
        self._flush_batches()
        lib.sim_serve_pump_begin(h)
        sim = self.rt.sim
        sim.run(until)
        sim.now = lib.sim_serve_now(h)
        self._drain()

    # ---------------------------------------------------------------- ingest
    def create(self, proc: int, payload_bytes: int = 256, value: Any = 0) -> int:
        """Create a variable now; returns its vid.

        Creation is local bookkeeping (zero messages, zero simulated
        time), exactly as in batch programs, and replay hoists creates --
        so executing it immediately keeps FIFO semantics: any read/write
        of the vid can only be submitted afterwards.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if self._mode == "fast" and self.recorder is not None and self.accepted:
            raise RuntimeError(
                "cannot create variables after requests were accepted on the "
                "kernel fast path with recording on (the reconstructed trace "
                "hoists creates); create everything up front, or open the "
                "session with record=False or fast=False"
            )
        var = self.rt.create_var(
            f"s{len(self.rt.registry)}", payload_bytes, proc, value
        )
        self.created += 1
        if self._sync_vid is not None:
            self._sync_vid(var.vid)
            if self._arm_var is not None:
                self._arm_var(var.vid)
        return var.vid

    def try_submit(
        self,
        kind: str,
        proc: int,
        vid: int,
        *,
        value: Any = 0,
        arrival: Optional[float] = None,
        on_done: Optional[Callable[[Any, float, Any], None]] = None,
    ) -> bool:
        """Queue one read (``"r"``) or write (``"w"``); ``False`` =
        admission control rejected it (queue at ``max_queue``).

        ``arrival`` is the simulated arrival time; arrivals are clamped
        nondecreasing (``None`` = right after the previous one).
        ``on_done(item, sim_completion_time, value)`` fires inside the
        pump when the request completes.  Passing ``on_done`` before the
        first pump commits the session to the classic dispatch path.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if kind not in ("r", "w"):
            raise ValueError(f"unknown request kind {kind!r} (use 'r'/'w')")
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"no such processor: {proc}")
        if not 0 <= vid < len(self.rt.registry):
            raise ValueError(f"no such variable: {vid}")
        if on_done is not None:
            if self._mode == "fast":
                raise RuntimeError(
                    "on_done callbacks need the classic dispatch path, but "
                    "this session is already on the kernel fast path (open "
                    "it with fast=False to keep callbacks)"
                )
            if self._mode is None:
                self._set_classic()
        if self.queue_depth >= self.max_queue:
            self.rejected += 1
            return False
        wall = time.perf_counter()
        if self._wall_start is None:
            self._wall_start = wall
        floor = self._arrival_floor
        if arrival is None or arrival < floor:
            arrival = floor
        self._arrival_floor = arrival
        self._ingest.append(_Item(kind, proc, vid, value, arrival, wall, on_done))
        self.accepted += 1
        return True

    def submit(self, kind: str, proc: int, vid: int, **kw: Any) -> None:
        """:meth:`try_submit` that raises :class:`QueueFull` on rejection."""
        if not self.try_submit(kind, proc, vid, **kw):
            raise QueueFull(f"ingest queue at capacity ({self.max_queue})")

    def submit_batch(self, reads, procs, vids, arrivals) -> int:
        """Vectorized :meth:`try_submit`: queue a whole epoch of requests
        in one call (the load generator's path to the kernel's batched
        ingest).  ``reads`` is a boolean array (True = read), ``procs``/
        ``vids`` integer arrays, ``arrivals`` the simulated arrival
        times; all the same length.  Admission accepts the longest prefix
        the queue has room for (identical to per-item submission, since
        arrivals are nondecreasing) and returns the accepted count.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        m = len(procs)
        if not m:
            return 0
        if self._mode == "classic":
            n_ok = 0
            for i in range(m):
                if self.try_submit(
                    "r" if reads[i] else "w", int(procs[i]), int(vids[i]),
                    arrival=float(arrivals[i]),
                ):
                    n_ok += 1
            return n_ok
        procs = np.ascontiguousarray(procs, dtype=np.int32)
        vids = np.ascontiguousarray(vids, dtype=np.int32)
        if procs.min(initial=0) < 0 or procs.max(initial=0) >= self.n_procs:
            raise ValueError("processor id out of range in batch")
        if vids.min(initial=0) < 0 or vids.max(initial=0) >= len(self.rt.registry):
            raise ValueError("variable id out of range in batch")
        room = self.max_queue - self.queue_depth
        k = m if m <= room else (room if room > 0 else 0)
        self.rejected += m - k
        if not k:
            return 0
        wall = time.perf_counter()
        if self._wall_start is None:
            self._wall_start = wall
        arr = np.maximum(np.asarray(arrivals[:k], dtype=np.float64),
                         self._arrival_floor)
        np.maximum.accumulate(arr, out=arr)
        self._arrival_floor = float(arr[-1])
        kinds = np.where(np.asarray(reads[:k], dtype=bool), 0, 1).astype(np.int32)
        if self._ingest:
            # Scalar submissions precede this batch: pack them first so
            # the pending stream stays FIFO.
            self._pack_ingest()
        self._batches.append((kinds, procs[:k], vids[:k], arr,
                              np.full(k, wall, dtype=np.float64)))
        self._buffered += k
        self.accepted += k
        return k

    def _pack_ingest(self) -> None:
        items = self._ingest
        m = len(items)
        self._batches.append((
            np.fromiter((0 if it.kind == "r" else 1 for it in items),
                        dtype=np.int32, count=m),
            np.fromiter((it.proc for it in items), dtype=np.int32, count=m),
            np.fromiter((it.vid for it in items), dtype=np.int32, count=m),
            np.fromiter((it.arrival for it in items), dtype=np.float64, count=m),
            np.fromiter((it.wall for it in items), dtype=np.float64, count=m),
        ))
        self._buffered += m
        items.clear()

    @property
    def queue_depth(self) -> int:
        depth = len(self._ingest) + self._buffered
        if self._hk is not None:
            depth += int(self._lib.sim_serve_stat(self._hk, 4))
        return depth

    @property
    def arrival_floor(self) -> float:
        """Simulated arrival time of the most recently accepted request
        (new arrivals are clamped to at least this)."""
        return self._arrival_floor

    @property
    def inflight(self) -> int:
        if self._hk is not None:
            return int(self._lib.sim_serve_stat(self._hk, 0))
        return self._inflight

    # ------------------------------------------------------------------ pump
    def _inject(self, it: _Item) -> None:
        rt = self.rt
        t = it.arrival
        now = rt.sim.now
        if t < now:
            t = now  # deferred past its arrival (backpressure): issue asap
        it.eff = t
        p = it.proc
        self._queues[p].append(it)
        if self._parked[p]:
            self._parked[p] = False
            rec = self.recorder
            if rec is not None:
                gap = t - self._park_time[p]
                if gap > 0.0:
                    rec.record_gap(p, gap)
            rt._deliver(p, _PARK, t, None)

    def pump(self, until: Optional[float] = None) -> None:
        """Inject eligible queued requests and advance the engine.

        ``until`` bounds both which arrivals inject and how far the
        engine runs (simulated run-ahead); ``None`` serves everything
        queued and runs the engine idle.  Completions free in-flight
        window slots, so injection and engine progress interleave until
        neither can advance.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if self._mode is None:
            self._decide_mode()
        if self._mode == "fast":
            self._pump_fast(until)
            return
        sim = self.rt.sim
        ing = self._ingest
        while True:
            n = 0
            room = self.max_inflight - self._inflight - n
            while ing and room > 0:
                it = ing[0]
                if until is not None and it.arrival > until:
                    break
                ing.popleft()
                self._inject(it)
                n += 1
                room -= 1
            self._inflight += n
            sim.run(until)
            if not n:
                return

    # ------------------------------------------------------------- reporting
    def snapshot(self) -> Dict[str, Any]:
        """Live metrics without stalling the loop: counters, hit rate,
        kernel-aware message totals and latency percentiles so far."""
        strat = self.rt.strategy
        hits, misses = strat.hits, strat.misses
        snap = {
            "sim_time": self.rt.sim.now,
            "completed": self.completed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "created": self.created,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "hits": hits,
            "misses": misses,
            "hit_rate": MetricsBundle(hits=hits, misses=misses).hit_rate,
            "total_msgs": self.rt.sim.stats.total_msgs,
        }
        for k, v in latency_percentiles(self._lat_sim).items():
            snap[f"latency_{k}"] = v
        return snap

    def close(self) -> ServeReport:
        """Serve everything queued, stop the dispatchers, and report."""
        if self._closed:
            return self._report
        self.pump()  # unbounded: drains the ingest queue completely
        rt = self.rt
        if self._mode == "fast":
            # The dispatchers never ran: close the parked generators.
            for p in range(self.n_procs):
                gen = rt._gens[p]
                if gen is not None:
                    gen.close()
                    rt._gens[p] = None
            end = self._sim_end
        else:
            for p in range(self.n_procs):
                if self._parked[p]:
                    self._parked[p] = False
                    rt._deliver(p, _PARK, rt.sim.now, _STOP)
            rt.sim.run()
            end = max(self._clock) if self.completed else 0.0
        self._closed = True
        wall_end = time.perf_counter()
        wall = wall_end - self._wall_start if self._wall_start is not None else 0.0
        stats = rt.sim.stats
        strat = rt.strategy
        # The serving latency sample is arrival -> completion (queueing
        # included), so the bundle is built from the session's own buffer;
        # everything else is the shared metric-suite accounting.
        bundle = MetricsBundle.from_run(
            hits=strat.hits,
            misses=strat.misses,
            evictions=rt.memory.total_evictions,
            total_bytes=stats.total_bytes,
            latencies=self._lat_sim,
            storage_cost=strat.storage_cost(end),
        )
        wall_pct = latency_percentiles(self._lat_wall)
        self._report = ServeReport(
            strategy=strat.name,
            network=rt.sim.topology.label,
            engine="ckern" if rt.sim._h is not None else "pure",
            requests=self.completed,
            accepted=self.accepted,
            rejected=self.rejected,
            created=self.created,
            sim_time=end,
            wall_seconds=wall,
            requests_per_sec=self.completed / wall if wall > 0 else 0.0,
            sim_requests_per_sec=self.completed / end if end > 0 else 0.0,
            latency_p50=bundle.latency_p50,
            latency_p95=bundle.latency_p95,
            latency_p99=bundle.latency_p99,
            wall_p50=wall_pct["p50"],
            wall_p95=wall_pct["p95"],
            wall_p99=wall_pct["p99"],
            hits=bundle.hits,
            misses=bundle.misses,
            hit_rate=bundle.hit_rate,
            evictions=bundle.evictions,
            storage_cost=bundle.storage_cost,
            effective_network_usage=bundle.effective_network_usage,
            total_bytes=stats.total_bytes,
            total_msgs=stats.total_msgs,
            congestion_bytes=stats.congestion_bytes,
            congestion_msgs=stats.congestion_msgs,
        )
        return self._report

    def _reconstruct_trace(self) -> None:
        """Fold the fast path's completion records into the recorder's op
        streams: per processor, in completion order, the idle gap before
        each request (``eff`` minus the previous completion) becomes the
        think-time op the classic path would have recorded, then the
        request itself -- byte-identical to the live-recorded stream."""
        ops = self.recorder.ops
        if self._rec_prev is None:
            self._rec_prev = [0.0] * self.n_procs
        prev = self._rec_prev
        for procs, vids, kinds, effs, dones in self._rec_batches:
            procs = procs.tolist()
            vids = vids.tolist()
            kinds = kinds.tolist()
            effs = effs.tolist()
            dones = dones.tolist()
            for i in range(len(procs)):
                p = procs[i]
                e = effs[i]
                gap = e - prev[p]
                stream = ops[p]
                if gap > 0.0:
                    stream.append(["k", 0.0, gap])
                stream.append(["w" if kinds[i] else "r", vids[i]])
                prev[p] = dones[i]
        self._rec_batches.clear()

    def trace(self, params: Optional[Dict[str, Any]] = None) -> Trace:
        """The served access stream as a replayable :class:`Trace`."""
        if self.recorder is None:
            raise RuntimeError("session was opened with record=False")
        if self._rec_batches:
            self._reconstruct_trace()
        return self.recorder.to_trace(workload="serve", params=params)
