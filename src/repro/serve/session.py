"""The serving session: persistent dispatchers + continuous micro-batching.

How a request becomes engine events
-----------------------------------
Every processor runs one *dispatcher* -- a persistent generator driven by
the ordinary SPMD launcher.  A dispatcher with nothing to do parks by
yielding a ``RecvReq`` on a private tag (reusing the message-passing
blocking machinery: no launcher changes, no busy polling).  Injecting a
request for a parked processor delivers a wake-up "kick" through
``Runtime._deliver`` stamped at the request's simulated arrival time, so
the dispatcher resumes exactly when the request arrives; a busy
processor just gets the request appended to its run queue and issues it
after the current one completes (that wait *is* the queueing delay the
latency percentiles report).

Micro-batching and bounded run-ahead
------------------------------------
:meth:`ServeSession.pump` drains the ingest queue (admission-controlled
by ``max_queue``; the in-flight window by ``max_inflight``) and advances
the engine only up to a simulated horizon (``Simulator.run(until=...)``).
Bounding run-ahead is what keeps the serve timeline identical to the
batch timeline: all arrivals of the next epoch are at or beyond the
horizon, so no operation is ever initiated "in the past" relative to
work the engine already timed -- the atomic-at-initiation resource
ordering (see :mod:`repro.sim.engine`) comes out the same as if the
whole stream had been known up front.

Replayable by construction
--------------------------
The session records through :class:`ServeRecorder` (a
:class:`~repro.workloads.trace.TraceRecorder` that filters the internal
park wake-ups): inter-request idle gaps become pure think-time ops
(``["k", 0.0, gap]``), issued live as ``ComputeReq`` between queued
requests and written via ``record_gap`` for parked wake-ups, whose kick
already positioned simulated time at the arrival.  Replaying the trace
re-issues every operation at the identical simulated time, so traffic
totals, hit counters and end time reproduce exactly.
"""

from __future__ import annotations

import time
from array import array
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from ..core.registry import get_strategy
from ..metrics import MetricsBundle, latency_percentiles
from ..network.machine import GCEL, MachineModel
from ..network.topology import Topology
from ..runtime.api import ComputeReq, ReadReq, RecvReq, WriteReq
from ..runtime.launcher import Runtime
from ..workloads.trace import Trace, TraceRecorder

__all__ = ["QueueFull", "ServeRecorder", "ServeReport", "ServeSession"]

#: Private mailbox tag of the park wake-up kick.  An ``object`` sentinel
#: cannot collide with any client-visible tag, and the recorder filters
#: it by identity.
_PARK = object()
_STOP = object()


class QueueFull(RuntimeError):
    """Admission control rejected a request (ingest queue at capacity)."""


class ServeRecorder(TraceRecorder):
    """Trace recorder that skips the serving layer's park wake-ups.

    The park ``RecvReq`` is internal control flow -- replaying it would
    deadlock on a message nobody sends -- so it never reaches the trace;
    everything else records exactly as in a batch run.
    """

    def record_request(self, proc: int, req: Any) -> None:
        if req.__class__ is RecvReq and req.tag is _PARK:
            return
        super().record_request(proc, req)


class _Item:
    """One queued request (slots: this is allocated per served request)."""

    __slots__ = ("kind", "proc", "vid", "value", "arrival", "eff", "wall", "cb")

    def __init__(self, kind, proc, vid, value, arrival, wall, cb):
        self.kind = kind
        self.proc = proc
        self.vid = vid
        self.value = value
        self.arrival = arrival  # requested simulated arrival (latency zero point)
        self.eff = arrival      # effective issue floor (clamped at injection)
        self.wall = wall
        self.cb = cb


@dataclass
class ServeReport:
    """Final metrics of one serving session (``as_dict`` for JSON).

    The metric-suite fields (latency percentiles, ``hit_rate``,
    ``evictions``, ``storage_cost``, ``effective_network_usage``) come
    from one :class:`~repro.metrics.MetricsBundle`, so a serving report
    and a batch result row speak the same schema-v7 vocabulary."""

    strategy: str
    network: str
    engine: str
    requests: int           # completed
    accepted: int
    rejected: int
    created: int
    sim_time: float         # last completion (simulated seconds)
    wall_seconds: float     # first submit -> close
    requests_per_sec: float      # completed / wall_seconds (the gated number)
    sim_requests_per_sec: float  # completed / sim_time
    latency_p50: float      # simulated enqueue -> completion
    latency_p95: float
    latency_p99: float
    wall_p50: float         # wall enqueue -> completion (batching included)
    wall_p95: float
    wall_p99: float
    hits: int
    misses: int
    hit_rate: float
    evictions: int
    storage_cost: float
    effective_network_usage: float
    total_bytes: float
    total_msgs: int
    congestion_bytes: float
    congestion_msgs: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


class ServeSession:
    """One long-running serving context over a strategy × topology.

    Parameters mirror the batch :class:`~repro.runtime.launcher.Runtime`
    (``strategy`` accepts any registry spec string or a built strategy);
    ``max_queue`` bounds the ingest queue (admission control) and
    ``max_inflight`` the injected-but-incomplete window (backpressure).
    ``record=False`` disables trace recording (slightly faster, not
    replayable).
    """

    def __init__(
        self,
        topology: Topology,
        strategy: Union[str, Any] = "4-ary",
        *,
        machine: MachineModel = GCEL,
        seed: int = 0,
        embedding: str = "modified",
        max_queue: int = 65536,
        max_inflight: int = 8192,
        record: bool = True,
        failures=None,
    ):
        if max_queue < 1 or max_inflight < 1:
            raise ValueError("max_queue and max_inflight must be >= 1")
        if isinstance(strategy, str):
            strategy = get_strategy(strategy, topology, seed=seed, embedding=embedding)
        self.recorder: Optional[ServeRecorder] = ServeRecorder() if record else None
        self.rt = Runtime(
            topology, strategy, machine, seed=seed, failures=failures,
            recorder=self.recorder,
        )
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        n = topology.n_nodes
        self.n_procs = n
        self._ingest: deque = deque()
        self._queues = [deque() for _ in range(n)]
        self._parked = [False] * n
        self._park_time = [0.0] * n
        self._clock = [0.0] * n  # last completion per processor
        self._inflight = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.created = 0
        self._arrival_floor = 0.0
        self._lat_sim = array("d")
        self._lat_wall = array("d")
        self._wall_start: Optional[float] = None
        self._closed = False
        self._report: Optional[ServeReport] = None
        # Start the dispatchers: every processor parks at t=0, ready to be
        # kicked awake by its first request.
        sim = self.rt.sim
        for p in range(n):
            self.rt._gens[p] = self._dispatch(p)
            sim.schedule(0.0, self.rt._step, p, None)
        sim.run(until=0.0)

    # ----------------------------------------------------------- dispatchers
    def _dispatch(self, p: int):
        sim = self.rt.sim
        q = self._queues[p]
        by_id = self.rt.registry.by_id
        lat = self._lat_sim
        wlat = self._lat_wall
        clock = self._clock
        perf = time.perf_counter
        while True:
            if not q:
                self._park_time[p] = sim.now
                self._parked[p] = True
                v = yield RecvReq(_PARK)
                if v is _STOP:
                    return
            it = q.popleft()
            gap = it.eff - sim.now
            if gap > 0.0:
                # Idle until the arrival; recorded as a think-time op so
                # replay issues the request at the identical instant.
                yield ComputeReq(seconds=gap)
            if it.kind == "r":
                value = yield ReadReq(by_id(it.vid))
            else:
                yield WriteReq(by_id(it.vid), it.value)
                value = None
            done = sim.now
            clock[p] = done
            lat.append(done - it.arrival)
            wlat.append(perf() - it.wall)
            self._inflight -= 1
            self.completed += 1
            cb = it.cb
            if cb is not None:
                cb(it, done, value)

    # ---------------------------------------------------------------- ingest
    def create(self, proc: int, payload_bytes: int = 256, value: Any = 0) -> int:
        """Create a variable now; returns its vid.

        Creation is local bookkeeping (zero messages, zero simulated
        time), exactly as in batch programs, and replay hoists creates --
        so executing it immediately keeps FIFO semantics: any read/write
        of the vid can only be submitted afterwards.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        var = self.rt.create_var(
            f"s{len(self.rt.registry)}", payload_bytes, proc, value
        )
        self.created += 1
        return var.vid

    def try_submit(
        self,
        kind: str,
        proc: int,
        vid: int,
        *,
        value: Any = 0,
        arrival: Optional[float] = None,
        on_done: Optional[Callable[[Any, float, Any], None]] = None,
    ) -> bool:
        """Queue one read (``"r"``) or write (``"w"``); ``False`` =
        admission control rejected it (queue at ``max_queue``).

        ``arrival`` is the simulated arrival time; arrivals are clamped
        nondecreasing (``None`` = right after the previous one).
        ``on_done(item, sim_completion_time, value)`` fires inside the
        pump when the request completes.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if kind not in ("r", "w"):
            raise ValueError(f"unknown request kind {kind!r} (use 'r'/'w')")
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"no such processor: {proc}")
        if not 0 <= vid < len(self.rt.registry):
            raise ValueError(f"no such variable: {vid}")
        if len(self._ingest) >= self.max_queue:
            self.rejected += 1
            return False
        wall = time.perf_counter()
        if self._wall_start is None:
            self._wall_start = wall
        floor = self._arrival_floor
        if arrival is None or arrival < floor:
            arrival = floor
        self._arrival_floor = arrival
        self._ingest.append(_Item(kind, proc, vid, value, arrival, wall, on_done))
        self.accepted += 1
        return True

    def submit(self, kind: str, proc: int, vid: int, **kw: Any) -> None:
        """:meth:`try_submit` that raises :class:`QueueFull` on rejection."""
        if not self.try_submit(kind, proc, vid, **kw):
            raise QueueFull(f"ingest queue at capacity ({self.max_queue})")

    @property
    def queue_depth(self) -> int:
        return len(self._ingest)

    @property
    def arrival_floor(self) -> float:
        """Simulated arrival time of the most recently accepted request
        (new arrivals are clamped to at least this)."""
        return self._arrival_floor

    @property
    def inflight(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------ pump
    def _inject(self, it: _Item) -> None:
        rt = self.rt
        t = it.arrival
        now = rt.sim.now
        if t < now:
            t = now  # deferred past its arrival (backpressure): issue asap
        it.eff = t
        p = it.proc
        self._queues[p].append(it)
        if self._parked[p]:
            self._parked[p] = False
            rec = self.recorder
            if rec is not None:
                gap = t - self._park_time[p]
                if gap > 0.0:
                    rec.record_gap(p, gap)
            rt._deliver(p, _PARK, t, None)

    def pump(self, until: Optional[float] = None) -> None:
        """Inject eligible queued requests and advance the engine.

        ``until`` bounds both which arrivals inject and how far the
        engine runs (simulated run-ahead); ``None`` serves everything
        queued and runs the engine idle.  Completions free in-flight
        window slots, so injection and engine progress interleave until
        neither can advance.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        sim = self.rt.sim
        ing = self._ingest
        while True:
            n = 0
            room = self.max_inflight - self._inflight - n
            while ing and room > 0:
                it = ing[0]
                if until is not None and it.arrival > until:
                    break
                ing.popleft()
                self._inject(it)
                n += 1
                room -= 1
            self._inflight += n
            sim.run(until)
            if not n:
                return

    # ------------------------------------------------------------- reporting
    def snapshot(self) -> Dict[str, Any]:
        """Live metrics without stalling the loop: counters, hit rate,
        kernel-aware message totals and latency percentiles so far."""
        strat = self.rt.strategy
        hits, misses = strat.hits, strat.misses
        snap = {
            "sim_time": self.rt.sim.now,
            "completed": self.completed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "created": self.created,
            "queue_depth": len(self._ingest),
            "inflight": self._inflight,
            "hits": hits,
            "misses": misses,
            "hit_rate": MetricsBundle(hits=hits, misses=misses).hit_rate,
            "total_msgs": self.rt.sim.stats.total_msgs,
        }
        for k, v in latency_percentiles(self._lat_sim).items():
            snap[f"latency_{k}"] = v
        return snap

    def close(self) -> ServeReport:
        """Serve everything queued, stop the dispatchers, and report."""
        if self._closed:
            return self._report
        self.pump()  # unbounded: drains the ingest queue completely
        rt = self.rt
        for p in range(self.n_procs):
            if self._parked[p]:
                self._parked[p] = False
                rt._deliver(p, _PARK, rt.sim.now, _STOP)
        rt.sim.run()
        self._closed = True
        wall_end = time.perf_counter()
        wall = wall_end - self._wall_start if self._wall_start is not None else 0.0
        end = max(self._clock) if self.completed else 0.0
        stats = rt.sim.stats
        strat = rt.strategy
        # The serving latency sample is arrival -> completion (queueing
        # included), so the bundle is built from the session's own buffer;
        # everything else is the shared metric-suite accounting.
        bundle = MetricsBundle.from_run(
            hits=strat.hits,
            misses=strat.misses,
            evictions=rt.memory.total_evictions,
            total_bytes=stats.total_bytes,
            latencies=self._lat_sim,
            storage_cost=strat.storage_cost(end),
        )
        wall_pct = latency_percentiles(self._lat_wall)
        self._report = ServeReport(
            strategy=strat.name,
            network=rt.sim.topology.label,
            engine="ckern" if rt.sim._h is not None else "pure",
            requests=self.completed,
            accepted=self.accepted,
            rejected=self.rejected,
            created=self.created,
            sim_time=end,
            wall_seconds=wall,
            requests_per_sec=self.completed / wall if wall > 0 else 0.0,
            sim_requests_per_sec=self.completed / end if end > 0 else 0.0,
            latency_p50=bundle.latency_p50,
            latency_p95=bundle.latency_p95,
            latency_p99=bundle.latency_p99,
            wall_p50=wall_pct["p50"],
            wall_p95=wall_pct["p95"],
            wall_p99=wall_pct["p99"],
            hits=bundle.hits,
            misses=bundle.misses,
            hit_rate=bundle.hit_rate,
            evictions=bundle.evictions,
            storage_cost=bundle.storage_cost,
            effective_network_usage=bundle.effective_network_usage,
            total_bytes=stats.total_bytes,
            total_msgs=stats.total_msgs,
            congestion_bytes=stats.congestion_bytes,
            congestion_msgs=stats.congestion_msgs,
        )
        return self._report

    def trace(self, params: Optional[Dict[str, Any]] = None) -> Trace:
        """The served access stream as a replayable :class:`Trace`."""
        if self.recorder is None:
            raise RuntimeError("session was opened with record=False")
        return self.recorder.to_trace(workload="serve", params=params)
