"""Flow executors: timing multi-leg protocol operations through the event heap.

Why events per leg?  A protocol operation (read miss, write with
invalidation, ...) consists of *dependent* message legs.  If all legs were
timed at initiation, later legs would reserve NICs and links at instants
far in the simulated future; the engine's availability pointers would jump
forward and subsequently-initiated traffic would queue behind phantom busy
periods, compounding into artificial convoys.  Executing every leg in its
own event at its ready time keeps all resource reservations monotone in
simulation time -- i.e. genuine FCFS queueing.

Two composable patterns cover every protocol in the package:

* :func:`chain` -- a store-and-forward sequence of legs (access-tree
  request/reply hopping through tree nodes; fixed-home round trips);
* :func:`multicast_acks` -- fan-out over a tree with combining
  acknowledgements (the invalidation multicast).

State updates (copy sets, ownership) stay atomic at operation initiation;
flows only carry the *timing* and traffic accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .engine import Simulator

__all__ = ["Leg", "chain", "multicast_acks"]

#: One message leg: (src_proc, dst_proc, payload_bytes, is_data).
Leg = Tuple[int, int, int, bool]

Done = Callable[[float], None]


def chain(sim: Simulator, legs: Sequence[Leg], t: float, done: Done) -> None:
    """Execute ``legs`` sequentially, each in its own event; call
    ``done(completion_time)`` after the last leg is delivered.

    An empty sequence completes immediately at ``t``.
    """
    legs = list(legs)
    n = len(legs)
    if n == 0:
        done(t)
        return
    i = 0

    def fire() -> None:
        nonlocal i
        src, dst, payload, is_data = legs[i]
        arrive = sim.send_leg(src, dst, payload, sim.now, is_data)
        i += 1
        if i == n:
            done(arrive)
        else:
            sim.schedule(arrive, fire)

    sim.schedule(t, fire)


def multicast_acks(
    sim: Simulator,
    root: int,
    children: Dict[int, List[int]],
    hosts: Dict[int, int],
    t: float,
    done: Done,
    payload: int = 0,
) -> None:
    """Multicast from ``root`` over the tree given by ``children`` (node ->
    list of child nodes), with per-edge acknowledgements combining back to
    the root; ``done(time)`` fires when the last ack converges at ``root``.

    ``hosts`` maps tree node ids to processors.  Every downward leg and
    every upward ack is a control message (``payload`` adds data weight to
    the downward legs if nonzero -- unused by the paper's protocols but
    handy for experiments).
    """
    kids = children.get(root, [])
    if not kids:
        done(t)
        return
    pending = {"n": len(kids), "t": t}

    def branch_done(t_ack: float) -> None:
        pending["n"] -= 1
        if t_ack > pending["t"]:
            pending["t"] = t_ack
        if pending["n"] == 0:
            done(pending["t"])

    for kid in kids:
        _branch(sim, root, kid, children, hosts, t, branch_done, payload)


def _branch(
    sim: Simulator,
    parent: int,
    node: int,
    children: Dict[int, List[int]],
    hosts: Dict[int, int],
    t: float,
    ack_to_parent: Done,
    payload: int,
) -> None:
    """Deliver the multicast to ``node`` (one leg), recurse into its
    children, and send the combined ack back to ``parent``."""

    def on_arrive() -> None:
        t_here = sim.send_leg(hosts[parent], hosts[node], payload, sim.now, payload > 0)
        kids = children.get(node, [])

        def after_subtree(t_sub: float) -> None:
            # Combined ack back to the parent, one control leg.
            def fire_ack() -> None:
                t_ack = sim.send_leg(hosts[node], hosts[parent], 0, sim.now, False)
                ack_to_parent(t_ack)

            sim.schedule(t_sub, fire_ack)

        if not kids:
            after_subtree(t_here)
            return
        pending = {"n": len(kids), "t": t_here}

        def branch_done(t_ack: float) -> None:
            pending["n"] -= 1
            if t_ack > pending["t"]:
                pending["t"] = t_ack
            if pending["n"] == 0:
                after_subtree(pending["t"])

        for kid in kids:
            _branch(sim, node, kid, children, hosts, t_here, branch_done, payload)

    sim.schedule(t, on_arrive)
