"""Flow executors: timing multi-leg protocol operations through the event heap.

Why events per leg?  A protocol operation (read miss, write with
invalidation, ...) consists of *dependent* message legs.  If all legs were
timed at initiation, later legs would reserve NICs and links at instants
far in the simulated future; the engine's availability pointers would jump
forward and subsequently-initiated traffic would queue behind phantom busy
periods, compounding into artificial convoys.  Executing every leg in its
own event at its ready time keeps all resource reservations monotone in
simulation time -- i.e. genuine FCFS queueing.

Two composable patterns cover every protocol in the package:

* :func:`chain` -- a store-and-forward sequence of legs (access-tree
  request/reply hopping through tree nodes; fixed-home round trips);
* :func:`multicast_acks` -- fan-out over a tree with combining
  acknowledgements (the invalidation multicast).

State updates (copy sets, ownership) stay atomic at operation initiation;
flows only carry the *timing* and traffic accounting.

Execution lives in the engine: these functions *compile* the flow (legs
with machine cost terms resolved, multicast context packed) and push it
onto the event heap, where :meth:`repro.sim.engine.Simulator.run` steps it
inline -- one heap pop per leg, no per-leg Python function calls.  Event
ordering and arithmetic are identical to the historic closure-per-leg
implementation, leg for leg; only the interpreter overhead is gone.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .engine import Simulator

__all__ = ["Leg", "chain", "compile_legs", "multicast_acks"]

#: One message leg: (src_proc, dst_proc, payload_bytes, is_data).
Leg = Tuple[int, int, int, bool]

Done = Callable[[float], None]


def compile_legs(sim: Simulator, legs: Sequence[Leg]) -> list:
    """Resolve payloads into the engine's compiled leg form:
    ``(src, dst, wire, nic_overhead, link_occupancy, is_data)``."""
    header = sim._header_bytes
    ctrl = sim._ctrl_bytes
    fixed = sim._nic_fixed
    per_byte = sim._nic_byte
    bw = sim._bandwidth
    out = []
    for src, dst, payload, is_data in legs:
        wire = payload + header if is_data else ctrl
        out.append((src, dst, wire, fixed + wire * per_byte, wire / bw, is_data))
    return out


def chain(sim: Simulator, legs: Sequence[Leg], t: float, done: Done) -> None:
    """Execute ``legs`` sequentially, each in its own event; call
    ``done(completion_time)`` after the last leg is delivered.

    An empty sequence completes immediately at ``t``.
    """
    compiled = compile_legs(sim, legs)
    if not compiled:
        done(t)
        return
    sim.push_chain(t, compiled, done)


def multicast_acks(
    sim: Simulator,
    root: int,
    children: Dict[int, List[int]],
    hosts: Dict[int, int],
    t: float,
    done: Done,
    payload: int = 0,
) -> None:
    """Multicast from ``root`` over the tree given by ``children`` (node ->
    list of child nodes), with per-edge acknowledgements combining back to
    the root; ``done(time)`` fires when the last ack converges at ``root``.

    ``hosts`` maps tree node ids to processors.  Every downward leg and
    every upward ack is a control message (``payload`` adds data weight to
    the downward legs if nonzero -- unused by the paper's protocols but
    handy for experiments).
    """
    kids = children.get(root, [])
    if not kids:
        done(t)
        return
    sim.push_multicast(hosts[root], kids, children, hosts, payload, t, done)
