"""Optional compiled event-loop kernel (cffi + cc), with pure-Python fallback.

The discrete-event hot loop -- heap, chain/multicast flow stepping, leg
timing, traffic accounting -- is a few hundred machine-level operations
per message leg, but costs ~1.2 microseconds in CPython even after the
inline-event overhaul.  This module compiles the identical loop to native
code at first use and drives it through ``cffi``'s ABI mode: chains and
multicasts execute entirely in C, and control returns to Python only for
generic events (program steps, barriers, locks) and flow completions.

Arithmetic is mirrored operation-for-operation from the pure-Python loop
in :mod:`repro.sim.engine` (same IEEE doubles, same order), and event keys
``(time, seq)`` are assigned at the same logical points, so simulated
results are bit-identical between the two engines --
``tests/sim/test_engine.py`` pins that equivalence.

Routing is mirrored the same way: for the shipped topologies the kernel
computes dimension-order / e-cube routes in closed form (``sim_set_topology``
+ ``topo_route``, link-for-link identical to ``Topology.compute_route``),
so the hot loop never re-enters Python for a route.  Below the package's
dense-node limit computed routes are also inserted into the kernel's route
hash (each pair computed once); above it they are recomputed per leg into
a scratch buffer -- O(1) route memory at any machine size.  Custom
topology classes fall back to the historical supply path: the kernel
returns ``R_NEED_ROUTE`` and Python feeds the route via ``sim_set_route``.

Gating: the kernel engages only when ``cffi`` is importable, a C compiler
is available, and ``REPRO_PURE_PYTHON`` is unset.  Any failure along the
way (no compiler, sandboxed tmpdir, dlopen error) silently falls back to
the pure-Python engine; nothing in the package *requires* the kernel.
The shared object is cached under ``$REPRO_CKERN_DIR`` (default: a
per-user directory in the system tempdir) keyed by a hash of the C
source, so compilation happens once per source revision.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import subprocess
import sys
import tempfile

__all__ = ["load_kernel", "CKERN_SOURCE"]

CKERN_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef long long i64;

enum { K_GEN = 0, K_CHAIN = 1, K_MDOWN = 2, K_MACK = 3,
       K_SREQ = 4, K_SDONE = 5 };
enum { R_DONE = 0, R_GENERIC = 1, R_CHAIN_DONE = 2, R_MC_DONE = 3,
       R_NEED_ROUTE = 4, R_SREQ = 5 };

typedef struct { double time; i64 seq; int kind, a, b, c, d; } Ev;
typedef struct { int kind; int a; int b; double time; double targ; } Crossing;

typedef struct {
    int n, done_id, auto_resume;
    int *src, *dst;
    double *wire, *over, *occ;
    unsigned char *dat;
} Chain;

typedef struct { int remaining; double tmax; int node; int parent_host; int parent; } Pend;

/* ------------------------------------------------------- serving fast path
 * One queued request.  kind: 0 = read, 1 = write.  arrival is the
 * requested simulated arrival (latency zero point), eff the effective
 * issue floor (clamped at injection, exactly like the Python session's
 * _inject), wall the perf_counter() stamp taken at submission. */
typedef struct { int vid, kind; double arrival, eff, wall; } SReq;

/* Per-processor FIFO ring of queued requests. */
typedef struct { SReq *buf; int cap, head, len; } SQueue;

/* Request pending injection (the C half of the ingest queue). */
typedef struct { int proc, vid, kind; double arrival, wall; } SPend;

typedef struct {
    int done_id;
    double dwire, dover, docc; int ddat;
    double awire, aover, aocc;
    int *hosts;
    int *kid_off, *kid_cnt, *kids;
    Pend *pends; int n_pend, cap_pend;
} Mcast;

typedef struct {
    int n_nodes;
    i64 seqno;
    double hop, local_ov;
    double *link_free, *nic_free;               /* borrowed (numpy) */
    double *st_bytes; i64 *st_msgs, *st_startups, *st_receives;  /* borrowed */
    i64 st_total, st_data, st_local;
    Ev *heap; int heap_n, heap_cap;
    i64 *rt_keys; int *rt_off, *rt_len; int rt_cap, rt_count;
    int *arena; int ar_used, ar_cap;
    /* closed-form routing (sim_set_topology): 0 = none (routes are fed
       from Python), 1 = mesh, 2 = torus, 3 = hypercube */
    int topo_kind, t_rows, t_cols, t_dim, t_nh, t_nv, t_mesh_links;
    int cache_routes;
    int *rt_scratch;
    Chain **chains; int ch_cap; int *ch_free; int ch_free_n;
    Mcast **mcs; int mc_cap; int *mc_free; int mc_free_n;
    int *stage_i;
    double *stage_d;
    int stage_cap;
    /* ------------------------------------------------- serving fast path */
    int serve_on;                 /* armed by sim_serve_init */
    int sv_phase;                 /* 0 = inject next, 1 = running */
    double sv_now;                /* mirror of the Python-visible clock */
    SQueue *sv_q;                 /* per-proc request rings */
    SReq *sv_cur;                 /* per-proc request crossed into Python */
    unsigned char *sv_state;      /* 0 idle, 1 timer pending, 2 crossed */
    SPend *sv_pend; int sv_pend_cap, sv_pend_head, sv_pend_len;
    i64 sv_inflight, sv_max_inflight, sv_completed, sv_round_n;
    i64 sv_hits, sv_wlocal;       /* native counter deltas (folded by Python) */
    /* completion records, structure-of-arrays, drained per pump */
    int sv_rec_cap; i64 sv_rec_n;
    int *sv_rec_proc, *sv_rec_vid, *sv_rec_kind;
    double *sv_rec_arr, *sv_rec_eff, *sv_rec_done, *sv_rec_wall;
    /* residency mirror: per-vid membership bitset over "sites" (procs for
       the directory families, tree nodes for the access tree) */
    int sv_nsites, sv_words, sv_wl_rule;
    int *sv_site_of;              /* proc -> site (identity or leaf_of) */
    int sv_var_cap;
    unsigned long long *sv_bits;  /* sv_var_cap * sv_words */
    int *sv_owner;                /* per vid; -1 = home/main memory */
    int *sv_count;                /* per vid: member count */
    unsigned char *sv_nat_r, *sv_nat_w;  /* per vid: fast path allowed */
    /* access-tree flow mirror: read misses compiled into the kernel
       (armed only when the strategy's flow shape is static -- no remap,
       no memory pressure -- so the whole read path stays native) */
    int sv_tree_on;
    int *sv_parent, *sv_depth;    /* [nsites] static tree shape */
    int *sv_top;                  /* per vid: component top node */
    int *sv_host;                 /* per vid: nsites-wide node->host row */
    double *sv_flow;              /* per vid: 6 up/down leg costs */
    double *sv_payload;           /* per vid: payload bytes */
    int *sv_scr_a, *sv_scr_b, *sv_path;  /* LCA walk scratch */
    i64 sv_misses;                /* native miss delta (folded by Python) */
    /* storage-cost accumulator, moved into C so the time integral stays
       ONE float accumulation sequence (bit-identical to the pure path) */
    int sv_storage_on;
    double sc_integral, sc_last, sc_excess;
} Sim;

/* ------------------------------------------------------------------ heap */
static void heap_push(Sim *s, double t, i64 seq, int kind, int a, int b,
                      int c, int d) {
    if (s->heap_n == s->heap_cap) {
        s->heap_cap *= 2;
        s->heap = (Ev *)realloc(s->heap, s->heap_cap * sizeof(Ev));
    }
    Ev *h = s->heap;
    int i = s->heap_n++;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p].time < t || (h[p].time == t && h[p].seq < seq)) break;
        h[i] = h[p];
        i = p;
    }
    h[i].time = t; h[i].seq = seq; h[i].kind = kind;
    h[i].a = a; h[i].b = b; h[i].c = c; h[i].d = d;
}

static Ev heap_pop(Sim *s) {
    Ev *h = s->heap;
    Ev top = h[0];
    Ev last = h[--s->heap_n];
    int n = s->heap_n, i = 0;
    for (;;) {
        int l = 2 * i + 1, m = i;
        if (l < n && (h[l].time < last.time ||
                      (h[l].time == last.time && h[l].seq < last.seq)))
            m = l;
        int r = l + 1;
        if (r < n) {
            Ev *cm = (m == i) ? &last : &h[m];
            if (h[r].time < cm->time ||
                (h[r].time == cm->time && h[r].seq < cm->seq))
                m = r;
        }
        if (m == i) break;
        h[i] = h[m];
        i = m;
    }
    if (n > 0) h[i] = last;
    return top;
}

/* ---------------------------------------------------------------- routes */
static int rt_slot(Sim *s, i64 key) {
    int mask = s->rt_cap - 1;
    int i = (int)(((unsigned long long)key * 0x9E3779B97F4A7C15ULL) >> 33) & mask;
    while (s->rt_keys[i] != -1) {
        if (s->rt_keys[i] == key) return i;
        i = (i + 1) & mask;
    }
    return ~i;
}

static void rt_grow(Sim *s) {
    int old_cap = s->rt_cap;
    i64 *ok = s->rt_keys; int *oo = s->rt_off, *ol = s->rt_len;
    s->rt_cap *= 2;
    s->rt_keys = (i64 *)malloc(s->rt_cap * sizeof(i64));
    s->rt_off = (int *)malloc(s->rt_cap * sizeof(int));
    s->rt_len = (int *)malloc(s->rt_cap * sizeof(int));
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    for (int i = 0; i < old_cap; i++) {
        if (ok[i] == -1) continue;
        int j = ~rt_slot(s, ok[i]);
        s->rt_keys[j] = ok[i]; s->rt_off[j] = oo[i]; s->rt_len[j] = ol[i];
    }
    free(ok); free(oo); free(ol);
}

static int rt_store(Sim *s, i64 key, const int *links, int n) {
    /* insert one route; returns its arena offset (valid until next store) */
    if (s->rt_count * 10 >= s->rt_cap * 7) rt_grow(s);
    if (s->ar_used + n > s->ar_cap) {
        while (s->ar_used + n > s->ar_cap) s->ar_cap *= 2;
        s->arena = (int *)realloc(s->arena, s->ar_cap * sizeof(int));
    }
    memcpy(s->arena + s->ar_used, links, n * sizeof(int));
    int slot = rt_slot(s, key);
    if (slot < 0) {
        slot = ~slot;
        s->rt_count++;
    }
    s->rt_keys[slot] = key;
    s->rt_off[slot] = s->ar_used;
    s->rt_len[slot] = n;
    int off = s->ar_used;
    s->ar_used += n;
    return off;
}

void sim_set_route(Sim *s, int src, int dst, int n) {
    /* links staged in stage_i[0..n) */
    rt_store(s, (i64)src * s->n_nodes + dst, s->stage_i, n);
}

void sim_clear_routes(Sim *s) {
    /* Drop every interned route (failure epoch boundary: topology
       deltas invalidate routes; Python re-supplies them on demand). */
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    s->rt_count = 0;
    s->ar_used = 0;
}

/* ----------------------------------------------- closed-form routing */
void sim_set_topology(Sim *s, int kind, int rows, int cols, int dim,
                      int cache) {
    /* Enable algebraic next-hop computation (mirrors the Python
       compute_route of Mesh2D / Torus2D / Hypercube link for link).
       With cache=1 computed routes are also inserted into the route
       hash (small machines: compute each pair once); with cache=0 they
       are recomputed per leg into a scratch buffer (large machines:
       O(1) memory). */
    s->topo_kind = kind;
    s->t_rows = rows;
    s->t_cols = cols;
    s->t_dim = dim;
    s->t_nh = rows * (cols - 1);
    s->t_nv = (rows - 1) * cols;
    s->t_mesh_links = 2 * (s->t_nh + s->t_nv);
    s->cache_routes = cache;
    free(s->rt_scratch);
    /* diameter bounds: mesh R+C, torus R/2+C/2, hypercube dim */
    s->rt_scratch = (int *)malloc((rows + cols + dim + 4) * sizeof(int));
}

static int topo_route(Sim *s, int src, int dst, int *out) {
    /* Directed link ids of the deterministic path src -> dst; mirrors
       Topology.compute_route operation-for-operation. */
    int n = 0;
    if (s->topo_kind == 3) {            /* hypercube: e-cube */
        int D = s->t_dim;
        int diff = src ^ dst, cur = src;
        for (int d = 0; d < D; d++) {
            if (diff & (1 << d)) {
                out[n++] = cur * D + d;
                cur ^= 1 << d;
            }
        }
        return n;
    }
    int C = s->t_cols, R = s->t_rows;
    int nh = s->t_nh, nv = s->t_nv;
    int r1 = src / C, c1 = src % C, r2 = dst / C, c2 = dst % C;
    if (s->topo_kind == 1) {            /* mesh: dimension-order, x-first */
        if (c2 > c1)
            for (int c = c1; c < c2; c++) out[n++] = r1 * (C - 1) + c;
        else
            for (int c = c1; c > c2; c--) out[n++] = r1 * (C - 1) + (c - 1) + nh;
        if (r2 > r1)
            for (int r = r1; r < r2; r++) out[n++] = 2 * nh + r * C + c2;
        else
            for (int r = r1; r > r2; r--) out[n++] = 2 * nh + (r - 1) * C + c2 + nv;
        return n;
    }
    /* torus: shortest-wrap dimension-order (tie at half-ring: east/south) */
    int M = s->t_mesh_links;
    int dc = c2 - c1;
    if (dc < 0) dc += C;
    if (dc) {
        int east = dc <= C - dc;
        int dist = east ? dc : C - dc;
        int c = c1;
        for (int i = 0; i < dist; i++) {
            if (east) {
                out[n++] = (c < C - 1) ? r1 * (C - 1) + c : M + r1;
                if (++c == C) c = 0;
            } else {
                out[n++] = (c > 0) ? r1 * (C - 1) + (c - 1) + nh : M + R + r1;
                if (--c < 0) c = C - 1;
            }
        }
    }
    int dr = r2 - r1;
    if (dr < 0) dr += R;
    if (dr) {
        int south = dr <= R - dr;
        int dist = south ? dr : R - dr;
        int r = r1;
        for (int i = 0; i < dist; i++) {
            if (south) {
                out[n++] = (r < R - 1) ? 2 * nh + r * C + c2 : M + 2 * R + c2;
                if (++r == R) r = 0;
            } else {
                out[n++] = (r > 0) ? 2 * nh + (r - 1) * C + c2 + nv
                                   : M + 2 * R + C + c2;
                if (--r < 0) r = R - 1;
            }
        }
    }
    return n;
}

int sim_compute_route(Sim *s, int src, int dst) {
    /* Test/debug surface: route length, links in sim_route_scratch(). */
    if (!s->topo_kind) return -1;
    return topo_route(s, src, dst, s->rt_scratch);
}

int *sim_route_scratch(Sim *s) { return s->rt_scratch; }

/* --------------------------------------------------------------- one leg */
static double do_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ, int isdat, int *need) {
    if (src == dst) {
        s->st_startups[src]++; s->st_receives[dst]++;
        s->st_total++; s->st_local++;
        if (isdat) s->st_data++;
        return time + s->local_ov;
    }
    i64 key = (i64)src * s->n_nodes + dst;
    int slot = rt_slot(s, key);
    int len;
    int *links;
    if (slot >= 0) {
        len = s->rt_len[slot];
        links = s->arena + s->rt_off[slot];
    } else if (s->topo_kind) {
        len = topo_route(s, src, dst, s->rt_scratch);
        if (s->cache_routes) {
            /* rt_store may realloc the arena: sequence the call before
               reading s->arena (a combined expression is free to load
               the old pointer first). */
            int off = rt_store(s, key, s->rt_scratch, len);
            links = s->arena + off;
        } else {
            links = s->rt_scratch;
        }
    } else {
        *need = 1;
        return 0.0;
    }
    double t_send = s->nic_free[src];
    if (time > t_send) t_send = time;
    double depart = t_send + over;
    double start = depart;
    for (int k = 0; k < len; k++) {
        double v = s->link_free[links[k]];
        if (v > start) start = v;
    }
    double end = start + occ;
    double arrive = end + len * s->hop;
    double t_recv = s->nic_free[dst];
    if (arrive > t_recv) t_recv = arrive;
    arrive = t_recv + over;
    s->nic_free[src] = depart;
    for (int k = 0; k < len; k++) {
        int lk = links[k];
        s->link_free[lk] = end;
        s->st_bytes[lk] += wire;
        s->st_msgs[lk]++;
    }
    s->nic_free[dst] = arrive;
    s->st_startups[src]++; s->st_receives[dst]++;
    s->st_total++;
    /* A zero-link route (unreachable pair under failures) crosses no
       link; the pure engine's LinkStats counts such legs as local. */
    if (len == 0) s->st_local++;
    if (isdat) s->st_data++;
    return arrive;
}

/* side-effect-free timing of one leg (send_leg(count=False)) */
double sim_probe_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ) {
    if (src == dst) return time + s->local_ov;
    int slot = rt_slot(s, (i64)src * s->n_nodes + dst);
    int len;
    const int *links;
    if (slot >= 0) {
        len = s->rt_len[slot];
        links = s->arena + s->rt_off[slot];
    } else if (s->topo_kind) {
        /* probes are side-effect-free: compute into scratch, don't cache */
        len = topo_route(s, src, dst, s->rt_scratch);
        links = s->rt_scratch;
    } else {
        return -1.0; /* caller must set the route and retry */
    }
    double t_send = s->nic_free[src];
    if (time > t_send) t_send = time;
    double depart = t_send + over;
    double start = depart;
    for (int k = 0; k < len; k++) {
        double v = s->link_free[links[k]];
        if (v > start) start = v;
    }
    double end = start + occ;
    double arrive = end + len * s->hop;
    double t_recv = s->nic_free[dst];
    if (arrive > t_recv) t_recv = arrive;
    return t_recv + over;
}

/* counting leg driven from Python's send_leg(); -1 => route needed */
double sim_send_leg(Sim *s, double time, int src, int dst, double wire,
                    double over, double occ, int isdat) {
    if (src != dst && !s->topo_kind) {
        int slot = rt_slot(s, (i64)src * s->n_nodes + dst);
        if (slot < 0) return -1.0;
    }
    int need = 0;
    return do_leg(s, time, src, dst, wire, over, occ, isdat, &need);
}

/* --------------------------------------------------------------- chains */
static int chain_alloc(Sim *s, int n, int done_id, int auto_resume) {
    int id;
    if (s->ch_free_n) {
        id = s->ch_free[--s->ch_free_n];
    } else {
        id = s->ch_cap;
        s->ch_cap = s->ch_cap ? s->ch_cap * 2 : 64;
        s->chains = (Chain **)realloc(s->chains, s->ch_cap * sizeof(Chain *));
        s->ch_free = (int *)realloc(s->ch_free, s->ch_cap * sizeof(int));
        memset(s->chains + id, 0, (s->ch_cap - id) * sizeof(Chain *));
        for (int i = s->ch_cap - 1; i > id; i--) s->ch_free[s->ch_free_n++] = i;
    }
    Chain *ch = (Chain *)malloc(sizeof(Chain));
    ch->n = n;
    ch->done_id = done_id;
    ch->auto_resume = auto_resume;
    ch->src = (int *)malloc(n * sizeof(int));
    ch->dst = (int *)malloc(n * sizeof(int));
    ch->wire = (double *)malloc(n * sizeof(double));
    ch->over = (double *)malloc(n * sizeof(double));
    ch->occ = (double *)malloc(n * sizeof(double));
    ch->dat = (unsigned char *)malloc(n);
    s->chains[id] = ch;
    return id;
}

static void chain_free(Sim *s, int id) {
    Chain *ch = s->chains[id];
    free(ch->src); free(ch->dst); free(ch->wire); free(ch->over);
    free(ch->occ); free(ch->dat); free(ch);
    s->chains[id] = 0;
    s->ch_free[s->ch_free_n++] = id;
}

void sim_push_chain_updown(Sim *s, double t, int nh, double cw, double co,
                           double cocc, double dw, double dov, double docc,
                           int done_id, int auto_resume) {
    /* hosts staged in stage_i[0..nh); nh >= 2.  Up = control, down = data. */
    int n = 2 * (nh - 1);
    int id = chain_alloc(s, n, done_id, auto_resume);
    Chain *ch = s->chains[id];
    int *hosts = s->stage_i;
    for (int j = 0; j < nh - 1; j++) {
        ch->src[j] = hosts[j]; ch->dst[j] = hosts[j + 1];
        ch->wire[j] = cw; ch->over[j] = co; ch->occ[j] = cocc; ch->dat[j] = 0;
    }
    for (int j = 0; j < nh - 1; j++) {
        int k = nh - 1 + j;
        ch->src[k] = hosts[nh - 1 - j]; ch->dst[k] = hosts[nh - 2 - j];
        ch->wire[k] = dw; ch->over[k] = dov; ch->occ[k] = docc; ch->dat[k] = 1;
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

void sim_push_chain_path(Sim *s, double t, int nh, int reverse, double w,
                         double o, double occ, int isdat, int done_id,
                         int auto_resume) {
    /* hosts staged in stage_i[0..nh); one cost shape, one direction. */
    int n = nh - 1;
    int id = chain_alloc(s, n, done_id, auto_resume);
    Chain *ch = s->chains[id];
    int *hosts = s->stage_i;
    for (int j = 0; j < n; j++) {
        if (reverse) { ch->src[j] = hosts[nh - 1 - j]; ch->dst[j] = hosts[nh - 2 - j]; }
        else { ch->src[j] = hosts[j]; ch->dst[j] = hosts[j + 1]; }
        ch->wire[j] = w; ch->over[j] = o; ch->occ[j] = occ;
        ch->dat[j] = (unsigned char)isdat;
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

void sim_push_chain_legs(Sim *s, double t, int n, int done_id) {
    /* generic legs: stage_i holds src,dst,isdat triples; stage_d holds
       wire,over,occ triples. */
    int id = chain_alloc(s, n, done_id, 0);
    Chain *ch = s->chains[id];
    for (int j = 0; j < n; j++) {
        ch->src[j] = s->stage_i[3 * j];
        ch->dst[j] = s->stage_i[3 * j + 1];
        ch->dat[j] = (unsigned char)s->stage_i[3 * j + 2];
        ch->wire[j] = s->stage_d[3 * j];
        ch->over[j] = s->stage_d[3 * j + 1];
        ch->occ[j] = s->stage_d[3 * j + 2];
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

/* -------------------------------------------------------------- multicast */
static int mc_new_pend(Mcast *m, int remaining, double tmax, int node,
                       int parent_host, int parent) {
    if (m->n_pend == m->cap_pend) {
        m->cap_pend *= 2;
        m->pends = (Pend *)realloc(m->pends, m->cap_pend * sizeof(Pend));
    }
    Pend *p = &m->pends[m->n_pend];
    p->remaining = remaining; p->tmax = tmax; p->node = node;
    p->parent_host = parent_host; p->parent = parent;
    return m->n_pend++;
}

void sim_push_mcast(Sim *s, double t, int root_host, int n_kids, int tbl,
                    int total_kids, double dwire, double dover, double docc,
                    int ddat, double awire, double aover, double aocc,
                    int done_id) {
    /* stage_i layout: hosts[tbl], kid_cnt[tbl], kid_off[tbl],
       kids[total_kids], root_kids[n_kids] */
    int id;
    if (s->mc_free_n) {
        id = s->mc_free[--s->mc_free_n];
    } else {
        id = s->mc_cap;
        s->mc_cap = s->mc_cap ? s->mc_cap * 2 : 16;
        s->mcs = (Mcast **)realloc(s->mcs, s->mc_cap * sizeof(Mcast *));
        s->mc_free = (int *)realloc(s->mc_free, s->mc_cap * sizeof(int));
        memset(s->mcs + id, 0, (s->mc_cap - id) * sizeof(Mcast *));
        for (int i = s->mc_cap - 1; i > id; i--) s->mc_free[s->mc_free_n++] = i;
    }
    Mcast *m = (Mcast *)malloc(sizeof(Mcast));
    m->done_id = done_id;
    m->dwire = dwire; m->dover = dover; m->docc = docc; m->ddat = ddat;
    m->awire = awire; m->aover = aover; m->aocc = aocc;
    m->hosts = (int *)malloc(tbl * sizeof(int));
    m->kid_cnt = (int *)malloc(tbl * sizeof(int));
    m->kid_off = (int *)malloc(tbl * sizeof(int));
    m->kids = (int *)malloc((total_kids > 0 ? total_kids : 1) * sizeof(int));
    int *st = s->stage_i;
    memcpy(m->hosts, st, tbl * sizeof(int));
    memcpy(m->kid_cnt, st + tbl, tbl * sizeof(int));
    memcpy(m->kid_off, st + 2 * tbl, tbl * sizeof(int));
    memcpy(m->kids, st + 3 * tbl, total_kids * sizeof(int));
    m->cap_pend = 8;
    m->pends = (Pend *)malloc(m->cap_pend * sizeof(Pend));
    m->n_pend = 0;
    mc_new_pend(m, n_kids, t, 0, 0, -1); /* root pend = index 0 */
    s->mcs[id] = m;
    int *root_kids = st + 3 * tbl + total_kids;
    for (int j = 0; j < n_kids; j++)
        heap_push(s, t, s->seqno++, K_MDOWN, id, root_kids[j], root_host, 0);
}

static void mc_free_one(Sim *s, int id) {
    Mcast *m = s->mcs[id];
    free(m->hosts); free(m->kid_cnt); free(m->kid_off); free(m->kids);
    free(m->pends); free(m);
    s->mcs[id] = 0;
    s->mc_free[s->mc_free_n++] = id;
}

/* ------------------------------------------------------- serving fast path
 *
 * The request path of the serving session, mirrored move for move from
 * serve/session.py's dispatcher generators (see that module's docstring):
 * same event keys (time, seq) at the same logical points, so a served
 * run is bit-identical between this fast path and the classic
 * generator-based path.
 *
 *   parked kick          ->  K_SREQ pushed at injection (idle proc)
 *   queued-gap ComputeReq->  K_SREQ pushed at the previous completion
 *   flow auto-resume     ->  K_SDONE at the chain-completion push point
 *   strategy done > now  ->  sim_serve_push_done (Python crossing point)
 *   local hit/write      ->  handled natively when the residency mirror
 *                            proves the strategy call is side-effect-free
 */

static void serve_record(Sim *s, int p, const SReq *it, double done) {
    if (s->sv_rec_n == s->sv_rec_cap) {
        s->sv_rec_cap *= 2;
        s->sv_rec_proc = (int *)realloc(s->sv_rec_proc, s->sv_rec_cap * sizeof(int));
        s->sv_rec_vid = (int *)realloc(s->sv_rec_vid, s->sv_rec_cap * sizeof(int));
        s->sv_rec_kind = (int *)realloc(s->sv_rec_kind, s->sv_rec_cap * sizeof(int));
        s->sv_rec_arr = (double *)realloc(s->sv_rec_arr, s->sv_rec_cap * sizeof(double));
        s->sv_rec_eff = (double *)realloc(s->sv_rec_eff, s->sv_rec_cap * sizeof(double));
        s->sv_rec_done = (double *)realloc(s->sv_rec_done, s->sv_rec_cap * sizeof(double));
        s->sv_rec_wall = (double *)realloc(s->sv_rec_wall, s->sv_rec_cap * sizeof(double));
    }
    i64 i = s->sv_rec_n++;
    s->sv_rec_proc[i] = p;
    s->sv_rec_vid[i] = it->vid;
    s->sv_rec_kind[i] = it->kind;
    s->sv_rec_arr[i] = it->arrival;
    s->sv_rec_eff[i] = it->eff;
    s->sv_rec_done[i] = done;
    s->sv_rec_wall[i] = it->wall;
    s->sv_completed++;
    s->sv_inflight--;
}

static void sq_push(SQueue *q, const SReq *it) {
    if (q->len == q->cap) {
        SReq *nb = (SReq *)malloc(2 * q->cap * sizeof(SReq));
        for (int j = 0; j < q->len; j++)
            nb[j] = q->buf[(q->head + j) & (q->cap - 1)];
        free(q->buf);
        q->buf = nb;
        q->cap *= 2;
        q->head = 0;
    }
    q->buf[(q->head + q->len) & (q->cap - 1)] = *it;
    q->len++;
}

static int serve_tree_miss(Sim *s, int p, const SReq *cur);

/* Dispatch queued requests for processor p until one must wait (timer),
 * one crosses into Python (returns 1, crossing filled), or the queue is
 * empty.  Mirrors the dispatcher generator's loop head. */
static int serve_advance(Sim *s, int p, Crossing *out) {
    SQueue *q = &s->sv_q[p];
    for (;;) {
        if (!q->len) {
            s->sv_state[p] = 0;      /* parked */
            return 0;
        }
        SReq *head = &q->buf[q->head];
        if (head->eff > s->sv_now) {
            /* idle until the arrival: the classic path schedules a kick
               (parked) or a ComputeReq resume (queued gap) here. */
            heap_push(s, head->eff, s->seqno++, K_SREQ, p, 0, 0, 0);
            s->sv_state[p] = 1;
            return 0;
        }
        SReq cur = *head;
        q->head = (q->head + 1) & (q->cap - 1);
        q->len--;
        int vid = cur.vid;
        int native = 0;
        if (cur.kind == 0) {
            if (s->sv_nat_r[vid]) {
                unsigned long long *w = s->sv_bits + (size_t)vid * s->sv_words;
                int site = s->sv_site_of[p];
                if (w[site >> 6] & (1ULL << (site & 63))) {
                    s->sv_hits++;
                    native = 1;
                } else if (s->sv_tree_on && serve_tree_miss(s, p, &cur)) {
                    /* miss flow launched natively: this proc blocks until
                       its K_SDONE, exactly like a crossed request */
                    s->sv_cur[p] = cur;
                    s->sv_state[p] = 2;
                    return 0;
                }
            }
        } else {
            if (s->sv_nat_w[vid]) {
                int local;
                if (s->sv_wl_rule == 0) {
                    local = (s->sv_owner[vid] == p);
                } else {
                    unsigned long long *w = s->sv_bits + (size_t)vid * s->sv_words;
                    int site = s->sv_site_of[p];
                    local = (s->sv_count[vid] == 1 &&
                             (w[site >> 6] & (1ULL << (site & 63))) != 0);
                }
                if (local) {
                    s->sv_wlocal++;
                    native = 1;
                }
            }
        }
        if (native) {
            /* local hit / owner write: zero simulated time, zero side
               effects beyond the counter -- complete in place. */
            serve_record(s, p, &cur, s->sv_now);
            continue;
        }
        s->sv_cur[p] = cur;
        s->sv_state[p] = 2;
        out->kind = R_SREQ;
        out->a = p;
        out->b = vid * 2 + cur.kind;
        out->time = s->sv_now;
        return 1;
    }
}

/* One injection round: move pending requests whose arrival is within the
 * horizon into the per-proc queues while the in-flight window has room.
 * Mirrors ServeSession.pump's inject loop (same admission order, same
 * eff clamp, same kick points). */
static i64 serve_inject(Sim *s, double horizon) {
    i64 n = 0;
    while (s->sv_pend_len && s->sv_inflight < s->sv_max_inflight) {
        SPend *pr = &s->sv_pend[s->sv_pend_head];
        if (pr->arrival > horizon) break;
        double eff = pr->arrival;
        if (eff < s->sv_now) eff = s->sv_now;
        SReq it;
        it.vid = pr->vid; it.kind = pr->kind;
        it.arrival = pr->arrival; it.eff = eff; it.wall = pr->wall;
        int p = pr->proc;
        s->sv_pend_head = (s->sv_pend_head + 1) & (s->sv_pend_cap - 1);
        s->sv_pend_len--;
        sq_push(&s->sv_q[p], &it);
        if (s->sv_state[p] == 0) {
            /* parked processor: the wake-up kick, stamped at eff */
            heap_push(s, eff, s->seqno++, K_SREQ, p, 0, 0, 0);
            s->sv_state[p] = 1;
        }
        s->sv_inflight++;
        n++;
    }
    return n;
}

int sim_serve_init(Sim *s, int nsites, int wl_rule, i64 max_inflight) {
    /* site_of staged in stage_i[0..n_nodes) */
    int n = s->n_nodes;
    s->serve_on = 1;
    s->sv_phase = 0;
    s->sv_now = 0.0;
    s->sv_nsites = nsites;
    s->sv_words = (nsites + 63) >> 6;
    s->sv_wl_rule = wl_rule;
    s->sv_max_inflight = max_inflight;
    s->sv_q = (SQueue *)calloc(n, sizeof(SQueue));
    for (int p = 0; p < n; p++) {
        s->sv_q[p].cap = 16;
        s->sv_q[p].buf = (SReq *)malloc(16 * sizeof(SReq));
    }
    s->sv_cur = (SReq *)calloc(n, sizeof(SReq));
    s->sv_state = (unsigned char *)calloc(n, 1);
    s->sv_site_of = (int *)malloc(n * sizeof(int));
    memcpy(s->sv_site_of, s->stage_i, n * sizeof(int));
    s->sv_pend_cap = 1024;
    s->sv_pend = (SPend *)malloc(s->sv_pend_cap * sizeof(SPend));
    s->sv_rec_cap = 4096;
    s->sv_rec_proc = (int *)malloc(s->sv_rec_cap * sizeof(int));
    s->sv_rec_vid = (int *)malloc(s->sv_rec_cap * sizeof(int));
    s->sv_rec_kind = (int *)malloc(s->sv_rec_cap * sizeof(int));
    s->sv_rec_arr = (double *)malloc(s->sv_rec_cap * sizeof(double));
    s->sv_rec_eff = (double *)malloc(s->sv_rec_cap * sizeof(double));
    s->sv_rec_done = (double *)malloc(s->sv_rec_cap * sizeof(double));
    s->sv_rec_wall = (double *)malloc(s->sv_rec_cap * sizeof(double));
    s->sv_var_cap = 256;
    s->sv_bits = (unsigned long long *)calloc(
        (size_t)s->sv_var_cap * s->sv_words, sizeof(unsigned long long));
    s->sv_owner = (int *)malloc(s->sv_var_cap * sizeof(int));
    s->sv_count = (int *)calloc(s->sv_var_cap, sizeof(int));
    s->sv_nat_r = (unsigned char *)calloc(s->sv_var_cap, 1);
    s->sv_nat_w = (unsigned char *)calloc(s->sv_var_cap, 1);
    return 0;
}

static void sv_grow_vars(Sim *s, int vid) {
    if (vid < s->sv_var_cap) return;
    int old = s->sv_var_cap;
    while (vid >= s->sv_var_cap) s->sv_var_cap *= 2;
    s->sv_bits = (unsigned long long *)realloc(
        s->sv_bits,
        (size_t)s->sv_var_cap * s->sv_words * sizeof(unsigned long long));
    memset(s->sv_bits + (size_t)old * s->sv_words, 0,
           (size_t)(s->sv_var_cap - old) * s->sv_words *
           sizeof(unsigned long long));
    s->sv_owner = (int *)realloc(s->sv_owner, s->sv_var_cap * sizeof(int));
    s->sv_count = (int *)realloc(s->sv_count, s->sv_var_cap * sizeof(int));
    s->sv_nat_r = (unsigned char *)realloc(s->sv_nat_r, s->sv_var_cap);
    s->sv_nat_w = (unsigned char *)realloc(s->sv_nat_w, s->sv_var_cap);
    memset(s->sv_count + old, 0, (s->sv_var_cap - old) * sizeof(int));
    memset(s->sv_nat_r + old, 0, s->sv_var_cap - old);
    memset(s->sv_nat_w + old, 0, s->sv_var_cap - old);
    if (s->sv_tree_on) {
        s->sv_top = (int *)realloc(s->sv_top, s->sv_var_cap * sizeof(int));
        s->sv_host = (int *)realloc(
            s->sv_host, (size_t)s->sv_var_cap * s->sv_nsites * sizeof(int));
        s->sv_flow = (double *)realloc(
            s->sv_flow, (size_t)s->sv_var_cap * 6 * sizeof(double));
        s->sv_payload = (double *)realloc(
            s->sv_payload, s->sv_var_cap * sizeof(double));
    }
}

void sim_serve_sync_var(Sim *s, int vid, int owner, int count, int n_members,
                        int nat_r, int nat_w) {
    /* member sites staged in stage_i[0..n_members) */
    sv_grow_vars(s, vid);
    unsigned long long *w = s->sv_bits + (size_t)vid * s->sv_words;
    memset(w, 0, s->sv_words * sizeof(unsigned long long));
    for (int j = 0; j < n_members; j++) {
        int site = s->stage_i[j];
        w[site >> 6] |= 1ULL << (site & 63);
    }
    s->sv_owner[vid] = owner;
    s->sv_count[vid] = count;
    s->sv_nat_r[vid] = (unsigned char)nat_r;
    s->sv_nat_w[vid] = (unsigned char)nat_w;
}

void sim_serve_tree_init(Sim *s) {
    /* tree shape staged in stage_i: parent[0..nsites), depth[nsites..2n).
       Arms the native read-miss flow (sv_tree_on). */
    int n = s->sv_nsites;
    s->sv_tree_on = 1;
    s->sv_parent = (int *)malloc(n * sizeof(int));
    s->sv_depth = (int *)malloc(n * sizeof(int));
    memcpy(s->sv_parent, s->stage_i, n * sizeof(int));
    memcpy(s->sv_depth, s->stage_i + n, n * sizeof(int));
    s->sv_scr_a = (int *)malloc(n * sizeof(int));
    s->sv_scr_b = (int *)malloc(n * sizeof(int));
    s->sv_path = (int *)malloc(2 * n * sizeof(int));
    s->sv_top = (int *)malloc(s->sv_var_cap * sizeof(int));
    s->sv_host = (int *)malloc((size_t)s->sv_var_cap * n * sizeof(int));
    s->sv_flow = (double *)malloc((size_t)s->sv_var_cap * 6 * sizeof(double));
    s->sv_payload = (double *)malloc(s->sv_var_cap * sizeof(double));
}

void sim_serve_var_flow(Sim *s, int vid, int top, double payload, double cw,
                        double co, double cocc, double dw, double dov,
                        double docc) {
    /* node->host row staged in stage_i[0..nsites): the per-vid flow shape
       a native read miss replays (costs from the strategy's leg table). */
    sv_grow_vars(s, vid);
    s->sv_top[vid] = top;
    s->sv_payload[vid] = payload;
    memcpy(s->sv_host + (size_t)vid * s->sv_nsites, s->stage_i,
           s->sv_nsites * sizeof(int));
    double *fc = s->sv_flow + (size_t)vid * 6;
    fc[0] = cw; fc[1] = co; fc[2] = cocc;
    fc[3] = dw; fc[4] = dov; fc[5] = docc;
}

void sim_serve_set_top(Sim *s, int vid, int top) { s->sv_top[vid] = top; }
int sim_serve_top(Sim *s, int vid) { return s->sv_top[vid]; }

int sim_serve_members(Sim *s, int vid) {
    /* export the vid's member sites into stage_i; returns the count
       (Python refreshes its copy-set before a crossed write). */
    unsigned long long *w = s->sv_bits + (size_t)vid * s->sv_words;
    int n = 0;
    for (int wd = 0; wd < s->sv_words; wd++) {
        unsigned long long bits = w[wd];
        while (bits) {
            int b = __builtin_ctzll(bits);
            s->stage_i[n++] = wd * 64 + b;
            bits &= bits - 1;
        }
    }
    return n;
}

void sim_serve_storage_seed(Sim *s, double integral, double last,
                            double excess, int on) {
    s->sc_integral = integral; s->sc_last = last; s->sc_excess = excess;
    s->sv_storage_on = on;
}

void sim_serve_storage_delta(Sim *s, double delta, double t) {
    /* exact mirror of DataManagementStrategy._storage_delta */
    if (t > s->sc_last) {
        s->sc_integral += s->sc_excess * (t - s->sc_last);
        s->sc_last = t;
    }
    s->sc_excess += delta;
}

double sim_serve_storage_get(Sim *s, int which) {
    switch (which) {
    case 0: return s->sc_integral;
    case 1: return s->sc_last;
    case 2: return s->sc_excess;
    }
    return 0.0;
}

/* tree_path(leaf, top) cut at the first component member (inclusive):
 * the exact walk of decomposition.tree_path + AccessTree._request_path. */
static int sv_tree_path_cut(Sim *s, int a, int b,
                            const unsigned long long *w, int *out) {
    const int *parent = s->sv_parent, *depth = s->sv_depth;
    int *ua = s->sv_scr_a, *ub = s->sv_scr_b;
    int na = 0, nb = 0;
    ua[na++] = a; ub[nb++] = b;
    int x = a, y = b;
    while (depth[x] > depth[y]) { x = parent[x]; ua[na++] = x; }
    while (depth[y] > depth[x]) { y = parent[y]; ub[nb++] = y; }
    while (x != y) { x = parent[x]; y = parent[y]; ua[na++] = x; ub[nb++] = y; }
    nb--;  /* ub's last entry duplicates the LCA already in ua */
    int n = 0;
    for (int i = 0; i < na; i++) {
        int node = ua[i]; out[n++] = node;
        if (w[node >> 6] & (1ULL << (node & 63))) return n;
    }
    for (int i = nb - 1; i >= 0; i--) {
        int node = ub[i]; out[n++] = node;
        if (w[node >> 6] & (1ULL << (node & 63))) return n;
    }
    return -1;  /* no member on the path: invariant broken, cross out */
}

int sim_ensure_stage(Sim *s, int n);

/* A native access-tree read miss: replay AccessTreeStrategy.read's miss
 * body without leaving C -- walk to the component, extend the copy set
 * down the path (count/top/storage updated exactly as _add_copies does),
 * and push the same up/down chain the Python path pushes, consuming the
 * same seqnos.  Returns 0 to fall back to a Python crossing. */
static int serve_tree_miss(Sim *s, int p, const SReq *cur) {
    int vid = cur->vid;
    unsigned long long *w = s->sv_bits + (size_t)vid * s->sv_words;
    int *path = s->sv_path;
    int np = sv_tree_path_cut(s, s->sv_site_of[p], s->sv_top[vid], w, path);
    if (np < 2) return 0;
    double t = s->sv_now;
    s->sv_misses++;
    double payload = s->sv_payload[vid];
    const int *depth = s->sv_depth;
    int top = s->sv_top[vid];
    for (int i = np - 1; i >= 0; i--) {
        int node = path[i];
        unsigned long long bit = 1ULL << (node & 63);
        if (!(w[node >> 6] & bit)) {
            w[node >> 6] |= bit;
            s->sv_count[vid]++;
            if (s->sv_storage_on) sim_serve_storage_delta(s, payload, t);
            if (depth[node] < depth[top]) top = node;
        }
    }
    s->sv_top[vid] = top;
    sim_ensure_stage(s, np);
    const int *row = s->sv_host + (size_t)vid * s->sv_nsites;
    for (int i = 0; i < np; i++) s->stage_i[i] = row[path[i]];
    const double *fc = s->sv_flow + (size_t)vid * 6;
    sim_push_chain_updown(s, t, np, fc[0], fc[1], fc[2], fc[3], fc[4], fc[5],
                          p, 2);
    return 1;
}

i64 sim_serve_ingest(Sim *s, i64 n, const int *procs, const int *vids,
                     const int *kinds, const double *arrivals,
                     const double *walls) {
    /* append n admitted requests to the pending ring (ONE call per
       queue drain: the batched-ingest half of the fast path) */
    while (s->sv_pend_len + n > s->sv_pend_cap) {
        SPend *nb = (SPend *)malloc(2 * s->sv_pend_cap * sizeof(SPend));
        for (int j = 0; j < s->sv_pend_len; j++)
            nb[j] = s->sv_pend[(s->sv_pend_head + j) & (s->sv_pend_cap - 1)];
        free(s->sv_pend);
        s->sv_pend = nb;
        s->sv_pend_cap *= 2;
        s->sv_pend_head = 0;
    }
    for (i64 j = 0; j < n; j++) {
        SPend *pr = &s->sv_pend[(s->sv_pend_head + s->sv_pend_len) &
                                (s->sv_pend_cap - 1)];
        pr->proc = procs[j]; pr->vid = vids[j]; pr->kind = kinds[j];
        pr->arrival = arrivals[j]; pr->wall = walls[j];
        s->sv_pend_len++;
    }
    return s->sv_pend_len;
}

void sim_serve_pump_begin(Sim *s) { s->sv_phase = 0; }

int sim_serve_complete(Sim *s, Crossing *out, int p, double done) {
    /* Python-side strategy returned an immediate completion (done <= now):
       record it and keep dispatching; 1 = next request crossed (out). */
    serve_record(s, p, &s->sv_cur[p], done);
    return serve_advance(s, p, out);
}

void sim_serve_push_done(Sim *s, int p, double done) {
    /* Python-side strategy flow will complete at `done` (> now): the
       exact analogue of the classic path's schedule(done, _step, ...) */
    heap_push(s, done, s->seqno++, K_SDONE, p, 0, 0, 0);
}

i64 sim_serve_stat(Sim *s, int which) {
    switch (which) {
    case 0: return s->sv_inflight;
    case 1: return s->sv_completed;
    case 2: return s->sv_hits;
    case 3: return s->sv_wlocal;
    case 4: return s->sv_pend_len;
    case 5: return s->sv_rec_n;
    case 6: return s->sv_misses;
    }
    return -1;
}

void sim_serve_counters_reset(Sim *s) {
    s->sv_hits = 0; s->sv_wlocal = 0; s->sv_misses = 0;
}
void sim_serve_rec_reset(Sim *s) { s->sv_rec_n = 0; }
double sim_serve_now(Sim *s) { return s->sv_now; }
int *sim_serve_rec_proc(Sim *s) { return s->sv_rec_proc; }
int *sim_serve_rec_vid(Sim *s) { return s->sv_rec_vid; }
int *sim_serve_rec_kind(Sim *s) { return s->sv_rec_kind; }
double *sim_serve_rec_arr(Sim *s) { return s->sv_rec_arr; }
double *sim_serve_rec_eff(Sim *s) { return s->sv_rec_eff; }
double *sim_serve_rec_done(Sim *s) { return s->sv_rec_done; }
double *sim_serve_rec_wall(Sim *s) { return s->sv_rec_wall; }

static void serve_free(Sim *s) {
    if (!s->serve_on) return;
    for (int p = 0; p < s->n_nodes; p++) free(s->sv_q[p].buf);
    free(s->sv_q); free(s->sv_cur); free(s->sv_state); free(s->sv_site_of);
    free(s->sv_pend);
    free(s->sv_rec_proc); free(s->sv_rec_vid); free(s->sv_rec_kind);
    free(s->sv_rec_arr); free(s->sv_rec_eff); free(s->sv_rec_done);
    free(s->sv_rec_wall);
    free(s->sv_bits); free(s->sv_owner); free(s->sv_count);
    free(s->sv_nat_r); free(s->sv_nat_w);
    if (s->sv_tree_on) {
        free(s->sv_parent); free(s->sv_depth);
        free(s->sv_scr_a); free(s->sv_scr_b); free(s->sv_path);
        free(s->sv_top); free(s->sv_host); free(s->sv_flow);
        free(s->sv_payload);
    }
}

/* ------------------------------------------------------------------ loop */
void sim_push_generic(Sim *s, double t, int obj) {
    heap_push(s, t, s->seqno++, K_GEN, obj, 0, 0, 0);
}

int sim_heap_size(Sim *s) { return s->heap_n; }
i64 sim_total_msgs(Sim *s) { return s->st_total; }
i64 sim_data_msgs(Sim *s) { return s->st_data; }
i64 sim_local_msgs(Sim *s) { return s->st_local; }

void sim_set_stats(Sim *s, double *bytes, i64 *msgs, i64 *startups,
                   i64 *receives) {
    s->st_bytes = bytes; s->st_msgs = msgs;
    s->st_startups = startups; s->st_receives = receives;
    s->st_total = 0; s->st_data = 0; s->st_local = 0;
}

int sim_run_until(Sim *s, Crossing *out, double horizon) {
  for (;;) {
    /* Serving mode interleaves injection rounds with event processing,
       exactly like the classic pump's do {inject; run} while (n) loop.
       A crossing mid-round leaves sv_phase == 1 so re-entry resumes the
       event loop without double-injecting. */
    if (s->serve_on && s->sv_phase == 0) {
        s->sv_round_n = serve_inject(s, horizon);
        s->sv_phase = 1;
    }
    while (s->heap_n) {
        if (s->heap[0].time > horizon) break;
        Ev ev = heap_pop(s);
        s->sv_now = ev.time;
        if (ev.kind == K_CHAIN) {
            Chain *ch = s->chains[ev.a];
            int i = ev.b;
            int need = 0;
            double arrive = do_leg(s, ev.time, ch->src[i], ch->dst[i],
                                   ch->wire[i], ch->over[i], ch->occ[i],
                                   ch->dat[i], &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = ch->src[i]; out->b = ch->dst[i];
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            i++;
            if (i == ch->n) {
                if (ch->auto_resume) {
                    /* completion just resumes a processor: schedule the
                       stored generic continuation at the completion time
                       without crossing into Python (seq order matches the
                       crossing-based path: nothing runs in between).
                       auto_resume == 2 is the serving fast path: done_id
                       is the processor id and the completion is consumed
                       natively (K_SDONE) instead of re-entering Python. */
                    heap_push(s, arrive, s->seqno++,
                              ch->auto_resume == 2 ? K_SDONE : K_GEN,
                              ch->done_id, 0, 0, 0);
                    chain_free(s, ev.a);
                    continue;
                }
                out->kind = R_CHAIN_DONE;
                out->a = ch->done_id;
                out->time = ev.time;
                out->targ = arrive;
                chain_free(s, ev.a);
                return R_CHAIN_DONE;
            }
            heap_push(s, arrive, s->seqno++, K_CHAIN, ev.a, i, 0, 0);
            continue;
        }
        if (ev.kind == K_MDOWN) {
            Mcast *m = s->mcs[ev.a];
            int node = ev.b;
            int hn = m->hosts[node];
            int need = 0;
            double t_here = do_leg(s, ev.time, ev.c, hn, m->dwire, m->dover,
                                   m->docc, m->ddat, &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = ev.c; out->b = hn;
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            int cnt = m->kid_cnt[node];
            if (cnt) {
                int np = mc_new_pend(m, cnt, t_here, node, ev.c, ev.d);
                int *kk = m->kids + m->kid_off[node];
                for (int j = 0; j < cnt; j++)
                    heap_push(s, t_here, s->seqno++, K_MDOWN, ev.a, kk[j], hn, np);
            } else {
                heap_push(s, t_here, s->seqno++, K_MACK, ev.a, node, ev.c, ev.d);
            }
            continue;
        }
        if (ev.kind == K_MACK) {
            Mcast *m = s->mcs[ev.a];
            int hn = m->hosts[ev.b];
            int need = 0;
            double t_ack = do_leg(s, ev.time, hn, ev.c, m->awire, m->aover,
                                  m->aocc, 0, &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = hn; out->b = ev.c;
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            Pend *p = &m->pends[ev.d];
            p->remaining--;
            if (t_ack > p->tmax) p->tmax = t_ack;
            if (p->remaining == 0) {
                if (p->parent < 0) {
                    out->kind = R_MC_DONE;
                    out->a = m->done_id;
                    out->time = ev.time;
                    out->targ = p->tmax;
                    mc_free_one(s, ev.a);
                    return R_MC_DONE;
                }
                heap_push(s, p->tmax, s->seqno++, K_MACK, ev.a, p->node,
                          p->parent_host, p->parent);
            }
            continue;
        }
        if (ev.kind == K_SREQ) {
            /* a wake-up kick or idle-until-arrival timer fired */
            if (serve_advance(s, ev.a, out)) return R_SREQ;
            continue;
        }
        if (ev.kind == K_SDONE) {
            /* a Python-owned flow (or auto_resume==2 chain) completed */
            serve_record(s, ev.a, &s->sv_cur[ev.a], ev.time);
            if (serve_advance(s, ev.a, out)) return R_SREQ;
            continue;
        }
        out->kind = R_GENERIC;
        out->a = ev.a;
        out->time = ev.time;
        return R_GENERIC;
    }
    if (s->serve_on) {
        s->sv_phase = 0;
        if (s->sv_round_n) continue;   /* completions freed window room */
    }
    return R_DONE;
  }
}

/* ----------------------------------------------------------- lifecycle */
Sim *sim_new(int n_nodes, double hop, double local_ov, double *link_free,
             double *nic_free, int stage_cap) {
    Sim *s = (Sim *)calloc(1, sizeof(Sim));
    s->n_nodes = n_nodes;
    s->hop = hop;
    s->local_ov = local_ov;
    s->link_free = link_free;
    s->nic_free = nic_free;
    s->heap_cap = 256;
    s->heap = (Ev *)malloc(s->heap_cap * sizeof(Ev));
    s->rt_cap = 1024;
    s->rt_keys = (i64 *)malloc(s->rt_cap * sizeof(i64));
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    s->rt_off = (int *)malloc(s->rt_cap * sizeof(int));
    s->rt_len = (int *)malloc(s->rt_cap * sizeof(int));
    s->ar_cap = 4096;
    s->arena = (int *)malloc(s->ar_cap * sizeof(int));
    s->stage_i = (int *)malloc(stage_cap * sizeof(int));
    s->stage_d = (double *)malloc(stage_cap * sizeof(double));
    s->stage_cap = stage_cap;
    return s;
}

int sim_ensure_stage(Sim *s, int n) {
    /* Grow the staging buffers to hold >= n entries; returns the new
       capacity (callers re-fetch the buffer pointers after growth). */
    if (n > s->stage_cap) {
        while (s->stage_cap < n) s->stage_cap *= 2;
        s->stage_i = (int *)realloc(s->stage_i, s->stage_cap * sizeof(int));
        s->stage_d = (double *)realloc(s->stage_d, s->stage_cap * sizeof(double));
    }
    return s->stage_cap;
}

int *sim_stage_i(Sim *s) { return s->stage_i; }
double *sim_stage_d(Sim *s) { return s->stage_d; }

void sim_free(Sim *s) {
    for (int i = 0; i < s->ch_cap; i++) {
        if (s->chains[i]) {
            Chain *ch = s->chains[i];
            free(ch->src); free(ch->dst); free(ch->wire); free(ch->over);
            free(ch->occ); free(ch->dat); free(ch);
        }
    }
    for (int i = 0; i < s->mc_cap; i++) {
        if (s->mcs[i]) {
            Mcast *m = s->mcs[i];
            free(m->hosts); free(m->kid_cnt); free(m->kid_off);
            free(m->kids); free(m->pends); free(m);
        }
    }
    free(s->chains); free(s->ch_free); free(s->mcs); free(s->mc_free);
    free(s->heap); free(s->rt_keys); free(s->rt_off); free(s->rt_len);
    free(s->arena); free(s->rt_scratch); free(s->stage_i); free(s->stage_d);
    serve_free(s);
    free(s);
}
"""

_CDEF = """
typedef long long i64;
typedef struct { int kind; int a; int b; double time; double targ; } Crossing;
typedef struct Sim Sim;

Sim *sim_new(int n_nodes, double hop, double local_ov, double *link_free,
             double *nic_free, int stage_cap);
void sim_free(Sim *s);
int *sim_stage_i(Sim *s);
double *sim_stage_d(Sim *s);
int sim_ensure_stage(Sim *s, int n);
void sim_set_stats(Sim *s, double *bytes, i64 *msgs, i64 *startups,
                   i64 *receives);
void sim_set_route(Sim *s, int src, int dst, int n);
void sim_clear_routes(Sim *s);
void sim_set_topology(Sim *s, int kind, int rows, int cols, int dim,
                      int cache);
int sim_compute_route(Sim *s, int src, int dst);
int *sim_route_scratch(Sim *s);
void sim_push_generic(Sim *s, double t, int obj);
void sim_push_chain_updown(Sim *s, double t, int nh, double cw, double co,
                           double cocc, double dw, double dov, double docc,
                           int done_id, int auto_resume);
void sim_push_chain_path(Sim *s, double t, int nh, int reverse, double w,
                         double o, double occ, int isdat, int done_id,
                         int auto_resume);
void sim_push_chain_legs(Sim *s, double t, int n, int done_id);
void sim_push_mcast(Sim *s, double t, int root_host, int n_kids, int tbl,
                    int total_kids, double dwire, double dover, double docc,
                    int ddat, double awire, double aover, double aocc,
                    int done_id);
int sim_run_until(Sim *s, Crossing *out, double horizon);
int sim_heap_size(Sim *s);
i64 sim_total_msgs(Sim *s);
i64 sim_data_msgs(Sim *s);
i64 sim_local_msgs(Sim *s);
double sim_send_leg(Sim *s, double time, int src, int dst, double wire,
                    double over, double occ, int isdat);
double sim_probe_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ);
int sim_serve_init(Sim *s, int nsites, int wl_rule, i64 max_inflight);
void sim_serve_sync_var(Sim *s, int vid, int owner, int count, int n_members,
                        int nat_r, int nat_w);
void sim_serve_tree_init(Sim *s);
void sim_serve_var_flow(Sim *s, int vid, int top, double payload, double cw,
                        double co, double cocc, double dw, double dov,
                        double docc);
void sim_serve_set_top(Sim *s, int vid, int top);
int sim_serve_top(Sim *s, int vid);
int sim_serve_members(Sim *s, int vid);
void sim_serve_storage_seed(Sim *s, double integral, double last,
                            double excess, int on);
void sim_serve_storage_delta(Sim *s, double delta, double t);
double sim_serve_storage_get(Sim *s, int which);
i64 sim_serve_ingest(Sim *s, i64 n, const int *procs, const int *vids,
                     const int *kinds, const double *arrivals,
                     const double *walls);
void sim_serve_pump_begin(Sim *s);
int sim_serve_complete(Sim *s, Crossing *out, int p, double done);
void sim_serve_push_done(Sim *s, int p, double done);
i64 sim_serve_stat(Sim *s, int which);
void sim_serve_counters_reset(Sim *s);
void sim_serve_rec_reset(Sim *s);
double sim_serve_now(Sim *s);
int *sim_serve_rec_proc(Sim *s);
int *sim_serve_rec_vid(Sim *s);
int *sim_serve_rec_kind(Sim *s);
double *sim_serve_rec_arr(Sim *s);
double *sim_serve_rec_eff(Sim *s);
double *sim_serve_rec_done(Sim *s);
double *sim_serve_rec_wall(Sim *s);
"""

#: Staging buffer capacity (ints/doubles); bounds one chain/multicast/route.
STAGE_CAP = 1 << 16

_KERNEL = None
_KERNEL_TRIED = False


def _build_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CKERN_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(tempfile.gettempdir()) / f"repro-ckern-{os.getuid()}"


def _compile(src_hash: str) -> pathlib.Path:
    """Compile the kernel into the cache dir; returns the .so path."""
    build = _build_dir()
    build.mkdir(parents=True, exist_ok=True)
    so_path = build / f"ckern-{src_hash}.so"
    if so_path.exists():
        return so_path
    c_path = build / f"ckern-{src_hash}.c"
    c_path.write_text(CKERN_SOURCE)
    tmp = so_path.with_suffix(f".tmp{os.getpid()}.so")
    cc = os.environ.get("CC", "cc")
    subprocess.run(
        [cc, "-O2", "-fPIC", "-shared", "-o", str(tmp), str(c_path)],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp, so_path)  # atomic: concurrent builders converge
    return so_path


class Kernel:
    """Loaded kernel: the cffi handle pair plus result-code constants."""

    R_DONE = 0
    R_GENERIC = 1
    R_CHAIN_DONE = 2
    R_MC_DONE = 3
    R_NEED_ROUTE = 4
    R_SREQ = 5

    def __init__(self, ffi, lib):
        self.ffi = ffi
        self.lib = lib


def load_kernel():
    """The process-wide kernel, or ``None`` when unavailable/disabled."""
    global _KERNEL, _KERNEL_TRIED
    if _KERNEL_TRIED:
        return _KERNEL
    _KERNEL_TRIED = True
    if os.environ.get("REPRO_PURE_PYTHON"):
        return None
    try:
        from cffi import FFI

        src_hash = hashlib.sha256(
            (CKERN_SOURCE + _CDEF + sys.version).encode()
        ).hexdigest()[:16]
        so_path = _compile(src_hash)
        ffi = FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(so_path))
        _KERNEL = Kernel(ffi, lib)
    except Exception:
        _KERNEL = None
    return _KERNEL
