"""Optional compiled event-loop kernel (cffi + cc), with pure-Python fallback.

The discrete-event hot loop -- heap, chain/multicast flow stepping, leg
timing, traffic accounting -- is a few hundred machine-level operations
per message leg, but costs ~1.2 microseconds in CPython even after the
inline-event overhaul.  This module compiles the identical loop to native
code at first use and drives it through ``cffi``'s ABI mode: chains and
multicasts execute entirely in C, and control returns to Python only for
generic events (program steps, barriers, locks) and flow completions.

Arithmetic is mirrored operation-for-operation from the pure-Python loop
in :mod:`repro.sim.engine` (same IEEE doubles, same order), and event keys
``(time, seq)`` are assigned at the same logical points, so simulated
results are bit-identical between the two engines --
``tests/sim/test_engine.py`` pins that equivalence.

Routing is mirrored the same way: for the shipped topologies the kernel
computes dimension-order / e-cube routes in closed form (``sim_set_topology``
+ ``topo_route``, link-for-link identical to ``Topology.compute_route``),
so the hot loop never re-enters Python for a route.  Below the package's
dense-node limit computed routes are also inserted into the kernel's route
hash (each pair computed once); above it they are recomputed per leg into
a scratch buffer -- O(1) route memory at any machine size.  Custom
topology classes fall back to the historical supply path: the kernel
returns ``R_NEED_ROUTE`` and Python feeds the route via ``sim_set_route``.

Gating: the kernel engages only when ``cffi`` is importable, a C compiler
is available, and ``REPRO_PURE_PYTHON`` is unset.  Any failure along the
way (no compiler, sandboxed tmpdir, dlopen error) silently falls back to
the pure-Python engine; nothing in the package *requires* the kernel.
The shared object is cached under ``$REPRO_CKERN_DIR`` (default: a
per-user directory in the system tempdir) keyed by a hash of the C
source, so compilation happens once per source revision.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import subprocess
import sys
import tempfile

__all__ = ["load_kernel", "CKERN_SOURCE"]

CKERN_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef long long i64;

enum { K_GEN = 0, K_CHAIN = 1, K_MDOWN = 2, K_MACK = 3 };
enum { R_DONE = 0, R_GENERIC = 1, R_CHAIN_DONE = 2, R_MC_DONE = 3,
       R_NEED_ROUTE = 4 };

typedef struct { double time; i64 seq; int kind, a, b, c, d; } Ev;
typedef struct { int kind; int a; int b; double time; double targ; } Crossing;

typedef struct {
    int n, done_id, auto_resume;
    int *src, *dst;
    double *wire, *over, *occ;
    unsigned char *dat;
} Chain;

typedef struct { int remaining; double tmax; int node; int parent_host; int parent; } Pend;

typedef struct {
    int done_id;
    double dwire, dover, docc; int ddat;
    double awire, aover, aocc;
    int *hosts;
    int *kid_off, *kid_cnt, *kids;
    Pend *pends; int n_pend, cap_pend;
} Mcast;

typedef struct {
    int n_nodes;
    i64 seqno;
    double hop, local_ov;
    double *link_free, *nic_free;               /* borrowed (numpy) */
    double *st_bytes; i64 *st_msgs, *st_startups, *st_receives;  /* borrowed */
    i64 st_total, st_data, st_local;
    Ev *heap; int heap_n, heap_cap;
    i64 *rt_keys; int *rt_off, *rt_len; int rt_cap, rt_count;
    int *arena; int ar_used, ar_cap;
    /* closed-form routing (sim_set_topology): 0 = none (routes are fed
       from Python), 1 = mesh, 2 = torus, 3 = hypercube */
    int topo_kind, t_rows, t_cols, t_dim, t_nh, t_nv, t_mesh_links;
    int cache_routes;
    int *rt_scratch;
    Chain **chains; int ch_cap; int *ch_free; int ch_free_n;
    Mcast **mcs; int mc_cap; int *mc_free; int mc_free_n;
    int *stage_i;
    double *stage_d;
    int stage_cap;
} Sim;

/* ------------------------------------------------------------------ heap */
static void heap_push(Sim *s, double t, i64 seq, int kind, int a, int b,
                      int c, int d) {
    if (s->heap_n == s->heap_cap) {
        s->heap_cap *= 2;
        s->heap = (Ev *)realloc(s->heap, s->heap_cap * sizeof(Ev));
    }
    Ev *h = s->heap;
    int i = s->heap_n++;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p].time < t || (h[p].time == t && h[p].seq < seq)) break;
        h[i] = h[p];
        i = p;
    }
    h[i].time = t; h[i].seq = seq; h[i].kind = kind;
    h[i].a = a; h[i].b = b; h[i].c = c; h[i].d = d;
}

static Ev heap_pop(Sim *s) {
    Ev *h = s->heap;
    Ev top = h[0];
    Ev last = h[--s->heap_n];
    int n = s->heap_n, i = 0;
    for (;;) {
        int l = 2 * i + 1, m = i;
        if (l < n && (h[l].time < last.time ||
                      (h[l].time == last.time && h[l].seq < last.seq)))
            m = l;
        int r = l + 1;
        if (r < n) {
            Ev *cm = (m == i) ? &last : &h[m];
            if (h[r].time < cm->time ||
                (h[r].time == cm->time && h[r].seq < cm->seq))
                m = r;
        }
        if (m == i) break;
        h[i] = h[m];
        i = m;
    }
    if (n > 0) h[i] = last;
    return top;
}

/* ---------------------------------------------------------------- routes */
static int rt_slot(Sim *s, i64 key) {
    int mask = s->rt_cap - 1;
    int i = (int)(((unsigned long long)key * 0x9E3779B97F4A7C15ULL) >> 33) & mask;
    while (s->rt_keys[i] != -1) {
        if (s->rt_keys[i] == key) return i;
        i = (i + 1) & mask;
    }
    return ~i;
}

static void rt_grow(Sim *s) {
    int old_cap = s->rt_cap;
    i64 *ok = s->rt_keys; int *oo = s->rt_off, *ol = s->rt_len;
    s->rt_cap *= 2;
    s->rt_keys = (i64 *)malloc(s->rt_cap * sizeof(i64));
    s->rt_off = (int *)malloc(s->rt_cap * sizeof(int));
    s->rt_len = (int *)malloc(s->rt_cap * sizeof(int));
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    for (int i = 0; i < old_cap; i++) {
        if (ok[i] == -1) continue;
        int j = ~rt_slot(s, ok[i]);
        s->rt_keys[j] = ok[i]; s->rt_off[j] = oo[i]; s->rt_len[j] = ol[i];
    }
    free(ok); free(oo); free(ol);
}

static int rt_store(Sim *s, i64 key, const int *links, int n) {
    /* insert one route; returns its arena offset (valid until next store) */
    if (s->rt_count * 10 >= s->rt_cap * 7) rt_grow(s);
    if (s->ar_used + n > s->ar_cap) {
        while (s->ar_used + n > s->ar_cap) s->ar_cap *= 2;
        s->arena = (int *)realloc(s->arena, s->ar_cap * sizeof(int));
    }
    memcpy(s->arena + s->ar_used, links, n * sizeof(int));
    int slot = rt_slot(s, key);
    if (slot < 0) {
        slot = ~slot;
        s->rt_count++;
    }
    s->rt_keys[slot] = key;
    s->rt_off[slot] = s->ar_used;
    s->rt_len[slot] = n;
    int off = s->ar_used;
    s->ar_used += n;
    return off;
}

void sim_set_route(Sim *s, int src, int dst, int n) {
    /* links staged in stage_i[0..n) */
    rt_store(s, (i64)src * s->n_nodes + dst, s->stage_i, n);
}

void sim_clear_routes(Sim *s) {
    /* Drop every interned route (failure epoch boundary: topology
       deltas invalidate routes; Python re-supplies them on demand). */
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    s->rt_count = 0;
    s->ar_used = 0;
}

/* ----------------------------------------------- closed-form routing */
void sim_set_topology(Sim *s, int kind, int rows, int cols, int dim,
                      int cache) {
    /* Enable algebraic next-hop computation (mirrors the Python
       compute_route of Mesh2D / Torus2D / Hypercube link for link).
       With cache=1 computed routes are also inserted into the route
       hash (small machines: compute each pair once); with cache=0 they
       are recomputed per leg into a scratch buffer (large machines:
       O(1) memory). */
    s->topo_kind = kind;
    s->t_rows = rows;
    s->t_cols = cols;
    s->t_dim = dim;
    s->t_nh = rows * (cols - 1);
    s->t_nv = (rows - 1) * cols;
    s->t_mesh_links = 2 * (s->t_nh + s->t_nv);
    s->cache_routes = cache;
    free(s->rt_scratch);
    /* diameter bounds: mesh R+C, torus R/2+C/2, hypercube dim */
    s->rt_scratch = (int *)malloc((rows + cols + dim + 4) * sizeof(int));
}

static int topo_route(Sim *s, int src, int dst, int *out) {
    /* Directed link ids of the deterministic path src -> dst; mirrors
       Topology.compute_route operation-for-operation. */
    int n = 0;
    if (s->topo_kind == 3) {            /* hypercube: e-cube */
        int D = s->t_dim;
        int diff = src ^ dst, cur = src;
        for (int d = 0; d < D; d++) {
            if (diff & (1 << d)) {
                out[n++] = cur * D + d;
                cur ^= 1 << d;
            }
        }
        return n;
    }
    int C = s->t_cols, R = s->t_rows;
    int nh = s->t_nh, nv = s->t_nv;
    int r1 = src / C, c1 = src % C, r2 = dst / C, c2 = dst % C;
    if (s->topo_kind == 1) {            /* mesh: dimension-order, x-first */
        if (c2 > c1)
            for (int c = c1; c < c2; c++) out[n++] = r1 * (C - 1) + c;
        else
            for (int c = c1; c > c2; c--) out[n++] = r1 * (C - 1) + (c - 1) + nh;
        if (r2 > r1)
            for (int r = r1; r < r2; r++) out[n++] = 2 * nh + r * C + c2;
        else
            for (int r = r1; r > r2; r--) out[n++] = 2 * nh + (r - 1) * C + c2 + nv;
        return n;
    }
    /* torus: shortest-wrap dimension-order (tie at half-ring: east/south) */
    int M = s->t_mesh_links;
    int dc = c2 - c1;
    if (dc < 0) dc += C;
    if (dc) {
        int east = dc <= C - dc;
        int dist = east ? dc : C - dc;
        int c = c1;
        for (int i = 0; i < dist; i++) {
            if (east) {
                out[n++] = (c < C - 1) ? r1 * (C - 1) + c : M + r1;
                if (++c == C) c = 0;
            } else {
                out[n++] = (c > 0) ? r1 * (C - 1) + (c - 1) + nh : M + R + r1;
                if (--c < 0) c = C - 1;
            }
        }
    }
    int dr = r2 - r1;
    if (dr < 0) dr += R;
    if (dr) {
        int south = dr <= R - dr;
        int dist = south ? dr : R - dr;
        int r = r1;
        for (int i = 0; i < dist; i++) {
            if (south) {
                out[n++] = (r < R - 1) ? 2 * nh + r * C + c2 : M + 2 * R + c2;
                if (++r == R) r = 0;
            } else {
                out[n++] = (r > 0) ? 2 * nh + (r - 1) * C + c2 + nv
                                   : M + 2 * R + C + c2;
                if (--r < 0) r = R - 1;
            }
        }
    }
    return n;
}

int sim_compute_route(Sim *s, int src, int dst) {
    /* Test/debug surface: route length, links in sim_route_scratch(). */
    if (!s->topo_kind) return -1;
    return topo_route(s, src, dst, s->rt_scratch);
}

int *sim_route_scratch(Sim *s) { return s->rt_scratch; }

/* --------------------------------------------------------------- one leg */
static double do_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ, int isdat, int *need) {
    if (src == dst) {
        s->st_startups[src]++; s->st_receives[dst]++;
        s->st_total++; s->st_local++;
        if (isdat) s->st_data++;
        return time + s->local_ov;
    }
    i64 key = (i64)src * s->n_nodes + dst;
    int slot = rt_slot(s, key);
    int len;
    int *links;
    if (slot >= 0) {
        len = s->rt_len[slot];
        links = s->arena + s->rt_off[slot];
    } else if (s->topo_kind) {
        len = topo_route(s, src, dst, s->rt_scratch);
        if (s->cache_routes) {
            /* rt_store may realloc the arena: sequence the call before
               reading s->arena (a combined expression is free to load
               the old pointer first). */
            int off = rt_store(s, key, s->rt_scratch, len);
            links = s->arena + off;
        } else {
            links = s->rt_scratch;
        }
    } else {
        *need = 1;
        return 0.0;
    }
    double t_send = s->nic_free[src];
    if (time > t_send) t_send = time;
    double depart = t_send + over;
    double start = depart;
    for (int k = 0; k < len; k++) {
        double v = s->link_free[links[k]];
        if (v > start) start = v;
    }
    double end = start + occ;
    double arrive = end + len * s->hop;
    double t_recv = s->nic_free[dst];
    if (arrive > t_recv) t_recv = arrive;
    arrive = t_recv + over;
    s->nic_free[src] = depart;
    for (int k = 0; k < len; k++) {
        int lk = links[k];
        s->link_free[lk] = end;
        s->st_bytes[lk] += wire;
        s->st_msgs[lk]++;
    }
    s->nic_free[dst] = arrive;
    s->st_startups[src]++; s->st_receives[dst]++;
    s->st_total++;
    /* A zero-link route (unreachable pair under failures) crosses no
       link; the pure engine's LinkStats counts such legs as local. */
    if (len == 0) s->st_local++;
    if (isdat) s->st_data++;
    return arrive;
}

/* side-effect-free timing of one leg (send_leg(count=False)) */
double sim_probe_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ) {
    if (src == dst) return time + s->local_ov;
    int slot = rt_slot(s, (i64)src * s->n_nodes + dst);
    int len;
    const int *links;
    if (slot >= 0) {
        len = s->rt_len[slot];
        links = s->arena + s->rt_off[slot];
    } else if (s->topo_kind) {
        /* probes are side-effect-free: compute into scratch, don't cache */
        len = topo_route(s, src, dst, s->rt_scratch);
        links = s->rt_scratch;
    } else {
        return -1.0; /* caller must set the route and retry */
    }
    double t_send = s->nic_free[src];
    if (time > t_send) t_send = time;
    double depart = t_send + over;
    double start = depart;
    for (int k = 0; k < len; k++) {
        double v = s->link_free[links[k]];
        if (v > start) start = v;
    }
    double end = start + occ;
    double arrive = end + len * s->hop;
    double t_recv = s->nic_free[dst];
    if (arrive > t_recv) t_recv = arrive;
    return t_recv + over;
}

/* counting leg driven from Python's send_leg(); -1 => route needed */
double sim_send_leg(Sim *s, double time, int src, int dst, double wire,
                    double over, double occ, int isdat) {
    if (src != dst && !s->topo_kind) {
        int slot = rt_slot(s, (i64)src * s->n_nodes + dst);
        if (slot < 0) return -1.0;
    }
    int need = 0;
    return do_leg(s, time, src, dst, wire, over, occ, isdat, &need);
}

/* --------------------------------------------------------------- chains */
static int chain_alloc(Sim *s, int n, int done_id, int auto_resume) {
    int id;
    if (s->ch_free_n) {
        id = s->ch_free[--s->ch_free_n];
    } else {
        id = s->ch_cap;
        s->ch_cap = s->ch_cap ? s->ch_cap * 2 : 64;
        s->chains = (Chain **)realloc(s->chains, s->ch_cap * sizeof(Chain *));
        s->ch_free = (int *)realloc(s->ch_free, s->ch_cap * sizeof(int));
        memset(s->chains + id, 0, (s->ch_cap - id) * sizeof(Chain *));
        for (int i = s->ch_cap - 1; i > id; i--) s->ch_free[s->ch_free_n++] = i;
    }
    Chain *ch = (Chain *)malloc(sizeof(Chain));
    ch->n = n;
    ch->done_id = done_id;
    ch->auto_resume = auto_resume;
    ch->src = (int *)malloc(n * sizeof(int));
    ch->dst = (int *)malloc(n * sizeof(int));
    ch->wire = (double *)malloc(n * sizeof(double));
    ch->over = (double *)malloc(n * sizeof(double));
    ch->occ = (double *)malloc(n * sizeof(double));
    ch->dat = (unsigned char *)malloc(n);
    s->chains[id] = ch;
    return id;
}

static void chain_free(Sim *s, int id) {
    Chain *ch = s->chains[id];
    free(ch->src); free(ch->dst); free(ch->wire); free(ch->over);
    free(ch->occ); free(ch->dat); free(ch);
    s->chains[id] = 0;
    s->ch_free[s->ch_free_n++] = id;
}

void sim_push_chain_updown(Sim *s, double t, int nh, double cw, double co,
                           double cocc, double dw, double dov, double docc,
                           int done_id, int auto_resume) {
    /* hosts staged in stage_i[0..nh); nh >= 2.  Up = control, down = data. */
    int n = 2 * (nh - 1);
    int id = chain_alloc(s, n, done_id, auto_resume);
    Chain *ch = s->chains[id];
    int *hosts = s->stage_i;
    for (int j = 0; j < nh - 1; j++) {
        ch->src[j] = hosts[j]; ch->dst[j] = hosts[j + 1];
        ch->wire[j] = cw; ch->over[j] = co; ch->occ[j] = cocc; ch->dat[j] = 0;
    }
    for (int j = 0; j < nh - 1; j++) {
        int k = nh - 1 + j;
        ch->src[k] = hosts[nh - 1 - j]; ch->dst[k] = hosts[nh - 2 - j];
        ch->wire[k] = dw; ch->over[k] = dov; ch->occ[k] = docc; ch->dat[k] = 1;
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

void sim_push_chain_path(Sim *s, double t, int nh, int reverse, double w,
                         double o, double occ, int isdat, int done_id,
                         int auto_resume) {
    /* hosts staged in stage_i[0..nh); one cost shape, one direction. */
    int n = nh - 1;
    int id = chain_alloc(s, n, done_id, auto_resume);
    Chain *ch = s->chains[id];
    int *hosts = s->stage_i;
    for (int j = 0; j < n; j++) {
        if (reverse) { ch->src[j] = hosts[nh - 1 - j]; ch->dst[j] = hosts[nh - 2 - j]; }
        else { ch->src[j] = hosts[j]; ch->dst[j] = hosts[j + 1]; }
        ch->wire[j] = w; ch->over[j] = o; ch->occ[j] = occ;
        ch->dat[j] = (unsigned char)isdat;
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

void sim_push_chain_legs(Sim *s, double t, int n, int done_id) {
    /* generic legs: stage_i holds src,dst,isdat triples; stage_d holds
       wire,over,occ triples. */
    int id = chain_alloc(s, n, done_id, 0);
    Chain *ch = s->chains[id];
    for (int j = 0; j < n; j++) {
        ch->src[j] = s->stage_i[3 * j];
        ch->dst[j] = s->stage_i[3 * j + 1];
        ch->dat[j] = (unsigned char)s->stage_i[3 * j + 2];
        ch->wire[j] = s->stage_d[3 * j];
        ch->over[j] = s->stage_d[3 * j + 1];
        ch->occ[j] = s->stage_d[3 * j + 2];
    }
    heap_push(s, t, s->seqno++, K_CHAIN, id, 0, 0, 0);
}

/* -------------------------------------------------------------- multicast */
static int mc_new_pend(Mcast *m, int remaining, double tmax, int node,
                       int parent_host, int parent) {
    if (m->n_pend == m->cap_pend) {
        m->cap_pend *= 2;
        m->pends = (Pend *)realloc(m->pends, m->cap_pend * sizeof(Pend));
    }
    Pend *p = &m->pends[m->n_pend];
    p->remaining = remaining; p->tmax = tmax; p->node = node;
    p->parent_host = parent_host; p->parent = parent;
    return m->n_pend++;
}

void sim_push_mcast(Sim *s, double t, int root_host, int n_kids, int tbl,
                    int total_kids, double dwire, double dover, double docc,
                    int ddat, double awire, double aover, double aocc,
                    int done_id) {
    /* stage_i layout: hosts[tbl], kid_cnt[tbl], kid_off[tbl],
       kids[total_kids], root_kids[n_kids] */
    int id;
    if (s->mc_free_n) {
        id = s->mc_free[--s->mc_free_n];
    } else {
        id = s->mc_cap;
        s->mc_cap = s->mc_cap ? s->mc_cap * 2 : 16;
        s->mcs = (Mcast **)realloc(s->mcs, s->mc_cap * sizeof(Mcast *));
        s->mc_free = (int *)realloc(s->mc_free, s->mc_cap * sizeof(int));
        memset(s->mcs + id, 0, (s->mc_cap - id) * sizeof(Mcast *));
        for (int i = s->mc_cap - 1; i > id; i--) s->mc_free[s->mc_free_n++] = i;
    }
    Mcast *m = (Mcast *)malloc(sizeof(Mcast));
    m->done_id = done_id;
    m->dwire = dwire; m->dover = dover; m->docc = docc; m->ddat = ddat;
    m->awire = awire; m->aover = aover; m->aocc = aocc;
    m->hosts = (int *)malloc(tbl * sizeof(int));
    m->kid_cnt = (int *)malloc(tbl * sizeof(int));
    m->kid_off = (int *)malloc(tbl * sizeof(int));
    m->kids = (int *)malloc((total_kids > 0 ? total_kids : 1) * sizeof(int));
    int *st = s->stage_i;
    memcpy(m->hosts, st, tbl * sizeof(int));
    memcpy(m->kid_cnt, st + tbl, tbl * sizeof(int));
    memcpy(m->kid_off, st + 2 * tbl, tbl * sizeof(int));
    memcpy(m->kids, st + 3 * tbl, total_kids * sizeof(int));
    m->cap_pend = 8;
    m->pends = (Pend *)malloc(m->cap_pend * sizeof(Pend));
    m->n_pend = 0;
    mc_new_pend(m, n_kids, t, 0, 0, -1); /* root pend = index 0 */
    s->mcs[id] = m;
    int *root_kids = st + 3 * tbl + total_kids;
    for (int j = 0; j < n_kids; j++)
        heap_push(s, t, s->seqno++, K_MDOWN, id, root_kids[j], root_host, 0);
}

static void mc_free_one(Sim *s, int id) {
    Mcast *m = s->mcs[id];
    free(m->hosts); free(m->kid_cnt); free(m->kid_off); free(m->kids);
    free(m->pends); free(m);
    s->mcs[id] = 0;
    s->mc_free[s->mc_free_n++] = id;
}

/* ------------------------------------------------------------------ loop */
void sim_push_generic(Sim *s, double t, int obj) {
    heap_push(s, t, s->seqno++, K_GEN, obj, 0, 0, 0);
}

int sim_heap_size(Sim *s) { return s->heap_n; }
i64 sim_total_msgs(Sim *s) { return s->st_total; }
i64 sim_data_msgs(Sim *s) { return s->st_data; }
i64 sim_local_msgs(Sim *s) { return s->st_local; }

void sim_set_stats(Sim *s, double *bytes, i64 *msgs, i64 *startups,
                   i64 *receives) {
    s->st_bytes = bytes; s->st_msgs = msgs;
    s->st_startups = startups; s->st_receives = receives;
    s->st_total = 0; s->st_data = 0; s->st_local = 0;
}

int sim_run_until(Sim *s, Crossing *out, double horizon) {
    while (s->heap_n) {
        if (s->heap[0].time > horizon) return R_DONE;
        Ev ev = heap_pop(s);
        if (ev.kind == K_CHAIN) {
            Chain *ch = s->chains[ev.a];
            int i = ev.b;
            int need = 0;
            double arrive = do_leg(s, ev.time, ch->src[i], ch->dst[i],
                                   ch->wire[i], ch->over[i], ch->occ[i],
                                   ch->dat[i], &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = ch->src[i]; out->b = ch->dst[i];
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            i++;
            if (i == ch->n) {
                if (ch->auto_resume) {
                    /* completion just resumes a processor: schedule the
                       stored generic continuation at the completion time
                       without crossing into Python (seq order matches the
                       crossing-based path: nothing runs in between). */
                    heap_push(s, arrive, s->seqno++, K_GEN, ch->done_id, 0, 0, 0);
                    chain_free(s, ev.a);
                    continue;
                }
                out->kind = R_CHAIN_DONE;
                out->a = ch->done_id;
                out->time = ev.time;
                out->targ = arrive;
                chain_free(s, ev.a);
                return R_CHAIN_DONE;
            }
            heap_push(s, arrive, s->seqno++, K_CHAIN, ev.a, i, 0, 0);
            continue;
        }
        if (ev.kind == K_MDOWN) {
            Mcast *m = s->mcs[ev.a];
            int node = ev.b;
            int hn = m->hosts[node];
            int need = 0;
            double t_here = do_leg(s, ev.time, ev.c, hn, m->dwire, m->dover,
                                   m->docc, m->ddat, &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = ev.c; out->b = hn;
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            int cnt = m->kid_cnt[node];
            if (cnt) {
                int np = mc_new_pend(m, cnt, t_here, node, ev.c, ev.d);
                int *kk = m->kids + m->kid_off[node];
                for (int j = 0; j < cnt; j++)
                    heap_push(s, t_here, s->seqno++, K_MDOWN, ev.a, kk[j], hn, np);
            } else {
                heap_push(s, t_here, s->seqno++, K_MACK, ev.a, node, ev.c, ev.d);
            }
            continue;
        }
        if (ev.kind == K_MACK) {
            Mcast *m = s->mcs[ev.a];
            int hn = m->hosts[ev.b];
            int need = 0;
            double t_ack = do_leg(s, ev.time, hn, ev.c, m->awire, m->aover,
                                  m->aocc, 0, &need);
            if (need) {
                out->kind = R_NEED_ROUTE;
                out->a = hn; out->b = ev.c;
                heap_push(s, ev.time, ev.seq, ev.kind, ev.a, ev.b, ev.c, ev.d);
                return R_NEED_ROUTE;
            }
            Pend *p = &m->pends[ev.d];
            p->remaining--;
            if (t_ack > p->tmax) p->tmax = t_ack;
            if (p->remaining == 0) {
                if (p->parent < 0) {
                    out->kind = R_MC_DONE;
                    out->a = m->done_id;
                    out->time = ev.time;
                    out->targ = p->tmax;
                    mc_free_one(s, ev.a);
                    return R_MC_DONE;
                }
                heap_push(s, p->tmax, s->seqno++, K_MACK, ev.a, p->node,
                          p->parent_host, p->parent);
            }
            continue;
        }
        out->kind = R_GENERIC;
        out->a = ev.a;
        out->time = ev.time;
        return R_GENERIC;
    }
    return R_DONE;
}

/* ----------------------------------------------------------- lifecycle */
Sim *sim_new(int n_nodes, double hop, double local_ov, double *link_free,
             double *nic_free, int stage_cap) {
    Sim *s = (Sim *)calloc(1, sizeof(Sim));
    s->n_nodes = n_nodes;
    s->hop = hop;
    s->local_ov = local_ov;
    s->link_free = link_free;
    s->nic_free = nic_free;
    s->heap_cap = 256;
    s->heap = (Ev *)malloc(s->heap_cap * sizeof(Ev));
    s->rt_cap = 1024;
    s->rt_keys = (i64 *)malloc(s->rt_cap * sizeof(i64));
    for (int i = 0; i < s->rt_cap; i++) s->rt_keys[i] = -1;
    s->rt_off = (int *)malloc(s->rt_cap * sizeof(int));
    s->rt_len = (int *)malloc(s->rt_cap * sizeof(int));
    s->ar_cap = 4096;
    s->arena = (int *)malloc(s->ar_cap * sizeof(int));
    s->stage_i = (int *)malloc(stage_cap * sizeof(int));
    s->stage_d = (double *)malloc(stage_cap * sizeof(double));
    s->stage_cap = stage_cap;
    return s;
}

int sim_ensure_stage(Sim *s, int n) {
    /* Grow the staging buffers to hold >= n entries; returns the new
       capacity (callers re-fetch the buffer pointers after growth). */
    if (n > s->stage_cap) {
        while (s->stage_cap < n) s->stage_cap *= 2;
        s->stage_i = (int *)realloc(s->stage_i, s->stage_cap * sizeof(int));
        s->stage_d = (double *)realloc(s->stage_d, s->stage_cap * sizeof(double));
    }
    return s->stage_cap;
}

int *sim_stage_i(Sim *s) { return s->stage_i; }
double *sim_stage_d(Sim *s) { return s->stage_d; }

void sim_free(Sim *s) {
    for (int i = 0; i < s->ch_cap; i++) {
        if (s->chains[i]) {
            Chain *ch = s->chains[i];
            free(ch->src); free(ch->dst); free(ch->wire); free(ch->over);
            free(ch->occ); free(ch->dat); free(ch);
        }
    }
    for (int i = 0; i < s->mc_cap; i++) {
        if (s->mcs[i]) {
            Mcast *m = s->mcs[i];
            free(m->hosts); free(m->kid_cnt); free(m->kid_off);
            free(m->kids); free(m->pends); free(m);
        }
    }
    free(s->chains); free(s->ch_free); free(s->mcs); free(s->mc_free);
    free(s->heap); free(s->rt_keys); free(s->rt_off); free(s->rt_len);
    free(s->arena); free(s->rt_scratch); free(s->stage_i); free(s->stage_d);
    free(s);
}
"""

_CDEF = """
typedef long long i64;
typedef struct { int kind; int a; int b; double time; double targ; } Crossing;
typedef struct Sim Sim;

Sim *sim_new(int n_nodes, double hop, double local_ov, double *link_free,
             double *nic_free, int stage_cap);
void sim_free(Sim *s);
int *sim_stage_i(Sim *s);
double *sim_stage_d(Sim *s);
int sim_ensure_stage(Sim *s, int n);
void sim_set_stats(Sim *s, double *bytes, i64 *msgs, i64 *startups,
                   i64 *receives);
void sim_set_route(Sim *s, int src, int dst, int n);
void sim_clear_routes(Sim *s);
void sim_set_topology(Sim *s, int kind, int rows, int cols, int dim,
                      int cache);
int sim_compute_route(Sim *s, int src, int dst);
int *sim_route_scratch(Sim *s);
void sim_push_generic(Sim *s, double t, int obj);
void sim_push_chain_updown(Sim *s, double t, int nh, double cw, double co,
                           double cocc, double dw, double dov, double docc,
                           int done_id, int auto_resume);
void sim_push_chain_path(Sim *s, double t, int nh, int reverse, double w,
                         double o, double occ, int isdat, int done_id,
                         int auto_resume);
void sim_push_chain_legs(Sim *s, double t, int n, int done_id);
void sim_push_mcast(Sim *s, double t, int root_host, int n_kids, int tbl,
                    int total_kids, double dwire, double dover, double docc,
                    int ddat, double awire, double aover, double aocc,
                    int done_id);
int sim_run_until(Sim *s, Crossing *out, double horizon);
int sim_heap_size(Sim *s);
i64 sim_total_msgs(Sim *s);
i64 sim_data_msgs(Sim *s);
i64 sim_local_msgs(Sim *s);
double sim_send_leg(Sim *s, double time, int src, int dst, double wire,
                    double over, double occ, int isdat);
double sim_probe_leg(Sim *s, double time, int src, int dst, double wire,
                     double over, double occ);
"""

#: Staging buffer capacity (ints/doubles); bounds one chain/multicast/route.
STAGE_CAP = 1 << 16

_KERNEL = None
_KERNEL_TRIED = False


def _build_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CKERN_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(tempfile.gettempdir()) / f"repro-ckern-{os.getuid()}"


def _compile(src_hash: str) -> pathlib.Path:
    """Compile the kernel into the cache dir; returns the .so path."""
    build = _build_dir()
    build.mkdir(parents=True, exist_ok=True)
    so_path = build / f"ckern-{src_hash}.so"
    if so_path.exists():
        return so_path
    c_path = build / f"ckern-{src_hash}.c"
    c_path.write_text(CKERN_SOURCE)
    tmp = so_path.with_suffix(f".tmp{os.getpid()}.so")
    cc = os.environ.get("CC", "cc")
    subprocess.run(
        [cc, "-O2", "-fPIC", "-shared", "-o", str(tmp), str(c_path)],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp, so_path)  # atomic: concurrent builders converge
    return so_path


class Kernel:
    """Loaded kernel: the cffi handle pair plus result-code constants."""

    R_DONE = 0
    R_GENERIC = 1
    R_CHAIN_DONE = 2
    R_MC_DONE = 3
    R_NEED_ROUTE = 4

    def __init__(self, ffi, lib):
        self.ffi = ffi
        self.lib = lib


def load_kernel():
    """The process-wide kernel, or ``None`` when unavailable/disabled."""
    global _KERNEL, _KERNEL_TRIED
    if _KERNEL_TRIED:
        return _KERNEL
    _KERNEL_TRIED = True
    if os.environ.get("REPRO_PURE_PYTHON"):
        return None
    try:
        from cffi import FFI

        src_hash = hashlib.sha256(
            (CKERN_SOURCE + _CDEF + sys.version).encode()
        ).hexdigest()[:16]
        so_path = _compile(src_hash)
        ffi = FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(so_path))
        _KERNEL = Kernel(ffi, lib)
    except Exception:
        _KERNEL = None
    return _KERNEL
