"""Deterministic discrete-event simulator of the mesh machine.

The simulator models the three resources that determine execution time on
the GCel (see :mod:`repro.network.machine`):

* every **directed link** has an availability time; a message of size ``s``
  reserves all links of its dimension-order path atomically for ``s/BW``
  seconds starting at the earliest instant all of them are free.  This is
  the standard whole-path approximation of wormhole routing: a blocked worm
  occupies its path, so bandwidth-contended links serialize messages.
* every **processor NIC** has an availability time; each message send and
  each receive occupies it for the startup overhead.  This serialization is
  what turns the fixed-home strategy's home processor into a hotspot and
  what penalizes deep access trees (many intermediate stops).
* every **processor program** advances its own virtual clock through
  compute charges and blocking operations.

Timing discipline
-----------------
Protocol operations are *atomic at initiation*: when an operation starts,
its message legs are timed immediately (in simulation-time order of
initiation), updating resource availabilities.  Legs of operations
initiated earlier therefore acquire resources first -- FCFS per operation,
which is the natural service order of the real system up to reordering of
in-flight messages.  Event-driven behaviour that genuinely depends on
*future* state (lock grants, barrier releases, message-passing receives)
goes through the event heap.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Callable, List, Sequence, Tuple

from ..network.machine import MachineModel
from ..network.routing import route_links
from ..network.stats import LinkStats
from ..network.topology import Topology

__all__ = ["Simulator", "SimDeadlock"]


class SimDeadlock(RuntimeError):
    """Raised when the event heap drains while programs are still blocked."""


class Simulator:
    """Resource bookkeeping + event heap for one run.

    Parameters
    ----------
    topology:
        The network topology (mesh, torus, hypercube, ...); fixes the
        flat-array sizes of the link/NIC resources and the routes.
    machine:
        Cost model (use :data:`repro.network.machine.ZERO_COST` in tests that
        only check traffic).
    """

    def __init__(self, topology: Topology, machine: MachineModel):
        self.topology = topology
        self.machine = machine
        self.stats = LinkStats(topology)
        self.link_free: List[float] = [0.0] * topology.num_links
        self.nic_free: List[float] = [0.0] * topology.n_nodes
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()

    @property
    def mesh(self) -> Topology:
        """Deprecated alias of :attr:`topology` (the simulator predates the
        topology abstraction); scheduled for removal next release."""
        warnings.warn(
            "Simulator.mesh is deprecated, use Simulator.topology",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.topology

    # ------------------------------------------------------------ event heap
    def schedule(self, time: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at simulation ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {time} < now {self.now}")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def run(self) -> None:
        """Drain the event heap."""
        heap = self._heap
        while heap:
            time, _, callback, args = heapq.heappop(heap)
            self.now = time
            callback(*args)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -------------------------------------------------------------- messages
    def send_leg(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        ready: float,
        is_data: bool,
        count: bool = True,
    ) -> float:
        """Time one message leg and account its traffic.

        Parameters
        ----------
        src, dst:
            Processor ids.  ``src == dst`` models a message between two
            access-tree nodes hosted on the same processor (a DIVA function
            call; cheap, no link traffic).
        payload_bytes:
            Application payload; the wire size adds the header for data
            messages, control messages use the fixed control size.
        ready:
            Earliest time the leg may start (dependencies satisfied).
        is_data:
            Data messages carry the object value; control messages are
            requests/invalidations/acks.
        count:
            Set ``False`` to time a *hypothetical* leg: no traffic is
            recorded and no resource availability (NIC, links) changes --
            the call is entirely side-effect-free.

        Returns
        -------
        float
            Completion time: the instant the receiver has fully received and
            processed the message (after its receive overhead).
        """
        m = self.machine
        if src == dst:
            done = ready + m.local_overhead
            if count:
                self.stats.record((), 0, src, dst, is_data)
            return done

        wire = payload_bytes + m.header_bytes if is_data else m.ctrl_bytes
        overhead = m.nic_fixed_overhead + wire * m.nic_byte_overhead
        nic = self.nic_free
        t_send = nic[src]
        if ready > t_send:
            t_send = ready
        depart = t_send + overhead

        links = route_links(self.topology, src, dst)
        lf = self.link_free
        start = depart
        for link in links:
            if lf[link] > start:
                start = lf[link]
        occupy = wire / m.link_bandwidth
        end = start + occupy
        arrive = end + len(links) * m.hop_latency

        t_recv = nic[dst]
        if arrive > t_recv:
            t_recv = arrive

        if count:
            nic[src] = depart
            for link in links:
                lf[link] = end
            nic[dst] = t_recv + overhead
            self.stats.record(links, wire, src, dst, is_data)
        return t_recv + overhead

    def send_chain(
        self,
        hosts: Sequence[int],
        payload_bytes: int,
        ready: float,
        is_data: bool,
    ) -> float:
        """Time a store-and-forward chain of legs through ``hosts`` (the
        access-tree request/reply pattern: every intermediate tree node
        receives, inspects, and forwards).  Returns final completion time."""
        t = ready
        for a, b in zip(hosts, hosts[1:]):
            t = self.send_leg(a, b, payload_bytes, t, is_data)
        return t
