"""Deterministic discrete-event simulator of the mesh machine.

The simulator models the three resources that determine execution time on
the GCel (see :mod:`repro.network.machine`):

* every **directed link** has an availability time; a message of size ``s``
  reserves all links of its dimension-order path atomically for ``s/BW``
  seconds starting at the earliest instant all of them are free.  This is
  the standard whole-path approximation of wormhole routing: a blocked worm
  occupies its path, so bandwidth-contended links serialize messages.
* every **processor NIC** has an availability time; each message send and
  each receive occupies it for the startup overhead.  This serialization is
  what turns the fixed-home strategy's home processor into a hotspot and
  what penalizes deep access trees (many intermediate stops).
* every **processor program** advances its own virtual clock through
  compute charges and blocking operations.

Timing discipline
-----------------
Protocol operations are *atomic at initiation*: when an operation starts,
its message legs are timed immediately (in simulation-time order of
initiation), updating resource availabilities.  Legs of operations
initiated earlier therefore acquire resources first -- FCFS per operation,
which is the natural service order of the real system up to reordering of
in-flight messages.  Event-driven behaviour that genuinely depends on
*future* state (lock grants, barrier releases, message-passing receives)
goes through the event heap.

Hot path
--------
Protocol flows (chains, invalidation multicasts) are *compiled*: their
legs' wire sizes and machine cost terms are resolved at construction, and
the event loop steps them inline -- one heap pop per message leg, no
per-leg Python function calls (see the ``_CHAIN``/``_MDOWN``/``_MACK``
event kinds below).  When the optional C kernel is available
(:mod:`repro.sim._ckern`), the same loop runs natively and Python is
re-entered only for generic events and flow completions; both engines
produce bit-identical results, leg for leg.  The deprecated
``Simulator.mesh`` alias of ``topology`` was removed on schedule.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

from ..network.machine import MachineModel
from ..network.mesh import Mesh2D
from ..network.routing import DENSE_NODE_LIMIT, get_route_table
from ..network.stats import LinkStats
from ..network.topology import Hypercube, Topology
from ..network.torus import Torus2D
from . import _ckern

__all__ = ["Simulator", "SimDeadlock"]

_INF = float("inf")


class SimDeadlock(RuntimeError):
    """Raised when the event heap drains while programs are still blocked."""


#: Inline event kinds of the pure-Python loop.  The run loop recognizes
#: these sentinels in slot 2 of a heap item and executes the flow step
#: directly in its own frame -- no closure call, no ``send_leg`` call, no
#: ``schedule`` call per leg.  Event keys ``(time, seq)`` and all
#: resource/stat side effects are produced at exactly the code points the
#: closure-based flows used, so results are bit-identical; only the
#: interpreter overhead changes.  Item layouts (flat; heap comparisons
#: never reach slot 2 because seq is unique):
#:   generic : (time, seq, callback, args)
#:   _CHAIN  : (time, seq, _CHAIN, legs, index, done)
#:   _MDOWN  : (time, seq, _MDOWN, ctx, node, parent_host, pend)
#:   _MACK   : (time, seq, _MACK, ctx, node, parent_host, pend)
_CHAIN = object()
_MDOWN = object()
_MACK = object()


class ServeResume:
    """Serving fast-path completion marker for ``resume_event``.

    When the serving session runs in kernel-fast mode, a flow whose
    completion should feed the C-side request dispatcher passes
    ``ServeResume(proc)`` as ``resume_event``: the kernel pushes a
    native ``K_SDONE`` for ``proc`` at the completion time (the exact
    push point of the classic auto-resume), consuming the same seqno, so
    event order is bit-identical to the generator-based path.  Only
    meaningful in kernel mode -- the serving fast path requires the C
    kernel.
    """

    __slots__ = ("proc",)

    def __init__(self, proc: int):
        self.proc = proc


class _ResumeDone:
    """Pure-engine completion shim for ``resume_event``: schedules the
    stored ``callback(*args)`` at the flow's completion time (seq assigned
    at completion, exactly like the kernel's auto-resume push)."""

    __slots__ = ("_sim", "_event")

    def __init__(self, sim: "Simulator", event: tuple):
        self._sim = sim
        self._event = event

    def __call__(self, t: float) -> None:
        cb, args = self._event
        sim = self._sim
        heapq.heappush(sim._heap, (t, next(sim._seq), cb, args))


class Simulator:
    """Resource bookkeeping + event heap for one run.

    Parameters
    ----------
    topology:
        The network topology (mesh, torus, hypercube, ...); fixes the
        flat-array sizes of the link/NIC resources and the routes.
    machine:
        Cost model (use :data:`repro.network.machine.ZERO_COST` in tests that
        only check traffic).
    """

    #: Class-wide escape hatch: force the pure-Python engine even when the
    #: C kernel is loadable (used by the engine-equivalence tests; the
    #: ``REPRO_PURE_PYTHON`` environment variable disables the kernel
    #: process-wide).
    force_pure = False

    __slots__ = (
        "topology",
        "machine",
        "_stats",
        "link_free",
        "nic_free",
        "now",
        "_heap",
        "_seq",
        "_routes",
        "_route_lookup",
        "_n_nodes",
        "_header_bytes",
        "_ctrl_bytes",
        "_nic_fixed",
        "_nic_byte",
        "_bandwidth",
        "_hop_latency",
        "_local_overhead",
        "_flush_at",
        "_kern",
        "_h",
        "_lib",
        "_ffi",
        "_out",
        "_stage_i",
        "_stage_d",
        "_stage_cap",
        "_objs",
        "_obj_free",
        "_np_arrays",
        "_failview",
        "serve_cb",
    )

    def __init__(self, topology: Topology, machine: MachineModel):
        self.topology = topology
        self.machine = machine
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        # Hot-path caches: the per-topology route table and the frozen
        # machine constants, so leg processing never chases attributes.
        table = get_route_table(topology)
        self._routes = table.routes
        self._route_lookup = table.lookup
        self._n_nodes = topology.n_nodes
        self._header_bytes = machine.header_bytes
        self._ctrl_bytes = machine.ctrl_bytes
        self._nic_fixed = machine.nic_fixed_overhead
        self._nic_byte = machine.nic_byte_overhead
        self._bandwidth = machine.link_bandwidth
        self._hop_latency = machine.hop_latency
        self._local_overhead = machine.local_overhead

        # The shipped topology classes have closed-form routing that the
        # kernel mirrors natively (sim_set_topology) -- the hot loop never
        # re-enters Python for a route, and above DENSE_NODE_LIMIT routes
        # are recomputed per leg instead of cached (O(1) route memory).
        # The class check is exact: a subclass may override compute_route,
        # and then only the Python side knows the routes -- such topologies
        # use the kernel's supply path below the limit (R_NEED_ROUTE) and
        # the pure engine above it.
        cls = type(topology)
        if cls is Mesh2D:
            kind_c = 1
        elif cls is Torus2D:
            kind_c = 2
        elif cls is Hypercube:
            kind_c = 3
        else:
            kind_c = 0
        kern = None
        if not Simulator.force_pure and (
            kind_c or topology.n_nodes <= DENSE_NODE_LIMIT
        ):
            kern = _ckern.load_kernel()
        self._kern = kern
        if kern is not None:
            import numpy as np

            link_free = np.zeros(topology.num_links, dtype=np.float64)
            nic_free = np.zeros(topology.n_nodes, dtype=np.float64)
            self.link_free = link_free
            self.nic_free = nic_free
            self._np_arrays = (link_free, nic_free)  # keep buffers alive
            ffi, lib = kern.ffi, kern.lib
            self._ffi = ffi
            self._lib = lib
            self._h = ffi.gc(
                lib.sim_new(
                    topology.n_nodes,
                    machine.hop_latency,
                    machine.local_overhead,
                    ffi.cast("double *", link_free.ctypes.data),
                    ffi.cast("double *", nic_free.ctypes.data),
                    _ckern.STAGE_CAP,
                ),
                lib.sim_free,
            )
            if kind_c:
                lib.sim_set_topology(
                    self._h,
                    kind_c,
                    getattr(topology, "rows", 0),
                    getattr(topology, "cols", 0),
                    getattr(topology, "dim", 0),
                    1 if topology.n_nodes <= DENSE_NODE_LIMIT else 0,
                )
            self._stage_i = lib.sim_stage_i(self._h)
            self._stage_d = lib.sim_stage_d(self._h)
            self._stage_cap = _ckern.STAGE_CAP
            self._out = ffi.new("Crossing *")
            self._objs: List[object] = []
            self._obj_free: List[int] = []
        else:
            self._h = None
            self.link_free = [0.0] * topology.num_links
            self.nic_free = [0.0] * topology.n_nodes
        # Pure-loop pending-stats fold cadence.  Above the dense limit
        # routes are computed fresh per leg (AlgebraicRouter), so pending
        # entries no longer share cached link tuples -- fold early to keep
        # memory flat.  Cadence never affects results: folds are
        # order-exact integer sums.
        self._flush_at = (
            1_000_000 if topology.n_nodes <= DENSE_NODE_LIMIT else 65_536
        )
        self._failview = None
        #: Serving fast-path crossing handler (set by ServeSession when it
        #: arms kernel-fast mode); receives the Crossing for R_SREQ.
        self.serve_cb = None
        self._stats = None
        self.stats = LinkStats(topology)

    # ----------------------------------------------------------------- stats
    @property
    def stats(self) -> LinkStats:
        return self._stats

    @stats.setter
    def stats(self, st: LinkStats) -> None:
        """Swap the traffic accounting (measurement reset).

        In kernel mode the C side accumulates eagerly into the stats
        arrays, so the old stats object absorbs the kernel counters before
        the kernel is re-pointed (and zeroed) at the new arrays.
        """
        old = self._stats
        self._stats = st
        if self._h is not None:
            if old is not None:
                old.absorb_kernel()
            st._densify()  # the kernel accumulates into dense arrays
            lib = self._lib
            ffi = self._ffi
            lib.sim_set_stats(
                self._h,
                ffi.cast("double *", st._link_bytes.ctypes.data),
                ffi.cast("i64 *", st._link_msgs.ctypes.data),
                ffi.cast("i64 *", st._startups.ctypes.data),
                ffi.cast("i64 *", st._receives.ctypes.data),
            )
            st.bind_kernel(lib, self._h)

    # ------------------------------------------------------------ event heap
    def schedule(self, time: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at simulation ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {time} < now {self.now}")
        if self._h is not None:
            self._lib.sim_push_generic(self._h, time, self._obj_put((callback, args)))
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def _obj_put(self, value) -> int:
        free = self._obj_free
        if free:
            i = free.pop()
            self._objs[i] = value
        else:
            i = len(self._objs)
            self._objs.append(value)
        return i

    def _reserve_stage(self, n: int) -> None:
        """Grow the kernel staging buffers when a flow outsizes them (huge
        multicasts / chains on very large machines)."""
        if n > self._stage_cap:
            self._stage_cap = self._lib.sim_ensure_stage(self._h, n)
            self._stage_i = self._lib.sim_stage_i(self._h)
            self._stage_d = self._lib.sim_stage_d(self._h)

    def _supply_route(self, src: int, dst: int) -> None:
        links = self._route_lookup(src, dst)
        self._reserve_stage(len(links))
        self._stage_i[0 : len(links)] = list(links)
        self._lib.sim_set_route(self._h, src, dst, len(links))

    def install_failures(self, view) -> None:
        """Route every leg through ``view`` (a
        :class:`repro.network.failures.FailureView`).

        Must run before :meth:`run`: the pure loop binds the route table
        and resolver as locals at entry.  The view's per-epoch
        ``route_cache`` replaces the shared pristine table, and its
        failure-aware ``lookup`` becomes the resolver.  On the C kernel
        the closed-form topology routing is switched off (kind 0) so
        every route miss re-enters Python (R_NEED_ROUTE) and gets the
        failure-aware answer -- both engines then resolve each distinct
        ``(src, dst)`` exactly once per failure epoch.
        """
        self._failview = view
        self._routes = view.route_cache
        self._route_lookup = view.lookup
        if self._h is not None:
            self._lib.sim_set_topology(self._h, 0, 0, 0, 0, 0)

    def apply_failure_event(self, event) -> None:
        """Apply one schedule event: flip the view's down sets and start
        a fresh route epoch in whichever engine is active (the view
        clears the shared cache dict in place; the kernel additionally
        drops its interned route hash)."""
        view = self._failview
        if view is None:
            raise RuntimeError("no FailureView installed (install_failures)")
        view.apply(event)
        if self._h is not None:
            self._lib.sim_clear_routes(self._h)

    @property
    def pending_events(self) -> int:
        if self._h is not None:
            return self._lib.sim_heap_size(self._h)
        return len(self._heap)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event heap, optionally only up to a time horizon.

        With ``until`` set, events stamped later than the horizon stay
        queued and ``run`` returns with them pending; calling ``run``
        again (with a later horizon, or ``None`` to drain) resumes in
        exact heap order, so a horizon-sliced run is event-for-event
        identical to a single drain.  The serving layer leans on this to
        interleave request injection with bounded simulated run-ahead.

        The cyclic garbage collector is paused for the duration of the
        drain -- the loop allocates heavily (event tuples, closures,
        generator frames) and gen-0 collections were a measured
        double-digit share of wall time; collection resumes (and catches
        up) on exit.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._h is not None:
                self._run_kernel(until)
            else:
                self._run_py(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_kernel(self, until: Optional[float] = None) -> None:
        """Drive the C kernel; re-enter Python only for generic events,
        flow completions, and route-table misses."""
        lib = self._lib
        h = self._h
        out = self._out
        objs = self._objs
        free = self._obj_free
        horizon = _INF if until is None else until
        sim_run = lib.sim_run_until
        while True:
            r = sim_run(h, out, horizon)
            if r == 1:  # generic event
                i = out.a
                cb, args = objs[i]
                objs[i] = None
                free.append(i)
                self.now = out.time
                cb(*args)
            elif r == 2 or r == 3:  # chain / multicast completion
                i = out.a
                done = objs[i]
                objs[i] = None
                free.append(i)
                self.now = out.time
                done(out.targ)
            elif r == 4:  # route miss: supply and re-enter
                self._supply_route(out.a, out.b)
            elif r == 5:  # serving fast path: a request crossed to Python
                self.serve_cb(out)
            else:
                break

    def _run_py(self, until: Optional[float] = None) -> None:
        horizon = _INF if until is None else until
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq_next = self._seq.__next__
        nic = self.nic_free
        lf = self.link_free
        routes = self._routes
        lookup = self._route_lookup
        nn = self._n_nodes
        hop = self._hop_latency
        local_ov = self._local_overhead
        CHAIN = _CHAIN
        MDOWN = _MDOWN
        MACK = _MACK
        # The pending-stats append is rebound after every generic callback
        # (only those can swap self.stats, via measurement resets); the
        # inline flow steps between two generic events all hit one binding.
        pend_append = self._stats._pending.append
        while heap:
            item = pop(heap)
            if item[0] > horizon:
                push(heap, item)  # same (time, seq): resumes in exact order
                return
            cb = item[2]
            if cb is CHAIN:
                time = item[0]
                legs = item[3]
                i = item[4]
                src, dst, wire, over, occ, is_data = legs[i]
                if src == dst:
                    arrive = time + local_ov
                    pend_append(((), 0, src, dst, is_data))
                else:
                    t_send = nic[src]
                    if time > t_send:
                        t_send = time
                    depart = t_send + over
                    links = routes.get(src * nn + dst)
                    if links is None:
                        links = lookup(src, dst)
                    start = depart
                    for link in links:
                        v = lf[link]
                        if v > start:
                            start = v
                    end = start + occ
                    arrive = end + len(links) * hop
                    t_recv = nic[dst]
                    if arrive > t_recv:
                        t_recv = arrive
                    arrive = t_recv + over
                    nic[src] = depart
                    for link in links:
                        lf[link] = end
                    nic[dst] = arrive
                    pend_append((links, wire, src, dst, is_data))
                i += 1
                if i == len(legs):
                    self.now = time
                    item[5](arrive)
                else:
                    push(heap, (arrive, seq_next(), CHAIN, legs, i, item[5]))
                continue
            if cb is MDOWN:
                # Multicast down-leg into `node`, then fan out to its
                # children (or start the combining ack when childless).
                time = item[0]
                ctx = item[3]
                node = item[4]
                parent_host = item[5]
                children, hosts, dwire, dover, docc, dis_data = ctx[:6]
                hn = hosts[node]
                if parent_host == hn:
                    t_here = time + local_ov
                    pend_append(((), 0, parent_host, hn, dis_data))
                else:
                    t_send = nic[parent_host]
                    if time > t_send:
                        t_send = time
                    depart = t_send + dover
                    links = routes.get(parent_host * nn + hn)
                    if links is None:
                        links = lookup(parent_host, hn)
                    start = depart
                    for link in links:
                        v = lf[link]
                        if v > start:
                            start = v
                    end = start + docc
                    t_here = end + len(links) * hop
                    t_recv = nic[hn]
                    if t_here > t_recv:
                        t_recv = t_here
                    t_here = t_recv + dover
                    nic[parent_host] = depart
                    for link in links:
                        lf[link] = end
                    nic[hn] = t_here
                    pend_append((links, dwire, parent_host, hn, dis_data))
                kids = children.get(node)
                if kids:
                    npend = [len(kids), t_here, node, parent_host, item[6]]
                    for kid in kids:
                        push(heap, (t_here, seq_next(), MDOWN, ctx, kid, hn, npend))
                else:
                    push(heap, (t_here, seq_next(), MACK, ctx, node, parent_host, item[6]))
                continue
            if cb is MACK:
                # Combined ack from `node` back to its parent's host.
                time = item[0]
                ctx = item[3]
                hosts = ctx[1]
                awire = ctx[6]
                aover = ctx[7]
                parent_host = item[5]
                hn = hosts[item[4]]
                if hn == parent_host:
                    t_ack = time + local_ov
                    pend_append(((), 0, hn, parent_host, False))
                else:
                    t_send = nic[hn]
                    if time > t_send:
                        t_send = time
                    depart = t_send + aover
                    links = routes.get(hn * nn + parent_host)
                    if links is None:
                        links = lookup(hn, parent_host)
                    start = depart
                    for link in links:
                        v = lf[link]
                        if v > start:
                            start = v
                    end = start + ctx[8]
                    t_ack = end + len(links) * hop
                    t_recv = nic[parent_host]
                    if t_ack > t_recv:
                        t_recv = t_ack
                    t_ack = t_recv + aover
                    nic[hn] = depart
                    for link in links:
                        lf[link] = end
                    nic[parent_host] = t_ack
                    pend_append((links, awire, hn, parent_host, False))
                pend = item[6]
                pend[0] -= 1
                if t_ack > pend[1]:
                    pend[1] = t_ack
                if pend[0] == 0:
                    if pend[2] is None:
                        self.now = item[0]
                        pend[4](pend[1])  # root: flow complete
                    else:
                        push(heap, (pend[1], seq_next(), MACK, ctx, pend[2], pend[3], pend[4]))
                continue
            self.now = item[0]
            cb(*item[3])
            stats = self._stats
            if len(stats._pending) >= self._flush_at:
                stats._flush()  # keep pure-engine memory flat on huge runs
            pend_append = stats._pending.append

    # -------------------------------------------------------- flow builders
    def push_chain(self, t: float, legs: list, done: Callable[[float], None]) -> None:
        """Schedule a compiled leg chain (see :func:`repro.sim.flows.chain`).

        ``legs`` holds ``(src, dst, wire, overhead, occupancy, is_data)``
        tuples -- wire size and the machine cost terms precomputed at
        construction.  Must not be empty.
        """
        if self._h is not None:
            self._reserve_stage(3 * len(legs))
            stage_i = self._stage_i
            stage_d = self._stage_d
            for j, (src, dst, wire, over, occ, is_data) in enumerate(legs):
                k = 3 * j
                stage_i[k] = src
                stage_i[k + 1] = dst
                stage_i[k + 2] = 1 if is_data else 0
                stage_d[k] = wire
                stage_d[k + 1] = over
                stage_d[k + 2] = occ
            self._lib.sim_push_chain_legs(self._h, t, len(legs), self._obj_put(done))
            return
        heapq.heappush(self._heap, (t, next(self._seq), _CHAIN, legs, 0, done))

    def push_updown(
        self,
        t: float,
        hosts: Sequence[int],
        cwire: float,
        cover: float,
        cocc: float,
        dwire: float,
        dover: float,
        docc: float,
        done: Callable[[float], None] = None,
        resume_event: tuple = None,
    ) -> None:
        """Schedule the request/reply chain ``hosts[0] -> .. -> hosts[-1] ->
        .. -> hosts[0]``: control legs up, data legs back down (the access
        tree read and the fixed-home round trip).  ``len(hosts) >= 2``.

        Completion: either ``done(completion_time)`` is called, or -- the
        overwhelmingly common case -- ``resume_event=(callback, args)``
        schedules ``callback(*args)`` *at* the completion time, which the
        C kernel does without re-entering Python.
        """
        if self._h is not None:
            self._reserve_stage(len(hosts))
            self._stage_i[0 : len(hosts)] = hosts
            if type(resume_event) is ServeResume:
                obj, auto = resume_event.proc, 2
            elif resume_event is not None:
                obj, auto = self._obj_put(resume_event), 1
            else:
                obj, auto = self._obj_put(done), 0
            self._lib.sim_push_chain_updown(
                self._h, t, len(hosts), cwire, cover, cocc, dwire, dover, docc,
                obj, auto,
            )
            return
        legs = []
        prev = hosts[0]
        for h in hosts[1:]:
            legs.append((prev, h, cwire, cover, cocc, False))
            prev = h
        n = len(hosts)
        for i in range(n - 1, 0, -1):
            legs.append((hosts[i], hosts[i - 1], dwire, dover, docc, True))
        if resume_event is not None:
            done = _ResumeDone(self, resume_event)
        heapq.heappush(self._heap, (t, next(self._seq), _CHAIN, legs, 0, done))

    def push_path(
        self,
        t: float,
        hosts: Sequence[int],
        wire: float,
        over: float,
        occ: float,
        is_data: bool,
        reverse: bool,
        done: Callable[[float], None] = None,
        resume_event: tuple = None,
    ) -> None:
        """Schedule a one-way chain along ``hosts`` (reversed when
        ``reverse``), all legs sharing one cost shape.  ``len(hosts) >= 2``.
        Completion semantics as in :meth:`push_updown`.
        """
        if self._h is not None:
            self._reserve_stage(len(hosts))
            self._stage_i[0 : len(hosts)] = hosts
            if type(resume_event) is ServeResume:
                obj, auto = resume_event.proc, 2
            elif resume_event is not None:
                obj, auto = self._obj_put(resume_event), 1
            else:
                obj, auto = self._obj_put(done), 0
            self._lib.sim_push_chain_path(
                self._h, t, len(hosts), 1 if reverse else 0, wire, over, occ,
                1 if is_data else 0, obj, auto,
            )
            return
        legs = []
        n = len(hosts)
        if reverse:
            for i in range(n - 1, 0, -1):
                legs.append((hosts[i], hosts[i - 1], wire, over, occ, is_data))
        else:
            prev = hosts[0]
            for h in hosts[1:]:
                legs.append((prev, h, wire, over, occ, is_data))
                prev = h
        if resume_event is not None:
            done = _ResumeDone(self, resume_event)
        heapq.heappush(self._heap, (t, next(self._seq), _CHAIN, legs, 0, done))

    def push_multicast(
        self,
        root_host: int,
        kids: list,
        children: dict,
        hosts: dict,
        payload: int,
        t: float,
        done: Callable[[float], None],
    ) -> None:
        """Schedule a multicast-with-combining-acks flow rooted at
        ``root_host`` over the ``kids`` of the root (see
        :func:`repro.sim.flows.multicast_acks`).  ``kids`` must be
        non-empty (the childless case completes synchronously upstream).
        """
        is_data = payload > 0
        dwire = payload + self._header_bytes if is_data else self._ctrl_bytes
        dover = self._nic_fixed + dwire * self._nic_byte
        docc = dwire / self._bandwidth
        awire = self._ctrl_bytes
        aover = self._nic_fixed + awire * self._nic_byte
        aocc = awire / self._bandwidth
        if self._h is not None:
            # Remap tree node ids to dense local ids for the C tables.
            nodes = list(hosts)
            idx = {n: i for i, n in enumerate(nodes)}
            tbl = len(nodes)
            stage = [hosts[n] for n in nodes]
            kid_cnt = []
            kid_off = []
            kids_flat: list = []
            for n in nodes:
                ks = children.get(n) or ()
                kid_off.append(len(kids_flat))
                kid_cnt.append(len(ks))
                kids_flat.extend(idx[k] for k in ks)
            stage += kid_cnt + kid_off + kids_flat + [idx[k] for k in kids]
            self._reserve_stage(len(stage))
            self._stage_i[0 : len(stage)] = stage
            self._lib.sim_push_mcast(
                self._h, t, root_host, len(kids), tbl, len(kids_flat),
                dwire, dover, docc, 1 if is_data else 0, awire, aover, aocc,
                self._obj_put(done),
            )
            return
        ctx = (children, hosts, dwire, dover, docc, is_data, awire, aover, aocc)
        pend = [len(kids), t, None, None, done]
        heap = self._heap
        seq_next = self._seq.__next__
        for kid in kids:
            heapq.heappush(heap, (t, seq_next(), _MDOWN, ctx, kid, root_host, pend))

    # -------------------------------------------------------------- messages
    def send_leg(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        ready: float,
        is_data: bool,
        count: bool = True,
    ) -> float:
        """Time one message leg and account its traffic.

        Parameters
        ----------
        src, dst:
            Processor ids.  ``src == dst`` models a message between two
            access-tree nodes hosted on the same processor (a DIVA function
            call; cheap, no link traffic).
        payload_bytes:
            Application payload; the wire size adds the header for data
            messages, control messages use the fixed control size.
        ready:
            Earliest time the leg may start (dependencies satisfied).
        is_data:
            Data messages carry the object value; control messages are
            requests/invalidations/acks.
        count:
            Set ``False`` to time a *hypothetical* leg: no traffic is
            recorded and no resource availability (NIC, links) changes --
            the call is entirely side-effect-free.

        Returns
        -------
        float
            Completion time: the instant the receiver has fully received and
            processed the message (after its receive overhead).
        """
        wire = payload_bytes + self._header_bytes if is_data else self._ctrl_bytes
        overhead = self._nic_fixed + wire * self._nic_byte
        if self._h is not None:
            lib = self._lib
            occ = wire / self._bandwidth
            flag = 1 if is_data else 0
            if count:
                r = lib.sim_send_leg(self._h, ready, src, dst, wire, overhead, occ, flag)
                if r < 0.0:
                    self._supply_route(src, dst)
                    r = lib.sim_send_leg(self._h, ready, src, dst, wire, overhead, occ, flag)
                return r
            r = lib.sim_probe_leg(self._h, ready, src, dst, wire, overhead, occ)
            if r < 0.0:
                self._supply_route(src, dst)
                r = lib.sim_probe_leg(self._h, ready, src, dst, wire, overhead, occ)
            return r

        if src == dst:
            if count:
                self._stats._pending.append(((), 0, src, dst, is_data))
            return ready + self._local_overhead
        nic = self.nic_free
        t_send = nic[src]
        if ready > t_send:
            t_send = ready
        depart = t_send + overhead
        links = self._routes.get(src * self._n_nodes + dst)
        if links is None:
            links = self._route_lookup(src, dst)
        lf = self.link_free
        start = depart
        for link in links:
            v = lf[link]
            if v > start:
                start = v
        end = start + wire / self._bandwidth
        arrive = end + len(links) * self._hop_latency
        t_recv = nic[dst]
        if arrive > t_recv:
            t_recv = arrive
        done = t_recv + overhead
        if count:
            nic[src] = depart
            for link in links:
                lf[link] = end
            nic[dst] = done
            self._stats._pending.append((links, wire, src, dst, is_data))
        return done

    def send_chain(
        self,
        hosts: Sequence[int],
        payload_bytes: int,
        ready: float,
        is_data: bool,
    ) -> float:
        """Time a store-and-forward chain of legs through ``hosts`` (the
        access-tree request/reply pattern: every intermediate tree node
        receives, inspects, and forwards).  Returns final completion time."""
        t = ready
        for a, b in zip(hosts, hosts[1:]):
            t = self.send_leg(a, b, payload_bytes, t, is_data)
        return t
