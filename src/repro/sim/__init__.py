"""Discrete-event simulation engine."""

from .engine import SimDeadlock, Simulator

__all__ = ["Simulator", "SimDeadlock"]
