"""The paper's three benchmark applications."""

from . import barneshut, bitonic, matmul

__all__ = ["matmul", "bitonic", "barneshut"]
