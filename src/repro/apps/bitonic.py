"""Bitonic sorting (the paper's Section 3.2).

Batcher's bitonic sorting circuit over ``P`` wires; each processor
simulates one wire and holds ``m`` keys (a sorted run) in a global
variable; the compare-exchange of the circuit becomes a **merge&split**:
the wire that should receive the minimum keeps the lower ``m`` keys of the
merged ``2m``, the other the upper ``m``.

The circuit has ``log P`` phases; phase ``i`` consists of ``i``
merge&split steps and implements ``2^(logP - i)`` parallel merging
circuits, each covering ``2^i`` *neighbouring* wires -- locality the
access tree strategy can exploit.  Wires are therefore assigned to
processors in the left-to-right leaf order of the mesh decomposition tree
(the paper: "processor ident-numbers correspond to a numbering of the
leaves of the mesh-decomposition tree"), which maps wire neighbourhoods to
mesh submeshes.

Variants:

* **DIVA** (:func:`run_diva`): per step, each processor reads the
  partner's variable, merges locally, and (after a barrier that separates
  the read side from the write side of the step) writes its half back into
  its own variable -- triggering the invalidation of the partner-side
  copies.  A second barrier orders the steps.
* **Hand-optimized** (:func:`run_handopt`): the two processors of a
  comparator simply exchange their key runs as two direct messages along
  dimension-order paths -- optimal congestion for this circuit embedding,
  no barriers needed (message passing self-synchronizes).

The paper reports *execution* time here (local compute is charged): the
initial local sort and the per-step merges are cheap at the investigated
key counts but included, as in the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..core.decomposition import build_tree
from ..core.strategy import DataManagementStrategy, NullStrategy
from ..network.machine import GCEL, MachineModel
from ..network.mesh import Mesh2D
from ..runtime.api import Env
from ..runtime.launcher import Runtime
from ..runtime.results import RunResult

__all__ = ["run_diva", "run_handopt", "wire_assignment", "comparator_schedule", "make_keys"]


def wire_assignment(mesh: Mesh2D) -> List[int]:
    """``wire -> processor`` map: leaf order of the canonical (2-ary) mesh
    decomposition tree, the paper's locality-preserving numbering."""
    tree = build_tree(mesh, stride=1, terminal=1)
    return tree.procs_inorder()


def comparator_schedule(n_wires: int) -> List[List[tuple]]:
    """The bitonic sorting circuit as a list of parallel steps; each step is
    a list of comparators ``(lo_wire, hi_wire, ascending)`` (``ascending``
    means the minimum goes to ``lo_wire``).

    Standard Batcher construction: phases ``k = 2, 4, .., P``; within a
    phase, sub-steps ``j = k/2, k/4, .., 1`` pair wires differing in bit
    ``j``; the direction of a comparator is fixed by bit ``k`` of the wire
    index.  Sorting ascending overall.
    """
    if n_wires < 2 or n_wires & (n_wires - 1):
        raise ValueError(f"bitonic sort needs a power-of-two wire count, got {n_wires}")
    steps: List[List[tuple]] = []
    k = 2
    while k <= n_wires:
        j = k // 2
        while j >= 1:
            step = []
            for w in range(n_wires):
                partner = w ^ j
                if partner > w:
                    ascending = (w & k) == 0
                    step.append((w, partner, ascending))
            steps.append(step)
            j //= 2
        k *= 2
    return steps


def make_keys(n_wires: int, keys_per_wire: int, seed: int = 0) -> List[np.ndarray]:
    """Deterministic random keys, one sorted run per wire (the initial local
    sort is charged separately in the programs)."""
    out = []
    for w in range(n_wires):
        rng = np.random.default_rng(seed * 1_000_003 + w)
        out.append(rng.integers(0, 2**31, size=keys_per_wire, dtype=np.int64))
    return out


def _merge_split(mine: np.ndarray, other: np.ndarray, keep_low: bool) -> np.ndarray:
    merged = np.sort(np.concatenate([mine, other]), kind="mergesort")
    m = mine.shape[0]
    return merged[:m] if keep_low else merged[m:]


def _verify(final_runs: List[np.ndarray], initial: List[np.ndarray]) -> None:
    got = np.concatenate(final_runs)
    expect = np.sort(np.concatenate(initial))
    if not np.array_equal(got, expect):
        raise AssertionError("bitonic sort verification failed")


# ---------------------------------------------------------------- DIVA runs
def run_diva(
    mesh: Mesh2D,
    strategy: DataManagementStrategy,
    keys_per_wire: int = 1024,
    *,
    machine: MachineModel = GCEL,
    charge_compute: bool = True,
    verify: bool = True,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """Run the DIVA (shared-variable) bitonic sort under ``strategy``."""
    p = mesh.n_nodes
    wires = wire_assignment(mesh)
    wire_of_proc = {proc: w for w, proc in enumerate(wires)}
    keys = make_keys(p, keys_per_wire, seed)
    payload = keys_per_wire * machine.word_bytes
    steps = comparator_schedule(p)
    # Per-step partner/direction lookup per wire.
    plan: List[Dict[int, tuple]] = []
    for step in steps:
        d: Dict[int, tuple] = {}
        for lo, hi, ascending in step:
            d[lo] = (hi, ascending)  # lo keeps min iff ascending
            d[hi] = (lo, not ascending)
        plan.append(d)

    handles: Dict[int, object] = {}
    sort_ops = keys_per_wire * max(1.0, math.log2(keys_per_wire))
    merge_ops = 2.0 * keys_per_wire

    def program(env: Env):
        w = wire_of_proc[env.rank]
        mine = np.sort(keys[w], kind="mergesort")
        yield from env.compute(ops=sort_ops)
        handles[w] = env.create(f"K[{w}]", payload, value=mine)
        yield from env.barrier(phase="sort")
        for d in plan:
            partner, keep_low = d[w]
            other = yield from env.read(handles[partner])
            mine = _merge_split(mine, other, keep_low)
            yield from env.compute(ops=merge_ops)
            yield from env.barrier()  # everyone read before anyone writes
            yield from env.write(handles[w], mine)
            yield from env.barrier()  # writes visible before the next step
        yield from env.barrier(phase="done")
        return mine

    rt = Runtime(mesh, strategy, machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "bitonic"
    result.extra["keys_per_wire"] = keys_per_wire
    if verify:
        final = [rt.registry.get(handles[w]) for w in range(p)]
        _verify(final, keys)
        result.extra["verified"] = True
    return result


# ---------------------------------------------------- hand-optimized runs
def run_handopt(
    mesh: Mesh2D,
    keys_per_wire: int = 1024,
    *,
    machine: MachineModel = GCEL,
    charge_compute: bool = True,
    verify: bool = True,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """Run the hand-optimized message-passing bitonic sort: per comparator,
    the paired processors exchange their runs as two direct messages."""
    p = mesh.n_nodes
    wires = wire_assignment(mesh)
    wire_of_proc = {proc: w for w, proc in enumerate(wires)}
    keys = make_keys(p, keys_per_wire, seed)
    payload = keys_per_wire * machine.word_bytes
    steps = comparator_schedule(p)
    plan: List[Dict[int, tuple]] = []
    for step in steps:
        d: Dict[int, tuple] = {}
        for lo, hi, ascending in step:
            d[lo] = (hi, ascending)
            d[hi] = (lo, not ascending)
        plan.append(d)

    sort_ops = keys_per_wire * max(1.0, math.log2(keys_per_wire))
    merge_ops = 2.0 * keys_per_wire
    results: Dict[int, np.ndarray] = {}

    def program(env: Env):
        w = wire_of_proc[env.rank]
        mine = np.sort(keys[w], kind="mergesort")
        yield from env.compute(ops=sort_ops)
        yield from env.barrier(phase="sort")
        for step_no, d in enumerate(plan):
            partner, keep_low = d[w]
            partner_proc = wires[partner]
            yield from env.send(partner_proc, mine, payload, tag=step_no)
            other = yield from env.recv(tag=step_no)
            mine = _merge_split(mine, other, keep_low)
            yield from env.compute(ops=merge_ops)
        yield from env.barrier(phase="done")
        results[w] = mine
        return mine

    rt = Runtime(mesh, NullStrategy(), machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "bitonic-handopt"
    result.extra["keys_per_wire"] = keys_per_wire
    if verify:
        final = [results[w] for w in range(p)]
        _verify(final, keys)
        result.extra["verified"] = True
    return result
