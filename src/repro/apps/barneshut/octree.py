"""Octree geometry + a sequential reference Barnes-Hut implementation.

The hierarchical octree is the paper's "main data structure": the root
represents a space cell containing all bodies; a cell is subdivided into
its eight children as soon as it contains more than a single body, so the
leaves are individual bodies and the tree is adaptive.

This module holds the purely geometric rules (octant selection, child
cells) shared by the distributed application and the **sequential
reference** implementation used to validate it: both build the identical
tree (the shape of the adaptive octree is a function of the body positions
and the root box only, independent of insertion order) and traverse it in
identical child order, so the distributed run must reproduce the reference
accelerations bit-for-bit up to float associativity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .physics import EPS, THETA, BodyState, Vec, pairwise_force

__all__ = [
    "octant",
    "child_center",
    "bounding_cube",
    "MAX_DEPTH",
    "RefNode",
    "build_reference_tree",
    "reference_forces",
]

#: Safety bound on tree depth (identical positions would otherwise recurse
#: forever; Plummer spheres never get close at the sizes we simulate).
MAX_DEPTH = 64


def octant(center: Vec, pos: Vec) -> int:
    """Index (0..7) of the child octant of ``center`` containing ``pos``.
    Bit 0: x >= cx, bit 1: y >= cy, bit 2: z >= cz."""
    o = 0
    if pos[0] >= center[0]:
        o |= 1
    if pos[1] >= center[1]:
        o |= 2
    if pos[2] >= center[2]:
        o |= 4
    return o


def child_center(center: Vec, half: float, oct_idx: int) -> Vec:
    """Center of the given child octant of a cell with half-size ``half``."""
    q = half / 2.0
    return (
        center[0] + (q if oct_idx & 1 else -q),
        center[1] + (q if oct_idx & 2 else -q),
        center[2] + (q if oct_idx & 4 else -q),
    )


def bounding_cube(positions: Sequence[Vec]) -> Tuple[Vec, float]:
    """Smallest axis-aligned cube (center, half-size) containing all
    positions, padded slightly so nothing sits exactly on a face."""
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    zs = [p[2] for p in positions]
    lo = (min(xs), min(ys), min(zs))
    hi = (max(xs), max(ys), max(zs))
    center = ((lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0)
    half = max(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]) / 2.0
    half = half * 1.0001 + 1e-9
    return center, half


# ------------------------------------------------------------ reference tree
@dataclass
class RefNode:
    """Sequential reference cell."""

    center: Vec
    half: float
    depth: int
    children: List[Optional[object]] = field(default_factory=lambda: [None] * 8)
    mass: float = 0.0
    com: Vec = (0.0, 0.0, 0.0)

    def is_cell(self) -> bool:  # pragma: no cover - trivial
        return True


def build_reference_tree(bodies: Sequence[BodyState], box: Optional[Tuple[Vec, float]] = None) -> RefNode:
    """Build the adaptive octree (one body per leaf) and fill in the
    centers of mass bottom-up."""
    if box is None:
        box = bounding_cube([b.pos for b in bodies])
    root = RefNode(center=box[0], half=box[1], depth=0)
    for idx, b in enumerate(bodies):
        _insert(root, idx, b, bodies)
    _summarize(root, bodies)
    return root


def _insert(cell: RefNode, idx: int, b: BodyState, bodies: Sequence[BodyState]) -> None:
    o = octant(cell.center, b.pos)
    child = cell.children[o]
    if child is None:
        cell.children[o] = idx  # leaf: body index
        return
    if isinstance(child, RefNode):
        _insert(child, idx, b, bodies)
        return
    # Occupied by another body: split until they separate.
    if cell.depth + 1 > MAX_DEPTH:
        raise RuntimeError("octree exceeded MAX_DEPTH; coincident bodies?")
    other = child
    sub = RefNode(center=child_center(cell.center, cell.half, o), half=cell.half / 2.0, depth=cell.depth + 1)
    cell.children[o] = sub
    _insert(sub, other, bodies[other], bodies)
    _insert(sub, idx, b, bodies)


def _summarize(cell: RefNode, bodies: Sequence[BodyState]) -> Tuple[float, Vec]:
    m = 0.0
    cx = cy = cz = 0.0
    for child in cell.children:
        if child is None:
            continue
        if isinstance(child, RefNode):
            cm, cc = _summarize(child, bodies)
        else:
            b = bodies[child]
            cm, cc = b.mass, b.pos
        m += cm
        cx += cm * cc[0]
        cy += cm * cc[1]
        cz += cm * cc[2]
    if m > 0.0:
        cell.mass = m
        cell.com = (cx / m, cy / m, cz / m)
    return cell.mass, cell.com


def reference_forces(
    bodies: Sequence[BodyState],
    theta: float = THETA,
    eps: float = EPS,
    box: Optional[Tuple[Vec, float]] = None,
) -> Tuple[List[Vec], List[int]]:
    """Sequential Barnes-Hut accelerations + per-body interaction counts.

    The traversal accepts a cell when its side (2*half) is smaller than
    ``theta`` times the distance to its center of mass -- the same
    multipole acceptance criterion the distributed application uses, in the
    same child order, so results agree bit-for-bit.
    """
    root = build_reference_tree(bodies, box)
    accs: List[Vec] = []
    counts: List[int] = []
    for idx, b in enumerate(bodies):
        ax = ay = az = 0.0
        n_inter = 0
        stack: List[object] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, RefNode):
                dx = node.com[0] - b.pos[0]
                dy = node.com[1] - b.pos[1]
                dz = node.com[2] - b.pos[2]
                dist = math.sqrt(dx * dx + dy * dy + dz * dz)
                if 2.0 * node.half < theta * dist:
                    fx, fy, fz = pairwise_force(b.pos, node.mass, node.com, eps)
                    ax += fx
                    ay += fy
                    az += fz
                    n_inter += 1
                else:
                    for child in reversed(node.children):
                        if child is not None:
                            stack.append(child)
            else:
                if node == idx:
                    continue
                ob = bodies[node]
                fx, fy, fz = pairwise_force(b.pos, ob.mass, ob.pos, eps)
                ax += fx
                ay += fy
                az += fz
                n_inter += 1
        accs.append((ax, ay, az))
        counts.append(n_inter)
    return accs, counts
