"""Distributed Barnes-Hut over DIVA global variables (paper Section 3.3).

The SPLASH-2 structure is reproduced: every body and every octree cell is a
global variable, and each simulated time-step runs six barrier-separated
phases:

1. **treebuild** -- processors load their bodies into the shared adaptive
   octree; per-cell locks guard concurrent modification (the root is the
   famous contention point: it "has to be read once for every body");
2. **com** -- upward pass computing each cell's center of mass and subtree
   cost (level-synchronized: each processor handles the cells it created);
3. **partition** -- costzones: the total work (stored in the tree) is cut
   into ``P`` equal zones along the tree's in-order; processor zones follow
   the decomposition-tree leaf numbering, translating physical locality
   into topological locality on the mesh;
4. **force** -- per owned body, a partial tree traversal with the opening
   criterion (a cell is accepted when its side is smaller than ``theta``
   times the distance to its center of mass); by far the dominant phase;
5. **update** -- advance positions/velocities, write bodies back (storing
   the interaction count as the body's cost for the next partition);
6. **bbox** -- global bounding-box reduction for the next step's root cell.

The paper simulates 7 steps and measures the last 5 ("execution times ...
are already relatively stable after the simulation of the first two
steps"); ``warm`` controls that window here (traffic and phase accounting
reset at the boundary barrier).

Deviations from SPLASH documented in DESIGN.md: the upward pass is
level-synchronized with barriers (SPLASH uses per-cell child counters),
and the bounding box is reduced through per-processor variables combined
by rank 0 (SPLASH uses a global reduction) -- both preserve the sharing
pattern the data-management strategies react to.

Verification: the evolved body positions are compared against the
sequential reference (:mod:`repro.apps.barneshut.octree`); tree shape,
traversal order and accumulation order are identical by construction, so
agreement is to float precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ...core.decomposition import build_tree
from ...core.strategy import DataManagementStrategy
from ...network.machine import GCEL, MachineModel
from ...network.mesh import Mesh2D
from ...runtime.api import Env
from ...runtime.launcher import Runtime
from ...runtime.results import RunResult
from .octree import MAX_DEPTH, bounding_cube, child_center, octant, reference_forces
from .physics import DT, EPS, THETA, BodyState, advance, pairwise_force, plummer

__all__ = ["run", "Cell", "BODY_BYTES", "CELL_BYTES", "PHASES", "INTERACTION_OPS"]

#: Wire sizes of the two kinds of global variables (paper-scale records).
BODY_BYTES = 64
CELL_BYTES = 96

#: Work charged per body-body/body-cell interaction (transputer-scale
#: gravity kernel: ~60 integer-op equivalents).
INTERACTION_OPS = 60.0

PHASES = ("treebuild", "com", "partition", "force", "update", "bbox")

Vec = Tuple[float, float, float]


@dataclass(frozen=True)
class Cell:
    """Value of a cell variable.  ``children`` entries are ``None``,
    ``("b", body_vid)`` or ``("c", cell_vid)``; ``child_costs`` mirrors
    ``children`` with the work of each subtree/body so that the costzones
    traversal can prune without touching the bodies themselves."""

    center: Vec
    half: float
    depth: int
    children: Tuple[Optional[Tuple[str, int]], ...] = (None,) * 8
    mass: float = 0.0
    com: Vec = (0.0, 0.0, 0.0)
    cost: float = 0.0
    child_costs: Tuple[float, ...] = (0.0,) * 8


def run(
    mesh: Mesh2D,
    strategy: DataManagementStrategy,
    n_bodies: int,
    *,
    steps: int = 4,
    warm: int = 1,
    theta: float = THETA,
    dt: float = DT,
    eps: float = EPS,
    machine: MachineModel = GCEL,
    charge_compute: bool = True,
    interaction_ops: float = INTERACTION_OPS,
    verify: bool = False,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """Run the Barnes-Hut simulation; measurement starts after ``warm``
    steps, so ``steps - warm`` time-steps are measured (the paper's
    5-of-7 methodology)."""
    if not (0 <= warm < steps):
        raise ValueError(f"need 0 <= warm < steps, got warm={warm}, steps={steps}")
    if n_bodies < 2:
        raise ValueError("need at least two bodies")
    p = mesh.n_nodes
    bodies0 = plummer(n_bodies, seed)
    owner0: List[List[int]] = [[] for _ in range(p)]
    for gid in range(n_bodies):
        owner0[gid % p].append(gid)
    inorder = build_tree(mesh, stride=1, terminal=1).procs_inorder()
    zone_index = {proc: r for r, proc in enumerate(inorder)}

    shared: Dict[str, object] = {
        "body_vid": {},  # gid -> variable id
        "gid_of": {},  # variable id -> gid
        "minmax_vids": {},  # rank -> variable id
        "depth_vids": {},  # rank -> variable id
    }
    final_bodies: Dict[int, BodyState] = {}
    interactions_by_step: List[int] = [0] * steps
    claims_per_step: List[int] = [0] * steps

    def program(env: Env):
        rank = env.rank
        registry = env._rt.registry
        my_zone = zone_index[rank]

        # ---------------------------------------------------------- setup
        for gid in owner0[rank]:
            var = env.create(f"body{gid}", BODY_BYTES, value=bodies0[gid])
            shared["body_vid"][gid] = var.vid
            shared["gid_of"][var.vid] = gid
        minmax_var = env.create(f"minmax{rank}", 48, value=None)
        shared["minmax_vids"][rank] = minmax_var.vid
        depth_var = env.create(f"depth{rank}", 8, value=0)
        shared["depth_vids"][rank] = depth_var.vid
        if rank == 0:
            shared["box_vid"] = env.create("bbox", 32, value=None).vid
            shared["gmax_vid"] = env.create("gmax", 8, value=0).vid

        my_states: Dict[int, BodyState] = {gid: bodies0[gid] for gid in owner0[rank]}
        my_bodies: List[int] = list(owner0[rank])
        yield from _bbox_phase(env, shared, my_states, minmax_var)

        # ------------------------------------------------------ time steps
        for step in range(steps):
            yield from env.barrier(phase="treebuild", reset=(step == warm))

            # -- phase 1: tree construction --------------------------------
            owned_cells: List[Tuple[object, int]] = []  # (cell var, depth)
            if rank == 0:
                box = yield from env.read(registry.by_id(shared["box_vid"]))
                root = env.create(
                    f"root@{step}", CELL_BYTES, value=Cell(center=box[0], half=box[1], depth=0)
                )
                owned_cells.append((root, 0))
                shared["root_vid"] = root.vid
            yield from env.barrier()
            root_var = registry.by_id(shared["root_vid"])

            for gid in my_bodies:
                created = yield from _insert_body(
                    env, registry, shared, root_var, gid, my_states[gid].pos, step
                )
                owned_cells.extend(created)
            yield from env.compute(ops=20.0 * len(my_bodies))

            # -- phase 2: centers of mass (level-synchronized upward pass) -
            yield from env.barrier(phase="com")
            my_max_depth = max((d for _, d in owned_cells), default=0)
            yield from env.write(depth_var, my_max_depth)
            yield from env.barrier()
            if rank == 0:
                gmax = 0
                for r in range(env.nprocs):
                    d = yield from env.read(registry.by_id(shared["depth_vids"][r]))
                    if d > gmax:
                        gmax = d
                yield from env.write(registry.by_id(shared["gmax_vid"]), gmax)
            yield from env.barrier()
            gmax = yield from env.read(registry.by_id(shared["gmax_vid"]))

            by_level: Dict[int, List[object]] = {}
            for var, d in owned_cells:
                by_level.setdefault(d, []).append(var)
            for level in range(gmax, -1, -1):
                for var in by_level.get(level, ()):
                    yield from _summarize_cell(env, registry, var)
                yield from env.barrier()

            # -- phase 3: costzones partition ------------------------------
            yield from env.barrier(phase="partition")
            root_cell = yield from env.read(root_var)
            total = root_cell.cost
            lo = my_zone * total / env.nprocs
            hi = (my_zone + 1) * total / env.nprocs
            my_bodies = yield from _costzones(env, registry, shared, root_cell, lo, hi)
            claims_per_step[step] += len(my_bodies)
            yield from env.compute(ops=5.0 * len(my_bodies))

            # -- phase 4: force computation --------------------------------
            yield from env.barrier(phase="force")
            results: List[Tuple[int, BodyState, Vec, int]] = []
            for gid in my_bodies:
                bvar = registry.by_id(shared["body_vid"][gid])
                state = yield from env.read(bvar)
                acc, n_inter = yield from _force_on(
                    env, registry, shared, root_var, gid, state, theta, eps
                )
                results.append((gid, state, acc, n_inter))
                yield from env.compute(ops=interaction_ops * n_inter)
            interactions_by_step[step] += sum(r[3] for r in results)

            # -- phase 5: position update ----------------------------------
            yield from env.barrier(phase="update")
            my_states = {}
            for gid, state, acc, n_inter in results:
                new_state = advance(state, acc, dt, work=float(max(1, n_inter)))
                my_states[gid] = new_state
                yield from env.write(registry.by_id(shared["body_vid"][gid]), new_state)
            yield from env.compute(ops=12.0 * len(my_bodies))

            # -- phase 6: bounding box for the next step -------------------
            yield from _bbox_phase(env, shared, my_states, minmax_var)

        yield from env.barrier(phase="done")
        final_bodies.update(my_states)

    rt = Runtime(mesh, strategy, machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    for step, claimed in enumerate(claims_per_step):
        if claimed != n_bodies:
            raise AssertionError(
                f"costzones step {step}: {claimed} bodies claimed, expected {n_bodies} "
                "(zones must tile the body set exactly)"
            )
    result.extra["runtime"] = rt
    result.extra["app"] = "barneshut"
    result.extra["n_bodies"] = n_bodies
    result.extra["steps"] = steps
    result.extra["warm"] = warm
    result.extra["interactions_by_step"] = interactions_by_step
    result.extra["final_bodies"] = [final_bodies[g] for g in range(n_bodies)]

    if verify:
        ref = list(bodies0)
        for _ in range(steps):
            box = bounding_cube([b.pos for b in ref])
            accs, counts = reference_forces(ref, theta=theta, eps=eps, box=box)
            ref = [advance(b, a, dt, work=float(max(1, c))) for b, a, c in zip(ref, accs, counts)]
        for gid in range(n_bodies):
            got = final_bodies[gid].pos
            want = ref[gid].pos
            err = max(abs(got[k] - want[k]) for k in range(3))
            if err > 1e-9:
                raise AssertionError(f"body {gid} diverged from the reference by {err}")
        result.extra["verified"] = True
    return result


# ------------------------------------------------------------------ helpers
def _bbox_phase(env: Env, shared, my_states: Dict[int, BodyState], minmax_var):
    """Phase 6 (also the initial reduction): every processor writes its
    local min/max; rank 0 combines them into the global box variable."""
    yield from env.barrier(phase="bbox")
    if my_states:
        xs = [b.pos[0] for b in my_states.values()]
        ys = [b.pos[1] for b in my_states.values()]
        zs = [b.pos[2] for b in my_states.values()]
        local = ((min(xs), min(ys), min(zs)), (max(xs), max(ys), max(zs)))
    else:
        inf = float("inf")
        local = ((inf, inf, inf), (-inf, -inf, -inf))
    yield from env.write(minmax_var, local)
    yield from env.compute(ops=6.0 * len(my_states))
    yield from env.barrier()
    if env.rank == 0:
        registry = env._rt.registry
        inf = float("inf")
        lo = [inf, inf, inf]
        hi = [-inf, -inf, -inf]
        for r in range(env.nprocs):
            mm = yield from env.read(registry.by_id(shared["minmax_vids"][r]))
            for k in range(3):
                if mm[0][k] < lo[k]:
                    lo[k] = mm[0][k]
                if mm[1][k] > hi[k]:
                    hi[k] = mm[1][k]
        center = ((lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0)
        half = max(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]) / 2.0
        half = half * 1.0001 + 1e-9
        yield from env.write(registry.by_id(shared["box_vid"]), (center, half))
    yield from env.barrier()


def _insert_body(env: Env, registry, shared, root_var, gid: int, pos: Vec, step: int):
    """Phase-1 insertion of one body; returns the cells created (with their
    depths) so the caller can claim ownership for the upward pass."""
    created: List[Tuple[object, int]] = []
    my_vid = shared["body_vid"][gid]
    cur = root_var
    while True:
        cell = yield from env.read(cur)
        o = octant(cell.center, pos)
        ref = cell.children[o]
        if ref is not None and ref[0] == "c":
            cur = registry.by_id(ref[1])
            continue
        # Empty slot or a body: modify this cell under its lock.
        yield from env.lock(cur)
        cell = yield from env.read(cur)  # re-read: may have changed meanwhile
        ref = cell.children[o]
        if ref is not None and ref[0] == "c":
            yield from env.unlock(cur)
            cur = registry.by_id(ref[1])
            continue
        if ref is None:
            children = list(cell.children)
            children[o] = ("b", my_vid)
            yield from env.write(cur, replace(cell, children=tuple(children)))
            yield from env.unlock(cur)
            return created
        # The slot holds another body: split into a chain of cells until the
        # two bodies separate (the adaptive refinement of the paper).
        other_vid = ref[1]
        other = yield from env.read(registry.by_id(other_vid))
        sub_center = child_center(cell.center, cell.half, o)
        sub_half = cell.half / 2.0
        depth = cell.depth + 1
        chain: List[Tuple[Vec, float, int, int]] = []
        while octant(sub_center, other.pos) == octant(sub_center, pos):
            if depth > MAX_DEPTH:
                raise RuntimeError("octree exceeded MAX_DEPTH; coincident bodies?")
            oo = octant(sub_center, pos)
            chain.append((sub_center, sub_half, depth, oo))
            sub_center = child_center(sub_center, sub_half, oo)
            sub_half /= 2.0
            depth += 1
        deep_children: List[Optional[Tuple[str, int]]] = [None] * 8
        deep_children[octant(sub_center, other.pos)] = ("b", other_vid)
        deep_children[octant(sub_center, pos)] = ("b", my_vid)
        deep = env.create(
            f"cell@{step}.{env.rank}.{gid}.{depth}",
            CELL_BYTES,
            value=Cell(center=sub_center, half=sub_half, depth=depth, children=tuple(deep_children)),
        )
        created.append((deep, depth))
        link: Tuple[str, int] = ("c", deep.vid)
        for c_center, c_half, c_depth, oo in reversed(chain):
            kids: List[Optional[Tuple[str, int]]] = [None] * 8
            kids[oo] = link
            cv = env.create(
                f"cell@{step}.{env.rank}.{gid}.{c_depth}",
                CELL_BYTES,
                value=Cell(center=c_center, half=c_half, depth=c_depth, children=tuple(kids)),
            )
            created.append((cv, c_depth))
            link = ("c", cv.vid)
        children = list(cell.children)
        children[o] = link
        yield from env.write(cur, replace(cell, children=tuple(children)))
        yield from env.unlock(cur)
        yield from env.compute(ops=30.0 * (1 + len(chain)))
        return created


def _summarize_cell(env: Env, registry, var):
    """Phase-2 work for one owned cell: combine children into mass, center
    of mass and subtree cost (child order 0..7, matching the reference)."""
    cell = yield from env.read(var)
    m = 0.0
    cx = cy = cz = 0.0
    costs = [0.0] * 8
    for o, ref in enumerate(cell.children):
        if ref is None:
            continue
        if ref[0] == "b":
            b = yield from env.read(registry.by_id(ref[1]))
            cm, cc, cost = b.mass, b.pos, b.work
        else:
            sub = yield from env.read(registry.by_id(ref[1]))
            cm, cc, cost = sub.mass, sub.com, sub.cost
        m += cm
        cx += cm * cc[0]
        cy += cm * cc[1]
        cz += cm * cc[2]
        costs[o] = cost
    com = (cx / m, cy / m, cz / m) if m > 0.0 else (0.0, 0.0, 0.0)
    yield from env.write(
        var, replace(cell, mass=m, com=com, cost=sum(costs), child_costs=tuple(costs))
    )
    yield from env.compute(ops=40.0)


def _costzones(env: Env, registry, shared, root_cell, lo: float, hi: float):
    """Phase-3 zone claim: in-order walk over the tree's cost prefix,
    descending only into subtrees overlapping ``[lo, hi)``.  A body is
    claimed when its cost offset falls inside the zone, so the zones tile
    the body set exactly."""
    claimed: List[int] = []
    work: List[Tuple[Tuple[str, int], float]] = []

    def expand(cell, base: float) -> List[Tuple[Tuple[str, int], float]]:
        out = []
        off = base
        for o, ref in enumerate(cell.children):
            cost = cell.child_costs[o]
            if ref is not None:
                if off < hi and off + cost > lo:
                    out.append((ref, off))
                off += cost
        return out

    work.extend(reversed(expand(root_cell, 0.0)))
    while work:
        ref, base = work.pop()
        if ref[0] == "b":
            if lo <= base < hi:
                claimed.append(shared["gid_of"][ref[1]])
            continue
        cell = yield from env.read(registry.by_id(ref[1]))
        work.extend(reversed(expand(cell, base)))
    return claimed


def _force_on(env: Env, registry, shared, root_var, gid: int, state: BodyState, theta: float, eps: float):
    """Phase-4 traversal for one body: same acceptance rule, child order and
    accumulation order as the sequential reference, so forces agree to
    float precision."""
    pos = state.pos
    my_vid = shared["body_vid"][gid]
    ax = ay = az = 0.0
    n_inter = 0
    stack: List[Tuple[str, int]] = [("c", root_var.vid)]
    while stack:
        kind, vid = stack.pop()
        if kind == "c":
            cell = yield from env.read(registry.by_id(vid))
            dx = cell.com[0] - pos[0]
            dy = cell.com[1] - pos[1]
            dz = cell.com[2] - pos[2]
            dist = math.sqrt(dx * dx + dy * dy + dz * dz)
            if 2.0 * cell.half < theta * dist:
                fx, fy, fz = pairwise_force(pos, cell.mass, cell.com, eps)
                ax += fx
                ay += fy
                az += fz
                n_inter += 1
            else:
                for ref in reversed(cell.children):
                    if ref is not None:
                        stack.append(ref)
        else:
            if vid == my_vid:
                continue
            b = yield from env.read(registry.by_id(vid))
            fx, fy, fz = pairwise_force(pos, b.mass, b.pos, eps)
            ax += fx
            ay += fy
            az += fz
            n_inter += 1
    return (ax, ay, az), n_inter
