"""N-body physics substrate: Plummer model, force kernel, integration.

The paper adapts the SPLASH-2 Barnes-Hut application, which simulates a
Plummer sphere.  We generate the same kind of initial condition with the
classical Aarseth/Henon/Wielen recipe (deterministic under a seed), use a
softened gravitational kernel, and integrate with the simple symplectic
(leapfrog-style) scheme SPLASH uses.

Units: G = 1, total mass = 1, virial-ish scaling.  All per-body state is
kept in plain tuples/floats -- for the traversal-heavy simulation this is
substantially faster than 3-element numpy arrays.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Tuple

__all__ = [
    "BodyState",
    "plummer",
    "pairwise_force",
    "advance",
    "total_energy",
    "DT",
    "EPS",
    "THETA",
]

Vec = Tuple[float, float, float]

#: SPLASH-2-style defaults.
DT = 0.025
EPS = 0.05
THETA = 1.0


@dataclass(frozen=True)
class BodyState:
    """One body: mass, position, velocity and the work (interaction) count
    of the previous force phase (used by costzones load balancing)."""

    mass: float
    pos: Vec
    vel: Vec
    work: float = 1.0

    def moved(self, pos: Vec, vel: Vec, work: float) -> "BodyState":
        return replace(self, pos=pos, vel=vel, work=work)


def plummer(n: int, seed: int = 0) -> List[BodyState]:
    """Deterministic Plummer sphere with ``n`` equal-mass bodies.

    Radii follow the Plummer cumulative mass profile; velocities are drawn
    with the classic rejection sampling against the local escape speed
    (Aarseth, Henon & Wielen 1974).  A 99%-mass radius cutoff avoids
    extreme outliers, as in most published implementations.
    """
    if n < 1:
        raise ValueError("need at least one body")
    rng = random.Random(seed * 7_919 + 17)
    bodies: List[BodyState] = []
    mass = 1.0 / n
    scale = 16.0 / (3.0 * math.pi)  # standard virial scaling factor
    for _ in range(n):
        # Radius from inverse CDF, with mass-fraction cutoff at 99 %.
        m_frac = rng.uniform(1e-6, 0.999)
        r = 1.0 / math.sqrt(m_frac ** (-2.0 / 3.0) - 1.0)
        pos = _random_shell(rng, r / scale)
        # Velocity magnitude: rejection sample q in [0,1] with density
        # q^2 (1-q^2)^3.5, then v = q * v_escape(r).
        while True:
            q = rng.uniform(0.0, 1.0)
            g = rng.uniform(0.0, 0.1)
            if g < q * q * (1.0 - q * q) ** 3.5:
                break
        v = q * math.sqrt(2.0) * (1.0 + r * r) ** (-0.25)
        vel = _random_shell(rng, v / math.sqrt(scale))
        bodies.append(BodyState(mass=mass, pos=pos, vel=vel))
    return _zero_momentum(bodies)


def _random_shell(rng: random.Random, radius: float) -> Vec:
    """Uniform point on the sphere of ``radius``."""
    while True:
        x = rng.uniform(-1.0, 1.0)
        y = rng.uniform(-1.0, 1.0)
        z = rng.uniform(-1.0, 1.0)
        r2 = x * x + y * y + z * z
        if 1e-10 < r2 <= 1.0:
            s = radius / math.sqrt(r2)
            return (x * s, y * s, z * s)


def _zero_momentum(bodies: List[BodyState]) -> List[BodyState]:
    """Shift to the center-of-mass frame (standard Plummer post-processing)."""
    m_tot = sum(b.mass for b in bodies)
    cx = sum(b.mass * b.pos[0] for b in bodies) / m_tot
    cy = sum(b.mass * b.pos[1] for b in bodies) / m_tot
    cz = sum(b.mass * b.pos[2] for b in bodies) / m_tot
    vx = sum(b.mass * b.vel[0] for b in bodies) / m_tot
    vy = sum(b.mass * b.vel[1] for b in bodies) / m_tot
    vz = sum(b.mass * b.vel[2] for b in bodies) / m_tot
    return [
        replace(
            b,
            pos=(b.pos[0] - cx, b.pos[1] - cy, b.pos[2] - cz),
            vel=(b.vel[0] - vx, b.vel[1] - vy, b.vel[2] - vz),
        )
        for b in bodies
    ]


def pairwise_force(pos: Vec, src_mass: float, src_pos: Vec, eps: float = EPS) -> Vec:
    """Softened gravitational acceleration exerted on a body at ``pos`` by a
    point mass (body or cell center-of-mass) at ``src_pos``."""
    dx = src_pos[0] - pos[0]
    dy = src_pos[1] - pos[1]
    dz = src_pos[2] - pos[2]
    r2 = dx * dx + dy * dy + dz * dz + eps * eps
    inv = src_mass / (r2 * math.sqrt(r2))
    return (dx * inv, dy * inv, dz * inv)


def advance(body: BodyState, acc: Vec, dt: float = DT, work: float = 1.0) -> BodyState:
    """Kick-drift update (SPLASH's simple symplectic integrator)."""
    vel = (body.vel[0] + acc[0] * dt, body.vel[1] + acc[1] * dt, body.vel[2] + acc[2] * dt)
    pos = (body.pos[0] + vel[0] * dt, body.pos[1] + vel[1] * dt, body.pos[2] + vel[2] * dt)
    return body.moved(pos, vel, work)


def total_energy(bodies: List[BodyState], eps: float = EPS) -> float:
    """Exact (O(n^2)) total energy; for conservation sanity tests."""
    kin = 0.5 * sum(b.mass * (b.vel[0] ** 2 + b.vel[1] ** 2 + b.vel[2] ** 2) for b in bodies)
    pot = 0.0
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi.pos[0] - bj.pos[0]
            dy = bi.pos[1] - bj.pos[1]
            dz = bi.pos[2] - bj.pos[2]
            pot -= bi.mass * bj.mass / math.sqrt(dx * dx + dy * dy + dz * dz + eps * eps)
    return kin + pot
