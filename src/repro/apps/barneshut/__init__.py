"""Barnes-Hut N-body simulation over the DIVA runtime (SPLASH-2 adapted)."""

from .app import BODY_BYTES, CELL_BYTES, INTERACTION_OPS, PHASES, Cell, run
from .octree import bounding_cube, build_reference_tree, reference_forces
from .physics import DT, EPS, THETA, BodyState, advance, plummer, total_energy

__all__ = [
    "run",
    "Cell",
    "PHASES",
    "BODY_BYTES",
    "CELL_BYTES",
    "INTERACTION_OPS",
    "BodyState",
    "plummer",
    "advance",
    "total_energy",
    "DT",
    "EPS",
    "THETA",
    "bounding_cube",
    "build_reference_tree",
    "reference_forces",
]
