"""Matrix multiplication (matrix squaring), the paper's Section 3.1.

The application computes the matrix square ``A := A * A`` -- chosen by the
paper over general multiplication because squaring forces the dynamic
strategies to *invalidate* copies (the write phase overwrites blocks that
were replicated during the read phase).

Setup (paper notation): the mesh is ``sqrtP x sqrtP``; the ``n x n`` matrix
is partitioned into ``P`` square blocks ``A[i,j]`` of ``m = n^2/P`` entries;
processor ``p_{i,j}`` owns block ``A[i,j]`` (the only copy of the block's
global variable starts in its cache) and computes
``A[i,j] := sum_k A[i,k] * A[k,j]``.

The parallel program: each processor zeroes a local accumulator ``H``, then
runs a **read phase** of ``sqrtP`` steps -- in step ``k0`` it reads
``A[i,k]`` and ``A[k,j]`` with the *staggered* index
``k = (k0 + i + j) mod sqrtP`` (at most two processors read the same block
in the same step) and accumulates ``A[i,k] @ A[k,j]`` -- a barrier, and a
**write phase** writing ``H`` into ``A[i,j]``.  Copies end up exactly as
they started, so the algorithm measures as if applied repeatedly for a
higher matrix power.

The hand-optimized baseline broadcasts every block along its row and its
column through neighbour-to-neighbour pipelining (four directed pipelines
per processor), achieving minimal total load *and* minimal congestion
``m * sqrtP`` entries; it then multiplies locally.

Communication time is measured by disabling local-computation charging
(``charge_compute=False``), exactly the paper's methodology ("we have
simply removed the code for local computations").
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from ..core.strategy import DataManagementStrategy, NullStrategy
from ..network.machine import GCEL, MachineModel
from ..network.mesh import Mesh2D
from ..runtime.api import Env
from ..runtime.launcher import Runtime
from ..runtime.results import RunResult

__all__ = [
    "run_diva",
    "run_diva_general",
    "run_handopt",
    "make_blocks",
    "expected_square",
    "block_multiply_ops",
]


def _side(mesh: Mesh2D) -> int:
    if mesh.rows != mesh.cols:
        raise ValueError(f"matrix multiplication requires a square mesh, got {mesh.rows}x{mesh.cols}")
    return mesh.rows


def make_blocks(mesh: Mesh2D, block_entries: int, seed: int = 0) -> Dict[Tuple[int, int], np.ndarray]:
    """Deterministic integer blocks ``A[i,j]`` (values small enough that the
    square stays well inside int64)."""
    q = _side(mesh)
    s = math.isqrt(block_entries)
    if s * s != block_entries:
        raise ValueError(f"block_entries must be a perfect square, got {block_entries}")
    blocks = {}
    for i in range(q):
        for j in range(q):
            rng = np.random.default_rng(seed * 1_000_003 + i * q + j)
            blocks[(i, j)] = rng.integers(0, 100, size=(s, s), dtype=np.int64)
    return blocks


def expected_square(mesh: Mesh2D, blocks: Dict[Tuple[int, int], np.ndarray]) -> Dict[Tuple[int, int], np.ndarray]:
    """Reference result: the blocked square computed with numpy."""
    q = _side(mesh)
    out = {}
    for i in range(q):
        for j in range(q):
            s = blocks[(0, 0)].shape[0]
            acc = np.zeros((s, s), dtype=np.int64)
            for k in range(q):
                acc += blocks[(i, k)] @ blocks[(k, j)]
            out[(i, j)] = acc
    return out


def block_multiply_ops(block_entries: int) -> float:
    """Elementary operations charged for one block-block multiply-add:
    ``s^3`` multiplications + ``s^3`` additions for ``s = sqrt(m)``."""
    s = math.isqrt(block_entries)
    return 2.0 * s**3


# ---------------------------------------------------------------- DIVA runs
def run_diva(
    mesh: Mesh2D,
    strategy: DataManagementStrategy,
    block_entries: int = 256,
    *,
    machine: MachineModel = GCEL,
    charge_compute: bool = False,
    verify: bool = True,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """Run the DIVA (shared-variable) matrix square under ``strategy``."""
    q = _side(mesh)
    blocks = make_blocks(mesh, block_entries, seed)
    payload = block_entries * machine.word_bytes
    handles: Dict[Tuple[int, int], object] = {}
    mul_ops = block_multiply_ops(block_entries)

    def program(env: Env):
        i, j = env.coord
        handles[(i, j)] = env.create(f"A[{i},{j}]", payload, value=blocks[(i, j)])
        yield from env.barrier(phase="read")
        s = math.isqrt(block_entries)
        h = np.zeros((s, s), dtype=np.int64)
        for k0 in range(q):
            k = (k0 + i + j) % q
            a = yield from env.read(handles[(i, k)])
            b = yield from env.read(handles[(k, j)])
            h = h + a @ b
            yield from env.compute(ops=mul_ops)
        yield from env.barrier(phase="write")
        yield from env.write(handles[(i, j)], h)
        yield from env.barrier(phase="done")

    rt = Runtime(mesh, strategy, machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "matmul"
    result.extra["block_entries"] = block_entries
    if verify:
        expect = expected_square(mesh, blocks)
        ok = all(
            np.array_equal(rt.registry.get(handles[(i, j)]), expect[(i, j)])
            for i in range(q)
            for j in range(q)
        )
        if not ok:
            raise AssertionError("matrix square verification failed")
        result.extra["verified"] = True
    return result


def run_diva_general(
    mesh: Mesh2D,
    strategy: DataManagementStrategy,
    block_entries: int = 256,
    *,
    machine: MachineModel = GCEL,
    charge_compute: bool = False,
    verify: bool = True,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """General matrix multiplication ``C := A * B``.

    The paper deliberately evaluates the matrix *square* instead, "because
    the matrix square requires the data management strategy to create and
    invalidate copies ... whereas the general matrix multiplication does
    not require the invalidation of copies."  This variant implements the
    contrast: ``A`` and ``B`` are only read, the result goes to fresh ``C``
    variables, so the write phase triggers no invalidations at all -- an
    ablation for how much of the dynamic strategies' overhead is
    consistency maintenance.
    """
    q = _side(mesh)
    a_blocks = make_blocks(mesh, block_entries, seed)
    b_blocks = make_blocks(mesh, block_entries, seed + 104729)
    payload = block_entries * machine.word_bytes
    a_handles: Dict[Tuple[int, int], object] = {}
    b_handles: Dict[Tuple[int, int], object] = {}
    c_handles: Dict[Tuple[int, int], object] = {}
    mul_ops = block_multiply_ops(block_entries)

    def program(env: Env):
        i, j = env.coord
        a_handles[(i, j)] = env.create(f"A[{i},{j}]", payload, value=a_blocks[(i, j)])
        b_handles[(i, j)] = env.create(f"B[{i},{j}]", payload, value=b_blocks[(i, j)])
        c_handles[(i, j)] = env.create(f"C[{i},{j}]", payload, value=None)
        yield from env.barrier(phase="read")
        s = math.isqrt(block_entries)
        h = np.zeros((s, s), dtype=np.int64)
        for k0 in range(q):
            k = (k0 + i + j) % q
            a = yield from env.read(a_handles[(i, k)])
            b = yield from env.read(b_handles[(k, j)])
            h = h + a @ b
            yield from env.compute(ops=mul_ops)
        yield from env.barrier(phase="write")
        yield from env.write(c_handles[(i, j)], h)
        yield from env.barrier(phase="done")

    rt = Runtime(mesh, strategy, machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "matmul-general"
    result.extra["block_entries"] = block_entries
    if verify:
        s = math.isqrt(block_entries)
        ok = True
        for i in range(q):
            for j in range(q):
                acc = np.zeros((s, s), dtype=np.int64)
                for k in range(q):
                    acc += a_blocks[(i, k)] @ b_blocks[(k, j)]
                if not np.array_equal(rt.registry.get(c_handles[(i, j)]), acc):
                    ok = False
        if not ok:
            raise AssertionError("general matrix multiplication verification failed")
        result.extra["verified"] = True
    return result


# ---------------------------------------------------- hand-optimized runs
def run_handopt(
    mesh: Mesh2D,
    block_entries: int = 256,
    *,
    machine: MachineModel = GCEL,
    charge_compute: bool = False,
    verify: bool = True,
    seed: int = 0,
    **runtime_kwargs,
) -> RunResult:
    """Run the hand-optimized message-passing matrix square.

    Every processor injects its block into four neighbour pipelines (east,
    west, south, north); a processor receiving a block stores it and
    forwards it onward unless it sits at the end of the row/column.  Tags
    carry the direction; FIFO link order keeps origins sequential, and the
    hop-distance from the origin identifies each received block.
    """
    q = _side(mesh)
    blocks = make_blocks(mesh, block_entries, seed)
    payload = block_entries * machine.word_bytes
    mul_ops = block_multiply_ops(block_entries)
    results: Dict[Tuple[int, int], np.ndarray] = {}

    def program(env: Env):
        i, j = env.coord
        mine = blocks[(i, j)]
        yield from env.barrier(phase="distribute")

        # (direction tag, dx, dy): receive count along each incoming pipe.
        row: Dict[int, np.ndarray] = {j: mine}
        col: Dict[int, np.ndarray] = {i: mine}

        # Inject own block into the four pipelines.
        if j + 1 < q:
            yield from env.send(env.mesh.node(i, j + 1), (j, mine), payload, tag="E")
        if j - 1 >= 0:
            yield from env.send(env.mesh.node(i, j - 1), (j, mine), payload, tag="W")
        if i + 1 < q:
            yield from env.send(env.mesh.node(i + 1, j), (i, mine), payload, tag="S")
        if i - 1 >= 0:
            yield from env.send(env.mesh.node(i - 1, j), (i, mine), payload, tag="N")

        # Receive & forward: j blocks arrive from the west (origins < j),
        # q-1-j from the east, and the column analogues.
        for _ in range(j):
            origin, blk = yield from env.recv(tag="E")
            row[origin] = blk
            if j + 1 < q:
                yield from env.send(env.mesh.node(i, j + 1), (origin, blk), payload, tag="E")
        for _ in range(q - 1 - j):
            origin, blk = yield from env.recv(tag="W")
            row[origin] = blk
            if j - 1 >= 0:
                yield from env.send(env.mesh.node(i, j - 1), (origin, blk), payload, tag="W")
        for _ in range(i):
            origin, blk = yield from env.recv(tag="S")
            col[origin] = blk
            if i + 1 < q:
                yield from env.send(env.mesh.node(i + 1, j), (origin, blk), payload, tag="S")
        for _ in range(q - 1 - i):
            origin, blk = yield from env.recv(tag="N")
            col[origin] = blk
            if i - 1 >= 0:
                yield from env.send(env.mesh.node(i - 1, j), (origin, blk), payload, tag="N")

        yield from env.barrier(phase="compute")
        s = math.isqrt(block_entries)
        h = np.zeros((s, s), dtype=np.int64)
        for k in range(q):
            h = h + row[k] @ col[k]
            yield from env.compute(ops=mul_ops)
        results[(i, j)] = h
        yield from env.barrier(phase="done")

    rt = Runtime(mesh, NullStrategy(), machine, charge_compute=charge_compute, seed=seed, **runtime_kwargs)
    result = rt.run(program)
    result.extra["runtime"] = rt
    result.extra["app"] = "matmul-handopt"
    result.extra["block_entries"] = block_entries
    if verify:
        expect = expected_square(mesh, blocks)
        ok = all(np.array_equal(results[(i, j)], expect[(i, j)]) for i in range(q) for j in range(q))
        if not ok:
            raise AssertionError("hand-optimized matrix square verification failed")
        result.extra["verified"] = True
    return result
