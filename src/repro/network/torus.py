"""2-D torus topology: the mesh plus wraparound links.

A ``rows x cols`` torus is the mesh of :class:`repro.network.mesh.Mesh2D`
with every row and every column closed into a ring.  Node numbering, grid
coordinates and the directed-link ids of all *interior* wires are inherited
unchanged from the mesh; the wraparound wires get fresh dense ids appended
after the mesh block, so mesh-trained tooling (heatmaps, link tables,
cached routes) keeps working and torus-specific state is purely additive.

Directed link id layout (``M`` = number of mesh link ids)::

    [0, M)               : the mesh's interior links, unchanged
    [M,        M +   R)  : east wrap   (r, C-1) -> (r, 0)
    [M +   R,  M + 2*R)  : west wrap   (r, 0)   -> (r, C-1)
    [M + 2*R,  M + 2*R + C)    : south wrap (R-1, c) -> (0, c)
    [M + 2*R + C, M + 2*R + 2*C) : north wrap (0, c) -> (R-1, c)

Routing is shortest-wrap dimension-order: x-first like the mesh, but each
dimension independently travels the shorter way around its ring.  When the
direct way is strictly shorter the route coincides with the mesh's, link
for link; a tie at exactly half the ring is resolved east/south, which may
take the wrap where the mesh goes the direct way (same length).  A torus
route is therefore never longer than the mesh route between the same
endpoints -- one of the shared routing invariants the property tests pin
down.

Both sides must be at least 2.  On a side of exactly 2 the wrap wire
doubles an existing interior wire (two independent physical channels
between the same node pair), which is how small machine tori are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .mesh import Mesh2D

__all__ = ["Torus2D"]


@dataclass(frozen=True)
class Torus2D(Mesh2D):
    """A ``rows x cols`` torus (mesh with wraparound links).

    >>> t = Torus2D(4, 4)
    >>> t.n_links - Mesh2D(4, 4).n_links   # 2*R + 2*C wrap links
    16
    >>> t.distance(t.node(0, 0), t.node(0, 3))  # one wrap hop, not three
    1
    """

    kind = "torus"

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError(f"torus sides must be >= 2, got {self.rows}x{self.cols}")

    # ------------------------------------------------------------------ links
    @property
    def _mesh_links(self) -> int:
        """Number of inherited interior (mesh) link ids."""
        return 2 * (self.n_h_links_per_dir + self.n_v_links_per_dir)

    @property
    def n_links(self) -> int:
        return self._mesh_links + 2 * self.rows + 2 * self.cols

    def h_wrap(self, row: int, eastbound: bool) -> int:
        """Directed id of row ``row``'s wraparound wire; ``eastbound``
        selects the ``(row, cols-1) -> (row, 0)`` direction."""
        if not (0 <= row < self.rows):
            raise ValueError(f"no row {row} in {self.rows}x{self.cols} torus")
        base = self._mesh_links + row
        return base if eastbound else base + self.rows

    def v_wrap(self, col: int, southbound: bool) -> int:
        """Directed id of column ``col``'s wraparound wire; ``southbound``
        selects the ``(rows-1, col) -> (0, col)`` direction."""
        if not (0 <= col < self.cols):
            raise ValueError(f"no column {col} in {self.rows}x{self.cols} torus")
        base = self._mesh_links + 2 * self.rows + col
        return base if southbound else base + self.cols

    def link_endpoints(self, link: int) -> Tuple[int, int]:
        m = self._mesh_links
        if link < m:
            return super().link_endpoints(link)
        if not (0 <= link < self.n_links):
            raise ValueError(f"link {link} outside 0..{self.n_links - 1}")
        off = link - m
        if off < self.rows:  # east wrap
            return self.node(off, self.cols - 1), self.node(off, 0)
        off -= self.rows
        if off < self.rows:  # west wrap
            return self.node(off, 0), self.node(off, self.cols - 1)
        off -= self.rows
        if off < self.cols:  # south wrap
            return self.node(self.rows - 1, off), self.node(0, off)
        off -= self.cols  # north wrap
        return self.node(0, off), self.node(self.rows - 1, off)

    # ------------------------------------------------------------------ nodes
    def distance(self, a: int, b: int) -> int:
        """Wraparound Manhattan distance (per-axis shorter ring way)."""
        ra, ca = self.coord(a)
        rb, cb = self.coord(b)
        dr = abs(ra - rb)
        dc = abs(ca - cb)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def neighbors(self, node: int) -> List[int]:
        """Ring neighbours in E, W, S, N order (duplicates on side 2)."""
        r, c = self.coord(node)
        return [
            self.node(r, (c + 1) % self.cols),
            self.node(r, (c - 1) % self.cols),
            self.node((r + 1) % self.rows, c),
            self.node((r - 1) % self.rows, c),
        ]

    # ---------------------------------------------------------------- routing
    def _ring_steps(self, start: int, dist: int, size: int, positive: bool) -> List[int]:
        """Ring coordinates visited leaving ``start``: ``dist`` steps in the
        ``positive`` (east/south) or negative direction, start included."""
        step = 1 if positive else -1
        return [(start + i * step) % size for i in range(dist + 1)]

    def compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Shortest-wrap dimension-order path: x-first; per axis the
        strictly shorter ring way (then the route matches the mesh's) or,
        on a half-ring tie, east/south."""
        r1, c1 = self.coord(src)
        r2, c2 = self.coord(dst)
        links: List[int] = []
        # dimension 1: columns
        dc = (c2 - c1) % self.cols
        if dc:
            east = dc <= self.cols - dc
            dist = dc if east else self.cols - dc
            cs = self._ring_steps(c1, dist, self.cols, positive=east)
            for c, cn in zip(cs, cs[1:]):
                if east:
                    links.append(
                        self.h_link(r1, c, True) if c < self.cols - 1 else self.h_wrap(r1, True)
                    )
                else:
                    links.append(
                        self.h_link(r1, cn, False) if c > 0 else self.h_wrap(r1, False)
                    )
        # dimension 2: rows
        dr = (r2 - r1) % self.rows
        if dr:
            south = dr <= self.rows - dr
            dist = dr if south else self.rows - dr
            rs = self._ring_steps(r1, dist, self.rows, positive=south)
            for r, rn in zip(rs, rs[1:]):
                if south:
                    links.append(
                        self.v_link(r, c2, True) if r < self.rows - 1 else self.v_wrap(c2, True)
                    )
                else:
                    links.append(
                        self.v_link(rn, c2, False) if r > 0 else self.v_wrap(c2, False)
                    )
        return tuple(links)

    # --------------------------------------------------------------- metadata
    @property
    def label(self) -> str:
        return f"torus-{self.rows}x{self.cols}"

    @property
    def diameter(self) -> int:
        return self.rows // 2 + self.cols // 2

    @property
    def bisection_links(self) -> int:
        """Halving the longer dimension cuts its ring at two places."""
        return 4 * min(self.rows, self.cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus2D({self.rows}x{self.cols}, P={self.n_nodes})"
