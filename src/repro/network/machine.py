"""Machine cost model.

The simulator charges virtual time for three resources, mirroring the cost
structure the paper identifies on the Parsytec GCel:

* **link bandwidth** -- a message of ``s`` bytes occupies every link of its
  path for ``s / link_bandwidth`` seconds (the congestion effect);
* **startup cost** -- every message send and every receive occupies the
  processor's network interface.  The paper: "Any intermediate stop on a
  processor simulating an internal node of the access tree requires that
  this processor receives, inspects, and sends out a message.  The sending
  of a message by a processor is called a startup."  Startup cost grows
  with message size (copying/packetization), so "the startup cost [of
  messages including program data] are a lot larger than the startup cost
  for small control messages" -- we model it as
  ``nic_fixed_overhead + wire_bytes * nic_byte_overhead`` per send and per
  receive.  This is the cost that flat (high-arity) access trees reduce;
* **processor speed** -- local computation is charged as
  ``ops * int_op_time``.

GCel calibration (Section 3 of the paper):

* "We have measured a maximum link bandwidth of about 1 Mbyte/sec."
* "fairly large messages of about 1 Kbyte have to be transmitted to achieve
  this high bandwidth" -- the fixed per-message overhead is of the order of
  the transfer time of a few hundred bytes.
* "The processor speed is about 0.29 integer additions a micro sec."
  (measured on 4-byte integers, which also fixes ``word_bytes = 4``; the
  paper derives the link/processor speed ratio 0.86 from these numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineModel", "GCEL", "ZERO_COST"]


@dataclass(frozen=True)
class MachineModel:
    """Virtual-time cost parameters (seconds, bytes).

    Attributes
    ----------
    link_bandwidth:
        Bytes per second per directed link.
    nic_fixed_overhead:
        Fixed NIC occupancy per message operation (send or receive).
    nic_byte_overhead:
        Additional NIC occupancy per wire byte (copy/packetization cost) at
        each endpoint; this makes data startups "a lot larger" than control
        startups, as measured in the paper.
    hop_latency:
        Per-hop wormhole routing latency (small on the GCel).
    int_op_time:
        Seconds per integer (or comparable float) operation of local compute.
    word_bytes:
        Bytes per matrix entry / sort key (the paper uses 4-byte integers).
    ctrl_bytes:
        Wire size of a protocol control message (request, invalidation, ack,
        barrier/lock token).
    header_bytes:
        Per-message header added on top of a data payload.
    local_overhead:
        Cost of a message a node sends to itself (same-processor tree
        neighbours); essentially a function call in DIVA.
    """

    link_bandwidth: float = 1.0e6
    nic_fixed_overhead: float = 6.0e-5
    nic_byte_overhead: float = 1.0e-7
    hop_latency: float = 1.0e-5
    int_op_time: float = 1.0e-6 / 0.29
    word_bytes: int = 4
    ctrl_bytes: int = 32
    header_bytes: int = 16
    local_overhead: float = 2.0e-5

    def nic_overhead(self, wire_bytes: float) -> float:
        """NIC occupancy of one send (or one receive) of ``wire_bytes``."""
        return self.nic_fixed_overhead + wire_bytes * self.nic_byte_overhead

    def transfer_time(self, size_bytes: float) -> float:
        """Pure bandwidth term for one link crossing."""
        return size_bytes / self.link_bandwidth

    def compute_time(self, ops: float) -> float:
        """Local computation charge for ``ops`` elementary operations."""
        return ops * self.int_op_time

    def data_bytes(self, payload_bytes: int) -> int:
        """On-wire size of a data message carrying ``payload_bytes``."""
        return payload_bytes + self.header_bytes

    def with_(self, **kw) -> "MachineModel":
        """Return a copy with some parameters replaced (for ablations)."""
        return replace(self, **kw)


#: The Parsytec GCel model used throughout the paper's evaluation.
GCEL = MachineModel()

#: A zero-cost machine: every operation takes no virtual time.  Useful in
#: unit tests that only care about protocol correctness and traffic counts.
ZERO_COST = MachineModel(
    link_bandwidth=float("inf"),
    nic_fixed_overhead=0.0,
    nic_byte_overhead=0.0,
    hop_latency=0.0,
    int_op_time=0.0,
    local_overhead=0.0,
)
