"""Traffic statistics: per-link counters, congestion, startups, phases.

The paper's two measured quantities are

* **congestion** -- "the maximum amount of data that is transmitted by the
  same link during the execution of an application".  For the matrix and
  sorting experiments the unit is data volume (congestion "grows linear in
  the block size"); for the Barnes-Hut figures the unit is *messages*
  ("congestion in 10000 messages").  We therefore keep both a byte counter
  and a message counter per directed link.
* **startups** -- the number of message sends per processor (the paper:
  "The sending of a message by a processor is called a startup"), the second
  important cost factor identified by the experiments.

Phases: the Barnes-Hut evaluation breaks congestion and time down by
algorithm phase (Figures 9 and 10), and the matrix experiments measure the
communication time of specific call types.  :class:`LinkStats` supports
cheap snapshot/delta accounting so the runtime can attribute traffic to the
currently executing phase.

Implementation note: counters are fed through a **batched record path**.
The hot path (one :meth:`record` per message leg, millions per large run)
only appends to flat Python buffers -- no per-leg array indexing at all;
the buffers are folded into the accumulators with ``numpy.bincount``
whenever an aggregate is read (snapshot, checkpoint, render, or any
counter property).  Reads flush first, so every externally visible value
is exactly what the eager per-leg accounting used to produce: all byte
sizes are integers, whose float64 sums are exact regardless of
accumulation order, making snapshots and renders byte-identical to the
pre-batching implementation.

Dense vs sparse accumulators
----------------------------
Up to :data:`repro.network.routing.DENSE_NODE_LIMIT` nodes the per-link
accumulators are preallocated dense numpy arrays (one float64 + one int64
slot per directed link).  Above the limit -- the same threshold that
switches routing from the cached table to the algebraic router -- the
per-link counters are held **sparsely**: three parallel arrays (sorted
touched link ids, their byte sums, their message counts) that each fold
merges via ``numpy.unique``/``bincount``.  Aggregates (congestion,
totals, snapshots) read the sparse triple directly; only the explicit
dense views (:attr:`LinkStats.link_bytes` and friends, used by renders
and phase checkpoints) materialize an O(n_links) array on demand.
Because every fold is an order-exact integer sum, both representations
produce identical aggregates -- :meth:`LinkStats.merge_from` relies on
the same property to combine per-worker accumulators.

The C event kernel accumulates eagerly through raw array pointers, so
binding it (:meth:`LinkStats.bind_kernel`) densifies a sparse instance
first; at kernel speeds the O(n_links) arrays are the cheaper trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .routing import DENSE_NODE_LIMIT
from .topology import Topology

__all__ = ["LinkStats", "StatsSnapshot", "PhaseStats"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable summary of traffic between two points of a run."""

    congestion_bytes: float
    congestion_msgs: int
    total_bytes: float
    total_msgs: int
    max_startups: int
    total_startups: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class PhaseStats:
    """Traffic and time attributed to one named phase of an application."""

    name: str
    stats: StatsSnapshot
    time: float

    def as_dict(self) -> Dict[str, object]:
        d = self.stats.as_dict()
        d["name"] = self.name
        d["time"] = self.time
        return d


class LinkStats:
    """Mutable per-directed-link traffic counters for one simulation run.

    Message legs are recorded with :meth:`record`.  Local (same-processor)
    deliveries cross no link and contribute no congestion, but are counted
    separately so hit-ratio style statistics remain possible.
    """

    __slots__ = (
        "mesh",
        "topology",
        "_link_bytes",
        "_link_msgs",
        "_s_ids",
        "_s_bytes",
        "_s_msgs",
        "_startups",
        "_receives",
        "_total_msgs",
        "_data_msgs",
        "_local_msgs",
        "_pending",
        "_kern_lib",
        "_kern_h",
    )

    def __init__(self, topology: Topology, dense: Optional[bool] = None):
        # Historic attribute name: the stats object predates the topology
        # abstraction, and ``.mesh`` is part of its public surface.
        self.mesh = topology
        self.topology = topology
        n = topology.n_links
        p = topology.n_nodes
        if dense is None:
            dense = p <= DENSE_NODE_LIMIT
        if dense:
            self._link_bytes = np.zeros(n, dtype=np.float64)
            self._link_msgs = np.zeros(n, dtype=np.int64)
            self._s_ids = self._s_bytes = self._s_msgs = None
        else:
            # Sparse mode (large machines): per-link counters exist only
            # for links actually crossed -- three parallel arrays keyed by
            # sorted link id.  _flush() merges into them; the dense views
            # (link_bytes / link_msgs) materialize on demand.
            self._link_bytes = None
            self._link_msgs = None
            self._s_ids = np.empty(0, dtype=np.intp)
            self._s_bytes = np.empty(0, dtype=np.float64)
            self._s_msgs = np.empty(0, dtype=np.int64)
        self._startups = np.zeros(p, dtype=np.int64)  # message sends per proc
        self._receives = np.zeros(p, dtype=np.int64)
        self._total_msgs = 0
        self._data_msgs = 0
        self._local_msgs = 0
        # Batched record path: one (links, size, src, dst, is_data) tuple
        # per leg, folded into the arrays by _flush().  The simulator
        # appends to this buffer directly.
        self._pending: list = []
        # When the C event kernel is active it accumulates *eagerly* into
        # the arrays above (shared memory) and keeps the scalar message
        # counters on its side; see bind_kernel()/absorb_kernel().
        self._kern_lib = None
        self._kern_h = None

    # --------------------------------------------------------- representation
    @property
    def dense(self) -> bool:
        """Whether per-link counters are dense arrays (vs the sparse triple)."""
        return self._link_bytes is not None

    def _densify(self) -> None:
        """Switch a sparse instance to dense arrays permanently (required by
        the C kernel, which accumulates through raw array pointers)."""
        if self._link_bytes is not None:
            return
        self._flush()
        n = self.topology.n_links
        lb = np.zeros(n, dtype=np.float64)
        lm = np.zeros(n, dtype=np.int64)
        lb[self._s_ids] = self._s_bytes
        lm[self._s_ids] = self._s_msgs
        self._link_bytes = lb
        self._link_msgs = lm
        self._s_ids = self._s_bytes = self._s_msgs = None

    def _merge_sparse(self, ids: np.ndarray, byt: np.ndarray, msgs: np.ndarray) -> None:
        """Add ``(ids, bytes, msgs)`` -- ids sorted unique -- into the sparse
        triple.  Every sum is of integer-valued float64 / int64, so the
        result is independent of merge order (order-exact)."""
        if self._s_ids.size == 0:
            self._s_ids = ids.astype(np.intp, copy=True)
            self._s_bytes = byt.astype(np.float64, copy=True)
            self._s_msgs = msgs.astype(np.int64, copy=True)
            return
        union = np.union1d(self._s_ids, ids)
        nb = np.zeros(union.size, dtype=np.float64)
        nm = np.zeros(union.size, dtype=np.int64)
        pos = np.searchsorted(union, self._s_ids)
        nb[pos] = self._s_bytes
        nm[pos] = self._s_msgs
        pos = np.searchsorted(union, ids)
        nb[pos] += byt
        nm[pos] += msgs
        self._s_ids, self._s_bytes, self._s_msgs = union.astype(np.intp), nb, nm

    # ------------------------------------------------------- kernel binding
    def bind_kernel(self, lib, handle) -> None:
        """Attach the C kernel whose counters complement ours (the kernel
        writes the per-link/per-proc arrays directly via shared memory).
        Densifies a sparse instance first -- the kernel's eager per-leg
        accumulation needs real arrays to write into."""
        self._densify()
        self._kern_lib = lib
        self._kern_h = handle

    def absorb_kernel(self) -> None:
        """Fold the kernel's scalar counters into ours and detach (called
        before the kernel is re-pointed at a successor stats object)."""
        lib = self._kern_lib
        if lib is None:
            return
        h = self._kern_h
        self._total_msgs += lib.sim_total_msgs(h)
        self._data_msgs += lib.sim_data_msgs(h)
        self._local_msgs += lib.sim_local_msgs(h)
        self._kern_lib = None
        self._kern_h = None

    def _scalar_counters(self) -> Tuple[int, int, int]:
        """Flushed ``(total, data, local)`` message counts, kernel included."""
        self._flush()
        t = self._total_msgs
        d = self._data_msgs
        loc = self._local_msgs
        lib = self._kern_lib
        if lib is not None:
            h = self._kern_h
            t += lib.sim_total_msgs(h)
            d += lib.sim_data_msgs(h)
            loc += lib.sim_local_msgs(h)
        return t, d, loc

    # ------------------------------------------------------------- recording
    def record(
        self,
        links: Sequence[int],
        size_bytes: float,
        src: int,
        dst: int,
        is_data: bool,
    ) -> None:
        """Account one message leg of ``size_bytes`` crossing ``links``."""
        self._pending.append((tuple(links), size_bytes, src, dst, is_data))

    def _flush(self) -> None:
        """Fold the pending per-leg buffer into the counter arrays."""
        pend = self._pending
        m = len(pend)
        if not m:
            return
        self._pending = []
        links_col, sizes_col, src_col, dst_col, data_col = zip(*pend)
        counts = np.fromiter(map(len, links_col), dtype=np.intp, count=m)
        crossing = int(counts.sum())
        if crossing:
            flat = np.fromiter(chain.from_iterable(links_col), dtype=np.intp, count=crossing)
            sizes = np.fromiter(sizes_col, dtype=np.float64, count=m)
            weights = np.repeat(sizes, counts)
            if self._link_bytes is not None:
                nl = self._link_bytes.shape[0]
                self._link_bytes += np.bincount(flat, weights=weights, minlength=nl)
                self._link_msgs += np.bincount(flat, minlength=nl)
            else:
                ids, inv = np.unique(flat, return_inverse=True)
                self._merge_sparse(
                    ids,
                    np.bincount(inv, weights=weights),
                    np.bincount(inv).astype(np.int64),
                )
        p = self._startups.shape[0]
        self._startups += np.bincount(np.fromiter(src_col, dtype=np.intp, count=m), minlength=p)
        self._receives += np.bincount(np.fromiter(dst_col, dtype=np.intp, count=m), minlength=p)
        self._total_msgs += m
        self._data_msgs += data_col.count(True)
        self._local_msgs += int((counts == 0).sum())

    # ------------------------------------------------------------- counters
    @property
    def link_bytes(self) -> np.ndarray:
        """Bytes transmitted per directed link (float64 array).

        In sparse mode this *materializes* an O(n_links) array; prefer the
        aggregate properties (congestion/total) on large machines."""
        self._flush()
        if self._link_bytes is not None:
            return self._link_bytes
        out = np.zeros(self.topology.n_links, dtype=np.float64)
        out[self._s_ids] = self._s_bytes
        return out

    @property
    def link_msgs(self) -> np.ndarray:
        """Messages transmitted per directed link (int64 array).

        Materialized on demand in sparse mode, like :attr:`link_bytes`."""
        self._flush()
        if self._link_msgs is not None:
            return self._link_msgs
        out = np.zeros(self.topology.n_links, dtype=np.int64)
        out[self._s_ids] = self._s_msgs
        return out

    @property
    def startups(self) -> np.ndarray:
        """Message sends per processor (int64 array)."""
        self._flush()
        return self._startups

    @property
    def receives(self) -> np.ndarray:
        """Message receives per processor (int64 array)."""
        self._flush()
        return self._receives

    @property
    def total_msgs(self) -> int:
        return self._scalar_counters()[0]

    @property
    def data_msgs(self) -> int:
        return self._scalar_counters()[1]

    @property
    def ctrl_msgs(self) -> int:
        t, d, _ = self._scalar_counters()
        return t - d

    @property
    def local_msgs(self) -> int:
        return self._scalar_counters()[2]

    # ----------------------------------------------------------- aggregation
    @property
    def congestion_bytes(self) -> float:
        """Max bytes across any single directed link (the paper's congestion
        measured in data volume)."""
        self._flush()
        if self._link_bytes is not None:
            return float(self._link_bytes.max(initial=0.0))
        return float(self._s_bytes.max(initial=0.0))

    @property
    def congestion_msgs(self) -> int:
        """Max messages across any single directed link (the paper's
        Barnes-Hut congestion unit)."""
        self._flush()
        if self._link_msgs is not None:
            return int(self._link_msgs.max(initial=0))
        return int(self._s_msgs.max(initial=0))

    @property
    def total_bytes(self) -> float:
        """Total communication load: sum over links of transmitted bytes."""
        self._flush()
        if self._link_bytes is not None:
            return float(self._link_bytes.sum())
        return float(self._s_bytes.sum())

    @property
    def total_link_msgs(self) -> int:
        self._flush()
        if self._link_msgs is not None:
            return int(self._link_msgs.sum())
        return int(self._s_msgs.sum())

    def hottest_links(self, k: int = 5) -> list[tuple[int, int, int, float, int]]:
        """The ``k`` most byte-loaded links as ``(link, src, dst, bytes,
        msgs)``; handy when debugging why a strategy saturates a region."""
        self._flush()
        # Only links that carried traffic rank, and ties break on the
        # lower link id -- the same answer from the dense and sparse
        # representations.
        if self._link_bytes is not None:
            lb, lm = self._link_bytes, self._link_msgs
            ids = np.flatnonzero((lb != 0.0) | (lm != 0))
            byt, msgs = lb[ids], lm[ids]
        else:
            ids, byt, msgs = self._s_ids, self._s_bytes, self._s_msgs
        order = np.lexsort((ids, -byt))[:k]
        picks = [(int(ids[i]), float(byt[i]), int(msgs[i])) for i in order]
        out = []
        for link, b, msgs in picks:
            s, d = self.mesh.link_endpoints(link)
            out.append((link, s, d, b, msgs))
        return out

    def render(self, width: int = 4) -> str:
        """Topology-appropriate traffic picture: the grid heatmap for
        meshes (plus a wraparound-wire section for tori), the per-dimension
        link table for hypercubes."""
        kind = getattr(self.topology, "kind", "mesh")
        if kind in ("mesh", "torus"):
            return self.render_heatmap(width=width)
        return self.render_link_table()

    def render_heatmap(self, width: int = 4) -> str:
        """ASCII heatmap of per-link byte load (both directions of each wire
        summed), for eyeballing where a strategy congests the mesh.

        Nodes are ``+``; the number between two nodes is the wire's load as
        a percentage of the most loaded wire (``..`` = idle).  On a torus
        the wraparound wires cannot be drawn inside the grid; they are
        appended as per-row / per-column lines below it, normalized against
        the same peak."""
        m = self.mesh
        lb = self.link_bytes
        interior = getattr(m, "_mesh_links", m.n_links)
        wire_load: Dict[Tuple[int, int], float] = {}
        for link in range(interior):
            a, b = m.link_endpoints(link)
            key = (min(a, b), max(a, b))
            wire_load[key] = wire_load.get(key, 0.0) + lb[link]
        wrap_pairs: list[float] = []
        if interior < m.n_links:
            wrap_pairs = [lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)] for r in range(m.rows)]
            wrap_pairs += [lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)] for c in range(m.cols)]
        peak = max(max(wire_load.values(), default=0.0), max(wrap_pairs, default=0.0))

        def fmt(load: float) -> str:
            if peak <= 0:
                return "..".center(width)
            pct = 100.0 * load / peak
            return (".." if pct < 0.5 else f"{pct:.0f}").center(width)

        def cell(a: int, b: int) -> str:
            return fmt(wire_load[(min(a, b), max(a, b))])

        lines = []
        for r in range(m.rows):
            row = []
            for c in range(m.cols):
                row.append("+")
                if c + 1 < m.cols:
                    row.append(cell(m.node(r, c), m.node(r, c + 1)))
            lines.append("".join(row))
            if r + 1 < m.rows:
                vert = []
                for c in range(m.cols):
                    vert.append(cell(m.node(r, c), m.node(r + 1, c)).replace(" ", " "))
                    if c + 1 < m.cols:
                        vert.append(" ")
                lines.append("".join(v for v in vert))
        if interior < m.n_links:
            lines.append("wrap wires (both directions summed):")
            row_loads = " ".join(
                fmt(lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)]) for r in range(m.rows)
            )
            col_loads = " ".join(
                fmt(lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)]) for c in range(m.cols)
            )
            lines.append(f"rows: {row_loads}")
            lines.append(f"cols: {col_loads}")
        return "\n".join(lines)

    def render_link_table(self, k: int = 10) -> str:
        """Per-dimension load table (hypercubes) or hottest-link table.

        A hypercube has no planar drawing worth ASCII art; what matters is
        which *dimension* carries the load (e-cube routing fixes dimensions
        in order, so imbalance shows up here) and which individual links
        run hottest."""
        topo = self.topology
        lb = self.link_bytes
        lm = self.link_msgs
        lines = []
        dim = getattr(topo, "dim", None)
        if dim is not None:
            lines.append("per-dimension directed-link load:")
            lines.append("dim  total_bytes  max_bytes  msgs")
            for d in range(dim):
                ids = range(d, topo.n_links, dim)
                total = sum(lb[i] for i in ids)
                peak = max(lb[i] for i in ids)
                msgs = sum(lm[i] for i in ids)
                lines.append(f"{d:<4d} {total:<12.0f} {peak:<10.0f} {msgs}")
        lines.append(f"hottest {k} directed links:")
        lines.append("link  src  dst  bytes  msgs")
        for link, s, d, b, msgs in self.hottest_links(k):
            lines.append(f"{link:<5d} {s:<4d} {d:<4d} {b:<6.0f} {msgs}")
        return "\n".join(lines)

    def merge_from(self, other: "LinkStats") -> None:
        """Fold another accumulator of the same topology into this one.

        This is the per-worker sharding primitive: each worker accumulates
        into a private :class:`LinkStats` and the parent merges them at
        snapshot time.  Every counter is an integer-valued sum, so the
        merged aggregates are independent of worker order (order-exact) --
        byte-identical to single-process accumulation."""
        if other.topology.n_links != self.topology.n_links:
            raise ValueError("merge_from: topologies differ in link count")
        self._flush()
        t, d, loc = other._scalar_counters()  # flushes other, kernel included
        self._total_msgs += t
        self._data_msgs += d
        self._local_msgs += loc
        self._startups += other._startups
        self._receives += other._receives
        if self._link_bytes is not None:
            if other._link_bytes is not None:
                self._link_bytes += other._link_bytes
                self._link_msgs += other._link_msgs
            else:
                self._link_bytes[other._s_ids] += other._s_bytes
                self._link_msgs[other._s_ids] += other._s_msgs
        elif other._link_bytes is not None:
            touched = np.flatnonzero(
                (other._link_msgs != 0) | (other._link_bytes != 0.0)
            )
            self._merge_sparse(
                touched,
                other._link_bytes[touched],
                other._link_msgs[touched],
            )
        else:
            self._merge_sparse(other._s_ids, other._s_bytes, other._s_msgs)

    # ------------------------------------------------------ fleet transport
    def state(self) -> Dict[str, object]:
        """Picklable counter state (worker -> parent transport for the
        serving fleet).  Per-link counters ship sparse -- indices plus
        counts -- whatever the in-memory representation, so the payload
        scales with links *touched*, not machine size."""
        t, d, loc = self._scalar_counters()  # flushes, kernel included
        if self._link_bytes is not None:
            ids = np.flatnonzero(
                (self._link_msgs != 0) | (self._link_bytes != 0.0)
            )
            byt = self._link_bytes[ids]
            msgs = self._link_msgs[ids]
        else:
            ids, byt, msgs = self._s_ids, self._s_bytes, self._s_msgs
        return {
            "n_links": self.topology.n_links,
            "ids": np.asarray(ids, dtype=np.intp),
            "bytes": np.asarray(byt, dtype=np.float64),
            "msgs": np.asarray(msgs, dtype=np.int64),
            "startups": self._startups.copy(),
            "receives": self._receives.copy(),
            "total_msgs": t,
            "data_msgs": d,
            "local_msgs": loc,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a :meth:`state` dict into this accumulator (the cross-
        process face of :meth:`merge_from`; identical order-exact sums)."""
        if state["n_links"] != self.topology.n_links:
            raise ValueError("merge_state: topologies differ in link count")
        self._flush()
        self._total_msgs += int(state["total_msgs"])
        self._data_msgs += int(state["data_msgs"])
        self._local_msgs += int(state["local_msgs"])
        self._startups += state["startups"]
        self._receives += state["receives"]
        ids = state["ids"]
        if self._link_bytes is not None:
            self._link_bytes[ids] += state["bytes"]
            self._link_msgs[ids] += state["msgs"]
        else:
            self._merge_sparse(ids, state["bytes"], state["msgs"])

    def snapshot(self) -> StatsSnapshot:
        t, d, loc = self._scalar_counters()
        return StatsSnapshot(
            congestion_bytes=self.congestion_bytes,
            congestion_msgs=self.congestion_msgs,
            total_bytes=self.total_bytes,
            total_msgs=t,
            max_startups=int(self._startups.max(initial=0)),
            total_startups=int(self._startups.sum()),
            data_msgs=d,
            ctrl_msgs=t - d,
            local_msgs=loc,
        )

    # ------------------------------------------------------------ phase book
    def checkpoint(self) -> "_Checkpoint":
        """Capture raw counters; combine with the current state later via
        :meth:`delta` to obtain a :class:`StatsSnapshot` for the interval.

        Phase accounting captures *dense* link arrays (materialized on
        demand in sparse mode -- phase-instrumented applications run at
        small scale, where the instance is dense anyway)."""
        t, d, loc = self._scalar_counters()
        lb = self.link_bytes
        lm = self.link_msgs
        return _Checkpoint(
            link_bytes=lb.copy() if lb is self._link_bytes else lb,
            link_msgs=lm.copy() if lm is self._link_msgs else lm,
            startups=self._startups.copy(),
            total_msgs=t,
            data_msgs=d,
            ctrl_msgs=t - d,
            local_msgs=loc,
        )

    def delta(self, since: "_Checkpoint") -> StatsSnapshot:
        t, d, loc = self._scalar_counters()
        db = self.link_bytes - since.link_bytes
        dm = self.link_msgs - since.link_msgs
        ds = self._startups - since.startups
        return StatsSnapshot(
            congestion_bytes=float(db.max(initial=0.0)),
            congestion_msgs=int(dm.max(initial=0)),
            total_bytes=float(db.sum()),
            total_msgs=t - since.total_msgs,
            max_startups=int(ds.max(initial=0)),
            total_startups=int(ds.sum()),
            data_msgs=d - since.data_msgs,
            ctrl_msgs=(t - d) - since.ctrl_msgs,
            local_msgs=loc - since.local_msgs,
        )


@dataclass
class _Checkpoint:
    link_bytes: np.ndarray
    link_msgs: np.ndarray
    startups: np.ndarray
    total_msgs: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int
