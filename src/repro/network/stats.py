"""Traffic statistics: per-link counters, congestion, startups, phases.

The paper's two measured quantities are

* **congestion** -- "the maximum amount of data that is transmitted by the
  same link during the execution of an application".  For the matrix and
  sorting experiments the unit is data volume (congestion "grows linear in
  the block size"); for the Barnes-Hut figures the unit is *messages*
  ("congestion in 10000 messages").  We therefore keep both a byte counter
  and a message counter per directed link.
* **startups** -- the number of message sends per processor (the paper:
  "The sending of a message by a processor is called a startup"), the second
  important cost factor identified by the experiments.

Phases: the Barnes-Hut evaluation breaks congestion and time down by
algorithm phase (Figures 9 and 10), and the matrix experiments measure the
communication time of specific call types.  :class:`LinkStats` supports
cheap snapshot/delta accounting so the runtime can attribute traffic to the
currently executing phase.

Implementation note: counters are plain Python lists because the hot path is
scalar increments along short (<= mesh diameter) link paths, where list
indexing beats numpy fancy indexing by a wide margin; aggregation converts
to numpy once, at snapshot time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .topology import Topology

__all__ = ["LinkStats", "StatsSnapshot", "PhaseStats"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable summary of traffic between two points of a run."""

    congestion_bytes: float
    congestion_msgs: int
    total_bytes: float
    total_msgs: int
    max_startups: int
    total_startups: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class PhaseStats:
    """Traffic and time attributed to one named phase of an application."""

    name: str
    stats: StatsSnapshot
    time: float

    def as_dict(self) -> Dict[str, object]:
        d = self.stats.as_dict()
        d["name"] = self.name
        d["time"] = self.time
        return d


class LinkStats:
    """Mutable per-directed-link traffic counters for one simulation run.

    Message legs are recorded with :meth:`record`.  Local (same-processor)
    deliveries cross no link and contribute no congestion, but are counted
    separately so hit-ratio style statistics remain possible.
    """

    def __init__(self, topology: Topology):
        # Historic attribute name: the stats object predates the topology
        # abstraction, and ``.mesh`` is part of its public surface.
        self.mesh = topology
        self.topology = topology
        n = topology.n_links
        self.link_bytes = [0.0] * n
        self.link_msgs = [0] * n
        p = topology.n_nodes
        self.startups = [0] * p  # message sends per processor
        self.receives = [0] * p
        self.total_msgs = 0
        self.data_msgs = 0
        self.ctrl_msgs = 0
        self.local_msgs = 0

    # ------------------------------------------------------------- recording
    def record(
        self,
        links: Sequence[int],
        size_bytes: float,
        src: int,
        dst: int,
        is_data: bool,
    ) -> None:
        """Account one message leg of ``size_bytes`` crossing ``links``."""
        if links:
            lb = self.link_bytes
            lm = self.link_msgs
            for link in links:
                lb[link] += size_bytes
                lm[link] += 1
        else:
            self.local_msgs += 1
        self.startups[src] += 1
        self.receives[dst] += 1
        self.total_msgs += 1
        if is_data:
            self.data_msgs += 1
        else:
            self.ctrl_msgs += 1

    # ----------------------------------------------------------- aggregation
    @property
    def congestion_bytes(self) -> float:
        """Max bytes across any single directed link (the paper's congestion
        measured in data volume)."""
        return max(self.link_bytes, default=0.0)

    @property
    def congestion_msgs(self) -> int:
        """Max messages across any single directed link (the paper's
        Barnes-Hut congestion unit)."""
        return max(self.link_msgs, default=0)

    @property
    def total_bytes(self) -> float:
        """Total communication load: sum over links of transmitted bytes."""
        return float(sum(self.link_bytes))

    @property
    def total_link_msgs(self) -> int:
        return int(sum(self.link_msgs))

    def hottest_links(self, k: int = 5) -> list[tuple[int, int, int, float, int]]:
        """The ``k`` most byte-loaded links as ``(link, src, dst, bytes,
        msgs)``; handy when debugging why a strategy saturates a region."""
        lb = np.asarray(self.link_bytes)
        order = np.argsort(lb)[::-1][:k]
        out = []
        for link in order:
            s, d = self.mesh.link_endpoints(int(link))
            out.append((int(link), s, d, float(lb[link]), int(self.link_msgs[link])))
        return out

    def render(self, width: int = 4) -> str:
        """Topology-appropriate traffic picture: the grid heatmap for
        meshes (plus a wraparound-wire section for tori), the per-dimension
        link table for hypercubes."""
        kind = getattr(self.topology, "kind", "mesh")
        if kind in ("mesh", "torus"):
            return self.render_heatmap(width=width)
        return self.render_link_table()

    def render_heatmap(self, width: int = 4) -> str:
        """ASCII heatmap of per-link byte load (both directions of each wire
        summed), for eyeballing where a strategy congests the mesh.

        Nodes are ``+``; the number between two nodes is the wire's load as
        a percentage of the most loaded wire (``..`` = idle).  On a torus
        the wraparound wires cannot be drawn inside the grid; they are
        appended as per-row / per-column lines below it, normalized against
        the same peak."""
        m = self.mesh
        interior = getattr(m, "_mesh_links", m.n_links)
        wire_load: Dict[Tuple[int, int], float] = {}
        for link in range(interior):
            a, b = m.link_endpoints(link)
            key = (min(a, b), max(a, b))
            wire_load[key] = wire_load.get(key, 0.0) + self.link_bytes[link]
        lb = self.link_bytes
        wrap_pairs: list[float] = []
        if interior < m.n_links:
            wrap_pairs = [lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)] for r in range(m.rows)]
            wrap_pairs += [lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)] for c in range(m.cols)]
        peak = max(max(wire_load.values(), default=0.0), max(wrap_pairs, default=0.0))

        def fmt(load: float) -> str:
            if peak <= 0:
                return "..".center(width)
            pct = 100.0 * load / peak
            return (".." if pct < 0.5 else f"{pct:.0f}").center(width)

        def cell(a: int, b: int) -> str:
            return fmt(wire_load[(min(a, b), max(a, b))])

        lines = []
        for r in range(m.rows):
            row = []
            for c in range(m.cols):
                row.append("+")
                if c + 1 < m.cols:
                    row.append(cell(m.node(r, c), m.node(r, c + 1)))
            lines.append("".join(row))
            if r + 1 < m.rows:
                vert = []
                for c in range(m.cols):
                    vert.append(cell(m.node(r, c), m.node(r + 1, c)).replace(" ", " "))
                    if c + 1 < m.cols:
                        vert.append(" ")
                lines.append("".join(v for v in vert))
        if interior < m.n_links:
            lines.append("wrap wires (both directions summed):")
            row_loads = " ".join(
                fmt(lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)]) for r in range(m.rows)
            )
            col_loads = " ".join(
                fmt(lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)]) for c in range(m.cols)
            )
            lines.append(f"rows: {row_loads}")
            lines.append(f"cols: {col_loads}")
        return "\n".join(lines)

    def render_link_table(self, k: int = 10) -> str:
        """Per-dimension load table (hypercubes) or hottest-link table.

        A hypercube has no planar drawing worth ASCII art; what matters is
        which *dimension* carries the load (e-cube routing fixes dimensions
        in order, so imbalance shows up here) and which individual links
        run hottest."""
        topo = self.topology
        lines = []
        dim = getattr(topo, "dim", None)
        if dim is not None:
            lines.append("per-dimension directed-link load:")
            lines.append("dim  total_bytes  max_bytes  msgs")
            for d in range(dim):
                ids = range(d, topo.n_links, dim)
                total = sum(self.link_bytes[i] for i in ids)
                peak = max(self.link_bytes[i] for i in ids)
                msgs = sum(self.link_msgs[i] for i in ids)
                lines.append(f"{d:<4d} {total:<12.0f} {peak:<10.0f} {msgs}")
        lines.append(f"hottest {k} directed links:")
        lines.append("link  src  dst  bytes  msgs")
        for link, s, d, b, msgs in self.hottest_links(k):
            lines.append(f"{link:<5d} {s:<4d} {d:<4d} {b:<6.0f} {msgs}")
        return "\n".join(lines)

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            congestion_bytes=self.congestion_bytes,
            congestion_msgs=self.congestion_msgs,
            total_bytes=self.total_bytes,
            total_msgs=self.total_msgs,
            max_startups=max(self.startups, default=0),
            total_startups=sum(self.startups),
            data_msgs=self.data_msgs,
            ctrl_msgs=self.ctrl_msgs,
            local_msgs=self.local_msgs,
        )

    # ------------------------------------------------------------ phase book
    def checkpoint(self) -> "_Checkpoint":
        """Capture raw counters; combine with the current state later via
        :meth:`delta` to obtain a :class:`StatsSnapshot` for the interval."""
        return _Checkpoint(
            link_bytes=np.asarray(self.link_bytes, dtype=np.float64),
            link_msgs=np.asarray(self.link_msgs, dtype=np.int64),
            startups=np.asarray(self.startups, dtype=np.int64),
            total_msgs=self.total_msgs,
            data_msgs=self.data_msgs,
            ctrl_msgs=self.ctrl_msgs,
            local_msgs=self.local_msgs,
        )

    def delta(self, since: "_Checkpoint") -> StatsSnapshot:
        db = np.asarray(self.link_bytes, dtype=np.float64) - since.link_bytes
        dm = np.asarray(self.link_msgs, dtype=np.int64) - since.link_msgs
        ds = np.asarray(self.startups, dtype=np.int64) - since.startups
        return StatsSnapshot(
            congestion_bytes=float(db.max(initial=0.0)),
            congestion_msgs=int(dm.max(initial=0)),
            total_bytes=float(db.sum()),
            total_msgs=self.total_msgs - since.total_msgs,
            max_startups=int(ds.max(initial=0)),
            total_startups=int(ds.sum()),
            data_msgs=self.data_msgs - since.data_msgs,
            ctrl_msgs=self.ctrl_msgs - since.ctrl_msgs,
            local_msgs=self.local_msgs - since.local_msgs,
        )


@dataclass
class _Checkpoint:
    link_bytes: np.ndarray
    link_msgs: np.ndarray
    startups: np.ndarray
    total_msgs: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int
