"""Traffic statistics: per-link counters, congestion, startups, phases.

The paper's two measured quantities are

* **congestion** -- "the maximum amount of data that is transmitted by the
  same link during the execution of an application".  For the matrix and
  sorting experiments the unit is data volume (congestion "grows linear in
  the block size"); for the Barnes-Hut figures the unit is *messages*
  ("congestion in 10000 messages").  We therefore keep both a byte counter
  and a message counter per directed link.
* **startups** -- the number of message sends per processor (the paper:
  "The sending of a message by a processor is called a startup"), the second
  important cost factor identified by the experiments.

Phases: the Barnes-Hut evaluation breaks congestion and time down by
algorithm phase (Figures 9 and 10), and the matrix experiments measure the
communication time of specific call types.  :class:`LinkStats` supports
cheap snapshot/delta accounting so the runtime can attribute traffic to the
currently executing phase.

Implementation note: counters are preallocated numpy arrays fed through a
**batched record path**.  The hot path (one :meth:`record` per message leg,
millions per large run) only appends to flat Python buffers -- no per-leg
array indexing at all; the buffers are folded into the arrays with
``numpy.bincount`` whenever an aggregate is read (snapshot, checkpoint,
render, or any counter property).  Reads flush first, so every externally
visible value is exactly what the eager per-leg accounting used to produce:
all byte sizes are integers, whose float64 sums are exact regardless of
accumulation order, making snapshots and renders byte-identical to the
pre-batching implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Dict, Sequence, Tuple

import numpy as np

from .topology import Topology

__all__ = ["LinkStats", "StatsSnapshot", "PhaseStats"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable summary of traffic between two points of a run."""

    congestion_bytes: float
    congestion_msgs: int
    total_bytes: float
    total_msgs: int
    max_startups: int
    total_startups: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class PhaseStats:
    """Traffic and time attributed to one named phase of an application."""

    name: str
    stats: StatsSnapshot
    time: float

    def as_dict(self) -> Dict[str, object]:
        d = self.stats.as_dict()
        d["name"] = self.name
        d["time"] = self.time
        return d


class LinkStats:
    """Mutable per-directed-link traffic counters for one simulation run.

    Message legs are recorded with :meth:`record`.  Local (same-processor)
    deliveries cross no link and contribute no congestion, but are counted
    separately so hit-ratio style statistics remain possible.
    """

    __slots__ = (
        "mesh",
        "topology",
        "_link_bytes",
        "_link_msgs",
        "_startups",
        "_receives",
        "_total_msgs",
        "_data_msgs",
        "_local_msgs",
        "_pending",
        "_kern_lib",
        "_kern_h",
    )

    def __init__(self, topology: Topology):
        # Historic attribute name: the stats object predates the topology
        # abstraction, and ``.mesh`` is part of its public surface.
        self.mesh = topology
        self.topology = topology
        n = topology.n_links
        p = topology.n_nodes
        self._link_bytes = np.zeros(n, dtype=np.float64)
        self._link_msgs = np.zeros(n, dtype=np.int64)
        self._startups = np.zeros(p, dtype=np.int64)  # message sends per proc
        self._receives = np.zeros(p, dtype=np.int64)
        self._total_msgs = 0
        self._data_msgs = 0
        self._local_msgs = 0
        # Batched record path: one (links, size, src, dst, is_data) tuple
        # per leg, folded into the arrays by _flush().  The simulator
        # appends to this buffer directly.
        self._pending: list = []
        # When the C event kernel is active it accumulates *eagerly* into
        # the arrays above (shared memory) and keeps the scalar message
        # counters on its side; see bind_kernel()/absorb_kernel().
        self._kern_lib = None
        self._kern_h = None

    # ------------------------------------------------------- kernel binding
    def bind_kernel(self, lib, handle) -> None:
        """Attach the C kernel whose counters complement ours (the kernel
        writes the per-link/per-proc arrays directly via shared memory)."""
        self._kern_lib = lib
        self._kern_h = handle

    def absorb_kernel(self) -> None:
        """Fold the kernel's scalar counters into ours and detach (called
        before the kernel is re-pointed at a successor stats object)."""
        lib = self._kern_lib
        if lib is None:
            return
        h = self._kern_h
        self._total_msgs += lib.sim_total_msgs(h)
        self._data_msgs += lib.sim_data_msgs(h)
        self._local_msgs += lib.sim_local_msgs(h)
        self._kern_lib = None
        self._kern_h = None

    def _scalar_counters(self) -> Tuple[int, int, int]:
        """Flushed ``(total, data, local)`` message counts, kernel included."""
        self._flush()
        t = self._total_msgs
        d = self._data_msgs
        loc = self._local_msgs
        lib = self._kern_lib
        if lib is not None:
            h = self._kern_h
            t += lib.sim_total_msgs(h)
            d += lib.sim_data_msgs(h)
            loc += lib.sim_local_msgs(h)
        return t, d, loc

    # ------------------------------------------------------------- recording
    def record(
        self,
        links: Sequence[int],
        size_bytes: float,
        src: int,
        dst: int,
        is_data: bool,
    ) -> None:
        """Account one message leg of ``size_bytes`` crossing ``links``."""
        self._pending.append((tuple(links), size_bytes, src, dst, is_data))

    def _flush(self) -> None:
        """Fold the pending per-leg buffer into the counter arrays."""
        pend = self._pending
        m = len(pend)
        if not m:
            return
        self._pending = []
        links_col, sizes_col, src_col, dst_col, data_col = zip(*pend)
        counts = np.fromiter(map(len, links_col), dtype=np.intp, count=m)
        crossing = int(counts.sum())
        if crossing:
            flat = np.fromiter(chain.from_iterable(links_col), dtype=np.intp, count=crossing)
            sizes = np.fromiter(sizes_col, dtype=np.float64, count=m)
            nl = self._link_bytes.shape[0]
            self._link_bytes += np.bincount(flat, weights=np.repeat(sizes, counts), minlength=nl)
            self._link_msgs += np.bincount(flat, minlength=nl)
        p = self._startups.shape[0]
        self._startups += np.bincount(np.fromiter(src_col, dtype=np.intp, count=m), minlength=p)
        self._receives += np.bincount(np.fromiter(dst_col, dtype=np.intp, count=m), minlength=p)
        self._total_msgs += m
        self._data_msgs += data_col.count(True)
        self._local_msgs += int((counts == 0).sum())

    # ------------------------------------------------------------- counters
    @property
    def link_bytes(self) -> np.ndarray:
        """Bytes transmitted per directed link (float64 array)."""
        self._flush()
        return self._link_bytes

    @property
    def link_msgs(self) -> np.ndarray:
        """Messages transmitted per directed link (int64 array)."""
        self._flush()
        return self._link_msgs

    @property
    def startups(self) -> np.ndarray:
        """Message sends per processor (int64 array)."""
        self._flush()
        return self._startups

    @property
    def receives(self) -> np.ndarray:
        """Message receives per processor (int64 array)."""
        self._flush()
        return self._receives

    @property
    def total_msgs(self) -> int:
        return self._scalar_counters()[0]

    @property
    def data_msgs(self) -> int:
        return self._scalar_counters()[1]

    @property
    def ctrl_msgs(self) -> int:
        t, d, _ = self._scalar_counters()
        return t - d

    @property
    def local_msgs(self) -> int:
        return self._scalar_counters()[2]

    # ----------------------------------------------------------- aggregation
    @property
    def congestion_bytes(self) -> float:
        """Max bytes across any single directed link (the paper's congestion
        measured in data volume)."""
        return float(self.link_bytes.max(initial=0.0))

    @property
    def congestion_msgs(self) -> int:
        """Max messages across any single directed link (the paper's
        Barnes-Hut congestion unit)."""
        return int(self.link_msgs.max(initial=0))

    @property
    def total_bytes(self) -> float:
        """Total communication load: sum over links of transmitted bytes."""
        return float(self.link_bytes.sum())

    @property
    def total_link_msgs(self) -> int:
        return int(self.link_msgs.sum())

    def hottest_links(self, k: int = 5) -> list[tuple[int, int, int, float, int]]:
        """The ``k`` most byte-loaded links as ``(link, src, dst, bytes,
        msgs)``; handy when debugging why a strategy saturates a region."""
        lb = self.link_bytes
        lm = self._link_msgs
        order = np.argsort(lb)[::-1][:k]
        out = []
        for link in order:
            s, d = self.mesh.link_endpoints(int(link))
            out.append((int(link), s, d, float(lb[link]), int(lm[link])))
        return out

    def render(self, width: int = 4) -> str:
        """Topology-appropriate traffic picture: the grid heatmap for
        meshes (plus a wraparound-wire section for tori), the per-dimension
        link table for hypercubes."""
        kind = getattr(self.topology, "kind", "mesh")
        if kind in ("mesh", "torus"):
            return self.render_heatmap(width=width)
        return self.render_link_table()

    def render_heatmap(self, width: int = 4) -> str:
        """ASCII heatmap of per-link byte load (both directions of each wire
        summed), for eyeballing where a strategy congests the mesh.

        Nodes are ``+``; the number between two nodes is the wire's load as
        a percentage of the most loaded wire (``..`` = idle).  On a torus
        the wraparound wires cannot be drawn inside the grid; they are
        appended as per-row / per-column lines below it, normalized against
        the same peak."""
        m = self.mesh
        lb = self.link_bytes
        interior = getattr(m, "_mesh_links", m.n_links)
        wire_load: Dict[Tuple[int, int], float] = {}
        for link in range(interior):
            a, b = m.link_endpoints(link)
            key = (min(a, b), max(a, b))
            wire_load[key] = wire_load.get(key, 0.0) + lb[link]
        wrap_pairs: list[float] = []
        if interior < m.n_links:
            wrap_pairs = [lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)] for r in range(m.rows)]
            wrap_pairs += [lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)] for c in range(m.cols)]
        peak = max(max(wire_load.values(), default=0.0), max(wrap_pairs, default=0.0))

        def fmt(load: float) -> str:
            if peak <= 0:
                return "..".center(width)
            pct = 100.0 * load / peak
            return (".." if pct < 0.5 else f"{pct:.0f}").center(width)

        def cell(a: int, b: int) -> str:
            return fmt(wire_load[(min(a, b), max(a, b))])

        lines = []
        for r in range(m.rows):
            row = []
            for c in range(m.cols):
                row.append("+")
                if c + 1 < m.cols:
                    row.append(cell(m.node(r, c), m.node(r, c + 1)))
            lines.append("".join(row))
            if r + 1 < m.rows:
                vert = []
                for c in range(m.cols):
                    vert.append(cell(m.node(r, c), m.node(r + 1, c)).replace(" ", " "))
                    if c + 1 < m.cols:
                        vert.append(" ")
                lines.append("".join(v for v in vert))
        if interior < m.n_links:
            lines.append("wrap wires (both directions summed):")
            row_loads = " ".join(
                fmt(lb[m.h_wrap(r, True)] + lb[m.h_wrap(r, False)]) for r in range(m.rows)
            )
            col_loads = " ".join(
                fmt(lb[m.v_wrap(c, True)] + lb[m.v_wrap(c, False)]) for c in range(m.cols)
            )
            lines.append(f"rows: {row_loads}")
            lines.append(f"cols: {col_loads}")
        return "\n".join(lines)

    def render_link_table(self, k: int = 10) -> str:
        """Per-dimension load table (hypercubes) or hottest-link table.

        A hypercube has no planar drawing worth ASCII art; what matters is
        which *dimension* carries the load (e-cube routing fixes dimensions
        in order, so imbalance shows up here) and which individual links
        run hottest."""
        topo = self.topology
        lb = self.link_bytes
        lm = self._link_msgs
        lines = []
        dim = getattr(topo, "dim", None)
        if dim is not None:
            lines.append("per-dimension directed-link load:")
            lines.append("dim  total_bytes  max_bytes  msgs")
            for d in range(dim):
                ids = range(d, topo.n_links, dim)
                total = sum(lb[i] for i in ids)
                peak = max(lb[i] for i in ids)
                msgs = sum(lm[i] for i in ids)
                lines.append(f"{d:<4d} {total:<12.0f} {peak:<10.0f} {msgs}")
        lines.append(f"hottest {k} directed links:")
        lines.append("link  src  dst  bytes  msgs")
        for link, s, d, b, msgs in self.hottest_links(k):
            lines.append(f"{link:<5d} {s:<4d} {d:<4d} {b:<6.0f} {msgs}")
        return "\n".join(lines)

    def snapshot(self) -> StatsSnapshot:
        t, d, loc = self._scalar_counters()
        return StatsSnapshot(
            congestion_bytes=float(self._link_bytes.max(initial=0.0)),
            congestion_msgs=int(self._link_msgs.max(initial=0)),
            total_bytes=float(self._link_bytes.sum()),
            total_msgs=t,
            max_startups=int(self._startups.max(initial=0)),
            total_startups=int(self._startups.sum()),
            data_msgs=d,
            ctrl_msgs=t - d,
            local_msgs=loc,
        )

    # ------------------------------------------------------------ phase book
    def checkpoint(self) -> "_Checkpoint":
        """Capture raw counters; combine with the current state later via
        :meth:`delta` to obtain a :class:`StatsSnapshot` for the interval."""
        t, d, loc = self._scalar_counters()
        return _Checkpoint(
            link_bytes=self._link_bytes.copy(),
            link_msgs=self._link_msgs.copy(),
            startups=self._startups.copy(),
            total_msgs=t,
            data_msgs=d,
            ctrl_msgs=t - d,
            local_msgs=loc,
        )

    def delta(self, since: "_Checkpoint") -> StatsSnapshot:
        t, d, loc = self._scalar_counters()
        db = self._link_bytes - since.link_bytes
        dm = self._link_msgs - since.link_msgs
        ds = self._startups - since.startups
        return StatsSnapshot(
            congestion_bytes=float(db.max(initial=0.0)),
            congestion_msgs=int(dm.max(initial=0)),
            total_bytes=float(db.sum()),
            total_msgs=t - since.total_msgs,
            max_startups=int(ds.max(initial=0)),
            total_startups=int(ds.sum()),
            data_msgs=d - since.data_msgs,
            ctrl_msgs=(t - d) - since.ctrl_msgs,
            local_msgs=loc - since.local_msgs,
        )


@dataclass
class _Checkpoint:
    link_bytes: np.ndarray
    link_msgs: np.ndarray
    startups: np.ndarray
    total_msgs: int
    data_msgs: int
    ctrl_msgs: int
    local_msgs: int
