"""Failure models: deterministic link/node failure schedules and the
failure-aware route view.

The paper evaluates its strategies on *static* networks; this module adds
the failure axis.  A **failure model** turns a compact spec string into a
time-stamped :class:`FailureSchedule` of link down/up events and node
churn; the schedule is a pure function of ``(spec, topology)`` -- same
seed, same schedule -- so failure runs are as reproducible and cacheable
as everything else.

Spec grammar (mirrors the strategy registry,
:mod:`repro.core.registry`)::

    name[:token][:token]...

where each ``token`` is ``key=value`` or a bare positional value the
model interprets.  Examples::

    none                        # no failures (the default axis value)
    linkflap:rate=0.01:seed=7   # 1% of links flap at random times
    churn:nodes=0.05            # 5% of processors fail-stop
    linkdown:link=3:at=0.002    # one precise link failure (tests)
    nodedown:node=5:at=0.001    # one precise node failure (tests)

Times are virtual seconds; the stochastic models place events uniformly
in ``(0, horizon)`` -- set ``horizon`` to roughly the run's virtual
duration so the failures land inside the measured window.

At simulation time the schedule drives a :class:`FailureView`: the
engine adopts its per-epoch route cache and failure-aware
:meth:`FailureView.lookup`, which detours around down links (breadth-
first over the surviving topology, deterministic tie-breaks) and returns
the empty route for unreachable pairs.  A node down takes all its
incident links down; messages across an unreachable pair complete with
zero link traversals (accounted as local messages) and are counted in
the availability columns.  Both engines -- the pure-Python loop and the
C kernel -- resolve each distinct ``(src, dst)`` pair exactly once per
failure epoch, so the availability counters are engine-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.specs import SpecGrammar
from .routing import get_route_table
from .topology import Topology

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "FailureModel",
    "FailureView",
    "FAILURE_MODELS",
    "register_failure_model",
    "failure_model_names",
    "parse_failure_spec",
    "format_failure_spec",
    "build_schedule",
]

#: Event kinds a schedule may contain, in canonical order.
EVENT_KINDS = ("link_down", "link_up", "node_down", "node_up")


@dataclass(frozen=True)
class FailureEvent:
    """One topology delta: at ``time``, ``target`` (a directed link id for
    link events, a processor id for node events) changes state."""

    time: float
    kind: str
    target: int


@dataclass(frozen=True)
class FailureSchedule:
    """A time-sorted sequence of failure events plus the spec that built
    it (recorded in trace headers and result rows)."""

    spec: str
    events: Tuple[FailureEvent, ...]

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass(frozen=True)
class FailureModel:
    """One registered failure model (the failure-axis analogue of
    :class:`repro.core.registry.StrategyFamily`).

    Attributes
    ----------
    name:
        Registry name (the spec's leading segment).
    description:
        One-line description for listings and error messages.
    build:
        ``build(topology, params)`` returning the (unsorted) event list.
    defaults:
        Spec parameters and their defaults; unknown ``key=value`` tokens
        are rejected with the valid alternatives listed.
    param_types:
        Coercion targets for parameters whose default is ``None``.
    positional:
        Parameter a bare (non ``key=value``) spec token assigns.
    validate:
        Optional ``validate(params)`` raising ``ValueError`` on malformed
        parameter combinations (``linkflap:rate=-1``).
    """

    name: str
    description: str
    build: Callable[..., List[FailureEvent]]
    defaults: Dict[str, Any] = field(default_factory=dict)
    param_types: Dict[str, type] = field(default_factory=dict)
    positional: Optional[str] = None
    validate: Optional[Callable[[Dict[str, Any]], None]] = None


#: The global name -> model registry (registration order preserved).
FAILURE_MODELS: Dict[str, FailureModel] = {}


def register_failure_model(model: FailureModel) -> FailureModel:
    """Register ``model`` under its name (idempotent for the same
    builder; re-registering a different builder is a bug)."""
    existing = FAILURE_MODELS.get(model.name)
    if existing is not None and existing.build is not model.build:
        raise ValueError(
            f"failure model name {model.name!r} already registered by "
            f"{existing.build!r}"
        )
    FAILURE_MODELS[model.name] = model
    return model


def failure_model_names() -> List[str]:
    """Registered model names, in registration order (the CLI choices)."""
    return list(FAILURE_MODELS)


#: The failure-axis registration against the shared grammar
#: (:mod:`repro.core.specs`): all parsing/formatting/coercion lives
#: there, this module only supplies the registry and its messages.
_GRAMMAR = SpecGrammar(
    spec_kind="failure",
    entry_kind="failure model",
    registry=FAILURE_MODELS,
    unknown_head=lambda head: (
        f"unknown failure model {head!r}; valid: "
        f"{', '.join(failure_model_names())}"
    ),
)


def parse_failure_spec(spec: str) -> Tuple[FailureModel, Dict[str, Any]]:
    """Parse ``spec`` into ``(model, params)``; raises ``ValueError``
    with the valid alternatives on unknown names or malformed tokens."""
    return _GRAMMAR.parse(spec)


def format_failure_spec(model, params: Optional[Dict[str, Any]] = None) -> str:
    """Canonical spec string for ``(model, params)``: every parameter in
    registration order, so ``parse -> format -> parse`` round-trips."""
    return _GRAMMAR.format(model, params)


def build_schedule(spec, topology: Topology) -> FailureSchedule:
    """The failure schedule of ``spec`` on ``topology``.

    ``spec`` may be a spec string, ``None`` / ``""`` / ``"none"`` (no
    failures), or an already-built :class:`FailureSchedule` (returned
    unchanged).  Events come out time-sorted with a stable, deterministic
    order for ties."""
    if isinstance(spec, FailureSchedule):
        return spec
    if spec is None or (isinstance(spec, str) and spec.strip() in ("", "none")):
        return FailureSchedule(spec="none", events=())
    model, params = parse_failure_spec(spec)
    events = model.build(topology, params)
    for ev in events:
        if ev.kind not in EVENT_KINDS:
            raise ValueError(f"failure model {model.name!r} emitted unknown "
                             f"event kind {ev.kind!r}")
        if ev.time < 0.0:
            raise ValueError(f"failure model {model.name!r} emitted an event "
                             f"before t=0: {ev!r}")
    return FailureSchedule(spec=spec.strip(),
                           events=tuple(sorted(events, key=lambda e: e.time)))


# ------------------------------------------------------------------ view
class FailureView:
    """Mutable failure state plus failure-aware route resolution.

    The engine installs a view via
    :meth:`repro.sim.engine.Simulator.install_failures`: it adopts
    :attr:`route_cache` as its route table and :meth:`lookup` as its
    resolver.  The runtime applies each schedule event through
    :meth:`repro.sim.engine.Simulator.apply_failure_event`, which calls
    :meth:`apply` -- flipping the down sets and clearing the per-epoch
    route caches *in place* (both engines hold direct references).

    Routes: the pristine deterministic route is used whenever it crosses
    no down link; otherwise a breadth-first detour over the surviving
    links (adjacency sorted by neighbor id, so shortest-hop paths with
    deterministic tie-breaks).  Unreachable pairs -- including any pair
    touching a down node -- resolve to the empty route: the leg completes
    with zero link traversals and is counted in :attr:`routes_lost`.

    Counters are per distinct ``(src, dst)`` route resolution per failure
    epoch (both engines cache resolved routes until the next delta, so
    each pair is resolved exactly once per epoch in either engine).
    """

    def __init__(self, topology: Topology, schedule: FailureSchedule):
        self.topology = topology
        self.schedule = schedule
        self.down_links: set = set()
        self.down_nodes: set = set()
        #: Per-epoch resolved-route cache, keyed ``src * n_nodes + dst``.
        #: The engines adopt this dict object; :meth:`apply` clears it in
        #: place so their local bindings stay valid.
        self.route_cache: Dict[int, tuple] = {}
        self._base = get_route_table(topology)
        self._n = topology.n_nodes
        self._adj = None
        self._ends = None
        #: Availability counters (schema v6 columns).
        self.routes_detoured = 0
        self.routes_lost = 0
        self.events_applied = 0

    # --------------------------------------------------------------- deltas
    def apply(self, event: FailureEvent) -> None:
        """Apply one topology delta and start a fresh route epoch."""
        kind = event.kind
        if kind == "link_down":
            self.down_links.add(event.target)
        elif kind == "link_up":
            self.down_links.discard(event.target)
        elif kind == "node_down":
            self.down_nodes.add(event.target)
        elif kind == "node_up":
            self.down_nodes.discard(event.target)
        else:
            raise ValueError(f"unknown failure event kind {event.kind!r}")
        self.events_applied += 1
        self.route_cache.clear()

    # --------------------------------------------------------------- routes
    def _tables(self):
        """Lazy adjacency ``node -> [(neighbor, link_id)]`` (sorted) and
        link endpoints, built once from ``topology.iter_links()``."""
        if self._adj is None:
            adj: List[list] = [[] for _ in range(self._n)]
            ends: Dict[int, Tuple[int, int]] = {}
            for link, u, v in self.topology.iter_links():
                adj[u].append((v, link))
                ends[link] = (u, v)
            for lst in adj:
                lst.sort()
            self._adj = adj
            self._ends = ends
        return self._adj, self._ends

    def link_usable(self, link: int) -> bool:
        """Whether a message may traverse ``link`` right now (a down node
        takes all its incident links down)."""
        if link in self.down_links:
            return False
        if not self.down_nodes:
            return True
        _, ends = self._tables()
        u, v = ends[link]
        return u not in self.down_nodes and v not in self.down_nodes

    def lookup(self, src: int, dst: int) -> tuple:
        """Failure-aware route: the pristine route when clean, else a
        deterministic detour (or the empty route when unreachable).  The
        result is cached for the rest of the epoch."""
        links = self._base.lookup(src, dst)
        if self.down_links or self.down_nodes:
            for link in links:
                if not self.link_usable(link):
                    links = self._detour(src, dst)
                    break
        self.route_cache[src * self._n + dst] = links
        return links

    def _detour(self, src: int, dst: int) -> tuple:
        """Shortest surviving path ``src -> dst`` (BFS, deterministic);
        ``()`` when no such path exists."""
        down_nodes = self.down_nodes
        if src in down_nodes or dst in down_nodes:
            self.routes_lost += 1
            return ()
        adj, _ = self._tables()
        down_links = self.down_links
        prev: Dict[int, Optional[Tuple[int, int]]] = {src: None}
        frontier = [src]
        while frontier:
            nxt = []
            for u in frontier:
                for v, link in adj[u]:
                    if v in prev or link in down_links or v in down_nodes:
                        continue
                    prev[v] = (u, link)
                    if v == dst:
                        path = []
                        while v != src:
                            v, hop = prev[v]
                            path.append(hop)
                        path.reverse()
                        self.routes_detoured += 1
                        return tuple(path)
                    nxt.append(v)
            frontier = nxt
        self.routes_lost += 1
        return ()


# ------------------------------------------------------- built-in models
def _build_none(topology: Topology, params: Dict[str, Any]) -> List[FailureEvent]:
    return []


def _validate_fraction(model: str, key: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"failure model {model!r}: {key} must be within [0.0, 1.0], "
            f"got {value}"
        )


def _validate_linkflap(params: Dict[str, Any]) -> None:
    _validate_fraction("linkflap", "rate", params["rate"])
    if params["horizon"] <= 0.0:
        raise ValueError(
            f"failure model 'linkflap': horizon must be > 0, got {params['horizon']}"
        )
    if params["down"] < 0.0:
        raise ValueError(
            f"failure model 'linkflap': down must be >= 0 (0 = links stay "
            f"down), got {params['down']}"
        )


def _build_linkflap(topology: Topology, params: Dict[str, Any]) -> List[FailureEvent]:
    """``rate`` of the directed links go down at uniform times in
    ``(0, horizon)``; each comes back after ``down * horizon`` seconds
    (``down=0`` keeps them down for good)."""
    rng = random.Random(params["seed"])
    horizon = params["horizon"]
    n_links = topology.n_links
    count = 0 if params["rate"] <= 0.0 else max(1, round(params["rate"] * n_links))
    count = min(count, n_links)
    events: List[FailureEvent] = []
    for link in sorted(rng.sample(range(n_links), count)):
        t_down = rng.uniform(0.0, horizon)
        events.append(FailureEvent(t_down, "link_down", link))
        if params["down"] > 0.0:
            events.append(FailureEvent(t_down + params["down"] * horizon, "link_up", link))
    return events


def _validate_churn(params: Dict[str, Any]) -> None:
    _validate_fraction("churn", "nodes", params["nodes"])
    if params["horizon"] <= 0.0:
        raise ValueError(
            f"failure model 'churn': horizon must be > 0, got {params['horizon']}"
        )
    if params["revive"] < 0.0:
        raise ValueError(
            f"failure model 'churn': revive must be >= 0 (0 = nodes stay "
            f"dead), got {params['revive']}"
        )


def _build_churn(topology: Topology, params: Dict[str, Any]) -> List[FailureEvent]:
    """``nodes`` of the processors fail-stop at uniform times in
    ``(0, horizon)`` (at least one processor always survives); each is
    revived after ``revive * horizon`` seconds (``revive=0`` keeps them
    dead)."""
    rng = random.Random(params["seed"])
    horizon = params["horizon"]
    n = topology.n_nodes
    count = 0 if params["nodes"] <= 0.0 else max(1, round(params["nodes"] * n))
    count = min(count, n - 1)
    events: List[FailureEvent] = []
    for proc in sorted(rng.sample(range(n), count)):
        t_down = rng.uniform(0.0, horizon)
        events.append(FailureEvent(t_down, "node_down", proc))
        if params["revive"] > 0.0:
            events.append(FailureEvent(t_down + params["revive"] * horizon, "node_up", proc))
    return events


def _validate_single(kind: str, params: Dict[str, Any]) -> None:
    key = "link" if kind == "linkdown" else "node"
    if params[key] < 0:
        raise ValueError(f"failure model {kind!r}: {key} must be >= 0, got {params[key]}")
    if params["at"] < 0.0:
        raise ValueError(f"failure model {kind!r}: at must be >= 0, got {params['at']}")


def _build_linkdown(topology: Topology, params: Dict[str, Any]) -> List[FailureEvent]:
    link = params["link"]
    if link >= topology.n_links:
        raise ValueError(
            f"failure model 'linkdown': link {link} out of range "
            f"(topology has {topology.n_links} directed links)"
        )
    events = [FailureEvent(params["at"], "link_down", link)]
    if params["up"] > params["at"]:
        events.append(FailureEvent(params["up"], "link_up", link))
    return events


def _build_nodedown(topology: Topology, params: Dict[str, Any]) -> List[FailureEvent]:
    node = params["node"]
    if node >= topology.n_nodes:
        raise ValueError(
            f"failure model 'nodedown': node {node} out of range "
            f"(topology has {topology.n_nodes} processors)"
        )
    events = [FailureEvent(params["at"], "node_down", node)]
    if params["up"] > params["at"]:
        events.append(FailureEvent(params["up"], "node_up", node))
    return events


def _register_builtins() -> None:
    register_failure_model(FailureModel(
        name="none",
        description="no failures (the static network of the paper)",
        build=_build_none,
    ))
    register_failure_model(FailureModel(
        name="linkflap",
        description="a fraction of links goes down at random times "
                    "(rate positional, seed=, horizon=, down=)",
        defaults={"rate": 0.01, "seed": 0, "horizon": 0.01, "down": 0.5},
        positional="rate",
        build=_build_linkflap,
        validate=_validate_linkflap,
    ))
    register_failure_model(FailureModel(
        name="churn",
        description="a fraction of processors fail-stops at random times "
                    "(nodes positional, seed=, horizon=, revive=)",
        defaults={"nodes": 0.05, "seed": 0, "horizon": 0.01, "revive": 0.0},
        positional="nodes",
        build=_build_churn,
        validate=_validate_churn,
    ))
    register_failure_model(FailureModel(
        name="linkdown",
        description="one precise link failure (link=, at=, up=)",
        defaults={"link": 0, "at": 0.0, "up": -1.0},
        build=_build_linkdown,
        validate=lambda p: _validate_single("linkdown", p),
    ))
    register_failure_model(FailureModel(
        name="nodedown",
        description="one precise node failure (node=, at=, up=)",
        defaults={"node": 0, "at": 0.0, "up": -1.0},
        build=_build_nodedown,
        validate=lambda p: _validate_single("nodedown", p),
    ))


_register_builtins()
