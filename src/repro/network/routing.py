"""Dimension-by-dimension order routing.

The GCel's wormhole router transmits messages along *dimension-order* paths:
the unique shortest path that first travels along dimension 1 and then along
dimension 2.  The theoretical analysis of the access tree strategy assumes
exactly these paths, and both the DIVA protocols and the hand-optimized
baselines in the paper route every message this way.

We fix dimension 1 = columns (horizontal, "x-first") and dimension 2 = rows.
The choice is symmetric for the congestion bounds; it only has to be applied
consistently, which this module guarantees by being the single source of
routes for the whole package.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from .mesh import Mesh2D

__all__ = ["route_links", "route_nodes", "path_length"]


def path_length(mesh: Mesh2D, src: int, dst: int) -> int:
    """Number of links on the dimension-order path (== Manhattan distance)."""
    return mesh.manhattan(src, dst)


def _route_links_uncached(mesh: Mesh2D, src: int, dst: int) -> Tuple[int, ...]:
    r1, c1 = mesh.coord(src)
    r2, c2 = mesh.coord(dst)
    links: List[int] = []
    # dimension 1: columns (x-first)
    if c2 > c1:
        links.extend(mesh.h_link(r1, c, eastbound=True) for c in range(c1, c2))
    elif c2 < c1:
        links.extend(mesh.h_link(r1, c - 1, eastbound=False) for c in range(c1, c2, -1))
    # dimension 2: rows
    if r2 > r1:
        links.extend(mesh.v_link(r, c2, southbound=True) for r in range(r1, r2))
    elif r2 < r1:
        links.extend(mesh.v_link(r - 1, c2, southbound=False) for r in range(r1, r2, -1))
    return tuple(links)


@lru_cache(maxsize=1 << 20)
def _route_cache(rows: int, cols: int, src: int, dst: int) -> Tuple[int, ...]:
    return _route_links_uncached(Mesh2D(rows, cols), src, dst)


def route_links(mesh: Mesh2D, src: int, dst: int) -> Tuple[int, ...]:
    """Directed link ids of the dimension-order (x-first) path ``src -> dst``.

    The result is cached: simulations route the same processor pairs over and
    over (tree edges, home round-trips), and path computation dominated the
    profile before caching.

    >>> m = Mesh2D(2, 3)
    >>> len(route_links(m, m.node(0, 0), m.node(1, 2)))
    3
    >>> route_links(m, 4, 4)
    ()
    """
    return _route_cache(mesh.rows, mesh.cols, src, dst)


def route_nodes(mesh: Mesh2D, src: int, dst: int) -> List[int]:
    """Node ids visited by the dimension-order path, endpoints included."""
    nodes = [src]
    for link in route_links(mesh, src, dst):
        nodes.append(mesh.link_endpoints(link)[1])
    return nodes
