"""Deterministic routing: per-topology route tables, one entry point.

The GCel's wormhole router transmits messages along *dimension-order*
paths: the unique shortest path that first travels along dimension 1 and
then along dimension 2.  The theoretical analysis of the access tree
strategy assumes exactly these deterministic oblivious paths, and both the
DIVA protocols and the hand-optimized baselines route every message this
way.  The topology-generic analogues keep that discipline: shortest-wrap
dimension-order on the torus, e-cube on the hypercube.

Each :class:`~repro.network.topology.Topology` implements the raw path
computation (:meth:`~repro.network.topology.Topology.compute_route`); this
module adds the caching and is the single source of routes for the whole
package -- simulations route the same processor pairs over and over (tree
edges, home round-trips), and path computation dominated the profile
before caching.

Caching lives in per-topology :class:`RouteTable` objects rather than one
global ``lru_cache``: the simulator grabs its topology's table once and
then resolves every route with a single integer-keyed dict lookup, instead
of hashing the topology dataclass on every message leg (which was the
second-largest cost of ``send_leg`` before the overhaul).  Tables for
node counts up to :data:`DENSE_NODE_LIMIT` are unbounded (at most ``P**2``
routed pairs ever materialize, and only pairs actually routed are stored).

Above :data:`DENSE_NODE_LIMIT` a table stops being the right trade: route
tuples average ``diameter / 3`` links, so at ``2^17`` nodes a populated
cache measures in gigabytes, and the historical FIFO-bounded fallback
silently thrashed on revisited routes.  All shipped topologies have
*closed-form* dimension-order / e-cube routing, so large machines use an
:class:`AlgebraicRouter` instead: the same ``lookup`` surface, but every
route is recomputed on demand from the coordinates -- O(1) memory, no
eviction cliff.  :func:`get_route_table` picks the representation; the
threshold is the single dense/sparse switch the statistics layer
(:mod:`repro.network.stats`) and the simulator's C kernel share.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple, Union

from .topology import Topology

__all__ = [
    "DENSE_NODE_LIMIT",
    "AlgebraicRouter",
    "RouteTable",
    "Router",
    "get_route_table",
    "path_length",
    "route_links",
    "route_nodes",
]

log = logging.getLogger(__name__)

#: Up to this many nodes a topology's table is unbounded ("dense"): every
#: routed pair is kept for the life of the process.  Above it
#: :func:`get_route_table` switches to the :class:`AlgebraicRouter`; the
#: statistics layer keys its dense/sparse accumulator switch off the same
#: constant, so "large machine" means one thing package-wide.
DENSE_NODE_LIMIT = 4096

#: Entry bound of explicitly FIFO-bounded tables (legacy mode; see
#: :class:`RouteTable`).
_BOUNDED_ENTRIES = 1 << 20

#: One-time-warning latch of the FIFO-bounded degradation path.
_warned_bounded = False


class RouteTable:
    """Route cache of one topology: ``(src, dst) -> directed link ids``.

    Keys are the dense scalars ``src * n_nodes + dst`` so lookups stay a
    single int-keyed dict access on the simulator's hot path (the
    :class:`~repro.sim.engine.Simulator` reads :attr:`routes` directly).
    With ``max_entries`` set, insertion beyond the bound evicts the oldest
    entry (FIFO -- deterministic, and correctness-neutral since entries
    are pure functions of their key).
    """

    __slots__ = ("topology", "max_entries", "routes", "_n")

    def __init__(self, topology: Topology, max_entries: Optional[int] = None):
        if max_entries is None and topology.n_nodes > DENSE_NODE_LIMIT:
            # Legacy degradation path: an unbounded table above the dense
            # limit would grow into gigabytes, and the FIFO bound thrashes
            # on revisited routes (every eviction is a future recompute).
            # get_route_table() auto-selects the AlgebraicRouter instead;
            # warn -- once -- anyone constructing this mode directly.
            global _warned_bounded
            if not _warned_bounded:
                _warned_bounded = True
                log.warning(
                    "RouteTable(%s): %d nodes exceeds DENSE_NODE_LIMIT=%d; "
                    "the FIFO-bounded table degrades throughput on revisited "
                    "routes -- use AlgebraicRouter (get_route_table() "
                    "auto-selects it above the limit)",
                    topology.label, topology.n_nodes, DENSE_NODE_LIMIT,
                )
            max_entries = _BOUNDED_ENTRIES
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.topology = topology
        self.max_entries = max_entries
        #: The raw cache; hot-path readers index it with ``src * n + dst``
        #: and fall back to :meth:`lookup` on a miss.
        self.routes: Dict[int, Tuple[int, ...]] = {}
        self._n = topology.n_nodes

    def __len__(self) -> int:
        return len(self.routes)

    def key(self, src: int, dst: int) -> int:
        """Dense scalar cache key of the pair ``(src, dst)``."""
        return src * self._n + dst

    def lookup(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed link ids of the path ``src -> dst`` (cached)."""
        routes = self.routes
        key = src * self._n + dst
        route = routes.get(key)
        if route is None:
            route = self.topology.compute_route(src, dst)
            if self.max_entries is not None and len(routes) >= self.max_entries:
                del routes[next(iter(routes))]
            routes[key] = route
        return route


class AlgebraicRouter:
    """Route source that *computes* instead of storing: same ``lookup``
    surface as :class:`RouteTable`, O(1) memory at any machine size.

    All shipped topologies route in closed form (dimension-order on the
    mesh, shortest-wrap dimension-order on the torus, e-cube on the
    hypercube), so above :data:`DENSE_NODE_LIMIT` recomputing a route on
    demand beats caching it: route tuples average hundreds of links at
    ``2^17`` nodes, and any bounded cache either explodes or thrashes.

    ``routes`` is a permanently empty dict so the simulator's hot-path
    probe (``routes.get(key)`` then ``lookup`` on miss) works unchanged;
    when the C kernel is active it never consults this object at all --
    the same closed forms are mirrored natively (:mod:`repro.sim._ckern`).
    """

    __slots__ = ("topology", "routes", "max_entries", "_n", "_compute")

    def __init__(self, topology: Topology):
        self.topology = topology
        #: Always empty; present so hot-path readers can probe it exactly
        #: like a :class:`RouteTable`'s cache before calling :meth:`lookup`.
        self.routes: Dict[int, Tuple[int, ...]] = {}
        self.max_entries = 0
        self._n = topology.n_nodes
        self._compute = topology.compute_route

    def __len__(self) -> int:
        return 0

    def key(self, src: int, dst: int) -> int:
        """Dense scalar key of the pair (kept for API parity)."""
        return src * self._n + dst

    def lookup(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed link ids of the path ``src -> dst`` (computed fresh)."""
        return self._compute(src, dst)


#: Either route source, by the shared ``lookup``/``routes`` surface.
Router = Union[RouteTable, AlgebraicRouter]

#: One router per topology value (equal topologies share; a torus never
#: shares with the equal-sided mesh -- dataclass equality is class-exact).
_TABLES: Dict[Topology, Router] = {}


def get_route_table(topology: Topology) -> Router:
    """The process-wide route source of ``topology``.

    Dense :class:`RouteTable` up to :data:`DENSE_NODE_LIMIT` nodes, the
    computing :class:`AlgebraicRouter` above it.  This is the one place
    that still hashes the topology; the simulator calls it once at
    construction and keeps the router.
    """
    table = _TABLES.get(topology)
    if table is None:
        if topology.n_nodes > DENSE_NODE_LIMIT:
            table = AlgebraicRouter(topology)
        else:
            table = RouteTable(topology)
        _TABLES[topology] = table
    return table


def path_length(topology: Topology, src: int, dst: int) -> int:
    """Number of links on the deterministic path (== routing distance)."""
    return topology.distance(src, dst)


def route_links(topology: Topology, src: int, dst: int) -> Tuple[int, ...]:
    """Directed link ids of the deterministic path ``src -> dst``.

    >>> from .mesh import Mesh2D
    >>> m = Mesh2D(2, 3)
    >>> len(route_links(m, m.node(0, 0), m.node(1, 2)))
    3
    >>> route_links(m, 4, 4)
    ()
    """
    return get_route_table(topology).lookup(src, dst)


def route_nodes(topology: Topology, src: int, dst: int) -> List[int]:
    """Node ids visited by the deterministic path, endpoints included."""
    nodes = [src]
    for link in route_links(topology, src, dst):
        nodes.append(topology.link_endpoints(link)[1])
    return nodes
