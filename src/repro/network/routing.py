"""Deterministic routing: per-topology route tables, one entry point.

The GCel's wormhole router transmits messages along *dimension-order*
paths: the unique shortest path that first travels along dimension 1 and
then along dimension 2.  The theoretical analysis of the access tree
strategy assumes exactly these deterministic oblivious paths, and both the
DIVA protocols and the hand-optimized baselines route every message this
way.  The topology-generic analogues keep that discipline: shortest-wrap
dimension-order on the torus, e-cube on the hypercube.

Each :class:`~repro.network.topology.Topology` implements the raw path
computation (:meth:`~repro.network.topology.Topology.compute_route`); this
module adds the caching and is the single source of routes for the whole
package -- simulations route the same processor pairs over and over (tree
edges, home round-trips), and path computation dominated the profile
before caching.

Caching lives in per-topology :class:`RouteTable` objects rather than one
global ``lru_cache``: the simulator grabs its topology's table once and
then resolves every route with a single integer-keyed dict lookup, instead
of hashing the topology dataclass on every message leg (which was the
second-largest cost of ``send_leg`` before the overhaul).  Tables for
node counts up to :data:`DENSE_NODE_LIMIT` are unbounded (at most ``P**2``
routed pairs ever materialize, and only pairs actually routed are stored);
larger machines get a bounded table with deterministic FIFO eviction so
memory stays flat on huge sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .topology import Topology

__all__ = [
    "DENSE_NODE_LIMIT",
    "RouteTable",
    "get_route_table",
    "path_length",
    "route_links",
    "route_nodes",
]

#: Up to this many nodes a topology's table is unbounded ("dense"): every
#: routed pair is kept for the life of the process.
DENSE_NODE_LIMIT = 4096

#: Entry bound of tables for topologies above :data:`DENSE_NODE_LIMIT`.
_BOUNDED_ENTRIES = 1 << 20


class RouteTable:
    """Route cache of one topology: ``(src, dst) -> directed link ids``.

    Keys are the dense scalars ``src * n_nodes + dst`` so lookups stay a
    single int-keyed dict access on the simulator's hot path (the
    :class:`~repro.sim.engine.Simulator` reads :attr:`routes` directly).
    With ``max_entries`` set, insertion beyond the bound evicts the oldest
    entry (FIFO -- deterministic, and correctness-neutral since entries
    are pure functions of their key).
    """

    __slots__ = ("topology", "max_entries", "routes", "_n")

    def __init__(self, topology: Topology, max_entries: Optional[int] = None):
        if max_entries is None and topology.n_nodes > DENSE_NODE_LIMIT:
            max_entries = _BOUNDED_ENTRIES
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.topology = topology
        self.max_entries = max_entries
        #: The raw cache; hot-path readers index it with ``src * n + dst``
        #: and fall back to :meth:`lookup` on a miss.
        self.routes: Dict[int, Tuple[int, ...]] = {}
        self._n = topology.n_nodes

    def __len__(self) -> int:
        return len(self.routes)

    def key(self, src: int, dst: int) -> int:
        """Dense scalar cache key of the pair ``(src, dst)``."""
        return src * self._n + dst

    def lookup(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed link ids of the path ``src -> dst`` (cached)."""
        routes = self.routes
        key = src * self._n + dst
        route = routes.get(key)
        if route is None:
            route = self.topology.compute_route(src, dst)
            if self.max_entries is not None and len(routes) >= self.max_entries:
                del routes[next(iter(routes))]
            routes[key] = route
        return route


#: One table per topology value (equal topologies share; a torus never
#: shares with the equal-sided mesh -- dataclass equality is class-exact).
_TABLES: Dict[Topology, RouteTable] = {}


def get_route_table(topology: Topology) -> RouteTable:
    """The process-wide :class:`RouteTable` of ``topology``.

    This is the one place that still hashes the topology; the simulator
    calls it once at construction and keeps the table.
    """
    table = _TABLES.get(topology)
    if table is None:
        table = _TABLES[topology] = RouteTable(topology)
    return table


def path_length(topology: Topology, src: int, dst: int) -> int:
    """Number of links on the deterministic path (== routing distance)."""
    return topology.distance(src, dst)


def route_links(topology: Topology, src: int, dst: int) -> Tuple[int, ...]:
    """Directed link ids of the deterministic path ``src -> dst``.

    >>> from .mesh import Mesh2D
    >>> m = Mesh2D(2, 3)
    >>> len(route_links(m, m.node(0, 0), m.node(1, 2)))
    3
    >>> route_links(m, 4, 4)
    ()
    """
    return get_route_table(topology).lookup(src, dst)


def route_nodes(topology: Topology, src: int, dst: int) -> List[int]:
    """Node ids visited by the deterministic path, endpoints included."""
    nodes = [src]
    for link in route_links(topology, src, dst):
        nodes.append(topology.link_endpoints(link)[1])
    return nodes
