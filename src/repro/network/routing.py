"""Deterministic routing, one cached entry point for every topology.

The GCel's wormhole router transmits messages along *dimension-order*
paths: the unique shortest path that first travels along dimension 1 and
then along dimension 2.  The theoretical analysis of the access tree
strategy assumes exactly these deterministic oblivious paths, and both the
DIVA protocols and the hand-optimized baselines route every message this
way.  The topology-generic analogues keep that discipline: shortest-wrap
dimension-order on the torus, e-cube on the hypercube.

Each :class:`~repro.network.topology.Topology` implements the raw path
computation (:meth:`~repro.network.topology.Topology.compute_route`); this
module adds the memoization and is the single source of routes for the
whole package -- simulations route the same processor pairs over and over
(tree edges, home round-trips), and path computation dominated the profile
before caching.  Topologies are small frozen dataclasses, so they key the
cache directly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from .topology import Topology

__all__ = ["route_links", "route_nodes", "path_length"]


def path_length(topology: Topology, src: int, dst: int) -> int:
    """Number of links on the deterministic path (== routing distance)."""
    return topology.distance(src, dst)


@lru_cache(maxsize=1 << 20)
def _route_cache(topology: Topology, src: int, dst: int) -> Tuple[int, ...]:
    return topology.compute_route(src, dst)


def route_links(topology: Topology, src: int, dst: int) -> Tuple[int, ...]:
    """Directed link ids of the deterministic path ``src -> dst``.

    >>> from .mesh import Mesh2D
    >>> m = Mesh2D(2, 3)
    >>> len(route_links(m, m.node(0, 0), m.node(1, 2)))
    3
    >>> route_links(m, 4, 4)
    ()
    """
    return _route_cache(topology, src, dst)


def route_nodes(topology: Topology, src: int, dst: int) -> List[int]:
    """Node ids visited by the deterministic path, endpoints included."""
    nodes = [src]
    for link in route_links(topology, src, dst):
        nodes.append(topology.link_endpoints(link)[1])
    return nodes
