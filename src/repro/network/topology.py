"""Topology abstraction: the combinatorial network interface.

The paper evaluates the access tree strategy on the Parsytec GCel's 2-D
mesh, but the strategy itself -- and everything this package builds on top
of it (routing-timed simulation, per-link traffic statistics, decomposition
trees, access-tree embeddings) -- only needs a small combinatorial
interface.  :class:`Topology` names that interface so new interconnects can
be studied without touching the simulator or the strategies:

* **nodes** -- processors numbered ``0 .. P-1``;
* **dense directed-link ids** -- every directed link has an integer id in
  ``0 .. num_links-1`` so traffic counters and link-availability times live
  in flat arrays;
* **deterministic routing** -- :meth:`compute_route` returns the unique
  link path the machine's router would use (dimension-order on meshes and
  tori, e-cube on hypercubes); the whole package obtains routes through the
  cached :func:`repro.network.routing.route_links`;
* **metadata** -- :attr:`diameter` and :attr:`bisection_links` summarize
  the network for result tables and sanity checks.

Grid view
---------
The mesh decomposition of Section 2 (recursively halving the longer side)
is reused verbatim for every topology through a *grid view*: each topology
exposes ``rows x cols`` coordinates with ``node(r, c)`` / ``coord(n)`` /
``submesh_nodes(...)``.  For :class:`repro.network.mesh.Mesh2D` and
:class:`repro.network.torus.Torus2D` the view is the physical grid.  For
:class:`Hypercube` the view is the degenerate ``P x 1`` column of node ids:
halving a power-of-two id range ``[base, base + size)`` is exactly fixing
the next-highest address bit, so the paper's binary decomposition
specializes to the classic subcube recursion -- every decomposition-tree
node is an aligned subcube.

Concrete topologies: :class:`repro.network.mesh.Mesh2D`,
:class:`repro.network.torus.Torus2D`, :class:`Hypercube` (here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "Topology",
    "Hypercube",
    "make_topology",
    "make_topology_nodes",
    "TOPOLOGY_KINDS",
]


class Topology:
    """Abstract network: nodes, dense directed links, deterministic routes.

    Subclasses must provide ``n_nodes``, ``n_links``, ``kind``, ``label``,
    ``distance``, ``compute_route``, ``link_endpoints``, ``neighbors`` and
    the grid view (``rows``, ``cols``, ``node``, ``coord``,
    ``submesh_nodes``); everything else has generic defaults.
    """

    #: Topology family name (``"mesh"``, ``"torus"``, ``"hypercube"``).
    kind: str = "abstract"

    # ------------------------------------------------------------------ nodes
    @property
    def n_nodes(self) -> int:
        """Number of processors ``P``."""
        raise NotImplementedError

    def nodes(self) -> range:
        """All node ids."""
        return range(self.n_nodes)

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two nodes under the topology's routing."""
        raise NotImplementedError

    def neighbors(self, node: int) -> List[int]:
        """Nodes one link away from ``node`` (deterministic order)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ links
    @property
    def n_links(self) -> int:
        """Total number of *directed* links."""
        raise NotImplementedError

    @property
    def num_links(self) -> int:
        """Alias of :attr:`n_links` (flat-array sizing in the simulator)."""
        return self.n_links

    def link_endpoints(self, link: int) -> Tuple[int, int]:
        """``(src_node, dst_node)`` of a directed link id."""
        raise NotImplementedError

    def iter_links(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(link_id, src, dst)`` for every directed link."""
        for link in range(self.n_links):
            src, dst = self.link_endpoints(link)
            yield link, src, dst

    def compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed link ids of the deterministic route ``src -> dst``.

        Uncached; production code goes through the memoizing
        :func:`repro.network.routing.route_links`.
        """
        raise NotImplementedError

    # --------------------------------------------------------------- metadata
    @property
    def label(self) -> str:
        """Short human-readable identity used in result tables/JSON."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""
        raise NotImplementedError

    @property
    def bisection_links(self) -> int:
        """Directed links crossing the canonical halving cut."""
        raise NotImplementedError


@dataclass(frozen=True)
class Hypercube(Topology):
    """A ``dim``-dimensional binary hypercube of ``2^dim`` processors.

    Node ids are the natural binary addresses: nodes ``a`` and ``b`` are
    neighbours iff ``a ^ b`` has exactly one bit set.  Every node has
    ``dim`` outgoing directed links, one per dimension, with the dense id
    layout ``link(node, d) = node * dim + d``.

    Routing is **e-cube** (dimension-order): address bits are corrected
    from dimension 0 upwards, the deterministic oblivious routing of real
    hypercube machines and the analogue of the mesh's x-first paths.

    Grid view: the ``P x 1`` column of node ids (see the module docstring);
    ``submesh_nodes`` therefore only ever describes aligned subcubes when
    called by the decomposition builder.

    >>> h = Hypercube(3)
    >>> h.n_nodes, h.n_links, h.diameter
    (8, 24, 3)
    >>> h.compute_route(0b000, 0b101)  # dim 0 from node 0, dim 2 from node 1
    (0, 5)
    """

    dim: int

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {self.dim}")

    kind = "hypercube"

    # ------------------------------------------------------------------ nodes
    @property
    def n_nodes(self) -> int:
        return 1 << self.dim

    def distance(self, a: int, b: int) -> int:
        """Hamming distance of the two addresses."""
        self._check_node(a)
        self._check_node(b)
        return bin(a ^ b).count("1")

    def neighbors(self, node: int) -> List[int]:
        self._check_node(node)
        return [node ^ (1 << d) for d in range(self.dim)]

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} outside hypercube of {self.n_nodes} nodes")

    # ---------------------------------------------------------------- grid view
    @property
    def rows(self) -> int:
        return self.n_nodes

    @property
    def cols(self) -> int:
        return 1

    def node(self, row: int, col: int) -> int:
        if col != 0 or not (0 <= row < self.n_nodes):
            raise ValueError(
                f"coordinate ({row},{col}) outside the {self.n_nodes}x1 "
                "grid view of the hypercube"
            )
        return row

    def coord(self, node: int) -> Tuple[int, int]:
        self._check_node(node)
        return node, 0

    def submesh_nodes(self, row0: int, col0: int, rows: int, cols: int) -> List[int]:
        if rows < 1 or cols != 1 or col0 != 0:
            raise ValueError("hypercube regions are id ranges: need cols == 1")
        if row0 < 0 or row0 + rows > self.n_nodes:
            raise ValueError("region exceeds hypercube bounds")
        return list(range(row0, row0 + rows))

    # ------------------------------------------------------------------ links
    @property
    def n_links(self) -> int:
        return self.dim * self.n_nodes

    def dim_link(self, node: int, d: int) -> int:
        """Directed link id from ``node`` across dimension ``d``."""
        self._check_node(node)
        if not (0 <= d < self.dim):
            raise ValueError(f"dimension {d} outside 0..{self.dim - 1}")
        return node * self.dim + d

    def link_endpoints(self, link: int) -> Tuple[int, int]:
        if not (0 <= link < self.n_links):
            raise ValueError(f"link {link} outside 0..{self.n_links - 1}")
        node, d = divmod(link, self.dim)
        return node, node ^ (1 << d)

    def compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """E-cube route: correct differing address bits lowest dimension
        first; exactly ``distance(src, dst)`` links."""
        self._check_node(src)
        self._check_node(dst)
        links: List[int] = []
        cur = src
        diff = src ^ dst
        for d in range(self.dim):
            if diff & (1 << d):
                links.append(cur * self.dim + d)
                cur ^= 1 << d
        return tuple(links)

    # --------------------------------------------------------------- metadata
    @property
    def label(self) -> str:
        return f"hypercube-{self.dim}"

    @property
    def diameter(self) -> int:
        return self.dim

    @property
    def bisection_links(self) -> int:
        # Cutting the highest dimension: every node crosses via exactly one
        # directed link per direction.
        return self.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(dim={self.dim}, P={self.n_nodes})"


#: Topology families accepted by :func:`make_topology` (and the CLI axis).
TOPOLOGY_KINDS = ("mesh", "torus", "hypercube")


def make_topology(kind: str, side: int) -> Topology:
    """Build a topology of ``side * side`` processors by family name.

    ``side`` is the mesh/torus side length; the matched-node-count
    hypercube has dimension ``2 * log2(side)`` (``side`` must be a power
    of two for ``"hypercube"``).  This is the resolution step behind the
    CLI's ``--topology`` axis and the cross-topology experiments, which
    compare strategies at equal ``P``.
    """
    if kind == "mesh":
        from .mesh import Mesh2D

        return Mesh2D(side, side)
    if kind == "torus":
        from .torus import Torus2D

        return Torus2D(side, side)
    if kind == "hypercube":
        n = side * side
        dim = n.bit_length() - 1
        if n < 2 or (1 << dim) != n:
            raise ValueError(
                f"hypercube needs a power-of-two node count, got side={side} (P={n})"
            )
        return Hypercube(dim)
    raise ValueError(
        f"unknown topology {kind!r}; expected one of {', '.join(TOPOLOGY_KINDS)}"
    )


def make_topology_nodes(kind: str, nodes: int) -> Topology:
    """Build a topology with exactly ``nodes`` processors (power of two).

    This is the resolution step behind the ``xscale`` experiment, which
    sweeps node counts (1024/2048/4096) rather than grid sides.  Odd
    powers of two become the paper's 2:1 rectangles (``32x64``); even
    powers become squares; the hypercube takes ``log2(nodes)`` dimensions.
    """
    if nodes < 2 or nodes & (nodes - 1):
        raise ValueError(f"node count must be a power of two >= 2, got {nodes}")
    dim = nodes.bit_length() - 1
    if kind == "hypercube":
        return Hypercube(dim)
    rows = 1 << (dim // 2)
    cols = nodes // rows
    if kind == "mesh":
        from .mesh import Mesh2D

        return Mesh2D(rows, cols)
    if kind == "torus":
        from .torus import Torus2D

        return Torus2D(rows, cols)
    raise ValueError(
        f"unknown topology {kind!r}; expected one of {', '.join(TOPOLOGY_KINDS)}"
    )
