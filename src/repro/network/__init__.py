"""Network substrate: topologies, routing, traffic statistics, cost model."""

from .machine import GCEL, ZERO_COST, MachineModel
from .mesh import Coord, Mesh2D
from .routing import path_length, route_links, route_nodes
from .stats import LinkStats, PhaseStats, StatsSnapshot
from .topology import TOPOLOGY_KINDS, Hypercube, Topology, make_topology
from .torus import Torus2D

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "make_topology",
    "TOPOLOGY_KINDS",
    "Coord",
    "route_links",
    "route_nodes",
    "path_length",
    "LinkStats",
    "StatsSnapshot",
    "PhaseStats",
    "MachineModel",
    "GCEL",
    "ZERO_COST",
]
