"""Mesh network substrate: topology, routing, traffic statistics, cost model."""

from .machine import GCEL, ZERO_COST, MachineModel
from .mesh import Coord, Mesh2D
from .routing import path_length, route_links, route_nodes
from .stats import LinkStats, PhaseStats, StatsSnapshot

__all__ = [
    "Mesh2D",
    "Coord",
    "route_links",
    "route_nodes",
    "path_length",
    "LinkStats",
    "StatsSnapshot",
    "PhaseStats",
    "MachineModel",
    "GCEL",
    "ZERO_COST",
]
