"""2-D mesh topology.

The paper's experimental platform is the Parsytec GCel, whose nodes are
connected by a 32x32 mesh.  This module provides the combinatorial side of
that network: node numbering, coordinates, and *directed* links with dense
integer identifiers so that traffic statistics and link-availability times
can live in flat numpy arrays.

Conventions
-----------
* Processors are numbered ``0 .. P-1`` in **row-major** order, exactly as the
  paper assumes for its modified access-tree embedding and for the bitonic
  wire <-> processor assignment.
* A node's coordinate is ``(row, col)`` with ``0 <= row < rows`` and
  ``0 <= col < cols``.
* Every physical wire between neighbouring nodes is represented by **two**
  directed links (the paper measured that the GCel achieves full bandwidth
  in both directions of a link almost independently, so the two directions
  are independent resources).

Directed link id layout (``rows = R``, ``cols = C``)::

    [0,              R*(C-1))    : horizontal, eastbound  (r, c) -> (r, c+1)
    [R*(C-1),      2*R*(C-1))    : horizontal, westbound  (r, c+1) -> (r, c)
    [2*R*(C-1),    2*R*(C-1) +   (R-1)*C) : vertical, southbound (r, c) -> (r+1, c)
    [... + (R-1)*C, ... + 2*(R-1)*C)      : vertical, northbound (r+1, c) -> (r, c)

The layout is an implementation detail; use :meth:`Mesh2D.h_link` /
:meth:`Mesh2D.v_link` or :func:`repro.network.routing.route_links` rather
than computing ids by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .topology import Topology

__all__ = ["Mesh2D", "Coord"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Mesh2D(Topology):
    """A ``rows x cols`` mesh of processors.

    Parameters
    ----------
    rows, cols:
        Side lengths.  Both must be at least 1; the paper uses square and
        2:1-rectangular meshes (``8x16``, ``16x32``) but any shape works.

    Examples
    --------
    >>> m = Mesh2D(4, 3)
    >>> m.n_nodes
    12
    >>> m.coord(5)
    (1, 2)
    >>> m.node(1, 2)
    5
    """

    rows: int
    cols: int

    kind = "mesh"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh sides must be >= 1, got {self.rows}x{self.cols}")

    # ------------------------------------------------------------------ nodes
    @property
    def n_nodes(self) -> int:
        """Number of processors ``P``."""
        return self.rows * self.cols

    def node(self, row: int, col: int) -> int:
        """Row-major node id of coordinate ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coordinate ({row},{col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def coord(self, node: int) -> Coord:
        """``(row, col)`` of a node id."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} outside mesh of {self.n_nodes} nodes")
        return divmod(node, self.cols)

    def nodes(self) -> range:
        """All node ids."""
        return range(self.n_nodes)

    def manhattan(self, a: int, b: int) -> int:
        """Manhattan distance on the (non-wrapping) grid.  For the plain
        mesh this is also the routing distance; subclasses with extra links
        (:class:`repro.network.torus.Torus2D`) override :meth:`distance`
        but keep ``manhattan`` with this fixed meaning."""
        ra, ca = self.coord(a)
        rb, cb = self.coord(b)
        return abs(ra - rb) + abs(ca - cb)

    def distance(self, a: int, b: int) -> int:
        """Hop distance under minimal (dimension-order) routing."""
        return self.manhattan(a, b)

    def neighbors(self, node: int) -> List[int]:
        """Grid neighbours in E, W, S, N order."""
        r, c = self.coord(node)
        out: List[int] = []
        if c + 1 < self.cols:
            out.append(self.node(r, c + 1))
        if c > 0:
            out.append(self.node(r, c - 1))
        if r + 1 < self.rows:
            out.append(self.node(r + 1, c))
        if r > 0:
            out.append(self.node(r - 1, c))
        return out

    # ------------------------------------------------------------------ links
    @property
    def n_h_links_per_dir(self) -> int:
        return self.rows * (self.cols - 1)

    @property
    def n_v_links_per_dir(self) -> int:
        return (self.rows - 1) * self.cols

    @property
    def n_links(self) -> int:
        """Total number of *directed* links."""
        return 2 * (self.n_h_links_per_dir + self.n_v_links_per_dir)

    def h_link(self, row: int, col: int, eastbound: bool) -> int:
        """Directed link id of the horizontal wire between ``(row, col)`` and
        ``(row, col+1)``; ``eastbound`` selects the ``c -> c+1`` direction."""
        if not (0 <= row < self.rows and 0 <= col < self.cols - 1):
            raise ValueError(f"no horizontal wire at ({row},{col}) in {self.rows}x{self.cols}")
        base = row * (self.cols - 1) + col
        return base if eastbound else base + self.n_h_links_per_dir

    def v_link(self, row: int, col: int, southbound: bool) -> int:
        """Directed link id of the vertical wire between ``(row, col)`` and
        ``(row+1, col)``; ``southbound`` selects the ``r -> r+1`` direction."""
        if not (0 <= row < self.rows - 1 and 0 <= col < self.cols):
            raise ValueError(f"no vertical wire at ({row},{col}) in {self.rows}x{self.cols}")
        off = 2 * self.n_h_links_per_dir
        base = row * self.cols + col
        return off + (base if southbound else base + self.n_v_links_per_dir)

    def link_endpoints(self, link: int) -> Tuple[int, int]:
        """``(src_node, dst_node)`` of a directed link id (inverse of
        :meth:`h_link`/:meth:`v_link`); useful for debugging and plots."""
        nh = self.n_h_links_per_dir
        nv = self.n_v_links_per_dir
        if not (0 <= link < self.n_links):
            raise ValueError(f"link {link} outside 0..{self.n_links - 1}")
        if link < nh:  # east
            row, col = divmod(link, self.cols - 1)
            return self.node(row, col), self.node(row, col + 1)
        if link < 2 * nh:  # west
            row, col = divmod(link - nh, self.cols - 1)
            return self.node(row, col + 1), self.node(row, col)
        if link < 2 * nh + nv:  # south
            row, col = divmod(link - 2 * nh, self.cols)
            return self.node(row, col), self.node(row + 1, col)
        # north
        row, col = divmod(link - 2 * nh - nv, self.cols)
        return self.node(row + 1, col), self.node(row, col)

    def iter_links(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(link_id, src, dst)`` for every directed link."""
        for link in range(self.n_links):
            src, dst = self.link_endpoints(link)
            yield link, src, dst

    # ---------------------------------------------------------------- routing
    def compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Dimension-order (x-first) path ``src -> dst`` (uncached; use
        :func:`repro.network.routing.route_links`)."""
        r1, c1 = self.coord(src)
        r2, c2 = self.coord(dst)
        links: List[int] = []
        # dimension 1: columns (x-first)
        if c2 > c1:
            links.extend(self.h_link(r1, c, eastbound=True) for c in range(c1, c2))
        elif c2 < c1:
            links.extend(self.h_link(r1, c - 1, eastbound=False) for c in range(c1, c2, -1))
        # dimension 2: rows
        if r2 > r1:
            links.extend(self.v_link(r, c2, southbound=True) for r in range(r1, r2))
        elif r2 < r1:
            links.extend(self.v_link(r - 1, c2, southbound=False) for r in range(r1, r2, -1))
        return tuple(links)

    # --------------------------------------------------------------- metadata
    @property
    def label(self) -> str:
        """Table/JSON identity; the historic ``RxC`` form is kept so mesh
        results stay byte-identical."""
        return f"{self.rows}x{self.cols}"

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    @property
    def bisection_links(self) -> int:
        """Directed links crossing the halving cut of the longer side."""
        return 2 * min(self.rows, self.cols)

    # --------------------------------------------------------------- regions
    def submesh_nodes(self, row0: int, col0: int, rows: int, cols: int) -> list[int]:
        """Node ids of the ``rows x cols`` submesh whose top-left corner is
        ``(row0, col0)``, in row-major order."""
        if rows < 1 or cols < 1:
            raise ValueError("submesh sides must be >= 1")
        if row0 < 0 or col0 < 0 or row0 + rows > self.rows or col0 + cols > self.cols:
            raise ValueError("submesh exceeds mesh bounds")
        return [self.node(r, c) for r in range(row0, row0 + rows) for c in range(col0, col0 + cols)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh2D({self.rows}x{self.cols}, P={self.n_nodes})"
