"""Experiment runners: one function per figure of the paper's evaluation.

Every runner returns a list of row dicts (strategy, sweep parameter,
congestion, time, ratios) ready for :func:`repro.analysis.tables.format_table`
and for the benchmark harness's shape assertions.

Structure: each runner is a thin loop over module-level **cell functions**
(``*_cell``) -- pure functions of JSON-serializable parameters that each
perform one independent simulation run (or one tightly coupled group such
as a hand-optimized baseline plus the strategies measured against it) and
return serializable rows.  The cell functions are the unit of work of the
:mod:`repro.exp` orchestrator: they are what gets sharded across the
``multiprocessing`` pool and content-addressed by the result cache, so a
runner must never hide a loop inside a cell.

Scaling: the runners take explicit parameters with defaults chosen so the
whole suite finishes in minutes of pure Python; :func:`scale_params`
resolves the ``REPRO_SCALE`` environment variable (``quick`` / ``default``
/ ``paper``) into the per-figure parameter sets, where ``paper`` is the
paper's exact configuration (Barnes-Hut at paper scale runs for hours in
pure Python -- documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.registry import get_strategy, parse_strategy_spec
from ..metrics import MetricsBundle
from ..network.failures import parse_failure_spec
from ..network.machine import GCEL, MachineModel
from ..network.mesh import Mesh2D
from ..network.topology import make_topology, make_topology_nodes
from ..runtime.results import RunResult
from ..workloads import get_workload

__all__ = [
    "scale_params",
    "fig2_single_block_flow",
    "fig3_matmul_blocksize",
    "fig4_matmul_network",
    "fig6_bitonic_keys",
    "fig7_bitonic_network",
    "fig8_barneshut_bodies",
    "fig9_fig10_phase_views",
    "fig11_barneshut_scaling",
    "ablation_tree_degree",
    "ablation_embedding",
    "ablation_barrier",
    "ablation_invalidation",
    "ablation_remapping",
    "bounded_memory_experiment",
    # cell functions (the repro.exp orchestrator's unit of work)
    "fig2_cell",
    "matmul_cell",
    "bitonic_cell",
    "barneshut_cell",
    "barneshut_scaling_cell",
    "fig9_rows_from_cells",
    "fig10_rows_from_cells",
    "tree_degree_cell",
    "embedding_cell",
    "invalidation_cell",
    "remapping_cell",
    "barrier_cell",
    "bounded_memory_cell",
    "synthetic_cell",
    "xscale_cell",
    "xstrat_cell",
    "xcap_cell",
    "xfail_cell",
    "xadapt_cell",
]

Row = Dict[str, object]


def scale_params(figure: str, scale: Optional[str] = None) -> Dict[str, object]:
    """Per-figure parameters for ``quick`` (tests), ``default`` (benches)
    and ``paper`` (the paper's exact sizes)."""
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "default")
    if scale not in ("quick", "default", "paper"):
        raise ValueError(f"REPRO_SCALE must be quick/default/paper, got {scale!r}")
    table: Dict[str, Dict[str, Dict[str, object]]] = {
        "fig2": {
            "quick": dict(side=4, block_entries=256),
            "default": dict(side=16, block_entries=1024),
            "paper": dict(side=16, block_entries=4096),
        },
        "fig3": {
            "quick": dict(side=8, blocks=(64, 256)),
            "default": dict(side=16, blocks=(64, 256, 1024)),
            "paper": dict(side=16, blocks=(64, 256, 1024, 4096)),
        },
        "fig4": {
            "quick": dict(sides=(4, 8), block_entries=256),
            "default": dict(sides=(4, 8, 16), block_entries=1024),
            "paper": dict(sides=(4, 8, 16, 32), block_entries=4096),
        },
        "fig6": {
            "quick": dict(side=8, keys=(256, 1024)),
            "default": dict(side=16, keys=(256, 1024, 4096)),
            "paper": dict(side=16, keys=(256, 1024, 4096, 16384)),
        },
        "fig7": {
            "quick": dict(sides=(4, 8), keys=1024),
            "default": dict(sides=(4, 8, 16), keys=4096),
            "paper": dict(sides=(4, 8, 16, 32), keys=4096),
        },
        "fig8": {
            "quick": dict(side=4, bodies=(128, 256), steps=2, warm=1),
            "default": dict(side=8, bodies=(400, 800, 1200), steps=3, warm=1),
            "paper": dict(
                side=16,
                bodies=(10000, 20000, 30000, 40000, 50000, 60000),
                steps=7,
                warm=2,
            ),
        },
        # Cross-topology experiments: the node count is pinned at 256 (the
        # paper's machine scale: mesh/torus 16x16, hypercube dim 8) at
        # every scale so topology comparisons never degrade to toy sizes;
        # only the per-processor load varies.
        "xtopo": {
            "quick": dict(side=16, keys=64),
            "default": dict(side=16, keys=256),
            "paper": dict(side=16, keys=4096),
        },
        # Cross-workload experiments (synthetic kernels): the node count
        # is pinned at 64 (mesh/torus 8x8, hypercube dim 6) so the three
        # topology families stay comparable at every scale; only the
        # per-processor operation count grows.
        "xwork": {
            "quick": dict(side=8, ops=16),
            "default": dict(side=8, ops=64),
            "paper": dict(side=8, ops=256),
        },
        # Cross-strategy experiment: every registered strategy family on
        # the paper apps and the zipf kernel, topologies swept internally
        # at a pinned 64 nodes (mesh/torus 8x8, hypercube dim 6); --scale
        # grows only the per-processor load.
        "xstrat": {
            "quick": dict(side=8, ops=16, keys=32, block=64),
            "default": dict(side=8, ops=64, keys=256, block=256),
            "paper": dict(side=8, ops=256, keys=1024, block=1024),
        },
        # Capacity-pressure sweep: per-processor copy capacity (in copies
        # of the zipf payload) from unbounded down to severe pressure --
        # the generalization of the paper's Figure 8 replacement kink.
        "xcap": {
            "quick": dict(side=8, ops=16, capacities=(None, 8, 2)),
            "default": dict(side=8, ops=64, capacities=(None, 16, 8, 4, 2)),
            "paper": dict(side=8, ops=256, capacities=(None, 16, 8, 4, 2)),
        },
        # Failure-axis sweep: failure rate x strategy family x topology on
        # the zipf kernel at a pinned 64 nodes.  Horizons are tuned to the
        # measured zipf virtual end time per scale (quick ~0.11-0.14 s,
        # default ~0.38-0.64 s) so the events land inside the run; every
        # spec pins its seed for cacheable, reproducible schedules.
        "xfail": {
            "quick": dict(side=8, ops=16, failures=(
                "none",
                "linkflap:rate=0.05:seed=7:horizon=0.05:down=0.5",
                "churn:nodes=0.05:seed=7:horizon=0.05",
            )),
            "default": dict(side=8, ops=64, failures=(
                "none",
                "linkflap:rate=0.02:seed=7:horizon=0.2:down=0.5",
                "linkflap:rate=0.05:seed=7:horizon=0.2:down=0.5",
                "churn:nodes=0.05:seed=7:horizon=0.2",
                "churn:nodes=0.1:seed=7:horizon=0.2",
            )),
            "paper": dict(side=8, ops=256, failures=(
                "none",
                "linkflap:rate=0.02:seed=7:horizon=0.8:down=0.5",
                "linkflap:rate=0.05:seed=7:horizon=0.8:down=0.5",
                "churn:nodes=0.05:seed=7:horizon=0.8",
                "churn:nodes=0.1:seed=7:horizon=0.8",
            )),
        },
        # Adaptation axis: the hotspot-drift kernel (zipf head rotating
        # mid-run) x strategy family x topology at a pinned 64 nodes;
        # --scale grows the per-processor load and the drift-rate sweep.
        "xadapt": {
            "quick": dict(side=8, ops=16, drifts=(0, 2)),
            "default": dict(side=8, ops=64, drifts=(0, 2, 5)),
            "paper": dict(side=8, ops=256, drifts=(0, 2, 5, 10)),
        },
        # Scale-axis experiment: thousands of nodes (the regime where the
        # paper's asymptotic congestion guarantee is supposed to bite),
        # reachable since the engine hot-path overhaul.  Quick keeps one
        # large machine for smoke coverage; default/paper sweep the full
        # axis with growing per-processor load.  Paper extends past the
        # dense-table limit (2^14) now that routing is algebraic and stats
        # are sparse there; the 2^17 point is nightly-only via --nodes
        # (see EXPERIMENTS.md "Memory ceiling").
        "xscale": {
            "quick": dict(nodes=(1024,), ops=4),
            "default": dict(nodes=(1024, 2048, 4096), ops=16),
            "paper": dict(nodes=(1024, 2048, 4096, 16384), ops=64),
        },
        "fig11": {
            "quick": dict(meshes=((2, 4), (4, 4)), bodies_per_proc=24, steps=2, warm=1),
            "default": dict(
                meshes=((4, 4), (4, 8), (8, 8)), bodies_per_proc=50, steps=3, warm=1
            ),
            "paper": dict(
                meshes=((8, 8), (8, 16), (16, 16), (16, 32)),
                bodies_per_proc=200,
                steps=7,
                warm=2,
            ),
        },
    }
    return dict(table[figure][scale])


# --------------------------------------------------------------------- fig 2
def fig2_cell(
    strategy: str,
    side: int = 16,
    block_entries: int = 1024,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One Figure 2 cell: distribute ONE block to its row and column under
    ``strategy`` and report total load / congestion / time."""
    from ..runtime.launcher import Runtime

    mesh = Mesh2D(side, side)
    strat = get_strategy(strategy, mesh, seed=seed)
    owner = mesh.node(side // 2, side // 2)
    handles: Dict[str, object] = {}

    def program(env):
        if env.rank == owner:
            handles["x"] = env.create("block", block_entries * machine.word_bytes, value=42)
        yield from env.barrier(phase="distribute")
        r, c = env.coord
        ro, co = env.mesh.coord(owner)
        if (r == ro or c == co) and env.rank != owner:
            v = yield from env.read(handles["x"])
            assert v == 42
        yield from env.barrier(phase="done")

    rt = Runtime(mesh, strat, machine, seed=seed)
    res = rt.run(program)
    return [
        {
            "strategy": strategy,
            "workload": "fig2-flow",
            "mesh": f"{side}x{side}",
            "total_bytes": res.stats.total_bytes,
            "congestion_bytes": res.stats.congestion_bytes,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def fig2_single_block_flow(
    side: int = 16,
    block_entries: int = 1024,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 2 (analytic): the data flow for distributing ONE block to its
    row and column.  The paper derives total load Theta(m*P) for fixed home
    vs Theta(m*sqrtP*logP) for the access tree.  We create a single
    variable on a center processor and let every processor of its row and
    column read it once; total load and congestion are reported."""
    rows: List[Row] = []
    for name in ("fixed-home", "4-ary"):
        rows.extend(
            fig2_cell(name, side=side, block_entries=block_entries, machine=machine, seed=seed)
        )
    return rows


# --------------------------------------------------------------------- fig 3
def matmul_cell(
    side: int,
    block_entries: int,
    strategies: Sequence[str],
    machine: MachineModel = GCEL,
    seed: int = 0,
    embedding: str = "modified",
) -> List[Row]:
    """One matmul cell: the hand-optimized baseline plus every strategy in
    ``strategies`` on one (mesh side, block size) point.  Baseline and
    measurements stay in one cell because the ratios need the baseline."""
    wl = get_workload("matmul")
    mesh = Mesh2D(side, side)
    params = {"block_entries": block_entries}
    base = wl.run(mesh, "handopt", machine=machine, seed=seed, params=params)
    rows: List[Row] = [
        {
            "strategy": "handopt",
            "workload": "matmul",
            "side": side,
            "block": block_entries,
            "congestion_bytes": base.congestion_bytes,
            "time": base.time,
            "congestion_ratio": 1.0,
            "time_ratio": 1.0,
            **base.metrics.to_row(),
        }
    ]
    for name in strategies:
        res = wl.run(
            mesh, name, machine=machine, seed=seed, embedding=embedding, params=params
        )
        rows.append(
            {
                "strategy": name,
                "workload": "matmul",
                "side": side,
                "block": block_entries,
                "congestion_bytes": res.congestion_bytes,
                "time": res.time,
                "congestion_ratio": res.congestion_bytes / base.congestion_bytes,
                "time_ratio": res.time / base.time,
                **res.metrics.to_row(),
            }
        )
    return rows


def fig3_matmul_blocksize(
    side: int = 16,
    blocks: Sequence[int] = (64, 256, 1024, 4096),
    strategies: Sequence[str] = ("fixed-home", "4-ary"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 3: matmul congestion/communication-time ratios vs block size
    on a fixed mesh (communication time: compute charges disabled)."""
    rows: List[Row] = []
    for block in blocks:
        rows.extend(matmul_cell(side, block, strategies, machine, seed))
    return rows


def fig4_matmul_network(
    sides: Sequence[int] = (4, 8, 16, 32),
    block_entries: int = 4096,
    strategies: Sequence[str] = ("fixed-home", "4-ary"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 4: matmul ratios vs network size at a fixed block size."""
    rows: List[Row] = []
    for side in sides:
        rows.extend(matmul_cell(side, block_entries, strategies, machine, seed))
    return rows


# --------------------------------------------------------------------- fig 6
def bitonic_cell(
    side: int,
    keys: int,
    strategies: Sequence[str],
    machine: MachineModel = GCEL,
    seed: int = 0,
    embedding: str = "modified",
    topology: str = "mesh",
) -> List[Row]:
    """One bitonic cell: hand-optimized baseline plus every strategy in
    ``strategies`` on one (topology, side, keys/processor) point.

    ``topology`` selects the interconnect family at ``side * side``
    processors (``"mesh"``, ``"torus"``, ``"hypercube"``); bitonic only
    depends on the decomposition-tree leaf numbering, so it runs unchanged
    on every topology -- the workload behind the cross-topology
    experiments.
    """
    wl = get_workload("bitonic")
    topo = make_topology(topology, side)
    params = {"keys": keys}
    base = wl.run(topo, "handopt", machine=machine, seed=seed, params=params)
    rows: List[Row] = [
        {
            "strategy": "handopt",
            "workload": "bitonic",
            "topology": topology,
            "network": topo.label,
            "nodes": topo.n_nodes,
            "side": side,
            "keys": keys,
            "congestion_bytes": base.congestion_bytes,
            "time": base.time,
            "congestion_ratio": 1.0,
            "time_ratio": 1.0,
            **base.metrics.to_row(),
        }
    ]
    for name in strategies:
        res = wl.run(
            topo, name, machine=machine, seed=seed, embedding=embedding, params=params
        )
        rows.append(
            {
                "strategy": name,
                "workload": "bitonic",
                "topology": topology,
                "network": topo.label,
                "nodes": topo.n_nodes,
                "side": side,
                "keys": keys,
                "congestion_bytes": res.congestion_bytes,
                "time": res.time,
                "congestion_ratio": res.congestion_bytes / base.congestion_bytes,
                "time_ratio": res.time / base.time,
                **res.metrics.to_row(),
            }
        )
    return rows


def fig6_bitonic_keys(
    side: int = 16,
    keys: Sequence[int] = (256, 1024, 4096, 16384),
    strategies: Sequence[str] = ("fixed-home", "2-4-ary"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 6: bitonic congestion/execution-time ratios vs keys/processor."""
    rows: List[Row] = []
    for m in keys:
        rows.extend(bitonic_cell(side, m, strategies, machine, seed))
    return rows


def fig7_bitonic_network(
    sides: Sequence[int] = (4, 8, 16, 32),
    keys: int = 4096,
    strategies: Sequence[str] = ("fixed-home", "2-4-ary"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 7: bitonic ratios vs network size at fixed keys/processor."""
    rows: List[Row] = []
    for side in sides:
        rows.extend(bitonic_cell(side, keys, strategies, machine, seed))
    return rows


# --------------------------------------------------------------------- fig 8
FIG8_STRATEGIES = ("fixed-home", "16-ary", "4-16-ary", "4-ary", "2-ary")


def _barneshut_row(
    mesh: Mesh2D,
    strategy: str,
    bodies: int,
    steps: int,
    warm: int,
    machine: MachineModel,
    seed: int,
) -> Tuple[Row, RunResult]:
    """One Barnes-Hut run with its serializable row, including the phase
    breakdown (tree building / force computation) that Figures 9/10 and the
    Figure 11 communication time derive from."""
    res = get_workload("barneshut").run(
        mesh,
        strategy,
        machine=machine,
        seed=seed,
        params={"bodies": bodies, "steps": steps, "warm": warm},
    )
    row: Row = {
        "strategy": strategy,
        "workload": "barneshut",
        "bodies": bodies,
        "congestion_msgs": res.congestion_msgs,
        "time": res.time,
        **res.metrics.to_row(),
    }
    tb = res.phase("treebuild")
    fc = res.phase("force")
    rt = res.extra.get("runtime")
    acc = rt._phase_acc.get("force") if rt is not None else None
    compute = float(acc.compute.max()) if acc is not None else 0.0
    if tb is not None:
        row["treebuild_congestion_msgs"] = tb.stats.congestion_msgs
        row["treebuild_time"] = tb.time
    if fc is not None:
        row["force_congestion_msgs"] = fc.stats.congestion_msgs
        row["force_time"] = fc.time
        row["force_comm_share"] = 1.0 - (compute / fc.time if fc.time else 0.0)
    row["force_local_compute"] = compute
    return row, res


def barneshut_cell(
    strategy: str,
    bodies: int,
    side: int = 8,
    steps: int = 3,
    warm: int = 1,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One Figure 8 cell: a single (strategy, body count) Barnes-Hut run,
    phase breakdown included so Figures 9/10 are pure projections of the
    same cell (and share its cache entry)."""
    row, _ = _barneshut_row(Mesh2D(side, side), strategy, bodies, steps, warm, machine, seed)
    return [row]


def fig8_barneshut_bodies(
    side: int = 8,
    bodies: Sequence[int] = (400, 800, 1200),
    strategies: Sequence[str] = FIG8_STRATEGIES,
    steps: int = 3,
    warm: int = 1,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 8: Barnes-Hut absolute congestion (messages) and execution
    time vs body count, for all five strategies.  Rows carry the full
    :class:`RunResult` (key ``result``) so Figures 9/10 can be derived
    without re-running."""
    rows: List[Row] = []
    mesh = Mesh2D(side, side)
    for n in bodies:
        for name in strategies:
            row, res = _barneshut_row(mesh, name, n, steps, warm, machine, seed)
            row["result"] = res
            rows.append(row)
    return rows


def fig9_rows_from_cells(rows: Iterable[Row]) -> List[Row]:
    """Figure 9 (tree-building phase) projected from Barnes-Hut cell rows."""
    return [
        {
            "strategy": r["strategy"],
            "workload": "barneshut",
            "bodies": r["bodies"],
            "congestion_msgs": r["treebuild_congestion_msgs"],
            "time": r["treebuild_time"],
            **MetricsBundle.carry_row(r),
        }
        for r in rows
        if "treebuild_congestion_msgs" in r
    ]


def fig10_rows_from_cells(rows: Iterable[Row]) -> List[Row]:
    """Figure 10 (force phase) projected from Barnes-Hut cell rows."""
    return [
        {
            "strategy": r["strategy"],
            "workload": "barneshut",
            "bodies": r["bodies"],
            "congestion_msgs": r["force_congestion_msgs"],
            "time": r["force_time"],
            "local_compute": r["force_local_compute"],
            "comm_share": r["force_comm_share"],
            **MetricsBundle.carry_row(r),
        }
        for r in rows
        if "force_congestion_msgs" in r
    ]


def fig9_fig10_phase_views(fig8_rows: Iterable[Row]) -> Tuple[List[Row], List[Row]]:
    """Figures 9 and 10: per-phase views (tree building / force
    computation) of the Figure 8 runs, including the force phase's local
    computation time (the extra line in Figure 10)."""
    rows = list(fig8_rows)
    return fig9_rows_from_cells(rows), fig10_rows_from_cells(rows)


def barneshut_scaling_cell(
    strategy: str,
    mesh_rows: int,
    mesh_cols: int,
    bodies_per_proc: int,
    steps: int = 3,
    warm: int = 1,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One Figure 11 cell: Barnes-Hut with N = bodies_per_proc * P on one
    (mesh, strategy) point; reports congestion, execution time and
    communication time (execution minus force-phase local computation)."""
    mesh = Mesh2D(mesh_rows, mesh_cols)
    n = bodies_per_proc * mesh.n_nodes
    row, res = _barneshut_row(mesh, strategy, n, steps, warm, machine, seed)
    return [
        {
            "strategy": strategy,
            "workload": "barneshut",
            "mesh": f"{mesh_rows}x{mesh_cols}",
            "procs": mesh.n_nodes,
            "bodies": n,
            "congestion_msgs": res.congestion_msgs,
            "time": res.time,
            "comm_time": res.time - row["force_local_compute"],
            **res.metrics.to_row(),
        }
    ]


def fig11_barneshut_scaling(
    meshes: Sequence[Tuple[int, int]] = ((4, 4), (4, 8), (8, 8)),
    bodies_per_proc: int = 50,
    strategies: Sequence[str] = ("fixed-home", "4-8-ary"),
    steps: int = 3,
    warm: int = 1,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Figure 11: Barnes-Hut scaling with N = bodies_per_proc * P over
    growing meshes; reports congestion, execution time and communication
    time (execution minus force-phase local computation)."""
    rows: List[Row] = []
    for r, c in meshes:
        mesh = Mesh2D(r, c)
        n = bodies_per_proc * mesh.n_nodes
        for name in strategies:
            row, res = _barneshut_row(mesh, name, n, steps, warm, machine, seed)
            rows.append(
                {
                    "strategy": name,
                    "workload": "barneshut",
                    "mesh": f"{r}x{c}",
                    "procs": mesh.n_nodes,
                    "bodies": n,
                    "congestion_msgs": res.congestion_msgs,
                    "time": res.time,
                    "comm_time": res.time - row["force_local_compute"],
                    "result": res,
                    **res.metrics.to_row(),
                }
            )
    return rows


# ----------------------------------------------------------------- ablations
def _sized_workload_run(
    workload: str,
    topology: str,
    side: int,
    strategy: str,
    size: Optional[int],
    machine: MachineModel,
    seed: int,
    embedding: str = "modified",
) -> RunResult:
    """Run any registered workload for an ablation cell, mapping the
    generic ``size`` knob onto the workload's own size parameter
    (``block_entries`` for matmul, ``keys`` for bitonic, ``ops`` for the
    synthetic kernels, ...)."""
    wl = get_workload(workload)
    topo = make_topology(topology, side)
    params: Dict[str, object] = {}
    if size is not None:
        if wl.size_param is None:
            raise ValueError(f"workload {workload!r} has no size parameter")
        params[wl.size_param] = size
    return wl.run(topo, strategy, machine=machine, seed=seed,
                  embedding=embedding, params=params)


def tree_degree_cell(
    strategy: str,
    workload: str = "matmul",
    side: int = 8,
    size: int = 1024,
    machine: MachineModel = GCEL,
    seed: int = 0,
    topology: str = "mesh",
) -> List[Row]:
    """One tree-degree ablation cell: one access-tree variant on one
    workload."""
    res = _sized_workload_run(workload, topology, side, strategy, size, machine, seed)
    return [
        {
            "strategy": strategy,
            "workload": workload,
            "topology": topology,
            "congestion_bytes": res.congestion_bytes,
            "time": res.time,
            "max_startups": res.stats.max_startups,
            **res.metrics.to_row(),
        }
    ]


def ablation_tree_degree(
    workload: str = "matmul",
    side: int = 8,
    size: int = 1024,
    variants: Sequence[str] = ("2-ary", "2-4-ary", "4-ary", "4-16-ary", "16-ary"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Tree-degree ablation (Sections 3.1/3.2): smaller degree gives
    smaller congestion, but flat trees save startups; 4-ary wins matmul
    time, 2-ary/2-4-ary win bitonic."""
    rows: List[Row] = []
    for name in variants:
        rows.extend(tree_degree_cell(name, workload=workload, side=side, size=size,
                                     machine=machine, seed=seed))
    return rows


def embedding_cell(
    embedding: str,
    workload: str = "matmul",
    side: int = 8,
    size: int = 1024,
    strategy: str = "4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
    topology: str = "mesh",
) -> List[Row]:
    """One embedding ablation cell: one embedding variant on one workload."""
    res = _sized_workload_run(workload, topology, side, strategy, size, machine, seed,
                              embedding=embedding)
    return [
        {
            "embedding": embedding,
            "workload": workload,
            "topology": topology,
            "congestion_bytes": res.congestion_bytes,
            "total_bytes": res.stats.total_bytes,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def ablation_embedding(
    workload: str = "matmul",
    side: int = 8,
    size: int = 1024,
    strategy: str = "4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Modified vs random embedding (Section 2's practical improvement):
    the modified embedding shortens expected tree-edge distances."""
    rows: List[Row] = []
    for embedding in ("modified", "random"):
        rows.extend(embedding_cell(embedding, workload=workload, side=side, size=size,
                                   strategy=strategy, machine=machine, seed=seed))
    return rows


def invalidation_cell(
    strategy: str,
    variant: str,
    side: int = 8,
    block_entries: int = 1024,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One invalidation ablation cell: one (strategy, multiply variant)."""
    mesh = Mesh2D(side, side)
    res = get_workload("matmul").run(
        mesh,
        strategy,
        machine=machine,
        seed=seed,
        params={"block_entries": block_entries, "variant": variant},
    )
    return [
        {
            "strategy": strategy,
            "workload": "matmul",
            "variant": variant,
            "congestion_bytes": res.congestion_bytes,
            "ctrl_msgs": res.stats.ctrl_msgs,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def ablation_invalidation(
    side: int = 8,
    block_entries: int = 1024,
    strategies: Sequence[str] = ("4-ary", "fixed-home"),
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Matrix *square* vs general multiplication: the paper chose squaring
    "because the matrix square requires the data management strategy to
    create and invalidate copies whereas the general matrix multiplication
    does not".  This ablation quantifies the consistency-maintenance share
    of the dynamic strategies' traffic."""
    rows: List[Row] = []
    for name in strategies:
        for variant in ("square", "general"):
            rows.extend(invalidation_cell(name, variant, side=side,
                                          block_entries=block_entries,
                                          machine=machine, seed=seed))
    return rows


def remapping_cell(
    threshold: Optional[int],
    side: int = 8,
    payload: int = 1024,
    rounds: int = 8,
    strategy: str = "4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One remapping ablation cell: one remap threshold on the hot
    broadcast-variable pattern."""
    from ..runtime.launcher import Runtime

    mesh = Mesh2D(side, side)
    strat = get_strategy(strategy, mesh, seed=seed, remap_threshold=threshold)
    handles: Dict[str, object] = {}

    def program(env):
        if env.rank == 0:
            handles["x"] = env.create("hot", payload, value=0)
        yield from env.barrier(phase="rounds")
        for r in range(rounds):
            v = yield from env.read(handles["x"])
            assert v == r
            yield from env.barrier()
            if env.rank == 0:
                yield from env.write(handles["x"], r + 1)
            yield from env.barrier()
        yield from env.barrier(phase="done")

    rt = Runtime(mesh, strat, machine, seed=seed)
    res = rt.run(program)
    return [
        {
            "remap_threshold": threshold if threshold is not None else "off",
            "workload": "hot-broadcast",
            "remaps": strat.remaps,
            "congestion_bytes": res.stats.congestion_bytes,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def ablation_remapping(
    side: int = 8,
    payload: int = 1024,
    rounds: int = 8,
    thresholds: Sequence[Optional[int]] = (None, 64, 16, 4),
    strategy: str = "4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Access-tree node remapping (omitted by the paper): re-randomize a
    tree node's host after ``threshold`` stops.

    The paper's applications never make a tree node hot (path replication
    serves later readers locally -- matmul's interior nodes see <= 3 stops
    each), so the ablation uses the one pattern that does: a single
    variable repeatedly broadcast-read by every processor and invalidated
    by its owner (the Barnes-Hut root-cell pattern).  The paper's
    conjecture -- "the constant overhead induced by this procedure will
    not be retained in practice" -- can then be checked on measured time."""
    rows: List[Row] = []
    for threshold in thresholds:
        rows.extend(remapping_cell(threshold, side=side, payload=payload,
                                   rounds=rounds, strategy=strategy,
                                   machine=machine, seed=seed))
    return rows


def barrier_cell(
    kind: str,
    side: int = 8,
    keys: int = 1024,
    strategy: str = "2-4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
    topology: str = "mesh",
) -> List[Row]:
    """One barrier ablation cell: one synchronization service variant."""
    topo = make_topology(topology, side)
    res = get_workload("bitonic").run(
        topo, strategy, machine=machine, seed=seed, params={"keys": keys}, barrier=kind
    )
    return [
        {
            "barrier": kind,
            "workload": "bitonic",
            "topology": topology,
            "congestion_bytes": res.congestion_bytes,
            "time": res.time,
            "max_startups": res.stats.max_startups,
            **res.metrics.to_row(),
        }
    ]


def ablation_barrier(
    side: int = 8,
    keys: int = 1024,
    strategy: str = "2-4-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """Tree-combining vs central barrier (DIVA synchronization service)."""
    rows: List[Row] = []
    for kind in ("tree", "central"):
        rows.extend(barrier_cell(kind, side=side, keys=keys, strategy=strategy,
                                 machine=machine, seed=seed))
    return rows


def bounded_memory_cell(
    cap: Optional[float],
    side: int = 4,
    bodies: int = 256,
    strategy: str = "2-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One bounded-memory cell: one per-processor copy-capacity setting."""
    from ..apps.barneshut import CELL_BYTES

    mesh = Mesh2D(side, side)
    capacity_bytes = None if cap is None else cap * CELL_BYTES
    res = get_workload("barneshut").run(
        mesh,
        strategy,
        machine=machine,
        seed=seed,
        params={"bodies": bodies, "steps": 2, "warm": 1},
        capacity_bytes=capacity_bytes,
    )
    return [
        {
            "capacity_copies": cap if cap is not None else "unbounded",
            "workload": "barneshut",
            "congestion_msgs": res.congestion_msgs,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def synthetic_cell(
    workload: str,
    strategy: str,
    topology: str = "mesh",
    side: int = 8,
    params: Optional[Dict[str, object]] = None,
    machine: MachineModel = GCEL,
    seed: int = 0,
    embedding: str = "modified",
) -> List[Row]:
    """One synthetic-workload cell: one (workload, strategy, topology)
    point with absolute congestion/traffic/time (the synthetic kernels
    have no hand-optimized baseline, so there are no ratio columns; swept
    parameters appear as row fields)."""
    wl = get_workload(workload)
    topo = make_topology(topology, side)
    res = wl.run(topo, strategy, machine=machine, seed=seed,
                 embedding=embedding, params=params)
    row: Row = {
        "workload": workload,
        "strategy": strategy,
        "topology": topology,
        "network": topo.label,
        "nodes": topo.n_nodes,
    }
    row.update(params or {})
    row.update(
        congestion_bytes=res.congestion_bytes,
        congestion_msgs=res.congestion_msgs,
        total_bytes=res.stats.total_bytes,
        total_msgs=res.stats.total_msgs,
        time=res.time,
        lock_acquisitions=res.lock_acquisitions,
        **res.metrics.to_row(),
    )
    return [row]


def xscale_cell(
    nodes: int,
    topology: str,
    strategy: str,
    ops: int = 16,
    n_vars: int = 256,
    alpha: float = 0.8,
    read_frac: float = 0.9,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One ``xscale`` cell: the Zipf hotspot kernel on a ``nodes``-processor
    machine (power of two; 1024/2048/4096 in the registry sweep).

    The interesting question at this scale is whether the paper's
    congestion ranking -- access trees beat the fixed home -- holds as the
    machine grows: the guarantee is asymptotic, and the per-node
    congestion column normalizes for direct cross-size comparison."""
    wl = get_workload("zipf")
    topo = make_topology_nodes(topology, nodes)
    params = {"n_vars": n_vars, "ops": ops, "alpha": alpha, "read_frac": read_frac}
    res = wl.run(topo, strategy, machine=machine, seed=seed, params=params)
    return [
        {
            "workload": "zipf",
            "strategy": strategy,
            "topology": topology,
            "network": topo.label,
            "nodes": topo.n_nodes,
            "ops": ops,
            "alpha": alpha,
            "read_frac": read_frac,
            "congestion_bytes": res.congestion_bytes,
            "congestion_per_node": res.congestion_bytes / topo.n_nodes,
            "total_bytes": res.stats.total_bytes,
            "total_msgs": res.stats.total_msgs,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def xstrat_cell(
    workload: str,
    strategy: str,
    topology: str = "mesh",
    side: int = 8,
    params: Optional[Dict[str, object]] = None,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One ``xstrat`` cell: one registered workload under one strategy
    registry spec on one topology.

    The cross-strategy comparison has no hand-optimized baseline (the
    post-paper families have no hand-written counterpart), so rows carry
    absolute congestion/traffic/time plus the cache-behavior columns, and
    ``strategy_params`` records the resolved spec parameters (schema v5).
    """
    wl = get_workload(workload)
    topo = make_topology(topology, side)
    family, sparams = parse_strategy_spec(strategy)
    res = wl.run(topo, strategy, machine=machine, seed=seed, params=params)
    row: Row = {
        "workload": workload,
        "strategy": strategy,
        "strategy_family": family.name,
        "strategy_params": sparams,
        "topology": topology,
        "network": topo.label,
        "nodes": topo.n_nodes,
    }
    row.update(params or {})
    # read_frac is a display column of the xstrat table; rows of the
    # workloads that have no such knob carry it blank (the run-all
    # contract asserts every display column on every row).
    row.setdefault("read_frac", "")
    row.update(
        congestion_bytes=res.congestion_bytes,
        congestion_msgs=res.congestion_msgs,
        total_bytes=res.stats.total_bytes,
        total_msgs=res.stats.total_msgs,
        time=res.time,
        lock_acquisitions=res.lock_acquisitions,
        **res.metrics.to_row(),
    )
    return [row]


def xcap_cell(
    capacity_copies: Optional[float],
    strategy: str,
    topology: str = "mesh",
    side: int = 8,
    ops: int = 64,
    n_vars: int = 64,
    alpha: float = 0.8,
    read_frac: float = 0.9,
    payload: int = 256,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One ``xcap`` cell: the zipf kernel under a per-processor copy
    capacity of ``capacity_copies * payload`` bytes (``None`` =
    unbounded, the paper's default situation).

    Generalizes the paper's Figure 8 replacement kink: shrinking capacity
    forces LRU copy replacement, trading hit rate for eviction/refetch
    traffic -- differently per strategy family (the migratory strategy's
    single pinned copy cannot evict at all).
    """
    wl = get_workload("zipf")
    topo = make_topology(topology, side)
    family, sparams = parse_strategy_spec(strategy)
    capacity_bytes = None if capacity_copies is None else capacity_copies * payload
    res = wl.run(
        topo,
        strategy,
        machine=machine,
        seed=seed,
        params={"n_vars": n_vars, "ops": ops, "alpha": alpha,
                "read_frac": read_frac, "payload": payload},
        capacity_bytes=capacity_bytes,
    )
    return [
        {
            "capacity_copies": capacity_copies if capacity_copies is not None else "unbounded",
            "capacity_bytes": capacity_bytes,
            "workload": "zipf",
            "strategy": strategy,
            "strategy_family": family.name,
            "strategy_params": sparams,
            "topology": topology,
            "network": topo.label,
            "nodes": topo.n_nodes,
            "ops": ops,
            "alpha": alpha,
            "read_frac": read_frac,
            "congestion_bytes": res.congestion_bytes,
            "total_bytes": res.stats.total_bytes,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def xfail_cell(
    failures: str,
    strategy: str,
    topology: str = "mesh",
    side: int = 8,
    ops: int = 64,
    n_vars: int = 64,
    alpha: float = 0.8,
    read_frac: float = 0.9,
    payload: int = 256,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One ``xfail`` cell: the zipf kernel under one failure spec, one
    strategy registry spec and one topology.

    Rows carry the schema-v6 availability columns -- route resolutions
    lost (unreachable pair) and stalled (detoured around a down link),
    requests retried after a repair, variables repaired by the strategy's
    repair hooks, and failure events applied -- next to the usual
    congestion/traffic/time columns, so availability-vs-traffic
    trade-offs read off one table.  ``failures="none"`` rows are the
    static-network baseline (availability columns all zero).
    """
    wl = get_workload("zipf")
    topo = make_topology(topology, side)
    family, sparams = parse_strategy_spec(strategy)
    fmodel, _ = parse_failure_spec(failures)
    res = wl.run(
        topo,
        strategy,
        machine=machine,
        seed=seed,
        params={"n_vars": n_vars, "ops": ops, "alpha": alpha,
                "read_frac": read_frac, "payload": payload},
        failures=failures,
    )
    return [
        {
            "failures": failures,
            "failure_model": fmodel.name,
            "workload": "zipf",
            "strategy": strategy,
            "strategy_family": family.name,
            "strategy_params": sparams,
            "topology": topology,
            "network": topo.label,
            "nodes": topo.n_nodes,
            "ops": ops,
            "alpha": alpha,
            "read_frac": read_frac,
            "congestion_bytes": res.congestion_bytes,
            "total_bytes": res.stats.total_bytes,
            "time": res.time,
            "requests_failed": res.requests_failed,
            "requests_stalled": res.requests_stalled,
            "requests_retried": res.requests_retried,
            "repairs": res.repairs,
            "failure_events": res.failure_events,
            **res.metrics.to_row(),
        }
    ]


def xadapt_cell(
    drift: int,
    strategy: str,
    topology: str = "mesh",
    side: int = 8,
    ops: int = 64,
    n_vars: int = 64,
    alpha: float = 1.2,
    read_frac: float = 0.95,
    payload: int = 256,
    shift: int = 0,
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """One ``xadapt`` cell: the hotspot-drift kernel under one drift
    rate, one strategy registry spec and one topology.

    This is the metric suite's showcase sweep: the hot set moves
    ``drift`` times mid-run, so the schema-v7 columns -- latency
    percentiles, storage cost, effective network usage -- separate the
    replication policies that raw completion time conflates.  ``drift=0``
    rows are the static-hotspot baseline (exactly the zipf kernel).
    """
    wl = get_workload("hotspot-drift")
    topo = make_topology(topology, side)
    family, sparams = parse_strategy_spec(strategy)
    res = wl.run(
        topo,
        strategy,
        machine=machine,
        seed=seed,
        params={"n_vars": n_vars, "ops": ops, "alpha": alpha,
                "read_frac": read_frac, "payload": payload,
                "drift": drift, "shift": shift},
    )
    return [
        {
            "drift": drift,
            "workload": "hotspot-drift",
            "strategy": strategy,
            "strategy_family": family.name,
            "strategy_params": sparams,
            "topology": topology,
            "network": topo.label,
            "nodes": topo.n_nodes,
            "ops": ops,
            "alpha": alpha,
            "read_frac": read_frac,
            "congestion_bytes": res.congestion_bytes,
            "total_bytes": res.stats.total_bytes,
            "time": res.time,
            **res.metrics.to_row(),
        }
    ]


def bounded_memory_experiment(
    side: int = 4,
    bodies: int = 256,
    capacity_copies: Sequence[Optional[float]] = (None, 64, 24),
    strategy: str = "2-ary",
    machine: MachineModel = GCEL,
    seed: int = 0,
) -> List[Row]:
    """LRU replacement under bounded memory (the Figure 8 kink of the 2-ary
    tree at 60,000 bodies): shrinking capacity forces copy replacement,
    raising congestion."""
    rows: List[Row] = []
    for cap in capacity_copies:
        rows.extend(bounded_memory_cell(cap, side=side, bodies=bodies,
                                        strategy=strategy, machine=machine, seed=seed))
    return rows
