"""Paper reference data and table formatting.

The numbers below are the values reported in the paper's Figures 3, 4, 6
and 7 (ratios of congestion / execution time of the dynamic strategies to
the hand-optimized baseline) plus the qualitative expectations of the
Barnes-Hut figures.  They are used by the benchmark harness to print
paper-vs-measured tables and to assert the *shape* of each result (who
wins, how ratios scale) -- absolute agreement is not expected: our
substrate is a simulator, not the authors' GCel.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["PAPER", "format_table", "ratio"]

#: Reference values transcribed from the paper's figures.
PAPER: Dict[str, Dict[str, object]] = {
    # Figure 3: matmul on 16x16, block size sweep (64..4096 integers).
    "fig3": {
        "x": [64, 256, 1024, 4096],
        "congestion_ratio": {
            "fixed-home": [33.32, 26.61, 24.94, 24.52],
            "4-ary": [9.25, 7.19, 6.67, 6.55],
        },
        "time_ratio": {
            "fixed-home": [13.83, 11.89, 10.71, 10.32],
            "4-ary": [7.54, 6.08, 4.93, 4.50],
        },
    },
    # Figure 4: matmul with block 4096, network sweep 4x4..32x32.
    "fig4": {
        "x": [4, 8, 16, 32],  # mesh side
        "congestion_ratio": {
            "fixed-home": [5.56, 12.25, 24.52, 47.98],
            "4-ary": [3.87, 5.52, 6.55, 8.10],
        },
        "time_ratio": {
            "fixed-home": [2.79, 6.21, 10.32, 19.90],
            "4-ary": [2.77, 3.78, 4.50, 5.67],
        },
    },
    # Figure 6: bitonic on 16x16, keys-per-processor sweep.
    "fig6": {
        "x": [256, 1024, 4096, 16384],
        "congestion_ratio": {
            "fixed-home": [8.11, 7.26, 7.07, 7.07],
            "2-4-ary": [2.95, 2.72, 2.76, 2.75],
        },
        "time_ratio": {
            "fixed-home": [6.00, 6.01, 6.09, 5.86],
            "2-4-ary": [4.11, 3.41, 3.06, 2.83],
        },
    },
    # Figure 7: bitonic with 4096 keys/proc, network sweep.
    "fig7": {
        "x": [4, 8, 16, 32],
        "congestion_ratio": {
            "fixed-home": [2.81, 4.74, 7.03, 10.48],
            "2-4-ary": [2.08, 2.23, 2.76, 2.90],
        },
        "time_ratio": {
            "fixed-home": [2.46, 4.57, 6.11, 7.61],
            "2-4-ary": [2.03, 2.76, 3.06, 3.07],
        },
    },
    # Figures 8-10 (Barnes-Hut on 16x16): qualitative expectations.
    "fig8": {
        "congestion_order": ["2-ary", "4-ary", "4-16-ary", "16-ary", "fixed-home"],
        "best_time": "4-ary",
        "note": "congestion grows with N; 2-ary lowest congestion but loses "
        "time to 4-ary through startups; fixed home worst on both",
    },
    "fig9": {
        "note": "tree-building: fixed home suffers a large congestion offset "
        "at the root (home serializes the root's distribution)",
    },
    "fig10": {
        "note": "force computation: access trees beat fixed home; "
        "communication share of the phase time is smaller for 4-ary "
        "(~25%) than fixed home (~33%) at the largest N",
    },
    # Figure 11: Barnes-Hut scaling with N = 200 P.
    "fig11": {
        "x": ["8x8", "8x16", "16x16", "16x32"],
        "time_ratio_at_over_fh": [0.83, 0.77, 0.52, 0.49],
        "congestion_ratio_at_over_fh": [0.52, 0.36, 0.35, 0.25],
        "note": "access tree advantage grows with P; ~3x less communication "
        "time at 512 processors",
    },
}


def ratio(a: float, b: float) -> float:
    """Safe ratio for tables."""
    return a / b if b else float("nan")


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Plain ASCII table of selected columns (for bench output)."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                s = f"{v:.3g}" if abs(v) < 1000 else f"{v:.4g}"
            else:
                s = str(v)
            widths[c] = max(widths[c], len(s))
            line.append(s)
        rendered.append(line)
    out = []
    if title:
        out.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    out.append(header)
    out.append("-" * len(header))
    for line in rendered:
        out.append("  ".join(s.ljust(widths[c]) for s, c in zip(line, columns)))
    return "\n".join(out)
