"""Experiment harness: per-figure runners, paper reference data, tables."""

from .experiments import (
    ablation_barrier,
    ablation_embedding,
    ablation_invalidation,
    ablation_remapping,
    ablation_tree_degree,
    bounded_memory_experiment,
    fig2_single_block_flow,
    fig3_matmul_blocksize,
    fig4_matmul_network,
    fig6_bitonic_keys,
    fig7_bitonic_network,
    fig8_barneshut_bodies,
    fig9_fig10_phase_views,
    fig11_barneshut_scaling,
    scale_params,
)
from .tables import PAPER, format_table, ratio

__all__ = [
    "scale_params",
    "fig2_single_block_flow",
    "fig3_matmul_blocksize",
    "fig4_matmul_network",
    "fig6_bitonic_keys",
    "fig7_bitonic_network",
    "fig8_barneshut_bodies",
    "fig9_fig10_phase_views",
    "fig11_barneshut_scaling",
    "ablation_tree_degree",
    "ablation_embedding",
    "ablation_barrier",
    "ablation_invalidation",
    "ablation_remapping",
    "bounded_memory_experiment",
    "PAPER",
    "format_table",
    "ratio",
]
