"""The metric suite: one vocabulary for batch cells and serving sessions.

The paper evaluates on two numbers -- execution time and link congestion.
The data-grid literature ("Replication in Data Grids: Metrics and
Strategies", PAPERS.md) evaluates on a richer vocabulary this module
makes first-class, emitted identically by every batch cell (schema v7
result rows, :mod:`repro.exp.emit`) and every serving report
(:class:`repro.serve.session.ServeReport`):

simulated-latency percentiles (``latency_p50/p95/p99``)
    Per-request simulated seconds from issue to completion.  Batch runs
    measure issue -> completion inside the launcher's dispatch loop
    (cache hits are 0.0-latency requests, not omissions); serving
    sessions measure arrival -> completion, so queueing delay under
    load is part of the number.  Both engines resume a blocked request
    at the exact completion time of its flow, so the percentiles are
    engine-identical (pinned by the differential suite).

storage cost (``storage_cost``)
    The time integral of *excess* replica bytes: every copy beyond the
    one authoritative copy per variable contributes its payload for the
    time it exists (replica-bytes x seconds).  Strategies feed an O(1)
    accumulator at every copy add/drop/invalidate/evict event
    (:meth:`repro.core.strategy.DataManagementStrategy._storage_delta`);
    single-copy families (``migratory``, ``handopt``) cost exactly 0.

effective network usage (``effective_network_usage``)
    Bytes moved on links per useful request (``total_bytes`` over
    completed reads+writes): how much traffic one request costs on
    average.  0.0 when no requests ran.

hit rate (``hit_rate``)
    Reads served from a local copy over all strategy accesses; 0.0 on
    zero traffic -- the **one** zero-division convention, replacing the
    two ad-hoc computations the launcher and the serve session used to
    carry.

Everything funnels through :class:`MetricsBundle`:
:meth:`MetricsBundle.to_row` is the emitter contract -- cells and
reports spread its dict instead of hand-merging counter fields -- and
:meth:`MetricsBundle.carry_row` projects the same columns into derived
rows (the per-phase Figure 9/10 breakdowns).  Adding a metric is one
field + one ``to_row`` entry here, plus whatever accounting feeds it
(see ARCHITECTURE.md "Adding a metric").
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = ["MetricsBundle", "latency_percentiles"]

#: The percentile triple every surface reports, as quantiles.
LATENCY_QUANTILES = (0.5, 0.95, 0.99)


def latency_percentiles(latencies) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a latency sample.

    ``latencies`` is any float sequence (the hot paths pass an
    ``array('d')``, read zero-copy); an empty sample reports 0.0s rather
    than NaNs so zero-traffic rows stay valid JSON.
    """
    if not len(latencies):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    if isinstance(latencies, array):
        lat = np.frombuffer(latencies, dtype=np.float64)
    else:
        lat = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.quantile(lat, LATENCY_QUANTILES)
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass(frozen=True)
class MetricsBundle:
    """The per-run metric suite, identical for batch and serving.

    Constructed once per finished run (from a :class:`~repro.runtime
    .results.RunResult` via its ``metrics`` property, or inside
    :meth:`~repro.serve.session.ServeSession.close`) and consumed through
    :meth:`to_row` -- the one place the metric columns of a result row
    are defined.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Total bytes moved on links inside the measured window.
    total_bytes: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: Time integral of excess replica bytes (replica-bytes x seconds).
    storage_cost: float = 0.0

    @property
    def requests(self) -> int:
        """Completed strategy accesses (reads + writes)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Reads served locally over all accesses; 0.0 on zero traffic
        (the unified zero-request convention)."""
        n = self.requests
        return self.hits / n if n else 0.0

    @property
    def effective_network_usage(self) -> float:
        """Bytes moved per useful request; 0.0 on zero traffic."""
        n = self.requests
        return self.total_bytes / n if n else 0.0

    @classmethod
    def from_run(cls, hits: int, misses: int, evictions: int,
                 total_bytes: float, latencies, storage_cost: float,
                 ) -> "MetricsBundle":
        """Bundle raw accounting: percentiles are computed here so every
        surface uses the one quantile definition."""
        pct = latency_percentiles(latencies)
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            total_bytes=total_bytes,
            latency_p50=pct["p50"],
            latency_p95=pct["p95"],
            latency_p99=pct["p99"],
            storage_cost=storage_cost,
        )

    #: The metric columns of a schema-v7 result row, in emission order.
    ROW_KEYS = (
        "hits", "misses", "hit_rate", "evictions",
        "latency_p50", "latency_p95", "latency_p99",
        "storage_cost", "effective_network_usage",
    )

    def to_row(self) -> Dict[str, Any]:
        """The emitter contract: the metric columns every result row
        carries (schema v7).  Cells spread this dict -- there is no other
        place these keys are assembled."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "storage_cost": self.storage_cost,
            "effective_network_usage": self.effective_network_usage,
        }

    @staticmethod
    def carry_row(row: Dict[str, Any]) -> Dict[str, Any]:
        """Project the metric columns out of an existing row, for derived
        rows (per-phase breakdowns) that inherit their source row's
        metrics."""
        return {k: row[k] for k in MetricsBundle.ROW_KEYS}
