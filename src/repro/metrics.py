"""The metric suite: one vocabulary for batch cells and serving sessions.

The paper evaluates on two numbers -- execution time and link congestion.
The data-grid literature ("Replication in Data Grids: Metrics and
Strategies", PAPERS.md) evaluates on a richer vocabulary this module
makes first-class, emitted identically by every batch cell (schema v7
result rows, :mod:`repro.exp.emit`) and every serving report
(:class:`repro.serve.session.ServeReport`):

simulated-latency percentiles (``latency_p50/p95/p99``)
    Per-request simulated seconds from issue to completion.  Batch runs
    measure issue -> completion inside the launcher's dispatch loop
    (cache hits are 0.0-latency requests, not omissions); serving
    sessions measure arrival -> completion, so queueing delay under
    load is part of the number.  Both engines resume a blocked request
    at the exact completion time of its flow, so the percentiles are
    engine-identical (pinned by the differential suite).

storage cost (``storage_cost``)
    The time integral of *excess* replica bytes: every copy beyond the
    one authoritative copy per variable contributes its payload for the
    time it exists (replica-bytes x seconds).  Strategies feed an O(1)
    accumulator at every copy add/drop/invalidate/evict event
    (:meth:`repro.core.strategy.DataManagementStrategy._storage_delta`);
    single-copy families (``migratory``, ``handopt``) cost exactly 0.

effective network usage (``effective_network_usage``)
    Bytes moved on links per useful request (``total_bytes`` over
    completed reads+writes): how much traffic one request costs on
    average.  0.0 when no requests ran.

hit rate (``hit_rate``)
    Reads served from a local copy over all strategy accesses; 0.0 on
    zero traffic -- the **one** zero-division convention, replacing the
    two ad-hoc computations the launcher and the serve session used to
    carry.

Everything funnels through :class:`MetricsBundle`:
:meth:`MetricsBundle.to_row` is the emitter contract -- cells and
reports spread its dict instead of hand-merging counter fields -- and
:meth:`MetricsBundle.carry_row` projects the same columns into derived
rows (the per-phase Figure 9/10 breakdowns).  Adding a metric is one
field + one ``to_row`` entry here, plus whatever accounting feeds it
(see ARCHITECTURE.md "Adding a metric").
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = ["MetricsBundle", "StreamingQuantiles", "latency_percentiles"]

#: The percentile triple every surface reports, as quantiles.
LATENCY_QUANTILES = (0.5, 0.95, 0.99)


class StreamingQuantiles:
    """Fixed-size log-bucketed quantile sketch for latency samples.

    Serving a million requests used to retain every per-request latency
    sample just to compute three percentiles at close; this sketch folds
    samples into ``2 * HALF`` logarithmic buckets (~128 KiB, O(1) in the
    request count) with ``RESOLUTION`` buckets per octave -- a relative
    quantile error below ``2**(1/RESOLUTION) - 1`` (~0.55%).

    Deterministic and order-insensitive: the same multiset of samples
    produces the same bucket counts and therefore the same percentiles,
    whatever order the samples arrived in -- which is what lets the
    kernel fast path (completions drained in packed arrays) report the
    same numbers as the classic per-request path.  Mergeable by bucket
    addition (:meth:`merge`), which is what the serving fleet uses to
    combine per-worker sketches into fleet percentiles.
    """

    #: Buckets per octave (factor-of-two range of sample values).
    RESOLUTION = 128
    #: Bucket index range: [-HALF, HALF) covers 2**-64 .. 2**64 seconds.
    HALF = 8192

    __slots__ = ("buckets", "n", "zeros")

    def __init__(self):
        self.buckets = np.zeros(2 * self.HALF, dtype=np.int64)
        self.n = 0          # total samples, including non-positive ones
        self.zeros = 0      # samples <= 0.0 (sorted below every bucket)

    def __len__(self) -> int:
        return self.n

    def _indices(self, arr: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            idx = np.floor(np.log2(arr) * self.RESOLUTION).astype(np.int64)
        return np.clip(idx + self.HALF, 0, 2 * self.HALF - 1)

    def add(self, value: float) -> None:
        self.add_many(np.asarray([value], dtype=np.float64))

    def add_many(self, values) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if not arr.size:
            return
        pos = arr[arr > 0.0]
        self.zeros += int(arr.size - pos.size)
        self.n += int(arr.size)
        if pos.size:
            np.add.at(self.buckets, self._indices(pos), 1)

    def merge(self, other: "StreamingQuantiles") -> None:
        self.buckets += other.buckets
        self.n += other.n
        self.zeros += other.zeros

    def quantile(self, q: float) -> float:
        """The sketched ``q``-quantile: midpoint (in log space) of the
        bucket holding the rank-``q`` sample; 0.0 on an empty sketch."""
        if not self.n:
            return 0.0
        rank = q * (self.n - 1)
        if rank < self.zeros:
            return 0.0
        csum = np.cumsum(self.buckets)
        i = int(np.searchsorted(csum, rank - self.zeros, side="right"))
        if i >= 2 * self.HALF:
            i = 2 * self.HALF - 1
        return float(2.0 ** ((i - self.HALF + 0.5) / self.RESOLUTION))

    def percentiles(self) -> Dict[str, float]:
        csum = np.cumsum(self.buckets)
        out = {}
        for q, name in zip(LATENCY_QUANTILES, ("p50", "p95", "p99")):
            if not self.n:
                out[name] = 0.0
                continue
            rank = q * (self.n - 1)
            if rank < self.zeros:
                out[name] = 0.0
                continue
            i = int(np.searchsorted(csum, rank - self.zeros, side="right"))
            i = min(i, 2 * self.HALF - 1)
            out[name] = float(2.0 ** ((i - self.HALF + 0.5) / self.RESOLUTION))
        return out

    # ------------------------------------------------- fleet serialization
    def state(self) -> Dict[str, Any]:
        """Picklable state (worker -> parent transport); the bucket array
        ships sparse (indices + counts) because it is mostly zeros."""
        nz = np.nonzero(self.buckets)[0]
        return {
            "n": self.n,
            "zeros": self.zeros,
            "idx": nz.tolist(),
            "cnt": self.buckets[nz].tolist(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingQuantiles":
        sk = cls()
        sk.n = int(state["n"])
        sk.zeros = int(state["zeros"])
        if state["idx"]:
            sk.buckets[np.asarray(state["idx"], dtype=np.int64)] = np.asarray(
                state["cnt"], dtype=np.int64
            )
        return sk


def latency_percentiles(latencies) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a latency sample.

    ``latencies`` is any float sequence (the hot paths pass an
    ``array('d')``, read zero-copy) or a :class:`StreamingQuantiles`
    sketch; an empty sample reports 0.0s rather than NaNs so
    zero-traffic rows stay valid JSON.
    """
    if isinstance(latencies, StreamingQuantiles):
        return latencies.percentiles()
    if not len(latencies):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    if isinstance(latencies, array):
        lat = np.frombuffer(latencies, dtype=np.float64)
    else:
        lat = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.quantile(lat, LATENCY_QUANTILES)
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass(frozen=True)
class MetricsBundle:
    """The per-run metric suite, identical for batch and serving.

    Constructed once per finished run (from a :class:`~repro.runtime
    .results.RunResult` via its ``metrics`` property, or inside
    :meth:`~repro.serve.session.ServeSession.close`) and consumed through
    :meth:`to_row` -- the one place the metric columns of a result row
    are defined.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Total bytes moved on links inside the measured window.
    total_bytes: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: Time integral of excess replica bytes (replica-bytes x seconds).
    storage_cost: float = 0.0

    @property
    def requests(self) -> int:
        """Completed strategy accesses (reads + writes)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Reads served locally over all accesses; 0.0 on zero traffic
        (the unified zero-request convention)."""
        n = self.requests
        return self.hits / n if n else 0.0

    @property
    def effective_network_usage(self) -> float:
        """Bytes moved per useful request; 0.0 on zero traffic."""
        n = self.requests
        return self.total_bytes / n if n else 0.0

    @classmethod
    def from_run(cls, hits: int, misses: int, evictions: int,
                 total_bytes: float, latencies, storage_cost: float,
                 ) -> "MetricsBundle":
        """Bundle raw accounting: percentiles are computed here so every
        surface uses the one quantile definition."""
        pct = latency_percentiles(latencies)
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            total_bytes=total_bytes,
            latency_p50=pct["p50"],
            latency_p95=pct["p95"],
            latency_p99=pct["p99"],
            storage_cost=storage_cost,
        )

    #: The metric columns of a schema-v7 result row, in emission order.
    ROW_KEYS = (
        "hits", "misses", "hit_rate", "evictions",
        "latency_p50", "latency_p95", "latency_p99",
        "storage_cost", "effective_network_usage",
    )

    def to_row(self) -> Dict[str, Any]:
        """The emitter contract: the metric columns every result row
        carries (schema v7).  Cells spread this dict -- there is no other
        place these keys are assembled."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "storage_cost": self.storage_cost,
            "effective_network_usage": self.effective_network_usage,
        }

    @staticmethod
    def carry_row(row: Dict[str, Any]) -> Dict[str, Any]:
        """Project the metric columns out of an existing row, for derived
        rows (per-phase breakdowns) that inherit their source row's
        metrics."""
        return {k: row[k] for k in MetricsBundle.ROW_KEYS}
