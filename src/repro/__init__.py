"""repro -- reproduction of *Data Management in Networks: Experimental
Evaluation of a Provably Good Strategy* (Krick, Meyer auf der Heide, Räcke,
Vöcking, Westermann; SPAA 1999).

The package simulates the DIVA distributed-variables library on a
mesh-connected machine and reproduces the paper's experimental comparison
of the congestion-minimizing **access tree strategy** against a **fixed
home** caching strategy and **hand-optimized message passing**, on matrix
multiplication, bitonic sorting and Barnes-Hut N-body simulation.

Quickstart::

    from repro import Mesh2D, get_strategy
    from repro.apps import matmul

    mesh = Mesh2D(8, 8)
    res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), block_entries=256)
    print(res.time, res.congestion_bytes)
"""

from .core import (
    STRATEGY_NAMES,
    AccessTreeStrategy,
    DataManagementStrategy,
    DynRepStrategy,
    FixedHomeStrategy,
    MigratoryStrategy,
    NullStrategy,
    StrategyFamily,
    build_tree,
    get_strategy,
    parse_strategy_spec,
    register_strategy,
    strategy_names,
)
from .network import (
    GCEL,
    TOPOLOGY_KINDS,
    ZERO_COST,
    Hypercube,
    MachineModel,
    Mesh2D,
    Topology,
    Torus2D,
    make_topology,
)
from .runtime import Env, RunResult, Runtime, run_spmd

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "make_topology",
    "TOPOLOGY_KINDS",
    "MachineModel",
    "GCEL",
    "ZERO_COST",
    "get_strategy",
    "register_strategy",
    "parse_strategy_spec",
    "strategy_names",
    "StrategyFamily",
    "STRATEGY_NAMES",
    "AccessTreeStrategy",
    "FixedHomeStrategy",
    "MigratoryStrategy",
    "DynRepStrategy",
    "NullStrategy",
    "DataManagementStrategy",
    "build_tree",
    "Runtime",
    "run_spmd",
    "RunResult",
    "Env",
    "__version__",
]
