"""Figure 11: Barnes-Hut scaling, N = bodies_per_proc * P.

Paper (8x8 .. 16x32, N = 200 P, fixed home vs the 4-8-ary access tree):
the access tree's congestion and execution-time advantage grows with the
number of processors -- time ratio about 49% and communication-time ratio
about 33% at 512 processors.
"""

from conftest import emit, once

from repro.analysis import PAPER, fig11_barneshut_scaling, format_table, scale_params


def test_fig11_barneshut_scaling(benchmark):
    p = scale_params("fig11")
    rows = once(
        benchmark,
        lambda: fig11_barneshut_scaling(
            meshes=p["meshes"],
            bodies_per_proc=p["bodies_per_proc"],
            steps=p["steps"],
            warm=p["warm"],
        ),
    )
    columns = ["strategy", "mesh", "procs", "bodies", "congestion_msgs", "time", "comm_time"]
    emit(
        "fig11",
        format_table(
            rows,
            columns,
            title=f"Figure 11: Barnes-Hut scaling, N = {p['bodies_per_proc']}*P "
            f"({PAPER['fig11']['note']})",
        ),
        rows=rows,
        columns=columns,
    )

    meshes = [f"{r}x{c}" for r, c in p["meshes"]]
    time_ratio = []
    comm_ratio = []
    for label in meshes:
        fh = next(r for r in rows if r["strategy"] == "fixed-home" and r["mesh"] == label)
        at = next(r for r in rows if r["strategy"] == "4-8-ary" and r["mesh"] == label)
        time_ratio.append(at["time"] / fh["time"])
        comm_ratio.append(at["comm_time"] / fh["comm_time"])
        assert at["congestion_msgs"] < fh["congestion_msgs"]
    # Access tree wins at the largest configuration, and communication time
    # improves at least as much as total time (compute is shared).
    assert time_ratio[-1] < 1.0
    assert comm_ratio[-1] <= time_ratio[-1] + 0.05
    # Advantage does not shrink with growing P.
    assert time_ratio[-1] <= time_ratio[0] + 0.05
