"""Figure 2 (analytic): the data flow for distributing one block.

The paper derives, for the read accesses directed to a single block (read
by its whole row and column), an expected total communication load of
Theta(m*P) for the fixed home strategy vs Theta(m*sqrtP*logP) for the
access tree -- hence congestion Theta(m*P / sqrtP) vs Theta(m*sqrtP*logP /
sqrtP).  This microbenchmark reproduces that single-variable flow.
"""

from conftest import emit, once

from repro.analysis import fig2_single_block_flow, format_table, scale_params


def test_fig2_single_block_flow(benchmark):
    p = scale_params("fig2")
    rows = once(
        benchmark, lambda: fig2_single_block_flow(side=p["side"], block_entries=p["block_entries"])
    )

    columns = ["strategy", "mesh", "total_bytes", "congestion_bytes", "time"]
    emit(
        "fig2",
        format_table(
            rows,
            columns,
            title="Figure 2: one block distributed to its row+column",
        ),
        rows=rows,
        columns=columns,
    )

    fh = next(r for r in rows if r["strategy"] == "fixed-home")
    at = next(r for r in rows if r["strategy"] == "4-ary")
    assert at["total_bytes"] < fh["total_bytes"]
    assert at["congestion_bytes"] < fh["congestion_bytes"]
