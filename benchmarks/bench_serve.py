#!/usr/bin/env python3
"""Serving throughput benchmark: sustained requests/sec next to cells/sec.

Drives one *pinned* serving configuration (Zipf access mix over an 8x8
mesh under the 4-ary access tree, Poisson arrivals at ~0.7x the measured
service capacity -- parameters frozen below; changing them breaks the
trajectory, bump ``BENCH_VERSION`` if you must) with the open-loop load
generator, one million simulated requests per run, trace recording ON
(recording is part of the serving contract: every served run must replay
bit-identically), and reports:

* **requests_per_sec** -- completed requests per *wall* second over the
  whole serving loop (generation + ingest + micro-batched engine work).
  This is the gated number: the serving analogue of cells/sec.
* **latency p50/p95/p99** -- simulated enqueue-to-completion seconds.
* hit rate, rejections, peak RSS.

The result goes to ``benchmarks/results/BENCH_serve.json`` (CI artifact,
gated against ``benchmarks/baselines/BENCH_serve.baseline.json`` by
``tools/bench_compare.py``) and a dated row is appended to the committed
``benchmarks/BENCH_history.json`` trajectory.  With ``REPRO_PURE_PYTHON``
set the result describes the pure engine (``BENCH_serve.pure.json``,
no committed baseline: CI gates the C engine, where serving runs).

Run standalone (CI does) or via pytest::

    python benchmarks/bench_serve.py
    REPRO_SERVE_REQUESTS=50000 python benchmarks/bench_serve.py   # quick look
    python -m pytest benchmarks/bench_serve.py -q

requests/sec is machine-dependent (same caveat as cells/sec); the
committed baseline tracks the CI runner class.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_engine_perf import engine_name, peak_rss_mb  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
HISTORY_PATH = pathlib.Path(__file__).parent / "BENCH_history.json"

#: Bump when the pinned configuration changes (breaks rate comparability).
BENCH_VERSION = 1

#: The pinned serving run: 64 processors, 512 variables, Poisson arrivals
#: at ~0.7x the measured service capacity (so the latency percentiles
#: reflect service + moderate queueing, not an unbounded overload queue).
PINNED = dict(
    workload="zipf",
    strategy="4-ary",
    topology="mesh",
    side=8,
    seed=0,
    params={"n_vars": 512, "alpha": 0.9, "read_frac": 0.9, "payload": 256},
    arrival="poisson",
    rate=9000.0,
    chunk=8192,
    max_queue=65536,
    max_inflight=8192,
)

#: One run is one million simulated requests (self-averaging: no
#: best-of-N needed); override for a quick local look only -- the gate
#: compares like with like because the pinned config is unchanged.
REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", 1_000_000))


def _make_session():
    from repro.network.topology import make_topology
    from repro.serve import ServeSession

    topo = make_topology(PINNED["topology"], PINNED["side"])
    return ServeSession(
        topo,
        PINNED["strategy"],
        seed=PINNED["seed"],
        max_queue=PINNED["max_queue"],
        max_inflight=PINNED["max_inflight"],
    )


def run_once(requests: int = REQUESTS, workers: int = 1) -> dict:
    from repro.serve import run_fleet, run_loadgen

    t0 = time.perf_counter()
    if workers == 1:
        session = _make_session()
        report = run_loadgen(
            session,
            workload=PINNED["workload"],
            params=PINNED["params"],
            arrival=PINNED["arrival"],
            rate=PINNED["rate"],
            requests=requests,
            seed=PINNED["seed"],
            chunk=PINNED["chunk"],
        )
        wall = time.perf_counter() - t0
        assert report.requests == requests - report.rejected
        row = dict(
            requests=report.requests,
            rejected=report.rejected,
            requests_per_sec=report.requests / wall,
            sim_requests_per_sec=report.sim_requests_per_sec,
            latency_p50=report.latency_p50,
            latency_p95=report.latency_p95,
            latency_p99=report.latency_p99,
            hit_rate=report.hit_rate,
            simulated_time=report.sim_time,
            simulated_msgs=report.total_msgs,
        )
    else:
        fleet = run_fleet(
            _make_session,
            workers=workers,
            requests=requests,
            seed=PINNED["seed"],
            workload=PINNED["workload"],
            params=PINNED["params"],
            arrival=PINNED["arrival"],
            rate=PINNED["rate"],
            chunk=PINNED["chunk"],
        )
        wall = time.perf_counter() - t0
        f = fleet.fleet
        row = dict(
            requests=f["requests"],
            rejected=f["rejected"],
            # The fleet's own aggregate (completed / slowest worker wall):
            # the per-shard concurrency number the workers=N row tracks.
            requests_per_sec=f["requests_per_sec"],
            sim_requests_per_sec=(
                f["requests"] / f["sim_time"] if f["sim_time"] > 0 else 0.0
            ),
            latency_p50=f["latency_p50"],
            latency_p95=f["latency_p95"],
            latency_p99=f["latency_p99"],
            hit_rate=f["hit_rate"],
            simulated_time=f["sim_time"],
            simulated_msgs=f["total_msgs"],
        )
    return {
        "bench": "serve",
        "bench_version": BENCH_VERSION,
        "engine": engine_name(),
        "pinned": PINNED,
        "workers": workers,
        "best_wall_seconds": wall,
        "peak_rss_mb": peak_rss_mb(),
        **row,
    }


def emit(result: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = "BENCH_serve" if result["engine"] == "c" else "BENCH_serve.pure"
    if result.get("workers", 1) != 1:
        stem += f".w{result['workers']}"
    path = RESULTS_DIR / f"{stem}.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def test_serve_throughput():
    """Pytest entry point: a short run keeps the harness fast; the JSON is
    still emitted so local bench runs leave a perf point behind."""
    result = run_once(requests=20_000)
    assert result["requests_per_sec"] > 0
    assert result["latency_p50"] <= result["latency_p95"] <= result["latency_p99"]
    emit(result)
    print(f"\nserve: {result['requests_per_sec']:.0f} requests/sec "
          f"(p99 {result['latency_p99'] * 1e3:.2f} sim-ms)")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard the pinned load across N engine "
                             "replicas (fleet row; workers=1 is the "
                             "gated single-session row)")
    args = parser.parse_args(argv)
    result = run_once(workers=args.workers)
    path = emit(result)
    from repro.exp.history import append_history

    append_history(
        {
            "bench": "serve",
            "engine": result["engine"],
            "metric": "requests_per_sec",
            "value": result["requests_per_sec"],
            "peak_rss_mb": result["peak_rss_mb"],
            "bench_version": BENCH_VERSION,
            "workers": args.workers,
        },
        HISTORY_PATH,
    )
    label = f"serve[{result['engine']}]"
    if args.workers != 1:
        label = f"serve[{result['engine']} x{args.workers}]"
    print(f"{label}: {result['requests_per_sec']:.0f} requests/sec "
          f"({result['requests']} served, p50 {result['latency_p50'] * 1e3:.2f} / "
          f"p99 {result['latency_p99'] * 1e3:.2f} sim-ms, "
          f"peak {result['peak_rss_mb']:.1f} MiB) -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
