"""Protocol-level ablations: invalidation share and node remapping.

* **Invalidation** -- the paper picked the matrix *square* over general
  multiplication precisely because squaring forces copy invalidation.
  Comparing the two quantifies the consistency-maintenance share of the
  dynamic strategies' control traffic.
* **Remapping** -- the theoretical strategy occasionally re-randomizes hot
  tree nodes; the paper omits it, conjecturing "the constant overhead
  induced by this procedure will not be retained in practice".  The
  ablation lets the conjecture be checked: at these scales remapping does
  not reduce congestion but does add migration overhead.
"""

from conftest import emit, once

from repro.analysis import ablation_invalidation, ablation_remapping, format_table


def test_ablation_invalidation(benchmark):
    rows = once(benchmark, lambda: ablation_invalidation(side=8, block_entries=1024))
    columns = ["strategy", "variant", "congestion_bytes", "ctrl_msgs", "time"]
    emit(
        "ablation_invalidation",
        format_table(
            rows,
            columns,
            title="Matrix square (invalidating) vs general multiply (read-only), 8x8",
        ),
        rows=rows,
        columns=columns,
    )
    d = {(r["strategy"], r["variant"]): r for r in rows}
    # Invalidation is control traffic: the square variant sends clearly
    # more control messages than the general one, for both strategies.
    for strategy in ("4-ary", "fixed-home"):
        assert d[(strategy, "square")]["ctrl_msgs"] > 1.3 * d[(strategy, "general")]["ctrl_msgs"]


def test_ablation_remapping(benchmark):
    rows = once(
        benchmark, lambda: ablation_remapping(side=8, thresholds=(None, 16, 4))
    )
    columns = ["remap_threshold", "remaps", "congestion_bytes", "time"]
    emit(
        "ablation_remapping",
        format_table(
            rows,
            columns,
            title="Access-tree node remapping on a hot broadcast variable "
            "(paper: omitted; 4-ary, 8x8)",
        ),
        rows=rows,
        columns=columns,
    )
    off = rows[0]
    aggressive = rows[-1]
    assert off["remaps"] == 0
    assert aggressive["remaps"] > 0
    # The paper's conjecture: remapping's overhead is not repaid at these
    # scales -- it must not *help* time by more than noise.
    assert aggressive["time"] > 0.9 * off["time"]
