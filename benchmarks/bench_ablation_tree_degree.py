"""Tree-degree ablation (Sections 3.1 / 3.2 of the paper).

Paper findings: "In general, the smaller the degree of the access tree,
the smaller the congestion.  However, the 4-ary access tree strategy
achieves the best communication and execution times [for matmul] because
it chooses the best compromise between minimizing the congestion and
minimizing the number of startups."  For bitonic sorting, "the 2-ary and
the 2-4-ary access tree strategy perform slightly better than the 4-ary
strategy" because the circuit's locality matches the 2-ary decomposition.
"""

from conftest import emit, once

from repro.analysis import ablation_tree_degree, format_table

VARIANTS = ("2-ary", "2-4-ary", "4-ary", "4-16-ary", "16-ary")


def test_ablation_tree_degree_matmul(benchmark):
    rows = once(
        benchmark, lambda: ablation_tree_degree(workload="matmul", side=8, size=1024, variants=VARIANTS)
    )
    columns = ["strategy", "congestion_bytes", "time", "max_startups"]
    emit(
        "ablation_tree_degree_matmul",
        format_table(
            rows,
            columns,
            title="Tree-degree ablation, matmul 8x8 block 1024",
        ),
        rows=rows,
        columns=columns,
    )
    d = {r["strategy"]: r for r in rows}
    # Congestion grows with the degree...
    assert d["2-ary"]["congestion_bytes"] <= d["4-ary"]["congestion_bytes"]
    assert d["4-ary"]["congestion_bytes"] <= d["16-ary"]["congestion_bytes"]
    # ... while flat trees save startups.
    assert d["16-ary"]["max_startups"] < d["2-ary"]["max_startups"]
    # 4-ary's execution time beats the 2-ary tree (the paper's compromise).
    assert d["4-ary"]["time"] <= d["2-ary"]["time"]


def test_ablation_tree_degree_bitonic(benchmark):
    rows = once(
        benchmark, lambda: ablation_tree_degree(workload="bitonic", side=8, size=1024, variants=VARIANTS)
    )
    columns = ["strategy", "congestion_bytes", "time", "max_startups"]
    emit(
        "ablation_tree_degree_bitonic",
        format_table(
            rows,
            columns,
            title="Tree-degree ablation, bitonic 8x8, 1024 keys/proc",
        ),
        rows=rows,
        columns=columns,
    )
    d = {r["strategy"]: r for r in rows}
    # The bitonic circuit's locality matches the binary decomposition:
    # 2-ary variants hold the congestion edge over flat trees.
    assert d["2-ary"]["congestion_bytes"] <= d["16-ary"]["congestion_bytes"]
    assert d["2-4-ary"]["congestion_bytes"] <= d["16-ary"]["congestion_bytes"]
    # 2-4-ary does not lose time to the plain 4-ary variant.
    assert d["2-4-ary"]["time"] <= 1.1 * d["4-ary"]["time"]
