"""Figure 3: matrix multiplication on a fixed mesh, block-size sweep.

Paper: congestion ratio and communication-time ratio of fixed home and the
4-ary access tree relative to the hand-optimized strategy, on a 16x16 mesh
with blocks of 64..4096 integers.  Expected shape: fixed-home congestion
ratio ~25-33 >> access tree ~6.5-9.3, both slightly decreasing with block
size; time ratios below congestion ratios; access tree about twice as fast
as fixed home.
"""

from conftest import emit, once

from repro.analysis import PAPER, fig3_matmul_blocksize, format_table, scale_params


def test_fig3_matmul_blocksize(benchmark):
    p = scale_params("fig3")
    rows = once(benchmark, lambda: fig3_matmul_blocksize(side=p["side"], blocks=p["blocks"]))

    ref = PAPER["fig3"]
    for row in rows:
        if row["strategy"] in ref["congestion_ratio"] and row["block"] in ref["x"]:
            i = ref["x"].index(row["block"])
            row["paper_congestion_ratio"] = ref["congestion_ratio"][row["strategy"]][i]
            row["paper_time_ratio"] = ref["time_ratio"][row["strategy"]][i]
    columns = ["strategy", "block", "congestion_ratio", "paper_congestion_ratio",
               "time_ratio", "paper_time_ratio"]
    emit(
        "fig3",
        format_table(
            rows,
            columns,
            title=f"Figure 3: matmul on {p['side']}x{p['side']}, ratios vs hand-optimized",
        ),
        rows=rows,
        columns=columns,
    )

    # Shape assertions (paper's qualitative findings).
    for block in p["blocks"]:
        fh = next(r for r in rows if r["strategy"] == "fixed-home" and r["block"] == block)
        at = next(r for r in rows if r["strategy"] == "4-ary" and r["block"] == block)
        assert at["congestion_ratio"] < fh["congestion_ratio"]
        assert at["time_ratio"] < fh["time_ratio"]
        # Time ratios improve on congestion ratios (hand-opt pays startups).
        assert fh["time_ratio"] < fh["congestion_ratio"]
    fh_series = [
        next(r for r in rows if r["strategy"] == "fixed-home" and r["block"] == b)["congestion_ratio"]
        for b in p["blocks"]
    ]
    assert fh_series[-1] <= fh_series[0]  # decreasing with block size
