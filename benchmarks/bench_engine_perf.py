#!/usr/bin/env python3
"""Engine throughput benchmark: the repo's wall-clock perf trajectory.

Runs a *pinned* synthetic workload cell (Zipf hotspot kernel, 8x8 mesh,
4-ary access tree -- parameters frozen below; changing them breaks the
trajectory, bump ``BENCH_VERSION`` if you must) several times and reports
the best wall-clock rate in **cells/sec** plus the finer-grained
**accesses/sec**.  The result is written to
``benchmarks/results/BENCH_engine.json`` so CI archives one comparable
perf point per commit.

Run standalone (CI does) or via pytest::

    python benchmarks/bench_engine_perf.py
    REPRO_SCALE=default python -m pytest benchmarks/bench_engine_perf.py -q

Simulated quantities are deterministic, so the only run-to-run variance
is host speed: best-of-N is the honest estimator.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bump when the pinned configuration changes (breaks rate comparability).
BENCH_VERSION = 1

#: The pinned cell: one zipf run, 64 processors, 4096 accesses.
PINNED = dict(
    workload="zipf",
    strategy="4-ary",
    topology="mesh",
    side=8,
    seed=0,
    params={"n_vars": 64, "ops": 64, "alpha": 0.8, "read_frac": 0.9},
)
REPEATS = 5


def run_once():
    from repro.analysis.experiments import synthetic_cell

    return synthetic_cell(**PINNED)


def measure(repeats: int = REPEATS) -> dict:
    """Best-of-``repeats`` wall time of the pinned cell (plus one untimed
    warm-up for imports and route caches)."""
    rows = run_once()  # warm-up; also sanity-checks the cell
    assert rows and rows[0]["total_msgs"] > 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    accesses = PINNED["params"]["ops"] * PINNED["side"] * PINNED["side"]
    return {
        "bench": "engine",
        "bench_version": BENCH_VERSION,
        "pinned": PINNED,
        "repeats": repeats,
        "best_wall_seconds": best,
        "cells_per_sec": 1.0 / best,
        "accesses_per_sec": accesses / best,
        "simulated_msgs": rows[0]["total_msgs"],
        "simulated_time": rows[0]["time"],
    }


def emit(result: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def test_engine_throughput():
    """Pytest entry point: one repeat keeps the harness fast; the JSON is
    still emitted so local bench runs leave a perf point behind."""
    result = measure(repeats=1)
    assert result["cells_per_sec"] > 0
    emit(result)
    print(f"\nengine: {result['cells_per_sec']:.2f} cells/sec "
          f"({result['accesses_per_sec']:.0f} accesses/sec)")


def main() -> int:
    result = measure()
    path = emit(result)
    print(f"engine: {result['cells_per_sec']:.2f} cells/sec "
          f"({result['accesses_per_sec']:.0f} accesses/sec, "
          f"best of {result['repeats']}) -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
