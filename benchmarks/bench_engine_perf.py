#!/usr/bin/env python3
"""Engine throughput benchmark: the repo's wall-clock perf trajectory.

Runs a *pinned* synthetic workload cell (Zipf hotspot kernel, 8x8 mesh,
4-ary access tree -- parameters frozen below; changing them breaks the
trajectory, bump ``BENCH_VERSION`` if you must) several times and reports
the best wall-clock rate in **cells/sec** plus the finer-grained
**accesses/sec**, and the process's **peak RSS** in MiB -- the memory
envelope the CI gate enforces alongside throughput.  The result is
written to ``benchmarks/results/BENCH_engine.json`` so CI archives one
comparable perf point per commit; with ``REPRO_PURE_PYTHON`` set the
result describes the pure-Python engine and goes to
``BENCH_engine.pure.json`` (own baseline, own gate).  ``main`` also
appends a dated row to the committed ``benchmarks/BENCH_history.json``
trajectory (``tools/bench_compare.py --history`` prints the trend).

Run standalone (CI does) or via pytest::

    python benchmarks/bench_engine_perf.py
    REPRO_PURE_PYTHON=1 python benchmarks/bench_engine_perf.py
    REPRO_SCALE=default python -m pytest benchmarks/bench_engine_perf.py -q

Simulated quantities are deterministic, so the only run-to-run variance
is host speed: best-of-N is the honest estimator.  Peak RSS is far more
stable than wall clock (same interpreter -> same allocations), but it is
a high-water mark of the whole process, so it is measured on the same
runs best-of-N times.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bump when the pinned configuration changes (breaks rate comparability).
#: v2: added peak_rss_mb + per-engine results (pure vs C).
BENCH_VERSION = 2

#: The pinned cell: one zipf run, 64 processors, 4096 accesses.
PINNED = dict(
    workload="zipf",
    strategy="4-ary",
    topology="mesh",
    side=8,
    seed=0,
    params={"n_vars": 64, "ops": 64, "alpha": 0.8, "read_frac": 0.9},
)
REPEATS = 5


def run_once():
    from repro.analysis.experiments import synthetic_cell

    return synthetic_cell(**PINNED)


def engine_name() -> str:
    """Which engine this process benchmarks ("c" or "pure")."""
    return "pure" if os.environ.get("REPRO_PURE_PYTHON") else "c"


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (see
    :func:`repro.exp.runner.peak_rss_mb`; duplicated here so the bench
    stays import-light)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def measure(repeats: int = REPEATS) -> dict:
    """Best-of-``repeats`` wall time of the pinned cell (plus one untimed
    warm-up for imports and route caches)."""
    rows = run_once()  # warm-up; also sanity-checks the cell
    assert rows and rows[0]["total_msgs"] > 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    accesses = PINNED["params"]["ops"] * PINNED["side"] * PINNED["side"]
    return {
        "bench": "engine",
        "bench_version": BENCH_VERSION,
        "engine": engine_name(),
        "pinned": PINNED,
        "repeats": repeats,
        "best_wall_seconds": best,
        "cells_per_sec": 1.0 / best,
        "accesses_per_sec": accesses / best,
        "peak_rss_mb": peak_rss_mb(),
        "simulated_msgs": rows[0]["total_msgs"],
        "simulated_time": rows[0]["time"],
    }


def emit(result: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = "BENCH_engine" if result["engine"] == "c" else "BENCH_engine.pure"
    path = RESULTS_DIR / f"{stem}.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def test_engine_throughput():
    """Pytest entry point: one repeat keeps the harness fast; the JSON is
    still emitted so local bench runs leave a perf point behind."""
    result = measure(repeats=1)
    assert result["cells_per_sec"] > 0
    emit(result)
    print(f"\nengine: {result['cells_per_sec']:.2f} cells/sec "
          f"({result['accesses_per_sec']:.0f} accesses/sec)")


def main() -> int:
    result = measure()
    path = emit(result)
    from repro.exp.history import append_history

    append_history(
        {
            "bench": "engine",
            "engine": result["engine"],
            "metric": "cells_per_sec",
            "value": result["cells_per_sec"],
            "peak_rss_mb": result["peak_rss_mb"],
            "bench_version": BENCH_VERSION,
        },
        pathlib.Path(__file__).parent / "BENCH_history.json",
    )
    print(f"engine[{result['engine']}]: {result['cells_per_sec']:.2f} cells/sec "
          f"({result['accesses_per_sec']:.0f} accesses/sec, "
          f"peak {result['peak_rss_mb']:.1f} MiB, "
          f"best of {result['repeats']}) -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
