"""Figure 9: the tree-building phase of the Figure 8 runs.

Paper: the root cell is the bottleneck -- with the fixed home strategy one
processor (the root's home) delivers a copy of the root to every processor
one by one, giving the fixed home a large congestion offset; access trees
distribute the root through their multicast trees.
"""

from conftest import emit, once, paper_shapes

from repro.analysis import PAPER, fig9_fig10_phase_views, format_table


def test_fig9_treebuild_phase(benchmark, fig8_rows):
    p, rows = fig8_rows
    fig9, _ = once(benchmark, lambda: fig9_fig10_phase_views(rows))

    columns = ["strategy", "bodies", "congestion_msgs", "time"]
    emit(
        "fig9",
        format_table(
            fig9,
            columns,
            title=f"Figure 9: tree-building phase ({PAPER['fig9']['note']})",
        ),
        rows=fig9,
        columns=columns,
    )

    n = max(r["bodies"] for r in fig9)
    cong = {r["strategy"]: r["congestion_msgs"] for r in fig9 if r["bodies"] == n}
    time = {r["strategy"]: r["time"] for r in fig9 if r["bodies"] == n}
    # Scale-robust sanity: every strategy built the tree and moved data.
    for name, c in cong.items():
        assert c > 0, f"{name}: no tree-building traffic recorded"
    if paper_shapes():
        # The fixed home offset (the root's home serializes distributing
        # the root cell): well above every access-tree variant.  Needs
        # enough bodies per processor to make the root hot; quick-scale
        # runs are too small to separate the strategies here.
        for name in ("2-ary", "4-ary", "4-16-ary"):
            assert cong["fixed-home"] > 1.5 * cong[name]
            assert time["fixed-home"] > time[name]
