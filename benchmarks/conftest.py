"""Benchmark harness plumbing.

Every benchmark regenerates one figure of the paper at the scale selected
by ``REPRO_SCALE`` (``default`` if unset; ``paper`` for the paper's exact
parameters -- slow in pure Python; ``quick`` for smoke runs), prints a
paper-vs-measured table, asserts the figure's *shape*, and records the
table under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a results table and persist it."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    scale = os.environ.get("REPRO_SCALE", "default")
    (RESULTS_DIR / f"{name}.{scale}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def fig8_rows():
    """Shared Figure 8 runs (Figures 9 and 10 are phase views of the same
    executions, exactly as in the paper)."""
    from repro.analysis import fig8_barneshut_bodies, scale_params

    p = scale_params("fig8")
    return p, fig8_barneshut_bodies(
        side=p["side"], bodies=p["bodies"], steps=p["steps"], warm=p["warm"]
    )


def once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
