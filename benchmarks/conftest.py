"""Benchmark harness plumbing.

Every benchmark regenerates one figure of the paper at the scale selected
by ``REPRO_SCALE`` (``default`` if unset; ``paper`` for the paper's exact
parameters -- slow in pure Python; ``quick`` for smoke runs), prints a
paper-vs-measured table, asserts the figure's *shape*, and records the
table under ``benchmarks/results/`` for EXPERIMENTS.md.  When the caller
passes the rows, the JSON form is persisted next to the text table as
``<name>.<scale>.bench.json`` (same schema as ``python -m repro --json``,
which owns the plain ``<name>.<scale>.json`` stem) so
``benchmarks/results/`` doubles as the perf-trajectory source for
BENCH_*.json gating.
"""

from __future__ import annotations

import os
import pathlib
from typing import Mapping, Optional, Sequence

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(
    name: str,
    text: str,
    rows: Optional[Sequence[Mapping[str, object]]] = None,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Print a results table and persist it (text always, JSON when rows
    are given).  Non-serializable row fields (e.g. attached RunResults)
    are stripped by the emit layer; the rows themselves are not touched."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    scale = os.environ.get("REPRO_SCALE", "default")
    (RESULTS_DIR / f"{name}.{scale}.txt").write_text(text + "\n")
    if rows is not None:
        from repro.exp import field_union, result_payload, topology_union, write_json

        # Distinct .bench.json stem: the CLI's --json owns <name>.<scale>.json
        # (with resolved params), so the harness must not overwrite it.
        write_json(
            RESULTS_DIR / f"{name}.{scale}.bench.json",
            result_payload(name, scale, rows, columns or [],
                           workload=field_union(rows, "workload", None),
                           topology=topology_union(rows)),
        )


@pytest.fixture(scope="session")
def fig8_rows():
    """Shared Figure 8 runs (Figures 9 and 10 are phase views of the same
    executions, exactly as in the paper)."""
    from repro.analysis import fig8_barneshut_bodies, scale_params

    p = scale_params("fig8")
    return p, fig8_barneshut_bodies(
        side=p["side"], bodies=p["bodies"], steps=p["steps"], warm=p["warm"]
    )


def once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def paper_shapes() -> bool:
    """Whether the figure-*shape* assertions apply at the current scale.

    The paper's strategy orderings (congestion offsets, ratio growth) only
    separate once the runs are big enough; ``REPRO_SCALE=quick`` trades
    that separation for smoke-test speed, so quick runs assert basic
    sanity instead and the shape checks are reserved for ``default`` /
    ``paper``."""
    return os.environ.get("REPRO_SCALE", "default") != "quick"
