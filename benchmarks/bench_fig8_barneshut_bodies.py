"""Figure 8: Barnes-Hut congestion and execution time vs body count.

Paper (16x16 mesh, N = 10k..60k, five strategies): congestion ordered
fixed-home > 16-ary > 4-16-ary > 4-ary > 2-ary ("the higher the access
tree is, the smaller is the congestion"); execution time is best for the
4-ary tree -- the 2-ary tree's low congestion is eaten by its startup
overhead.  (The 2-ary kink at 60k bodies from copy replacement is covered
by the bounded-memory ablation.)
"""

from conftest import emit, once, paper_shapes

from repro.analysis import PAPER, format_table


def test_fig8_barneshut_bodies(benchmark, fig8_rows):
    p, rows = fig8_rows
    rows = once(benchmark, lambda: rows)  # timing happened in the fixture

    columns = ["strategy", "bodies", "congestion_msgs", "time", "hit_rate"]
    emit(
        "fig8",
        format_table(
            rows,
            columns,
            title=(
                f"Figure 8: Barnes-Hut on {p['side']}x{p['side']}, "
                f"{p['steps'] - p['warm']} measured steps ({PAPER['fig8']['note']})"
            ),
        ),
        rows=rows,
        columns=columns,
    )

    n = max(r["bodies"] for r in rows)
    cong = {r["strategy"]: r["congestion_msgs"] for r in rows if r["bodies"] == n}
    time = {r["strategy"]: r["time"] for r in rows if r["bodies"] == n}
    # Scale-robust sanity: the deep trees always beat fixed home.
    assert cong["2-ary"] < cong["fixed-home"]
    assert cong["4-ary"] < cong["fixed-home"]
    if paper_shapes():
        # The paper's full congestion ordering (strict where scales
        # separate it; at quick scale the flat 16-ary tree and fixed home
        # are within noise of each other).
        assert cong["4-ary"] < cong["16-ary"] < cong["fixed-home"]
        assert cong["4-16-ary"] <= cong["16-ary"]
        assert cong["2-ary"] <= 1.1 * cong["4-ary"]
        # Execution time: every access tree beats fixed home; 4-ary is not
        # beaten by the 2-ary tree (startups).
        for name in ("2-ary", "4-ary", "4-16-ary", "16-ary"):
            assert time[name] < time["fixed-home"]
        assert time["4-ary"] <= 1.05 * time["2-ary"]
    # Congestion grows with N for every strategy.
    for name in cong:
        series = [r["congestion_msgs"] for r in rows if r["strategy"] == name]
        assert series[-1] > series[0]
