"""Embedding ablation (the paper's "practical improvements", Section 2).

The modified (regular) embedding replaces the independent uniform node
placement of the theoretical analysis; "the major advantage ... is that it
decreases the expected distances between the processors simulating
neighbored access tree nodes", at the price of dependencies the theory
does not cover ("we have not recognized any bad effects").
"""

from conftest import emit, once

from repro.analysis import ablation_embedding, format_table


def test_ablation_embedding_matmul(benchmark):
    rows = once(benchmark, lambda: ablation_embedding(workload="matmul", side=8, size=1024))
    columns = ["embedding", "congestion_bytes", "total_bytes", "time"]
    emit(
        "ablation_embedding_matmul",
        format_table(
            rows,
            columns,
            title="Embedding ablation, matmul 8x8 block 1024 (4-ary tree)",
        ),
        rows=rows,
        columns=columns,
    )
    d = {r["embedding"]: r for r in rows}
    # Shorter tree edges => less total traffic and time.
    assert d["modified"]["total_bytes"] < d["random"]["total_bytes"]
    assert d["modified"]["time"] < d["random"]["time"]


def test_ablation_embedding_bitonic(benchmark):
    rows = once(benchmark, lambda: ablation_embedding(workload="bitonic", side=8, size=1024))
    columns = ["embedding", "congestion_bytes", "total_bytes", "time"]
    emit(
        "ablation_embedding_bitonic",
        format_table(
            rows,
            columns,
            title="Embedding ablation, bitonic 8x8, 1024 keys/proc (4-ary tree)",
        ),
        rows=rows,
        columns=columns,
    )
    d = {r["embedding"]: r for r in rows}
    assert d["modified"]["total_bytes"] < d["random"]["total_bytes"]
