"""Cross-strategy comparison: every registered family head to head.

The paper compares two data-management families (access trees vs fixed
home).  The strategy registry adds the data-grid literature's migration
and threshold-replication schemes; this benchmark runs all of them over
the paper's bitonic workload and the zipf kernel (read-heavy and mixed)
at a matched 64 nodes on every topology, and checks the structural
expectations the xstrat experiment established:

* the paper's claim survives the bigger field: access trees still beat
  fixed home on congestion for the read-heavy workloads, on every
  topology;
* **migratory wins bitonic outright** (congestion and time): bitonic's
  write-then-partner-reads pattern never rereads, so replication is pure
  overhead and the single moving copy avoids every invalidation;
* **dynrep beats fixed home on execution time** for the read-heavy zipf
  hotspot: fewer replicas mean cheaper write invalidations at the same
  directory cost -- while the access trees keep the congestion crown.
"""

from conftest import emit, once, paper_shapes

from repro.analysis import format_table
from repro.analysis.experiments import scale_params, xstrat_cell

TOPOLOGIES = ("mesh", "torus", "hypercube")
STRATEGIES = ("fixed-home", "4-ary", "2-4-ary", "migratory", "dynrep")


def test_xstrat_strategies(benchmark):
    p = scale_params("xstrat")

    def run():
        rows = []
        for topology in TOPOLOGIES:
            for name in STRATEGIES:
                rows.extend(xstrat_cell(
                    workload="bitonic", strategy=name, topology=topology,
                    side=p["side"], params={"keys": p["keys"]}, seed=0,
                ))
                for read_frac in (0.9, 0.5):
                    rows.extend(xstrat_cell(
                        workload="zipf", strategy=name, topology=topology,
                        side=p["side"],
                        params={"ops": p["ops"], "alpha": 0.8,
                                "read_frac": read_frac},
                        seed=0,
                    ))
        return rows

    rows = once(benchmark, run)
    columns = ["workload", "topology", "strategy", "read_frac",
               "congestion_bytes", "total_bytes", "time", "hit_rate"]
    emit(
        "xstrat",
        format_table(
            rows, columns,
            title=(
                f"cross-strategy: {len(STRATEGIES)} families, "
                f"{p['side'] * p['side']} nodes, "
                f"bitonic {p['keys']} keys/proc + zipf {p['ops']} ops/proc"
            ),
        ),
        rows=rows,
        columns=columns,
    )

    # -- sanity at every scale ------------------------------------------
    def pick(workload, topology, strategy, read_frac=None):
        for r in rows:
            if (r["workload"] == workload and r["topology"] == topology
                    and r["strategy"] == strategy
                    and (read_frac is None or r.get("read_frac") == read_frac)):
                return r
        raise AssertionError(f"missing row {workload}/{topology}/{strategy}")

    for r in rows:
        assert r["time"] > 0
        assert 0.0 <= r["hit_rate"] <= 1.0
        assert r["strategy_family"] in ("fixed-home", "4-ary", "2-4-ary",
                                        "migratory", "dynrep")

    if not paper_shapes():
        return

    # -- structural expectations (default / paper scale) ----------------
    for topology in TOPOLOGIES:
        fh_bit = pick("bitonic", topology, "fixed-home")
        at_bit = pick("bitonic", topology, "2-4-ary")
        mig_bit = pick("bitonic", topology, "migratory")
        # The paper's claim survives the bigger field.
        assert at_bit["congestion_bytes"] < fh_bit["congestion_bytes"]
        # Migration wins the never-reread workload on both metrics.
        assert mig_bit["congestion_bytes"] < at_bit["congestion_bytes"]
        assert mig_bit["time"] < at_bit["time"]
        # Fewer replicas => cheaper invalidations: dynrep beats fixed home
        # on time for the read-heavy hotspot.
        fh_zipf = pick("zipf", topology, "fixed-home", read_frac=0.9)
        dr_zipf = pick("zipf", topology, "dynrep", read_frac=0.9)
        assert dr_zipf["time"] < fh_zipf["time"]
        # ... while the access tree keeps the congestion crown there.
        at_zipf = pick("zipf", topology, "2-4-ary", read_frac=0.9)
        assert at_zipf["congestion_bytes"] < fh_zipf["congestion_bytes"]
        assert at_zipf["congestion_bytes"] < dr_zipf["congestion_bytes"]
