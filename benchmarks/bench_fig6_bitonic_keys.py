"""Figure 6: bitonic sorting on a fixed mesh, keys-per-processor sweep.

Paper (16x16): fixed-home congestion ratio ~7-8, 2-4-ary access tree
~2.7-3.0, both slightly decreasing with the key count (control messages
amortize); execution-time ratios track congestion, and the access tree's
time ratio sits *above* its congestion ratio for small keys (startup
overhead vs the hand-optimized exchange).
"""

from conftest import emit, once

from repro.analysis import PAPER, fig6_bitonic_keys, format_table, scale_params


def test_fig6_bitonic_keys(benchmark):
    p = scale_params("fig6")
    rows = once(benchmark, lambda: fig6_bitonic_keys(side=p["side"], keys=p["keys"]))

    ref = PAPER["fig6"]
    for row in rows:
        if row["strategy"] in ref["congestion_ratio"] and row["keys"] in ref["x"]:
            i = ref["x"].index(row["keys"])
            row["paper_congestion_ratio"] = ref["congestion_ratio"][row["strategy"]][i]
            row["paper_time_ratio"] = ref["time_ratio"][row["strategy"]][i]
    columns = ["strategy", "keys", "congestion_ratio", "paper_congestion_ratio",
               "time_ratio", "paper_time_ratio"]
    emit(
        "fig6",
        format_table(
            rows,
            columns,
            title=f"Figure 6: bitonic on {p['side']}x{p['side']}, ratios vs keys/processor",
        ),
        rows=rows,
        columns=columns,
    )

    for m in p["keys"]:
        fh = next(r for r in rows if r["strategy"] == "fixed-home" and r["keys"] == m)
        at = next(r for r in rows if r["strategy"] == "2-4-ary" and r["keys"] == m)
        assert at["congestion_ratio"] < fh["congestion_ratio"]
        assert at["time_ratio"] < fh["time_ratio"]
    # Congestion ratios weakly decreasing with key count.
    fh_series = [
        next(r for r in rows if r["strategy"] == "fixed-home" and r["keys"] == m)["congestion_ratio"]
        for m in p["keys"]
    ]
    assert fh_series[-1] <= fh_series[0] * 1.05
