"""Figure 7: bitonic sorting, network-size sweep at fixed keys/processor.

Paper (4096 keys/proc): fixed-home congestion ratio grows ~log^2 P
(2.81 -> 10.48); the 2-4-ary access tree converges towards a constant near
3 (2.08 -> 2.90) -- the locality of the merging circuits matches the tree
decomposition, so the access tree is asymptotically optimal here.
"""

from conftest import emit, once, paper_shapes

from repro.analysis import PAPER, fig7_bitonic_network, format_table, scale_params


def test_fig7_bitonic_network(benchmark):
    p = scale_params("fig7")
    rows = once(benchmark, lambda: fig7_bitonic_network(sides=p["sides"], keys=p["keys"]))

    ref = PAPER["fig7"]
    for row in rows:
        if row["strategy"] in ref["congestion_ratio"] and row["side"] in ref["x"]:
            i = ref["x"].index(row["side"])
            row["paper_congestion_ratio"] = ref["congestion_ratio"][row["strategy"]][i]
            row["paper_time_ratio"] = ref["time_ratio"][row["strategy"]][i]
    columns = ["strategy", "side", "congestion_ratio", "paper_congestion_ratio",
               "time_ratio", "paper_time_ratio"]
    emit(
        "fig7",
        format_table(
            rows,
            columns,
            title=f"Figure 7: bitonic, {p['keys']} keys/proc, ratios vs network size",
        ),
        rows=rows,
        columns=columns,
    )

    sides = list(p["sides"])
    fh = {r["side"]: r for r in rows if r["strategy"] == "fixed-home"}
    at = {r["side"]: r for r in rows if r["strategy"] == "2-4-ary"}
    if paper_shapes():
        # Fixed home's ratio keeps growing; the access tree's stays much
        # flatter.  (The 1.5x growth needs the full side sweep: quick only
        # spans 4 -> 8, where the log^2 P growth has barely started.)
        assert fh[sides[-1]]["congestion_ratio"] > 1.5 * fh[sides[0]]["congestion_ratio"]
    growth_at = at[sides[-1]]["congestion_ratio"] / at[sides[0]]["congestion_ratio"]
    growth_fh = fh[sides[-1]]["congestion_ratio"] / fh[sides[0]]["congestion_ratio"]
    assert growth_at < growth_fh
    assert at[sides[-1]]["time_ratio"] < fh[sides[-1]]["time_ratio"]
