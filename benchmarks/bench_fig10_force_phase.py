"""Figure 10: the force-computation phase of the Figure 8 runs.

Paper: the dominant phase (read-only: many copies are created); access
trees win through their efficient copy distribution, and the
communication share of the phase time is smaller for the 4-ary tree
(~25%) than for fixed home (~33%) at the largest N.  The figure's extra
line -- local computation time -- is strategy-independent.
"""

from conftest import emit, once

from repro.analysis import PAPER, fig9_fig10_phase_views, format_table


def test_fig10_force_phase(benchmark, fig8_rows):
    p, rows = fig8_rows
    _, fig10 = once(benchmark, lambda: fig9_fig10_phase_views(rows))

    columns = ["strategy", "bodies", "congestion_msgs", "time", "local_compute", "comm_share"]
    emit(
        "fig10",
        format_table(
            fig10,
            columns,
            title=f"Figure 10: force-computation phase ({PAPER['fig10']['note']})",
        ),
        rows=fig10,
        columns=columns,
    )

    n = max(r["bodies"] for r in fig10)
    at = next(r for r in fig10 if r["strategy"] == "4-ary" and r["bodies"] == n)
    fh = next(r for r in fig10 if r["strategy"] == "fixed-home" and r["bodies"] == n)
    assert at["congestion_msgs"] < fh["congestion_msgs"]
    assert at["time"] <= fh["time"]
    # Local computation is identical physics -> identical charge.
    assert abs(at["local_compute"] - fh["local_compute"]) < 1e-9 * max(1.0, fh["local_compute"])
    # Communication share smaller for the access tree.
    assert at["comm_share"] <= fh["comm_share"]
