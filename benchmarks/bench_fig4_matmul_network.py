"""Figure 4: matrix multiplication, network-size sweep at fixed block size.

Paper (block 4096, meshes 4x4..32x32): fixed-home congestion ratio grows
like Theta(sqrt P) (5.56 -> 47.98), the access tree like Theta(log P)
(3.87 -> 8.10); the time advantage of the access tree grows with the
network (99% -> 28% of fixed home's time).
"""

from conftest import emit, once

from repro.analysis import PAPER, fig4_matmul_network, format_table, scale_params


def test_fig4_matmul_network(benchmark):
    p = scale_params("fig4")
    rows = once(
        benchmark,
        lambda: fig4_matmul_network(sides=p["sides"], block_entries=p["block_entries"]),
    )

    ref = PAPER["fig4"]
    for row in rows:
        if row["strategy"] in ref["congestion_ratio"] and row["side"] in ref["x"]:
            i = ref["x"].index(row["side"])
            row["paper_congestion_ratio"] = ref["congestion_ratio"][row["strategy"]][i]
            row["paper_time_ratio"] = ref["time_ratio"][row["strategy"]][i]
    columns = ["strategy", "side", "congestion_ratio", "paper_congestion_ratio",
               "time_ratio", "paper_time_ratio"]
    emit(
        "fig4",
        format_table(
            rows,
            columns,
            title=f"Figure 4: matmul, block {p['block_entries']}, ratios vs network size",
        ),
        rows=rows,
        columns=columns,
    )

    fh = {r["side"]: r for r in rows if r["strategy"] == "fixed-home"}
    at = {r["side"]: r for r in rows if r["strategy"] == "4-ary"}
    sides = list(p["sides"])
    # Fixed home degrades much faster than the access tree.
    assert fh[sides[-1]]["congestion_ratio"] > 2 * fh[sides[0]]["congestion_ratio"]
    growth_at = at[sides[-1]]["congestion_ratio"] / at[sides[0]]["congestion_ratio"]
    growth_fh = fh[sides[-1]]["congestion_ratio"] / fh[sides[0]]["congestion_ratio"]
    assert growth_at < growth_fh
    # The access tree's time advantage grows with the network size.
    adv = [at[s]["time_ratio"] / fh[s]["time_ratio"] for s in sides]
    assert adv[-1] < adv[0]
    assert at[sides[-1]]["time_ratio"] < fh[sides[-1]]["time_ratio"]
