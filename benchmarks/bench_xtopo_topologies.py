"""Cross-topology comparison: bitonic on mesh vs torus vs hypercube.

The paper's evaluation is mesh-only, but the access tree strategy is
topology-generic; related data-grid/P2P evaluations report that strategy
rankings can flip with the interconnect.  This benchmark runs the bitonic
workload at a matched node count (256: mesh/torus 16x16, hypercube dim 8)
on all three topologies and checks the structural expectations:

* the torus never congests a strategy *substantially* more than the mesh
  (same decomposition tree, strictly more links, every route at most the
  mesh route -- but shorter routes bound total load, not max-link load:
  rerouting can concentrate traffic on wrap wires, hence the tolerance in
  the assertion below);
* the hypercube's richer wiring cuts absolute congestion well below the
  mesh's;
* on every topology the access tree keeps beating fixed home on
  congestion -- the paper's central claim carries over.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.analysis.experiments import bitonic_cell, scale_params

TOPOLOGIES = ("mesh", "torus", "hypercube")
STRATEGIES = ("fixed-home", "4-ary", "2-4-ary")


def test_xtopo_topologies(benchmark):
    p = scale_params("xtopo")

    def run():
        rows = []
        for topology in TOPOLOGIES:
            rows.extend(
                bitonic_cell(
                    side=p["side"], keys=p["keys"], strategies=STRATEGIES,
                    topology=topology, seed=0,
                )
            )
        return rows

    rows = once(benchmark, run)
    columns = ["topology", "network", "strategy", "congestion_ratio",
               "time_ratio", "congestion_bytes", "time"]
    emit(
        "xtopo",
        format_table(
            rows,
            columns,
            title=(
                f"cross-topology: bitonic, {p['keys']} keys/proc, "
                f"{p['side'] * p['side']} nodes"
            ),
        ),
        rows=rows,
        columns=columns,
    )

    cong = {
        (r["topology"], r["strategy"]): r["congestion_bytes"] for r in rows
    }
    for strategy in STRATEGIES:
        # Torus within tolerance of the mesh (see module docstring: route
        # shortening does not bound max-link load exactly).
        assert cong[("torus", strategy)] <= cong[("mesh", strategy)] * 1.25
        # The hypercube's wiring cuts absolute congestion well below the mesh.
        assert cong[("hypercube", strategy)] < cong[("mesh", strategy)]
    for topology in TOPOLOGIES:
        # The paper's central claim carries over to every interconnect.
        assert cong[(topology, "2-4-ary")] < cong[(topology, "fixed-home")]
        assert cong[(topology, "4-ary")] < cong[(topology, "fixed-home")]
