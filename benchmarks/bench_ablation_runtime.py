"""Runtime-service ablations: barrier implementation and bounded memory.

* Barrier: DIVA's combining-tree barrier vs a central coordinator -- the
  tree variant distributes synchronization traffic (the paper's barriers
  are "implementations of elegant algorithms that use access trees").
* Bounded memory: the paper's Figure 8 shows a congestion kink for the
  2-ary tree at 60,000 bodies caused by LRU copy replacement; shrinking
  per-processor capacity reproduces the effect at small scale.
"""

from conftest import emit, once

from repro.analysis import ablation_barrier, bounded_memory_experiment, format_table


def test_ablation_barrier(benchmark):
    rows = once(benchmark, lambda: ablation_barrier(side=8, keys=1024))
    columns = ["barrier", "congestion_bytes", "time", "max_startups"]
    emit(
        "ablation_barrier",
        format_table(
            rows,
            columns,
            title="Barrier ablation, bitonic 8x8 (2-4-ary tree)",
        ),
        rows=rows,
        columns=columns,
    )
    d = {r["barrier"]: r for r in rows}
    # The central coordinator concentrates startups on one processor.
    assert d["tree"]["max_startups"] <= d["central"]["max_startups"]


def test_bounded_memory_replacement(benchmark):
    rows = once(benchmark, lambda: bounded_memory_experiment(side=4, bodies=256))
    columns = ["capacity_copies", "congestion_msgs", "evictions", "time"]
    emit(
        "bounded_memory",
        format_table(
            rows,
            columns,
            title="LRU replacement under bounded memory (2-ary Barnes-Hut, 4x4)",
        ),
        rows=rows,
        columns=columns,
    )
    unbounded = rows[0]
    tightest = rows[-1]
    assert unbounded["evictions"] == 0
    assert tightest["evictions"] > 0
    # Replacement raises congestion and time (the Figure 8 kink).
    assert tightest["congestion_msgs"] > unbounded["congestion_msgs"]
    assert tightest["time"] > unbounded["time"]
