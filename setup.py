"""Setup shim: keeps `pip install -e .` working on minimal/offline
environments whose setuptools lacks wheel support (PEP 660).  All real
metadata lives in pyproject.toml."""
from setuptools import setup

setup()
