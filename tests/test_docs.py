"""Documentation contract: relative links resolve and the quickstart
commands exist (the CI docs job additionally *runs* them; see
tools/check_docs.py)."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_docs_exist():
    for doc in check_docs.DOCS:
        assert (REPO_ROOT / doc).is_file(), f"missing {doc}"


def test_relative_links_resolve():
    assert check_docs.check_links(REPO_ROOT) == []


def test_quickstart_commands_present():
    """The README's quickstart must keep offering the canonical commands
    (these are what the docs CI job smokes)."""
    commands = {cmd for _, cmd in check_docs.extract_commands(REPO_ROOT)}
    assert "python -m repro list" in commands
    assert "python -m repro fig3" in commands
    assert any(cmd.startswith("python -m repro run-all") for cmd in commands)
    assert any("--topology" in cmd for cmd in commands)


def test_extracted_commands_are_repro_invocations_only():
    for doc, cmd in check_docs.extract_commands(REPO_ROOT):
        assert cmd.startswith("python -m repro"), (doc, cmd)
        assert "pip" not in cmd and "pytest" not in cmd, (doc, cmd)
