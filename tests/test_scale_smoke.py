"""Scale-smoke memory gate tests (tools/scale_smoke.py).

The tool is not part of the installed package, so it is loaded from its
file path -- the same artifact CI executes.  The gate logic is exercised
on a tiny 16-node cell; the committed 2^14 ceiling is validated
statically (running that cell is the CI scale-smoke job's business).
"""

import importlib.util
import json
import pathlib

import pytest

TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "scale_smoke.py"

spec = importlib.util.spec_from_file_location("scale_smoke", TOOL)
scale_smoke = importlib.util.module_from_spec(spec)
spec.loader.exec_module(scale_smoke)

TINY = ["--nodes", "16", "--ops", "2"]


def args(tmp_path, *extra):
    return TINY + [
        "--report", str(tmp_path / "report.json"),
        "--baseline", str(tmp_path / "baseline.json"),
        *extra,
    ]


class TestGate:
    def test_update_then_gate_passes(self, tmp_path, capsys):
        assert scale_smoke.main(args(tmp_path, "--update-baseline")) == 0
        baseline = json.loads((tmp_path / "baseline.json").read_text())
        assert baseline["ceiling_mb"] == pytest.approx(
            1.5 * baseline["measured_peak_rss_mb"], rel=0.01
        )
        assert scale_smoke.main(args(tmp_path)) == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["peak_rss_mb"] > 0
        assert report["tracemalloc_peak_mb"] > 0
        assert report["total_msgs"] > 0
        assert report["cell"]["nodes"] == 16
        assert "memory ceiling" in capsys.readouterr().out

    def test_exceeding_the_ceiling_fails(self, tmp_path, capsys):
        assert scale_smoke.main(args(tmp_path, "--update-baseline")) == 0
        baseline = json.loads((tmp_path / "baseline.json").read_text())
        baseline["ceiling_mb"] = 0.1
        (tmp_path / "baseline.json").write_text(json.dumps(baseline))
        assert scale_smoke.main(args(tmp_path)) == 1
        assert "exceeds the committed ceiling" in capsys.readouterr().err

    def test_cell_mismatch_refuses_to_gate(self, tmp_path):
        assert scale_smoke.main(args(tmp_path, "--update-baseline")) == 0
        with pytest.raises(SystemExit, match="differs from the committed"):
            scale_smoke.main(
                ["--nodes", "32", "--ops", "2",
                 "--report", str(tmp_path / "report.json"),
                 "--baseline", str(tmp_path / "baseline.json")]
            )

    def test_missing_baseline_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            scale_smoke.main(args(tmp_path))


class TestCommittedCeiling:
    def test_baseline_is_well_formed_with_headroom(self):
        baseline = json.loads(scale_smoke.DEFAULT_BASELINE.read_text())
        assert baseline["cell"] == {
            "nodes": scale_smoke.DEFAULT_NODES,
            "topology": scale_smoke.DEFAULT_TOPOLOGY,
            "strategy": scale_smoke.DEFAULT_STRATEGY,
            "ops": scale_smoke.DEFAULT_OPS,
        }
        assert baseline["ceiling_mb"] > baseline["measured_peak_rss_mb"]
