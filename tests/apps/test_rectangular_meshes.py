"""End-to-end runs on non-square meshes (the paper's Figure 11 uses 8x16
and 16x32 meshes)."""

import pytest

from repro.apps import barneshut, bitonic
from repro.core.registry import get_strategy
from repro.network.mesh import Mesh2D


@pytest.mark.parametrize("shape", [(2, 8), (4, 8), (8, 2)])
@pytest.mark.parametrize("strategy", ["4-ary", "4-8-ary", "fixed-home"])
def test_bitonic_on_rectangles(shape, strategy):
    """Bitonic needs a power-of-two processor count, not a square mesh."""
    mesh = Mesh2D(*shape)
    res = bitonic.run_diva(mesh, get_strategy(strategy, mesh), keys_per_wire=16)
    assert res.extra["verified"]


@pytest.mark.parametrize("shape", [(2, 4), (4, 2), (2, 8)])
def test_barneshut_on_rectangles(shape):
    mesh = Mesh2D(*shape)
    res = barneshut.run(
        mesh, get_strategy("4-8-ary", mesh), n_bodies=64, steps=2, warm=1, verify=True
    )
    assert res.extra["verified"]


def test_line_mesh_runs():
    """Degenerate 1xN meshes exercise the decomposition's edge cases."""
    mesh = Mesh2D(1, 8)
    res = bitonic.run_diva(mesh, get_strategy("2-ary", mesh), keys_per_wire=8)
    assert res.extra["verified"]


def test_rectangular_decomposition_access_tree_still_wins():
    mesh = Mesh2D(4, 8)
    at = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=320, steps=2, warm=1)
    fh = barneshut.run(mesh, get_strategy("fixed-home", mesh), n_bodies=320, steps=2, warm=1)
    assert at.congestion_msgs < fh.congestion_msgs
