"""Matrix multiplication application tests."""

import math

import numpy as np
import pytest

from repro.apps import matmul
from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D


class TestSetup:
    def test_blocks_deterministic(self):
        mesh = Mesh2D(2, 2)
        a = matmul.make_blocks(mesh, 16, seed=3)
        b = matmul.make_blocks(mesh, 16, seed=3)
        for k in a:
            assert np.array_equal(a[k], b[k])

    def test_blocks_differ_across_seeds(self):
        mesh = Mesh2D(2, 2)
        a = matmul.make_blocks(mesh, 16, seed=3)
        b = matmul.make_blocks(mesh, 16, seed=4)
        assert not all(np.array_equal(a[k], b[k]) for k in a)

    def test_non_square_block_rejected(self):
        with pytest.raises(ValueError):
            matmul.make_blocks(Mesh2D(2, 2), 10)

    def test_non_square_mesh_rejected(self):
        with pytest.raises(ValueError):
            matmul.run_handopt(Mesh2D(2, 4), 16)

    def test_expected_square_matches_full_numpy(self):
        mesh = Mesh2D(2, 2)
        blocks = matmul.make_blocks(mesh, 16, seed=0)
        s = 4
        full = np.block([[blocks[(i, j)] for j in range(2)] for i in range(2)])
        sq = full @ full
        expect = matmul.expected_square(mesh, blocks)
        for i in range(2):
            for j in range(2):
                assert np.array_equal(expect[(i, j)], sq[i * s : (i + 1) * s, j * s : (j + 1) * s])

    def test_block_multiply_ops(self):
        assert matmul.block_multiply_ops(16) == 2 * 4**3


@pytest.mark.parametrize("strategy", ["2-ary", "4-ary", "16-ary", "2-4-ary", "fixed-home"])
def test_diva_verifies_on_all_strategies(strategy):
    """The built-in verification compares against numpy; it raises on any
    mismatch, so success means the distributed result is exact."""
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva(mesh, get_strategy(strategy, mesh), block_entries=16)
    assert res.extra["verified"]


def test_handopt_verifies():
    res = matmul.run_handopt(Mesh2D(4, 4), block_entries=16)
    assert res.extra["verified"]


class TestHandoptTraffic:
    def test_congestion_matches_closed_form(self):
        """Paper: the hand-optimized congestion is m*sqrtP entries -- per
        directed link, (sqrtP - 1) blocks of (payload + header) bytes (plus
        a few control-sized barrier messages sharing the phase)."""
        q, m = 4, 64
        mesh = Mesh2D(q, q)
        res = matmul.run_handopt(mesh, m, machine=GCEL)
        dist = [p for p in res.phases if p.name == "distribute"][0]
        wire = m * GCEL.word_bytes + GCEL.header_bytes
        expect = (q - 1) * wire
        assert expect <= dist.stats.congestion_bytes <= expect + q * q * GCEL.ctrl_bytes

    def test_total_load_is_4_directions(self):
        """Each row link direction carries sum_j (j+1) blocks; closed form
        total = 2 * q * 2 * sum_{k=1}^{q-1} k * wire for rows+columns (the
        trailing barrier adds a bounded control term)."""
        q, m = 4, 64
        mesh = Mesh2D(q, q)
        res = matmul.run_handopt(mesh, m, machine=GCEL)
        dist = [p for p in res.phases if p.name == "distribute"][0]
        wire = m * GCEL.word_bytes + GCEL.header_bytes
        per_line = sum(range(1, q)) * 2  # both directions of one row
        expect = per_line * q * 2 * wire  # rows + columns
        slack = 4 * q * q * GCEL.ctrl_bytes * 4  # barrier sweep bound
        assert expect <= dist.stats.total_bytes <= expect + slack

    def test_startups_about_2_sqrtp_per_node(self):
        """Paper: about 2*sqrt(P) (data) startups per node; forwarding plus
        injections stay within a small multiple of that."""
        q = 4
        res = matmul.run_handopt(Mesh2D(q, q), 64, machine=GCEL)
        dist = [p for p in res.phases if p.name == "distribute"][0]
        assert dist.stats.max_startups <= 4 * q + 4


class TestDivaTraffic:
    def test_access_tree_beats_fixed_home_congestion(self):
        mesh = Mesh2D(8, 8)
        at = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 256)
        fh = matmul.run_diva(mesh, get_strategy("fixed-home", mesh), 256)
        assert at.congestion_bytes < fh.congestion_bytes
        assert at.stats.total_bytes < fh.stats.total_bytes

    def test_write_phase_is_control_dominated(self):
        """Paper: 'In the write phase, both strategies send only small
        invalidation messages.'"""
        mesh = Mesh2D(4, 4)
        res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 256)
        read = res.phase("read")
        write = res.phase("write")
        assert write.stats.congestion_bytes < 0.1 * read.stats.congestion_bytes

    def test_copies_return_to_initial_configuration(self):
        """Paper: 'At the end of the execution, the copies are left in the
        same configuration' -- the writer's sole copy."""
        mesh = Mesh2D(4, 4)
        strat = get_strategy("4-ary", mesh)
        res = matmul.run_diva(mesh, strat, 16)
        rt = res.extra["runtime"]
        for var in rt.registry:
            assert strat.copy_procs(var) == {var.creator}

    def test_communication_time_mode_has_zero_compute(self):
        mesh = Mesh2D(4, 4)
        res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 64, charge_compute=False)
        assert res.compute_time == 0.0

    def test_execution_time_mode_charges_compute(self):
        mesh = Mesh2D(4, 4)
        res = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 64, charge_compute=True)
        assert res.compute_time > 0.0

    def test_larger_blocks_mean_more_congestion(self):
        mesh = Mesh2D(4, 4)
        small = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 64)
        large = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 256)
        assert large.congestion_bytes > 2 * small.congestion_bytes

    def test_deterministic_across_runs(self):
        mesh = Mesh2D(4, 4)
        a = matmul.run_diva(mesh, get_strategy("4-ary", mesh, seed=5), 64, seed=1)
        b = matmul.run_diva(mesh, get_strategy("4-ary", mesh, seed=5), 64, seed=1)
        assert a.time == b.time
        assert a.congestion_bytes == b.congestion_bytes
        assert a.stats.total_msgs == b.stats.total_msgs
