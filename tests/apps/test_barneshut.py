"""Barnes-Hut application tests: physics substrate, reference octree, and
the distributed DIVA version."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import barneshut
from repro.apps.barneshut.octree import (
    bounding_cube,
    build_reference_tree,
    child_center,
    octant,
    reference_forces,
)
from repro.apps.barneshut.physics import (
    BodyState,
    advance,
    pairwise_force,
    plummer,
    total_energy,
)
from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D


class TestPlummer:
    def test_deterministic(self):
        a = plummer(50, seed=3)
        b = plummer(50, seed=3)
        assert a == b

    def test_total_mass_is_one(self):
        bodies = plummer(100, seed=0)
        assert sum(b.mass for b in bodies) == pytest.approx(1.0)

    def test_center_of_mass_at_origin(self):
        bodies = plummer(200, seed=1)
        for k in range(3):
            com = sum(b.mass * b.pos[k] for b in bodies)
            assert abs(com) < 1e-9

    def test_zero_total_momentum(self):
        bodies = plummer(200, seed=1)
        for k in range(3):
            mom = sum(b.mass * b.vel[k] for b in bodies)
            assert abs(mom) < 1e-9

    def test_bound_system(self):
        """A Plummer sphere is gravitationally bound: total energy < 0."""
        bodies = plummer(150, seed=2)
        assert total_energy(bodies) < 0.0

    def test_reasonable_extent(self):
        bodies = plummer(300, seed=4)
        radii = [math.sqrt(sum(c * c for c in b.pos)) for b in bodies]
        assert np.median(radii) < 2.0  # Plummer scale radius is ~0.59/scale
        assert max(radii) < 50.0  # 99% mass cutoff keeps outliers bounded

    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            plummer(0)


class TestGeometry:
    def test_octant_covers_all_8(self):
        center = (0.0, 0.0, 0.0)
        seen = set()
        for dx in (-1, 1):
            for dy in (-1, 1):
                for dz in (-1, 1):
                    seen.add(octant(center, (dx, dy, dz)))
        assert seen == set(range(8))

    @given(
        st.tuples(*[st.floats(-10, 10) for _ in range(3)]),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_child_center_roundtrip(self, center, o):
        """A child's center lies in the parent's octant ``o``."""
        cc = child_center(center, 2.0, o)
        assert octant(center, cc) == o

    def test_bounding_cube_contains_everything(self):
        bodies = plummer(100, seed=5)
        center, half = bounding_cube([b.pos for b in bodies])
        for b in bodies:
            for k in range(3):
                assert abs(b.pos[k] - center[k]) <= half

    def test_pairwise_force_points_toward_source(self):
        f = pairwise_force((0.0, 0.0, 0.0), 1.0, (1.0, 0.0, 0.0), eps=0.0)
        assert f[0] > 0 and f[1] == 0 and f[2] == 0
        assert f[0] == pytest.approx(1.0)  # G=m=r=1

    def test_softening_bounds_close_encounters(self):
        f = pairwise_force((0.0, 0.0, 0.0), 1.0, (1e-12, 0.0, 0.0), eps=0.05)
        assert abs(f[0]) < 1.0 / 0.05**2


class TestReferenceTree:
    def test_one_body_per_leaf(self):
        bodies = plummer(64, seed=7)
        root = build_reference_tree(bodies)
        found = []

        def walk(cell):
            for ch in cell.children:
                if ch is None:
                    continue
                if isinstance(ch, type(root)):
                    walk(ch)
                else:
                    found.append(ch)

        walk(root)
        assert sorted(found) == list(range(64))

    def test_root_mass_and_com(self):
        bodies = plummer(64, seed=7)
        root = build_reference_tree(bodies)
        assert root.mass == pytest.approx(1.0)
        for k in range(3):
            com = sum(b.mass * b.pos[k] for b in bodies)
            assert root.com[k] == pytest.approx(com, abs=1e-12)

    def test_forces_match_direct_sum_at_small_theta(self):
        """With theta -> 0 every cell is opened: Barnes-Hut equals the
        direct O(n^2) sum exactly."""
        bodies = plummer(40, seed=9)
        accs, counts = reference_forces(bodies, theta=1e-9)
        for i, b in enumerate(bodies):
            ax = ay = az = 0.0
            for j, o in enumerate(bodies):
                if i == j:
                    continue
                fx, fy, fz = pairwise_force(b.pos, o.mass, o.pos)
                ax += fx
                ay += fy
                az += fz
            assert accs[i][0] == pytest.approx(ax, rel=1e-9)
            assert accs[i][1] == pytest.approx(ay, rel=1e-9)
            assert accs[i][2] == pytest.approx(az, rel=1e-9)
            assert counts[i] == len(bodies) - 1

    def test_theta_one_close_to_direct_sum(self):
        """At the paper's theta the approximation error is small."""
        bodies = plummer(120, seed=11)
        approx, _ = reference_forces(bodies, theta=1.0)
        exact, _ = reference_forces(bodies, theta=1e-9)
        err = []
        for a, e in zip(approx, exact):
            mag = math.sqrt(sum(c * c for c in e)) or 1.0
            err.append(math.sqrt(sum((x - y) ** 2 for x, y in zip(a, e))) / mag)
        assert np.median(err) < 0.05

    def test_theta_one_saves_interactions(self):
        bodies = plummer(120, seed=11)
        _, approx_counts = reference_forces(bodies, theta=1.0)
        assert np.mean(approx_counts) < 0.8 * 119

    def test_energy_roughly_conserved(self):
        """A few leapfrog steps keep |dE/E| small."""
        bodies = plummer(60, seed=13)
        e0 = total_energy(bodies)
        cur = bodies
        for _ in range(5):
            accs, counts = reference_forces(cur, theta=0.8)
            cur = [advance(b, a, dt=0.0125) for b, a in zip(cur, accs)]
        e1 = total_energy(cur)
        assert abs((e1 - e0) / e0) < 0.05


class TestDistributedApp:
    @pytest.mark.parametrize("strategy", ["4-ary", "fixed-home"])
    def test_matches_reference_bit_for_bit(self, strategy):
        mesh = Mesh2D(4, 4)
        res = barneshut.run(
            mesh, get_strategy(strategy, mesh), n_bodies=96, steps=2, warm=1, verify=True
        )
        assert res.extra["verified"]

    def test_all_phases_present(self):
        mesh = Mesh2D(2, 2)
        res = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=32, steps=2, warm=1)
        names = {p.name for p in res.phases}
        assert set(barneshut.PHASES) <= names

    def test_force_phase_dominates_time(self):
        mesh = Mesh2D(2, 2)
        res = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=64, steps=2, warm=1)
        force = res.phase("force")
        assert force.time > 0.3 * res.time

    def test_strategies_agree_on_physics(self):
        """Data management must not change the computation: both strategies
        produce identical final body states."""
        mesh = Mesh2D(2, 2)
        r1 = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=48, steps=2, warm=1)
        r2 = barneshut.run(mesh, get_strategy("fixed-home", mesh), n_bodies=48, steps=2, warm=1)
        assert r1.extra["final_bodies"] == r2.extra["final_bodies"]

    def test_access_tree_beats_fixed_home(self):
        mesh = Mesh2D(4, 4)
        at = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=160, steps=2, warm=1)
        fh = barneshut.run(mesh, get_strategy("fixed-home", mesh), n_bodies=160, steps=2, warm=1)
        assert at.congestion_msgs < fh.congestion_msgs
        assert at.time < fh.time

    def test_high_cache_hit_ratio(self):
        """The paper reports ~99% hit ratios in the force phase; the whole
        run stays high once the tree is warm."""
        mesh = Mesh2D(2, 2)
        res = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=128, steps=2, warm=1)
        assert res.hit_ratio > 0.85

    def test_locks_are_used_for_tree_building(self):
        mesh = Mesh2D(2, 2)
        res = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=32, steps=2, warm=1)
        assert res.lock_acquisitions >= 32  # at least one lock per insert

    def test_interactions_counted(self):
        mesh = Mesh2D(2, 2)
        res = barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=32, steps=2, warm=1)
        inter = res.extra["interactions_by_step"]
        assert all(i > 32 for i in inter)

    def test_warm_validation(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=8, steps=2, warm=2)
        with pytest.raises(ValueError):
            barneshut.run(mesh, get_strategy("4-ary", mesh), n_bodies=1, steps=2, warm=1)

    def test_deterministic(self):
        mesh = Mesh2D(2, 2)
        a = barneshut.run(mesh, get_strategy("4-ary", mesh, seed=1), n_bodies=40, steps=2, warm=1)
        b = barneshut.run(mesh, get_strategy("4-ary", mesh, seed=1), n_bodies=40, steps=2, warm=1)
        assert a.time == b.time
        assert a.congestion_msgs == b.congestion_msgs
