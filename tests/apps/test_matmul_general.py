"""General matrix multiplication (C := A*B) tests -- the paper's contrast
case: reads only, no invalidations."""

import numpy as np
import pytest

from repro.apps import matmul
from repro.core.registry import get_strategy
from repro.network.machine import GCEL
from repro.network.mesh import Mesh2D


@pytest.mark.parametrize("strategy", ["4-ary", "2-4-ary", "fixed-home"])
def test_general_multiply_verifies(strategy):
    mesh = Mesh2D(4, 4)
    res = matmul.run_diva_general(mesh, get_strategy(strategy, mesh), block_entries=16)
    assert res.extra["verified"]


def test_general_uses_different_b_matrix():
    """A and B must be independent inputs (otherwise it degenerates to the
    square and the contrast is meaningless)."""
    mesh = Mesh2D(2, 2)
    a = matmul.make_blocks(mesh, 16, seed=0)
    b = matmul.make_blocks(mesh, 16, seed=0 + 104729)
    assert not all(np.array_equal(a[k], b[k]) for k in a)


def test_general_sends_fewer_invalidations_than_square():
    """The whole point: squaring invalidates the copies created in the read
    phase; general multiplication writes fresh variables instead."""
    mesh = Mesh2D(4, 4)
    sq = matmul.run_diva(mesh, get_strategy("4-ary", mesh), 256)
    gen = matmul.run_diva_general(mesh, get_strategy("4-ary", mesh), 256)
    assert gen.stats.ctrl_msgs < sq.stats.ctrl_msgs

    # In the general variant the write phase is almost silent.
    sq_write = sq.phase("write")
    gen_write = gen.phase("write")
    assert gen_write.stats.total_msgs < sq_write.stats.total_msgs


def test_general_write_phase_has_no_remote_writes():
    mesh = Mesh2D(4, 4)
    strat = get_strategy("4-ary", mesh)
    res = matmul.run_diva_general(mesh, strat, 64)
    # C variables are created and written by their own processor only.
    assert strat.write_remote == 0


def test_square_write_phase_has_remote_effects():
    mesh = Mesh2D(4, 4)
    strat = get_strategy("4-ary", mesh)
    matmul.run_diva(mesh, strat, 64)
    assert strat.write_remote > 0
