"""Bitonic sorting application tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import bitonic
from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D


class TestSchedule:
    def test_depth_is_log_sum(self):
        """log P phases; phase i has i steps: total depth = logP(logP+1)/2."""
        for p, depth in ((2, 1), (4, 3), (8, 6), (16, 10), (64, 21)):
            assert len(bitonic.comparator_schedule(p)) == depth

    def test_each_wire_once_per_step(self):
        for step in bitonic.comparator_schedule(16):
            wires = [w for lo, hi, _ in step for w in (lo, hi)]
            assert sorted(wires) == list(range(16))

    def test_comparators_pair_distinct_wires(self):
        for step in bitonic.comparator_schedule(8):
            for lo, hi, _ in step:
                assert lo < hi

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            bitonic.comparator_schedule(12)
        with pytest.raises(ValueError):
            bitonic.comparator_schedule(1)

    @given(st.sampled_from([2, 4, 8, 16, 32, 64]), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_circuit_sorts_scalars(self, p, seed):
        """Property: simulating the comparator schedule on arbitrary scalar
        inputs yields a sorted sequence (the circuit itself is correct
        independent of the distributed machinery)."""
        rng = np.random.default_rng(seed)
        vals = list(rng.integers(0, 1000, size=p))
        for step in bitonic.comparator_schedule(p):
            for lo, hi, ascending in step:
                a, b = vals[lo], vals[hi]
                if ascending:
                    vals[lo], vals[hi] = min(a, b), max(a, b)
                else:
                    vals[lo], vals[hi] = max(a, b), min(a, b)
        assert vals == sorted(vals)


class TestWireAssignment:
    def test_is_permutation(self):
        for shape in ((4, 4), (2, 8), (8, 8)):
            wires = bitonic.wire_assignment(Mesh2D(*shape))
            assert sorted(wires) == list(range(shape[0] * shape[1]))

    def test_neighbour_wires_are_close(self):
        """Decomposition leaf order keeps wire neighbourhoods in submeshes:
        adjacent wires sit at Manhattan distance 1 most of the time."""
        mesh = Mesh2D(4, 4)
        wires = bitonic.wire_assignment(mesh)
        dists = [mesh.manhattan(a, b) for a, b in zip(wires, wires[1:])]
        assert np.mean(dists) < 2.0
        # first half of the wires covers one half of the mesh
        assert len({mesh.coord(p)[0] for p in wires[:8]}) <= 2


@pytest.mark.parametrize("strategy", ["2-ary", "2-4-ary", "4-ary", "fixed-home"])
def test_diva_sorts_on_all_strategies(strategy):
    mesh = Mesh2D(4, 4)
    res = bitonic.run_diva(mesh, get_strategy(strategy, mesh), keys_per_wire=32)
    assert res.extra["verified"]


def test_handopt_sorts():
    res = bitonic.run_handopt(Mesh2D(4, 4), keys_per_wire=32)
    assert res.extra["verified"]


def test_final_runs_are_globally_ordered():
    mesh = Mesh2D(4, 4)
    res = bitonic.run_diva(mesh, get_strategy("4-ary", mesh), keys_per_wire=16)
    rt = res.extra["runtime"]
    runs = [None] * 16
    for var in rt.registry:
        w = int(var.name[2:-1])
        runs[w] = rt.registry.get(var)
    flat = np.concatenate(runs)
    assert np.array_equal(flat, np.sort(flat))


class TestTraffic:
    def test_access_tree_beats_fixed_home(self):
        mesh = Mesh2D(8, 8)
        at = bitonic.run_diva(mesh, get_strategy("2-4-ary", mesh), 256)
        fh = bitonic.run_diva(mesh, get_strategy("fixed-home", mesh), 256)
        assert at.congestion_bytes < fh.congestion_bytes
        assert at.time < fh.time

    def test_handopt_two_messages_per_comparator(self):
        q = 4
        p = q * q
        mesh = Mesh2D(q, q)
        res = bitonic.run_handopt(mesh, 64, machine=GCEL)
        steps = len(bitonic.comparator_schedule(p))
        assert res.stats.data_msgs == steps * p  # 2 per comparator pair

    def test_congestion_grows_linearly_in_keys(self):
        mesh = Mesh2D(4, 4)
        c = {}
        for m in (64, 128, 256):
            c[m] = bitonic.run_handopt(mesh, m, machine=GCEL).congestion_bytes
        assert c[128] / c[64] == pytest.approx(2.0, rel=0.15)
        assert c[256] / c[128] == pytest.approx(2.0, rel=0.15)

    def test_deterministic(self):
        mesh = Mesh2D(4, 4)
        a = bitonic.run_diva(mesh, get_strategy("2-4-ary", mesh, seed=2), 64, seed=9)
        b = bitonic.run_diva(mesh, get_strategy("2-4-ary", mesh, seed=2), 64, seed=9)
        assert a.time == b.time and a.stats.total_msgs == b.stats.total_msgs
