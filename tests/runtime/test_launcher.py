"""Launcher / Runtime tests: dispatch, phases, message passing, deadlocks."""

import pytest

from repro.core.registry import get_strategy
from repro.core.strategy import NullStrategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime, run_spmd
from repro.sim.engine import SimDeadlock


def mk(strategy="4-ary", mesh=None, machine=ZERO_COST, **kw):
    mesh = mesh or Mesh2D(2, 2)
    return Runtime(mesh, get_strategy(strategy, mesh), machine, **kw)


class TestBasicDispatch:
    def test_program_return_values_collected(self):
        rt = mk()

        def program(env):
            yield from env.barrier()
            return env.rank * 10

        rt.run(program)
        assert rt.program_results == [0, 10, 20, 30]

    def test_read_write_roundtrip(self):
        rt = mk()
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["v"] = env.create("x", 8, value=5)
            yield from env.barrier()
            val = yield from env.read(shared["v"])
            yield from env.barrier()
            if env.rank == 3:
                yield from env.write(shared["v"], val + 1)
            yield from env.barrier()

        rt.run(program)
        assert rt.registry.get(shared["v"]) == 6

    def test_unexpected_yield_rejected(self):
        rt = mk()

        def program(env):
            yield "not a request"

        with pytest.raises(TypeError):
            rt.run(program)

    def test_env_properties(self):
        rt = mk()
        seen = {}

        def program(env):
            if env.rank == 3:
                seen["coord"] = env.coord
                seen["nprocs"] = env.nprocs
                seen["machine"] = env.machine
            yield from env.barrier()

        rt.run(program)
        assert seen == {"coord": (1, 1), "nprocs": 4, "machine": ZERO_COST}


class TestCompute:
    def test_compute_advances_time(self):
        rt = mk(machine=GCEL)

        def program(env):
            yield from env.compute(ops=0.29e6)  # exactly 1 virtual second

        res = rt.run(program)
        assert res.time == pytest.approx(1.0)
        assert res.compute_time == pytest.approx(1.0)

    def test_charge_compute_false_makes_compute_free(self):
        rt = mk(machine=GCEL, charge_compute=False)

        def program(env):
            yield from env.compute(ops=1e9, seconds=50.0)

        res = rt.run(program)
        assert res.time == 0.0

    def test_compute_seconds(self):
        rt = mk(machine=GCEL)

        def program(env):
            yield from env.compute(seconds=0.5)

        assert rt.run(program).time == pytest.approx(0.5)


class TestPhases:
    def test_phase_accounting(self):
        rt = mk(machine=GCEL)

        def program(env):
            yield from env.barrier(phase="alpha")
            yield from env.compute(seconds=0.1)
            yield from env.barrier(phase="beta")
            yield from env.compute(seconds=0.2)
            yield from env.barrier(phase="end")

        res = rt.run(program)
        names = [p.name for p in res.phases]
        assert names[:3] == ["main", "alpha", "beta"]
        alpha = res.phase("alpha")
        beta = res.phase("beta")
        assert alpha.time == pytest.approx(0.1, rel=0.05)
        assert beta.time == pytest.approx(0.2, rel=0.05)

    def test_repeated_phase_labels_accumulate(self):
        rt = mk(machine=GCEL)

        def program(env):
            for _ in range(3):
                yield from env.barrier(phase="work")
                yield from env.compute(seconds=0.1)
                yield from env.barrier(phase="idle")
            yield from env.barrier(phase="end")

        res = rt.run(program)
        work = res.phase("work")
        assert work.time == pytest.approx(0.3, rel=0.05)

    def test_inconsistent_phase_labels_rejected(self):
        rt = mk()

        def program(env):
            yield from env.barrier(phase="a" if env.rank == 0 else "b")

        with pytest.raises(RuntimeError):
            rt.run(program)

    def test_measurement_reset_at_barrier(self):
        rt = mk(machine=GCEL)
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["v"] = env.create("x", 1024, value=1)
            yield from env.barrier()
            yield from env.read(shared["v"])  # warm-up traffic
            yield from env.compute(seconds=0.5)
            yield from env.barrier(phase="measured", reset=True)
            yield from env.compute(seconds=0.25)
            yield from env.barrier(phase="end")

        res = rt.run(program)
        # Warm-up read traffic and time are discarded.
        assert res.time == pytest.approx(0.25, rel=0.1)
        assert res.stats.data_msgs == 0
        assert [p.name for p in res.phases][0] == "measured"


class TestMessagePassing:
    def test_fifo_per_tag(self):
        rt = mk(strategy="handopt")
        got = {}

        def program(env):
            if env.rank == 0:
                for i in range(5):
                    yield from env.send(1, i, 64, tag="seq")
            elif env.rank == 1:
                vals = []
                for _ in range(5):
                    v = yield from env.recv(tag="seq")
                    vals.append(v)
                got["vals"] = vals
            yield from env.barrier()

        rt.run(program)
        assert got["vals"] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        rt = mk(strategy="handopt")
        got = {}

        def program(env):
            if env.rank == 0:
                yield from env.send(1, "A", 8, tag="a")
                yield from env.send(1, "B", 8, tag="b")
            elif env.rank == 1:
                got["b"] = yield from env.recv(tag="b")
                got["a"] = yield from env.recv(tag="a")
            yield from env.barrier()

        rt.run(program)
        assert got == {"b": "B", "a": "A"}

    def test_recv_before_send_blocks_until_arrival(self):
        rt = mk(strategy="handopt", machine=GCEL)
        times = {}

        def program(env):
            if env.rank == 1:
                v = yield from env.recv(tag=0)
                times["recv_done"] = rt.sim.now
            elif env.rank == 0:
                yield from env.compute(seconds=0.3)
                yield from env.send(1, 42, 64, tag=0)
            yield from env.barrier()

        rt.run(program)
        assert times["recv_done"] > 0.3

    def test_send_is_asynchronous(self):
        rt = mk(strategy="handopt", machine=GCEL)
        times = {}

        def program(env):
            if env.rank == 0:
                yield from env.send(3, "x", 10**6, tag=0)  # ~1s transfer
                times["send_done"] = rt.sim.now
            elif env.rank == 3:
                yield from env.recv(tag=0)
                times["recv_done"] = rt.sim.now
            yield from env.barrier()

        rt.run(program)
        assert times["send_done"] < 0.5  # injection only
        assert times["recv_done"] > 1.0  # full transfer

    def test_self_send(self):
        rt = mk(strategy="handopt")
        got = {}

        def program(env):
            if env.rank == 0:
                yield from env.send(0, "self", 8, tag="t")
                got["v"] = yield from env.recv(tag="t")
            yield from env.barrier()

        rt.run(program)
        assert got["v"] == "self"


class TestDeadlocks:
    def test_missing_sender_is_deadlock(self):
        rt = mk(strategy="handopt")

        def program(env):
            if env.rank == 0:
                yield from env.recv(tag="never")
            yield from env.barrier()

        with pytest.raises(SimDeadlock) as e:
            rt.run(program)
        assert "recv" in str(e.value)

    def test_partial_barrier_is_deadlock(self):
        rt = mk(strategy="handopt")

        def program(env):
            if env.rank != 0:
                yield from env.barrier()
            return None
            yield  # pragma: no cover - makes this a generator

        with pytest.raises(SimDeadlock) as e:
            rt.run(program)
        assert "barrier" in str(e.value)

    def test_lock_never_released_is_deadlock(self):
        rt = mk()
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["v"] = env.create("x", 8, value=0)
            yield from env.barrier()
            yield from env.lock(shared["v"])  # nobody ever unlocks
            if False:
                yield from env.unlock(shared["v"])

        with pytest.raises(SimDeadlock) as e:
            rt.run(program)
        assert "lock" in str(e.value)


class TestRunSpmd:
    def test_one_shot_helper(self):
        mesh = Mesh2D(2, 2)

        def program(env):
            yield from env.barrier()

        res = run_spmd(mesh, get_strategy("4-ary", mesh), program, ZERO_COST)
        assert res.strategy == "4-ary"
        assert res.mesh == "2x2"
        assert "runtime" in res.extra

    def test_result_as_dict(self):
        mesh = Mesh2D(2, 2)

        def program(env):
            yield from env.barrier()

        res = run_spmd(mesh, get_strategy("4-ary", mesh), program, ZERO_COST)
        d = res.as_dict()
        assert d["strategy"] == "4-ary"
        assert "congestion_bytes" in d
