"""RunResult container tests."""

import pytest

from repro.network.stats import PhaseStats, StatsSnapshot
from repro.runtime.results import RunResult


def snap(**kw):
    base = dict(
        congestion_bytes=0.0,
        congestion_msgs=0,
        total_bytes=0.0,
        total_msgs=0,
        max_startups=0,
        total_startups=0,
        data_msgs=0,
        ctrl_msgs=0,
        local_msgs=0,
    )
    base.update(kw)
    return StatsSnapshot(**base)


def make_result(**kw):
    base = dict(
        strategy="4-ary",
        mesh="4x4",
        time=1.5,
        end_time=1.5,
        stats=snap(congestion_bytes=100.0, congestion_msgs=7, total_bytes=1000.0),
    )
    base.update(kw)
    return RunResult(**base)


class TestRunResult:
    def test_congestion_properties(self):
        res = make_result()
        assert res.congestion_bytes == 100.0
        assert res.congestion_msgs == 7
        assert res.total_bytes == 1000.0

    def test_hit_ratio(self):
        assert make_result(hits=3, misses=1).hit_ratio == 0.75
        assert make_result().hit_ratio == 0.0  # no accesses -> 0, not NaN

    def test_phase_lookup(self):
        ph = PhaseStats(name="force", stats=snap(), time=0.5)
        res = make_result(phases=[ph])
        assert res.phase("force") is ph
        assert res.phase("nope") is None

    def test_as_dict_roundtrips_key_fields(self):
        ph = PhaseStats(name="force", stats=snap(), time=0.5)
        d = make_result(phases=[ph], hits=2, misses=2).as_dict()
        assert d["strategy"] == "4-ary"
        assert d["hit_ratio"] == 0.5
        assert d["phases"][0]["name"] == "force"
