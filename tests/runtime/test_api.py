"""Program API tests: request objects, Env helpers, MarkReq plumbing."""

import pytest

from repro.core.registry import get_strategy
from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.api import (
    BarrierReq,
    ComputeReq,
    LockReq,
    MarkReq,
    ReadReq,
    RecvReq,
    SendReq,
    UnlockReq,
    WriteReq,
)
from repro.runtime.launcher import Runtime


class TestRequestObjects:
    def test_slots_prevent_extra_attrs(self):
        r = ComputeReq(seconds=1.0)
        with pytest.raises(AttributeError):
            r.extra = 1  # type: ignore[attr-defined]

    def test_defaults(self):
        b = BarrierReq()
        assert b.phase is None and b.reset is False
        c = ComputeReq()
        assert c.seconds == 0.0 and c.ops == 0.0

    def test_send_fields(self):
        s = SendReq(3, 128, "tag", value=[1, 2])
        assert (s.dst, s.payload_bytes, s.tag, s.value) == (3, 128, "tag", [1, 2])


class TestMarkReq:
    def test_reset_measurement_from_program(self):
        """env.reset_measurement() zeroes traffic/time from that instant
        (the explicit variant of barrier(reset=True))."""
        mesh = Mesh2D(2, 2)
        rt = Runtime(mesh, get_strategy("4-ary", mesh), GCEL)
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["v"] = env.create("x", 1024, value=7)
            yield from env.barrier()
            yield from env.read(shared["v"])  # warm-up traffic
            yield from env.barrier()
            if env.rank == 0:
                yield from env.reset_measurement()
            yield from env.barrier()
            yield from env.compute(seconds=0.125)

        res = rt.run(program)
        assert res.stats.data_msgs == 0  # warm-up discarded
        assert res.time == pytest.approx(0.125, rel=0.15)

    def test_unknown_mark_rejected(self):
        mesh = Mesh2D(2, 2)
        rt = Runtime(mesh, get_strategy("4-ary", mesh), ZERO_COST)

        def program(env):
            yield MarkReq("frobnicate")

        with pytest.raises(ValueError):
            rt.run(program)


class TestEnvCreate:
    def test_create_registers_with_strategy(self):
        mesh = Mesh2D(2, 2)
        strat = get_strategy("4-ary", mesh)
        rt = Runtime(mesh, strat, ZERO_COST)
        made = {}

        def program(env):
            if env.rank == 2:
                made["var"] = env.create("mine", 64, value="v")
            yield from env.barrier()

        rt.run(program)
        var = made["var"]
        assert var.creator == 2
        assert strat.copy_procs(var) == {2}
        assert rt.registry.get(var) == "v"
