"""Variable registry tests."""

import pytest

from repro.runtime.variables import GlobalVariable, VariableRegistry


class TestRegistry:
    def test_create_and_get(self):
        reg = VariableRegistry()
        v = reg.create("x", 64, creator=3, value=42)
        assert isinstance(v, GlobalVariable)
        assert v.vid == 0
        assert v.payload_bytes == 64
        assert v.creator == 3
        assert reg.get(v) == 42

    def test_dense_ids(self):
        reg = VariableRegistry()
        vs = [reg.create(f"v{i}", 8, 0, i) for i in range(10)]
        assert [v.vid for v in vs] == list(range(10))
        assert len(reg) == 10

    def test_set_get_roundtrip(self):
        reg = VariableRegistry()
        v = reg.create("x", 8, 0, None)
        reg.set(v, {"a": 1})
        assert reg.get(v) == {"a": 1}

    def test_by_id(self):
        reg = VariableRegistry()
        v = reg.create("x", 8, 0, 7)
        assert reg.by_id(0) is v

    def test_negative_size_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError):
            reg.create("x", -1, 0, None)

    def test_zero_size_allowed(self):
        reg = VariableRegistry()
        v = reg.create("flag", 0, 0, True)
        assert v.payload_bytes == 0

    def test_iteration(self):
        reg = VariableRegistry()
        for i in range(3):
            reg.create(f"v{i}", 8, 0, i)
        assert [v.name for v in reg] == ["v0", "v1", "v2"]

    def test_handle_is_frozen(self):
        reg = VariableRegistry()
        v = reg.create("x", 8, 0, None)
        with pytest.raises(Exception):
            v.vid = 5  # type: ignore[misc]
