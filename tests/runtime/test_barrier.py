"""Barrier component tests (tree-combining and central)."""

import pytest

from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.barrier import CentralBarrier, TreeBarrier, make_barrier
from repro.sim.engine import Simulator


def run_barrier(barrier_cls, machine=GCEL, arrivals=None, rows=4, cols=4, **kw):
    sim = Simulator(Mesh2D(rows, cols), machine)
    barrier = barrier_cls(sim, **kw)
    p = sim.topology.n_nodes
    arrivals = arrivals or {i: float(i) * 1e-4 for i in range(p)}
    releases = {}
    for proc, t in arrivals.items():
        barrier.arrive(proc, t, lambda pr, tr: releases.__setitem__(pr, tr))
    sim.run()
    return sim, arrivals, releases


@pytest.mark.parametrize("cls", [TreeBarrier, CentralBarrier])
class TestBothBarriers:
    def test_all_released_after_everyone_arrives(self, cls):
        sim, arrivals, releases = run_barrier(cls)
        assert set(releases) == set(arrivals)
        last_arrival = max(arrivals.values())
        for proc, t in releases.items():
            assert t >= last_arrival - 1e-12

    def test_release_not_before_any_arrival(self, cls):
        sim, arrivals, releases = run_barrier(cls)
        assert min(releases.values()) >= max(arrivals.values()) - 1e-12

    def test_double_arrival_rejected(self, cls):
        sim = Simulator(Mesh2D(2, 2), GCEL)
        barrier = cls(sim)
        barrier.arrive(0, 0.0, lambda p, t: None)
        with pytest.raises(RuntimeError):
            barrier.arrive(0, 0.0, lambda p, t: None)

    def test_reusable_for_next_episode(self, cls):
        sim, arrivals, releases = run_barrier(cls)
        # second episode on the same object
        barrier = cls(sim)
        rel2 = {}
        for proc in range(sim.topology.n_nodes):
            barrier.arrive(proc, 1.0, lambda p, t: rel2.__setitem__(p, t))
        sim.run()
        assert len(rel2) == sim.topology.n_nodes
        assert barrier.episodes == 1

    def test_traffic_recorded(self, cls):
        sim, _, _ = run_barrier(cls)
        assert sim.stats.total_msgs > 0
        assert sim.stats.data_msgs == 0  # barriers are control-only


class TestTreeSpecific:
    def test_tree_barrier_traffic_is_distributed(self):
        """Tree combining: no processor handles more than O(degree * levels)
        messages, unlike the central barrier's O(P) coordinator."""
        sim_t, _, _ = run_barrier(TreeBarrier, rows=8, cols=8)
        sim_c, _, _ = run_barrier(CentralBarrier, rows=8, cols=8)
        p = 64
        assert max(sim_c.stats.startups) >= p - 1  # coordinator replies to all
        assert max(sim_t.stats.startups) < p // 2

    def test_tree_congestion_below_central(self):
        sim_t, _, _ = run_barrier(TreeBarrier, rows=8, cols=8)
        sim_c, _, _ = run_barrier(CentralBarrier, rows=8, cols=8)
        assert sim_t.stats.congestion_msgs <= sim_c.stats.congestion_msgs

    def test_barrier_message_count(self):
        """2(P-1) tree-edge messages for a full combining tree episode
        (arrive + release per edge), counting same-host edges as local."""
        sim, _, _ = run_barrier(TreeBarrier, machine=ZERO_COST, rows=4, cols=4)
        n_edges = len(TreeBarrier(Simulator(Mesh2D(4, 4), ZERO_COST)).tree.nodes) - 1
        assert sim.stats.total_msgs == 2 * n_edges


class TestFactory:
    def test_make_barrier(self):
        sim = Simulator(Mesh2D(2, 2), GCEL)
        assert isinstance(make_barrier("tree", sim), TreeBarrier)
        assert isinstance(make_barrier("central", sim), CentralBarrier)
        with pytest.raises(ValueError):
            make_barrier("ring", sim)
