"""Property tests for eviction invariants under capacity pressure.

These drive whole simulated runs (the zipf kernel under a bounded
``MemoryBook``) and then inspect the strategies' copy state, rather than
poking ``LocalMemory`` in isolation (``test_memory.py`` covers that):
the invariants under test are exactly the contracts between the LRU
layer and the strategies' ``evictable`` / ``on_evict`` callbacks --

* the **last copy** of an object is never evicted (it is the
  authoritative value);
* an access-tree **copy set stays a connected tree component** after any
  sequence of evictions;
* ``used_bytes`` always equals the byte sum of the live entries;
* eviction counts (and every other simulated quantity) are
  **deterministic** for a fixed seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.mesh import Mesh2D
from repro.workloads import get_workload

#: Small but eviction-heavy configuration space: 16 processors, more
#: variables than capacity, skewed and mixed access streams.
SEEDS = st.integers(0, 40)
ALPHAS = st.sampled_from([0.0, 0.8, 1.5])
READ_FRACS = st.sampled_from([0.5, 0.9])
CAPACITY_COPIES = st.integers(2, 6)
PAYLOAD = 128


def run_under_pressure(strategy, seed, alpha, read_frac, capacity_copies,
                       ops=24, n_vars=24):
    res = get_workload("zipf").run(
        Mesh2D(4, 4), strategy, seed=seed,
        params={"ops": ops, "n_vars": n_vars, "alpha": alpha,
                "read_frac": read_frac, "payload": PAYLOAD},
        capacity_bytes=capacity_copies * PAYLOAD,
    )
    return res, res.extra["runtime"]


def assert_component_connected(tree, nodes, top):
    """``nodes`` must be one connected component of ``tree`` containing
    ``top`` (reachable via parent/children edges inside the set)."""
    assert top in nodes
    seen = {top}
    stack = [top]
    while stack:
        n = stack.pop()
        tn = tree.nodes[n]
        for nb in ([tn.parent] if tn.parent is not None else []) + list(tn.children):
            if nb in nodes and nb not in seen:
                seen.add(nb)
                stack.append(nb)
    assert seen == nodes, f"copy component disconnected: reached {seen} of {nodes}"


@given(seed=SEEDS, alpha=ALPHAS, read_frac=READ_FRACS, cap=CAPACITY_COPIES)
@settings(max_examples=12, deadline=None)
def test_access_tree_eviction_invariants(seed, alpha, read_frac, cap):
    res, rt = run_under_pressure("2-ary", seed, alpha, read_frac, cap)
    strat = rt.strategy
    depth = strat.tree.depth
    for vid, cs in strat._copies.items():
        # Last copy never evicted.
        assert len(cs.nodes) >= 1, f"var {vid} lost its last copy"
        # The component stays connected, and top is its shallowest node.
        assert_component_connected(strat.tree, cs.nodes, cs.top)
        assert depth[cs.top] == min(depth[n] for n in cs.nodes)
    # Byte accounting matches the live entries on every processor.
    for mem in rt.memory.mems:
        assert mem.used_bytes == sum(mem._entries.values())


@given(seed=SEEDS, alpha=ALPHAS, read_frac=READ_FRACS, cap=CAPACITY_COPIES)
@settings(max_examples=10, deadline=None)
def test_fixed_home_eviction_invariants(seed, alpha, read_frac, cap):
    res, rt = run_under_pressure("fixed-home", seed, alpha, read_frac, cap)
    strat = rt.strategy
    for vid, vstate in strat._states.items():
        # Last copy never evicted; the authoritative copy (owner's, or the
        # home's when main memory owns) is always among the holders.
        assert len(vstate.copies) >= 1, f"var {vid} lost its last copy"
        if vstate.owner != -1:
            assert vstate.owner in vstate.copies
    for mem in rt.memory.mems:
        assert mem.used_bytes == sum(mem._entries.values())


@given(seed=SEEDS, alpha=ALPHAS, cap=CAPACITY_COPIES)
@settings(max_examples=8, deadline=None)
def test_dynrep_eviction_invariants(seed, alpha, cap):
    res, rt = run_under_pressure("dynrep", seed, alpha, 0.8, cap)
    strat = rt.strategy
    for vid, vstate in strat._states.items():
        assert len(vstate.copies) >= 1
        if vstate.owner != -1:
            assert vstate.owner in vstate.copies
    for mem in rt.memory.mems:
        assert mem.used_bytes == sum(mem._entries.values())


@given(seed=st.integers(0, 20), cap=CAPACITY_COPIES)
@settings(max_examples=8, deadline=None)
def test_eviction_counts_deterministic(seed, cap):
    """Same seed, same capacity => identical eviction counts and identical
    simulated quantities (the result cache depends on this)."""
    a_res, a_rt = run_under_pressure("2-ary", seed, 0.8, 0.9, cap)
    b_res, b_rt = run_under_pressure("2-ary", seed, 0.8, 0.9, cap)
    assert a_res.evictions == b_res.evictions
    assert [m.evictions for m in a_rt.memory.mems] == [m.evictions for m in b_rt.memory.mems]
    assert a_res.as_dict() == b_res.as_dict()


def test_pressure_actually_evicts():
    """Sanity for the property configs above: the capacity range really
    forces replacement (otherwise the invariants are tested vacuously)."""
    res, rt = run_under_pressure("2-ary", seed=0, alpha=0.8, read_frac=0.9,
                                 capacity_copies=2)
    assert res.evictions > 0
