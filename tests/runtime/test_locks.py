"""Lock manager tests: Raymond tree lock and home lock.

The key property is mutual exclusion *in virtual time*: no two critical
sections may overlap.  The SPMD harness runs contended increment programs
and records (grant, release) intervals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.machine import GCEL, ZERO_COST
from repro.network.mesh import Mesh2D
from repro.runtime.launcher import Runtime
from repro.core.registry import get_strategy


def run_contended(strategy_name, rounds=3, mesh=None, machine=GCEL, cs_ops=100.0, seed=0):
    """All processors repeatedly lock/increment/unlock one shared variable;
    returns (final_value, intervals, result)."""
    mesh = mesh or Mesh2D(4, 4)
    strategy = get_strategy(strategy_name, mesh, seed=seed)
    rt = Runtime(mesh, strategy, machine, seed=seed)
    intervals = []
    shared = {}

    def program(env):
        if env.rank == 0:
            shared["var"] = env.create("counter", 16, value=0)
        yield from env.barrier()
        var = shared["var"]
        for _ in range(rounds):
            yield from env.lock(var)
            t0 = rt.sim.now
            val = yield from env.read(var)
            yield from env.compute(ops=cs_ops)
            yield from env.write(var, val + 1)
            t1 = rt.sim.now
            yield from env.unlock(var)
            intervals.append((t0, t1, env.rank))
        yield from env.barrier()

    result = rt.run(program)
    return rt.registry.get(shared["var"]), intervals, result


def assert_mutual_exclusion(intervals):
    ordered = sorted(intervals)
    for (s1, e1, p1), (s2, e2, p2) in zip(ordered, ordered[1:]):
        assert e1 <= s2 + 1e-12, f"critical sections overlap: p{p1}[{s1},{e1}] vs p{p2}[{s2},{e2}]"


@pytest.mark.parametrize("strategy", ["4-ary", "2-ary", "fixed-home"])
class TestMutualExclusion:
    def test_counter_is_exact(self, strategy):
        value, intervals, res = run_contended(strategy, rounds=3)
        assert value == 16 * 3
        assert res.lock_acquisitions == 16 * 3

    def test_critical_sections_disjoint(self, strategy):
        _, intervals, _ = run_contended(strategy, rounds=2)
        assert_mutual_exclusion(intervals)

    def test_every_processor_served(self, strategy):
        _, intervals, _ = run_contended(strategy, rounds=2)
        ranks = {p for _, _, p in intervals}
        assert ranks == set(range(16))


class TestRaymondProperties:
    def test_uncontended_lock_is_cheap_for_creator(self):
        """The token starts at the creator: its lock/unlock sends nothing."""
        mesh = Mesh2D(4, 4)
        strategy = get_strategy("4-ary", mesh, seed=0)
        rt = Runtime(mesh, strategy, GCEL)
        shared = {}

        def program(env):
            if env.rank == 3:
                shared["var"] = env.create("x", 16, value=0)
            yield from env.barrier()
            if env.rank == 3:
                before = rt.sim.stats.total_msgs
                yield from env.lock(shared["var"])
                yield from env.unlock(shared["var"])
                shared["msgs"] = rt.sim.stats.total_msgs - before
            yield from env.barrier()

        rt.run(program)
        assert shared["msgs"] == 0

    def test_token_stays_at_last_holder(self):
        """Re-acquiring by the last holder needs no messages (token rests)."""
        mesh = Mesh2D(4, 4)
        strategy = get_strategy("4-ary", mesh, seed=0)
        rt = Runtime(mesh, strategy, GCEL)
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["var"] = env.create("x", 16, value=0)
            yield from env.barrier()
            if env.rank == 9:
                yield from env.lock(shared["var"])
                yield from env.unlock(shared["var"])
            yield from env.barrier()
            if env.rank == 9:
                before = rt.sim.stats.total_msgs
                yield from env.lock(shared["var"])
                yield from env.unlock(shared["var"])
                shared["msgs"] = rt.sim.stats.total_msgs - before
            yield from env.barrier()

        rt.run(program)
        assert shared["msgs"] == 0

    def test_unlock_without_hold_rejected(self):
        mesh = Mesh2D(2, 2)
        strategy = get_strategy("4-ary", mesh, seed=0)
        rt = Runtime(mesh, strategy, ZERO_COST)
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["var"] = env.create("x", 16, value=0)
            yield from env.barrier()
            if env.rank == 1:
                yield from env.unlock(shared["var"])
            yield from env.barrier()

        with pytest.raises(RuntimeError):
            rt.run(program)

    def test_combining_reduces_hotspot_startups(self):
        """Under heavy contention, Raymond's combining keeps the busiest
        processor's message count well below the home-lock's centralized
        queue, on larger meshes."""
        _, _, res_tree = run_contended("4-ary", rounds=2, mesh=Mesh2D(8, 8))
        _, _, res_home = run_contended("fixed-home", rounds=2, mesh=Mesh2D(8, 8))
        assert res_tree.stats.max_startups < res_home.stats.max_startups


class TestHomeLock:
    def test_fifo_grant_order(self):
        """Home lock grants in arrival order at the home."""
        mesh = Mesh2D(4, 4)
        strategy = get_strategy("fixed-home", mesh, seed=1)
        rt = Runtime(mesh, strategy, ZERO_COST)
        order = []
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["var"] = env.create("x", 16, value=0)
            yield from env.barrier()
            yield from env.lock(shared["var"])
            order.append(env.rank)
            yield from env.unlock(shared["var"])
            yield from env.barrier()

        rt.run(program)
        assert sorted(order) == list(range(16))

    def test_double_unlock_rejected(self):
        mesh = Mesh2D(2, 2)
        strategy = get_strategy("fixed-home", mesh, seed=0)
        rt = Runtime(mesh, strategy, ZERO_COST)
        shared = {}

        def program(env):
            if env.rank == 0:
                shared["var"] = env.create("x", 16, value=0)
                yield from env.lock(shared["var"])
                yield from env.unlock(shared["var"])
                yield from env.unlock(shared["var"])
            yield from env.barrier()

        with pytest.raises(RuntimeError):
            rt.run(program)
