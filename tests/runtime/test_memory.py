"""LocalMemory / MemoryBook LRU tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.memory import LocalMemory, MemoryBook


def always(key):
    return True


def never(key):
    return False


class TestLocalMemory:
    def test_unbounded_never_evicts(self):
        m = LocalMemory(None)
        for i in range(100):
            assert m.insert(i, 10, never) == []
        assert len(m) == 100
        assert m.used_bytes == 1000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LocalMemory(0)
        with pytest.raises(ValueError):
            LocalMemory(-5)

    def test_lru_eviction_order(self):
        m = LocalMemory(30)
        m.insert("a", 10, always)
        m.insert("b", 10, always)
        m.insert("c", 10, always)
        evicted = m.insert("d", 10, always)
        assert evicted == ["a"]  # least recently used

    def test_touch_refreshes_lru_position(self):
        m = LocalMemory(30)
        m.insert("a", 10, always)
        m.insert("b", 10, always)
        m.insert("c", 10, always)
        m.touch("a")
        evicted = m.insert("d", 10, always)
        assert evicted == ["b"]

    def test_reinsert_touches(self):
        m = LocalMemory(30)
        m.insert("a", 10, always)
        m.insert("b", 10, always)
        m.insert("c", 10, always)
        m.insert("a", 10, always)  # refresh
        assert m.insert("d", 10, always) == ["b"]

    def test_non_evictable_entries_skipped(self):
        m = LocalMemory(30)
        m.insert("pinned", 10, always)
        m.insert("b", 10, always)
        m.insert("c", 10, always)
        evicted = m.insert("d", 10, lambda k: k != "pinned")
        assert evicted == ["b"]
        assert "pinned" in m

    def test_overflow_allowed_when_nothing_evictable(self):
        m = LocalMemory(20)
        m.insert("a", 10, never)
        m.insert("b", 10, never)
        assert m.insert("c", 10, never) == []
        assert m.used_bytes == 30  # soft capacity

    def test_on_evict_called_immediately_per_eviction(self):
        """on_evict must fire before the next candidate is examined, so the
        evictability predicate can depend on already-applied evictions.
        With batch semantics both 'a' and 'b' would be evicted here."""
        m = LocalMemory(25)
        m.insert("a", 10, always)
        m.insert("b", 10, always)
        state = {"dropped": []}

        def evictable(k):
            # once anything is gone, nothing else may go
            return not state["dropped"]

        def on_evict(k):
            state["dropped"].append(k)

        m.insert("c", 20, evictable, on_evict)  # 40 > 25: wants evictions
        assert state["dropped"] == ["a"]
        assert "b" in m
        assert m.used_bytes == 30  # allowed overflow after predicate stop

    def test_large_entry_evicts_several(self):
        m = LocalMemory(30)
        for k in "abc":
            m.insert(k, 10, always)
        evicted = m.insert("big", 20, always)  # 50 -> evict a, b -> 30
        assert evicted == ["a", "b"]
        assert m.used_bytes == 10 + 20

    def test_remove(self):
        m = LocalMemory(None)
        m.insert("a", 7, always)
        m.remove("a")
        assert "a" not in m
        assert m.used_bytes == 0

    def test_eviction_counter(self):
        m = LocalMemory(10)
        m.insert("a", 10, always)
        m.insert("b", 10, always)
        assert m.evictions == 1


@given(
    st.lists(st.tuples(st.integers(0, 20), st.integers(1, 15)), min_size=1, max_size=60),
    st.integers(20, 60),
)
@settings(max_examples=50, deadline=None)
def test_capacity_respected_when_everything_evictable(inserts, cap):
    """Property: with all entries evictable, used_bytes never exceeds the
    capacity by more than the newest entry's size."""
    m = LocalMemory(cap)
    for key, size in inserts:
        m.insert(key, size, always)
        assert m.used_bytes <= max(cap, size)
        # internal consistency
        assert m.used_bytes == sum(m._entries.values())


class TestMemoryBook:
    def test_per_processor_isolation(self):
        book = MemoryBook(4, capacity_bytes=100)
        book[0].insert("x", 50, always)
        assert "x" not in book[1]
        assert book.max_used_bytes == 50

    def test_total_evictions(self):
        book = MemoryBook(2, capacity_bytes=10)
        book[0].insert("a", 10, always)
        book[0].insert("b", 10, always)
        book[1].insert("c", 10, always)
        book[1].insert("d", 10, always)
        assert book.total_evictions == 2
