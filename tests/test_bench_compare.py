"""Perf-regression gate tests (tools/bench_compare.py).

The tool is not part of the installed package, so it is loaded from its
file path -- the same artifact CI executes.
"""

import importlib.util
import json
import pathlib

import pytest

TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py"

spec = importlib.util.spec_from_file_location("bench_compare", TOOL)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def payload(cells_per_sec, bench_version=1, pinned=None):
    return {
        "cells_per_sec": cells_per_sec,
        "bench_version": bench_version,
        "pinned": pinned or {"workload": "zipf", "side": 8},
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestCompare:
    def test_equal_throughput_passes(self):
        v = bench_compare.compare(payload(10.0), payload(10.0), 0.2)
        assert v["ok"] and v["ratio"] == pytest.approx(1.0)

    def test_small_regression_within_threshold_passes(self):
        assert bench_compare.compare(payload(8.5), payload(10.0), 0.2)["ok"]

    def test_large_regression_fails(self):
        assert not bench_compare.compare(payload(7.0), payload(10.0), 0.2)["ok"]

    def test_improvement_passes(self):
        assert bench_compare.compare(payload(30.0), payload(10.0), 0.2)["ok"]

    def test_bench_version_mismatch_fails_loudly(self):
        with pytest.raises(SystemExit, match="bench_version mismatch"):
            bench_compare.compare(payload(10.0), payload(10.0, bench_version=2), 0.2)

    def test_pinned_config_mismatch_fails_loudly(self):
        with pytest.raises(SystemExit, match="pinned cell configuration"):
            bench_compare.compare(
                payload(10.0), payload(10.0, pinned={"workload": "uniform"}), 0.2
            )


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", payload(9.0))
        base = write(tmp_path, "base.json", payload(10.0))
        assert bench_compare.main(["--current", str(cur), "--baseline", str(base)]) == 0
        bad = write(tmp_path, "bad.json", payload(5.0))
        assert bench_compare.main(["--current", str(bad), "--baseline", str(base)]) == 1
        out = capsys.readouterr().out
        assert "-50.0%" in out

    def test_update_baseline(self, tmp_path):
        cur = write(tmp_path, "cur.json", payload(12.0))
        base = tmp_path / "nested" / "base.json"
        rc = bench_compare.main(
            ["--current", str(cur), "--baseline", str(base), "--update-baseline"]
        )
        assert rc == 0
        assert json.loads(base.read_text())["cells_per_sec"] == 12.0

    def test_missing_current_is_a_clean_error(self, tmp_path):
        base = write(tmp_path, "base.json", payload(10.0))
        with pytest.raises(SystemExit, match="cannot read"):
            bench_compare.main(
                ["--current", str(tmp_path / "absent.json"), "--baseline", str(base)]
            )

    def test_step_summary_written(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        cur = write(tmp_path, "cur.json", payload(11.0))
        base = write(tmp_path, "base.json", payload(10.0))
        assert bench_compare.main(["--current", str(cur), "--baseline", str(base)]) == 0
        text = summary.read_text()
        assert "Engine perf gate" in text and "+10.0%" in text

    def test_committed_baseline_is_valid(self):
        """The baseline artifact CI diffs against must stay well-formed."""
        baseline = bench_compare.load(bench_compare.DEFAULT_BASELINE)
        assert baseline["cells_per_sec"] > 0
