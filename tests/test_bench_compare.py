"""Perf-regression gate tests (tools/bench_compare.py).

The tool is not part of the installed package, so it is loaded from its
file path -- the same artifact CI executes.
"""

import importlib.util
import json
import pathlib

import pytest

TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py"

spec = importlib.util.spec_from_file_location("bench_compare", TOOL)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def payload(cells_per_sec, bench_version=1, pinned=None, peak_rss_mb=None,
            engine=None):
    data = {
        "cells_per_sec": cells_per_sec,
        "bench_version": bench_version,
        "pinned": pinned or {"workload": "zipf", "side": 8},
    }
    if peak_rss_mb is not None:
        data["peak_rss_mb"] = peak_rss_mb
    if engine is not None:
        data["engine"] = engine
    return data


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestCompare:
    def test_equal_throughput_passes(self):
        v = bench_compare.compare(payload(10.0), payload(10.0), 0.2)
        assert v["ok"] and v["throughput"]["ratio"] == pytest.approx(1.0)

    def test_small_regression_within_threshold_passes(self):
        assert bench_compare.compare(payload(8.5), payload(10.0), 0.2)["ok"]

    def test_large_regression_fails(self):
        assert not bench_compare.compare(payload(7.0), payload(10.0), 0.2)["ok"]

    def test_improvement_passes(self):
        assert bench_compare.compare(payload(30.0), payload(10.0), 0.2)["ok"]

    def test_bench_version_mismatch_fails_loudly(self):
        with pytest.raises(SystemExit, match="bench_version mismatch"):
            bench_compare.compare(payload(10.0), payload(10.0, bench_version=2), 0.2)

    def test_pinned_config_mismatch_fails_loudly(self):
        with pytest.raises(SystemExit, match="pinned cell configuration"):
            bench_compare.compare(
                payload(10.0), payload(10.0, pinned={"workload": "uniform"}), 0.2
            )


class TestMemoryGate:
    """peak_rss_mb regresses *upward*: growth beyond the threshold fails
    even when throughput is fine, shrinkage always passes, and pre-v2
    payloads without the field gate throughput only."""

    def test_memory_growth_beyond_threshold_fails(self):
        v = bench_compare.compare(
            payload(10.0, peak_rss_mb=130.0), payload(10.0, peak_rss_mb=100.0), 0.2
        )
        assert not v["ok"] and v["throughput"]["ok"] and not v["memory"]["ok"]

    def test_memory_growth_within_threshold_passes(self):
        v = bench_compare.compare(
            payload(10.0, peak_rss_mb=115.0), payload(10.0, peak_rss_mb=100.0), 0.2
        )
        assert v["ok"] and v["memory"]["ratio"] == pytest.approx(1.15)

    def test_memory_improvement_passes(self):
        assert bench_compare.compare(
            payload(10.0, peak_rss_mb=50.0), payload(10.0, peak_rss_mb=100.0), 0.2
        )["ok"]

    def test_both_metrics_can_fail_at_once(self):
        v = bench_compare.compare(
            payload(5.0, peak_rss_mb=200.0), payload(10.0, peak_rss_mb=100.0), 0.2
        )
        assert not v["throughput"]["ok"] and not v["memory"]["ok"]

    @pytest.mark.parametrize("cur_peak, base_peak", [(None, 100.0), (100.0, None)])
    def test_missing_peak_on_either_side_gates_throughput_only(
        self, cur_peak, base_peak
    ):
        v = bench_compare.compare(
            payload(10.0, peak_rss_mb=cur_peak),
            payload(10.0, peak_rss_mb=base_peak),
            0.2,
        )
        assert v["ok"] and v["memory"] is None

    def test_engine_mismatch_fails_loudly(self):
        with pytest.raises(SystemExit, match="engine mismatch"):
            bench_compare.compare(
                payload(10.0, engine="pure"), payload(10.0, engine="c"), 0.2
            )

    def test_absent_engine_field_means_c(self):
        """Pre-v2 baselines carried no engine field; they gate the C run."""
        assert bench_compare.compare(
            payload(10.0), payload(10.0, engine="c"), 0.2
        )["ok"]


class TestBestRatchet:
    def test_baseline_without_best_ratchets_against_itself(self):
        v = bench_compare.compare(payload(8.0), payload(10.0), 0.2)
        assert v["best"]["best"] == 10.0
        assert v["best"]["ok"]  # -20% is within the 30% ratchet

    def test_drift_beyond_best_threshold_fails(self):
        base = payload(10.0)
        base["best"] = {"cells_per_sec": 20.0}
        v = bench_compare.compare(payload(10.0), base, 0.2)
        assert v["throughput"]["ok"]          # flat vs rolling baseline...
        assert not v["best"]["ok"]            # ...but -50% vs best-ever
        assert not v["ok"]

    def test_drift_within_best_threshold_passes(self):
        base = payload(10.0)
        base["best"] = {"cells_per_sec": 12.0}
        v = bench_compare.compare(payload(9.0), base, 0.2)
        assert v["ok"] and v["best"]["ratio"] == pytest.approx(0.75)

    def test_best_failure_exit_code_and_message(self, tmp_path, capsys):
        base = payload(10.0)
        base["best"] = {"cells_per_sec": 20.0}
        cur = write(tmp_path, "cur.json", payload(10.0))
        bp = write(tmp_path, "base.json", base)
        assert bench_compare.main(
            ["--current", str(cur), "--baseline", str(bp)]) == 1
        captured = capsys.readouterr()
        assert "best-ever 20.00" in captured.out
        assert "below the recorded best" in captured.err

    def test_update_baseline_carries_best_forward(self, tmp_path):
        base = payload(10.0, peak_rss_mb=40.0)
        base["best"] = {"cells_per_sec": 15.0, "peak_rss_mb": 35.0}
        bp = write(tmp_path, "base.json", base)
        cur = write(tmp_path, "cur.json", payload(12.0, peak_rss_mb=50.0))
        assert bench_compare.main(
            ["--current", str(cur), "--baseline", str(bp),
             "--update-baseline"]) == 0
        new = json.loads(bp.read_text())
        assert new["cells_per_sec"] == 12.0          # rolling baseline moved
        assert new["best"]["cells_per_sec"] == 15.0  # best kept (max)
        assert new["best"]["peak_rss_mb"] == 35.0    # best RSS kept (min)

    def test_update_baseline_advances_best_on_record(self, tmp_path):
        base = payload(10.0)
        base["best"] = {"cells_per_sec": 15.0}
        bp = write(tmp_path, "base.json", base)
        cur = write(tmp_path, "cur.json", payload(18.0))
        bench_compare.main(["--current", str(cur), "--baseline", str(bp),
                            "--update-baseline"])
        assert json.loads(bp.read_text())["best"]["cells_per_sec"] == 18.0

    def test_update_baseline_seeds_best_from_pre_ratchet_file(self, tmp_path):
        bp = write(tmp_path, "base.json", payload(14.0))  # no "best" key
        cur = write(tmp_path, "cur.json", payload(12.0))
        bench_compare.main(["--current", str(cur), "--baseline", str(bp),
                            "--update-baseline"])
        assert json.loads(bp.read_text())["best"]["cells_per_sec"] == 14.0

    def test_update_baseline_resets_best_on_version_change(self, tmp_path):
        base = payload(10.0)
        base["best"] = {"cells_per_sec": 99.0}
        bp = write(tmp_path, "base.json", base)
        cur = write(tmp_path, "cur.json", payload(8.0, bench_version=2))
        bench_compare.main(["--current", str(cur), "--baseline", str(bp),
                            "--update-baseline"])
        assert json.loads(bp.read_text())["best"]["cells_per_sec"] == 8.0


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", payload(9.0))
        base = write(tmp_path, "base.json", payload(10.0))
        assert bench_compare.main(["--current", str(cur), "--baseline", str(base)]) == 0
        bad = write(tmp_path, "bad.json", payload(5.0))
        assert bench_compare.main(["--current", str(bad), "--baseline", str(base)]) == 1
        out = capsys.readouterr().out
        assert "-50.0%" in out

    def test_update_baseline(self, tmp_path):
        cur = write(tmp_path, "cur.json", payload(12.0))
        base = tmp_path / "nested" / "base.json"
        rc = bench_compare.main(
            ["--current", str(cur), "--baseline", str(base), "--update-baseline"]
        )
        assert rc == 0
        assert json.loads(base.read_text())["cells_per_sec"] == 12.0

    def test_missing_current_is_a_clean_error(self, tmp_path):
        base = write(tmp_path, "base.json", payload(10.0))
        with pytest.raises(SystemExit, match="cannot read"):
            bench_compare.main(
                ["--current", str(tmp_path / "absent.json"), "--baseline", str(base)]
            )

    def test_step_summary_written(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        cur = write(tmp_path, "cur.json", payload(11.0))
        base = write(tmp_path, "base.json", payload(10.0))
        assert bench_compare.main(["--current", str(cur), "--baseline", str(base)]) == 0
        text = summary.read_text()
        assert "Engine perf gate" in text and "+10.0%" in text

    def test_memory_regression_exit_code_and_output(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", payload(10.0, peak_rss_mb=150.0))
        base = write(tmp_path, "base.json", payload(10.0, peak_rss_mb=100.0))
        assert bench_compare.main(["--current", str(cur), "--baseline", str(base)]) == 1
        captured = capsys.readouterr()
        assert "+50.0%" in captured.out
        assert "peak RSS regressed" in captured.err

    def test_committed_baselines_are_valid(self):
        """The baseline artifacts CI diffs against must stay well-formed:
        v2, per-engine, with the memory envelope present."""
        for name, engine in [
            (bench_compare.DEFAULT_BASELINE, "c"),
            (bench_compare.DEFAULT_BASELINE.with_name(
                "BENCH_engine.pure.baseline.json"), "pure"),
        ]:
            baseline = bench_compare.load(name)
            assert baseline["cells_per_sec"] > 0
            assert baseline["peak_rss_mb"] > 0
            assert baseline["engine"] == engine
