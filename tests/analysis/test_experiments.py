"""Experiment runner tests (quick scale) with paper-shape assertions."""

import pytest

from repro.analysis import (
    PAPER,
    ablation_barrier,
    ablation_embedding,
    ablation_tree_degree,
    fig2_single_block_flow,
    fig3_matmul_blocksize,
    fig4_matmul_network,
    fig6_bitonic_keys,
    fig7_bitonic_network,
    fig8_barneshut_bodies,
    fig9_fig10_phase_views,
    fig11_barneshut_scaling,
    format_table,
    scale_params,
)


def by(rows, **match):
    out = [r for r in rows if all(r.get(k) == v for k, v in match.items())]
    assert out, f"no rows match {match}"
    return out


class TestScaleParams:
    def test_known_scales(self):
        for scale in ("quick", "default", "paper"):
            p = scale_params("fig3", scale)
            assert "blocks" in p

    def test_paper_scale_matches_paper(self):
        p = scale_params("fig4", "paper")
        assert p["sides"] == (4, 8, 16, 32)
        assert p["block_entries"] == 4096
        p8 = scale_params("fig8", "paper")
        assert p8["bodies"] == (10000, 20000, 30000, 40000, 50000, 60000)
        assert p8["side"] == 16

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            scale_params("fig3", "huge")


class TestFig2:
    def test_access_tree_lowers_total_load_and_congestion(self):
        rows = fig2_single_block_flow(side=8, block_entries=256)
        fh = by(rows, strategy="fixed-home")[0]
        at = by(rows, strategy="4-ary")[0]
        # Theta(mP) vs Theta(m sqrtP logP): both metrics favour the tree.
        assert at["total_bytes"] < fh["total_bytes"]
        assert at["congestion_bytes"] < fh["congestion_bytes"]


class TestFig3:
    def test_shapes(self):
        p = scale_params("fig3", "quick")
        rows = fig3_matmul_blocksize(side=p["side"], blocks=p["blocks"])
        for block in p["blocks"]:
            fh = by(rows, strategy="fixed-home", block=block)[0]
            at = by(rows, strategy="4-ary", block=block)[0]
            assert at["congestion_ratio"] < fh["congestion_ratio"]
            assert at["congestion_ratio"] > 1.0
            assert at["time_ratio"] < fh["time_ratio"] * 1.5
        # Ratios decrease (weakly) with block size, like the paper.
        fh_ratios = [by(rows, strategy="fixed-home", block=b)[0]["congestion_ratio"] for b in p["blocks"]]
        assert fh_ratios[-1] <= fh_ratios[0]


class TestFig4:
    def test_gap_grows_with_network(self):
        p = scale_params("fig4", "quick")
        rows = fig4_matmul_network(sides=p["sides"], block_entries=p["block_entries"])
        gaps = []
        for side in p["sides"]:
            fh = by(rows, strategy="fixed-home", side=side)[0]
            at = by(rows, strategy="4-ary", side=side)[0]
            gaps.append(fh["congestion_ratio"] / at["congestion_ratio"])
        assert gaps[-1] > gaps[0]  # fixed home degrades faster


class TestFig6Fig7:
    def test_fig6_shapes(self):
        p = scale_params("fig6", "quick")
        rows = fig6_bitonic_keys(side=p["side"], keys=p["keys"])
        for m in p["keys"]:
            fh = by(rows, strategy="fixed-home", keys=m)[0]
            at = by(rows, strategy="2-4-ary", keys=m)[0]
            assert at["congestion_ratio"] < fh["congestion_ratio"]

    def test_fig7_fixed_home_degrades(self):
        p = scale_params("fig7", "quick")
        rows = fig7_bitonic_network(sides=p["sides"], keys=p["keys"])
        fh = [by(rows, strategy="fixed-home", side=s)[0]["congestion_ratio"] for s in p["sides"]]
        at = [by(rows, strategy="2-4-ary", side=s)[0]["congestion_ratio"] for s in p["sides"]]
        assert fh[-1] > fh[0]
        assert at[-1] / at[0] < fh[-1] / fh[0]


class TestFig8Family:
    @pytest.fixture(scope="class")
    def fig8_rows(self):
        p = scale_params("fig8", "quick")
        return fig8_barneshut_bodies(
            side=p["side"], bodies=p["bodies"], steps=p["steps"], warm=p["warm"]
        )

    def test_congestion_ordering(self, fig8_rows):
        """Paper: the higher the tree, the smaller the congestion; fixed
        home worst."""
        n = max(r["bodies"] for r in fig8_rows)
        cong = {r["strategy"]: r["congestion_msgs"] for r in fig8_rows if r["bodies"] == n}
        assert cong["2-ary"] < cong["fixed-home"]
        assert cong["4-ary"] < cong["fixed-home"]
        # On the quick 4x4 mesh the 16-ary tree degenerates to one root with
        # 16 leaf children -- the P-ary tree the paper equates with fixed
        # home -- so only near-parity can be asserted here; the strict
        # five-way ordering is checked by the default-scale bench (8x8+).
        assert cong["16-ary"] <= 1.15 * cong["fixed-home"]
        assert cong["2-ary"] <= 1.15 * cong["4-ary"]

    def test_congestion_grows_with_n(self, fig8_rows):
        for name in ("fixed-home", "4-ary"):
            series = [r["congestion_msgs"] for r in fig8_rows if r["strategy"] == name]
            assert series == sorted(series) or series[-1] > series[0]

    def test_fig9_treebuild_fixed_home_offset(self, fig8_rows):
        fig9, fig10 = fig9_fig10_phase_views(fig8_rows)
        n = max(r["bodies"] for r in fig9)
        tb = {r["strategy"]: r["congestion_msgs"] for r in fig9 if r["bodies"] == n}
        assert tb["fixed-home"] > tb["4-ary"]

    def test_fig10_force_views(self, fig8_rows):
        _, fig10 = fig9_fig10_phase_views(fig8_rows)
        n = max(r["bodies"] for r in fig10)
        rows = {r["strategy"]: r for r in fig10 if r["bodies"] == n}
        assert rows["4-ary"]["congestion_msgs"] < rows["fixed-home"]["congestion_msgs"]
        assert rows["4-ary"]["local_compute"] > 0
        # Local compute is strategy-independent (same physics).
        assert rows["4-ary"]["local_compute"] == pytest.approx(
            rows["fixed-home"]["local_compute"], rel=1e-9
        )


class TestFig11:
    def test_advantage_grows_with_p(self):
        p = scale_params("fig11", "quick")
        rows = fig11_barneshut_scaling(
            meshes=p["meshes"], bodies_per_proc=p["bodies_per_proc"],
            steps=p["steps"], warm=p["warm"],
        )
        ratios = []
        for r, c in p["meshes"]:
            label = f"{r}x{c}"
            fh = by(rows, strategy="fixed-home", mesh=label)[0]
            at = by(rows, strategy="4-8-ary", mesh=label)[0]
            ratios.append(at["time"] / fh["time"])
        assert ratios[-1] < 1.0  # access tree wins at the largest mesh
        assert ratios[-1] <= ratios[0] * 1.1  # and the gap does not shrink


class TestAblations:
    def test_tree_degree_congestion_monotone(self):
        rows = ablation_tree_degree(workload="matmul", side=4, size=256)
        cong = {r["strategy"]: r["congestion_bytes"] for r in rows}
        assert cong["2-ary"] <= cong["4-ary"] <= cong["16-ary"]

    def test_flat_trees_fewer_startups(self):
        rows = ablation_tree_degree(workload="matmul", side=4, size=256)
        st = {r["strategy"]: r["max_startups"] for r in rows}
        assert st["16-ary"] < st["2-ary"]

    def test_embedding_modified_beats_random(self):
        rows = ablation_embedding(workload="matmul", side=4, size=256)
        d = {r["embedding"]: r for r in rows}
        assert d["modified"]["total_bytes"] < d["random"]["total_bytes"]

    def test_barrier_tree_beats_central(self):
        rows = ablation_barrier(side=4, keys=256)
        d = {r["barrier"]: r for r in rows}
        assert d["tree"]["max_startups"] <= d["central"]["max_startups"]


class TestFormatting:
    def test_format_table(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2, "b": "y"}]
        out = format_table(rows, ["a", "b"], title="T")
        assert "T" in out and "1.23" in out and "y" in out

    def test_paper_reference_data_consistent(self):
        for fig in ("fig3", "fig4", "fig6", "fig7"):
            data = PAPER[fig]
            for metric in ("congestion_ratio", "time_ratio"):
                for series in data[metric].values():
                    assert len(series) == len(data["x"])
