"""Ablation-runner tests (quick sizes)."""

import pytest

from repro.analysis import (
    ablation_invalidation,
    ablation_remapping,
    bounded_memory_experiment,
)


class TestInvalidationAblation:
    def test_square_has_more_control_traffic(self):
        rows = ablation_invalidation(side=4, block_entries=256)
        d = {(r["strategy"], r["variant"]): r for r in rows}
        for strategy in ("4-ary", "fixed-home"):
            assert d[(strategy, "square")]["ctrl_msgs"] > d[(strategy, "general")]["ctrl_msgs"]

    def test_rows_cover_all_combinations(self):
        rows = ablation_invalidation(side=4, block_entries=64)
        combos = {(r["strategy"], r["variant"]) for r in rows}
        assert combos == {
            ("4-ary", "square"),
            ("4-ary", "general"),
            ("fixed-home", "square"),
            ("fixed-home", "general"),
        }


class TestRemappingAblation:
    def test_off_never_remaps_and_aggressive_does(self):
        rows = ablation_remapping(side=4, rounds=6, thresholds=(None, 4))
        assert rows[0]["remaps"] == 0
        assert rows[1]["remaps"] > 0

    def test_hot_workload_is_deterministic(self):
        a = ablation_remapping(side=4, rounds=4, thresholds=(8,))
        b = ablation_remapping(side=4, rounds=4, thresholds=(8,))
        assert a[0]["time"] == b[0]["time"]
        assert a[0]["remaps"] == b[0]["remaps"]


class TestBoundedMemory:
    def test_unbounded_has_no_evictions(self):
        rows = bounded_memory_experiment(side=4, bodies=96, capacity_copies=(None, 32))
        assert rows[0]["evictions"] == 0
        assert rows[1]["evictions"] > 0

    def test_tighter_capacity_means_more_congestion(self):
        rows = bounded_memory_experiment(side=4, bodies=96, capacity_copies=(None, 16))
        assert rows[1]["congestion_msgs"] > rows[0]["congestion_msgs"]
