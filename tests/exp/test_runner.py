"""Parallel runner: determinism, cache skipping, derivation, errors."""

import pathlib

import pytest

from repro.analysis import fig2_single_block_flow, fig3_matmul_blocksize, scale_params
from repro.exp import (
    Cell,
    ExperimentSpec,
    ResultCache,
    get_spec,
    run_cells,
    run_experiment,
    sanitize_rows,
)


def _counting_cell(marker_dir, value):
    """Module-level so cells pickle; appends a marker per execution.
    ``value=0`` simulates a crashing cell (ZeroDivisionError)."""
    10 // value
    root = pathlib.Path(marker_dir)
    root.mkdir(parents=True, exist_ok=True)
    with open(root / "runs.log", "a") as fh:
        fh.write(f"{value}\n")
    return [{"value": value, "doubled": 2 * value}]


def _runs(marker_dir) -> int:
    log = pathlib.Path(marker_dir) / "runs.log"
    return len(log.read_text().splitlines()) if log.exists() else 0


def counting_spec(marker_dir, values=(1, 2, 3)):
    return ExperimentSpec(
        name="synthetic",
        columns=("value", "doubled"),
        make_params=lambda scale, app: {"values": list(values)},
        make_cells=lambda p: [
            Cell.make(_counting_cell, marker_dir=str(marker_dir), value=v)
            for v in p["values"]
        ],
        title=lambda p, scale, app: "synthetic",
    )


class TestCacheSkipsFinishedCells:
    def test_second_run_recomputes_nothing(self, tmp_path):
        spec = counting_spec(tmp_path / "m")
        cache = ResultCache(tmp_path / "cache")
        first = run_experiment(spec, cache=cache)
        assert _runs(tmp_path / "m") == 3
        assert first.cells_cached == 0 and first.cells_total == 3
        second = run_experiment(spec, cache=cache)
        assert _runs(tmp_path / "m") == 3  # nothing re-ran
        assert second.cells_cached == 3
        assert second.rows == first.rows

    def test_parameter_change_recomputes_only_new_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiment(counting_spec(tmp_path / "m", values=(1, 2)), cache=cache)
        assert _runs(tmp_path / "m") == 2
        run_experiment(counting_spec(tmp_path / "m", values=(1, 2, 5)), cache=cache)
        # Resumed sweep: only the new cell (5) ran.
        assert _runs(tmp_path / "m") == 3

    def test_no_cache_recomputes(self, tmp_path):
        spec = counting_spec(tmp_path / "m")
        run_experiment(spec, cache=None)
        run_experiment(spec, cache=None)
        assert _runs(tmp_path / "m") == 6

    def test_failed_sweep_keeps_finished_cells(self, tmp_path):
        """Cache writes are per cell, so a crash mid-sweep persists every
        finished cell and the retry resumes instead of restarting."""
        spec = counting_spec(tmp_path / "m", values=(1, 2, 0))  # 0 explodes
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ZeroDivisionError):
            run_experiment(spec, cache=cache)
        assert _runs(tmp_path / "m") == 2  # 1 and 2 ran before the crash
        fixed = counting_spec(tmp_path / "m", values=(1, 2, 3))
        run_experiment(fixed, cache=cache)
        assert _runs(tmp_path / "m") == 3  # only cell 3 was recomputed


class TestDeterminism:
    def test_jobs2_identical_to_serial(self):
        """--jobs N must not change results or row order."""
        spec = get_spec("fig2")
        serial = run_experiment(spec, scale="quick", jobs=1)
        parallel = run_experiment(spec, scale="quick", jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.table() == serial.table()

    def test_rows_match_legacy_runner(self):
        """The registry path reproduces the legacy runner's rows exactly
        (up to the emit-layer JSON sanitization)."""
        p = scale_params("fig2", "quick")
        legacy = sanitize_rows(
            fig2_single_block_flow(side=p["side"], block_entries=p["block_entries"])
        )
        assert run_experiment("fig2", scale="quick").rows == legacy

    def test_fig3_rows_match_legacy_runner(self):
        p = scale_params("fig3", "quick")
        legacy = sanitize_rows(fig3_matmul_blocksize(side=p["side"], blocks=p["blocks"]))
        assert run_experiment("fig3", scale="quick").rows == legacy

    def test_warm_cache_rows_identical_to_cold(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_experiment("fig2", scale="quick", cache=cache)
        warm = run_experiment("fig2", scale="quick", cache=cache)
        assert warm.cells_cached == warm.cells_total
        assert warm.rows == cold.rows
        assert warm.table() == cold.table()


class TestDerive:
    def test_derive_applies_to_concatenated_rows(self, tmp_path):
        spec = counting_spec(tmp_path / "m")
        spec = ExperimentSpec(
            name=spec.name,
            columns=("value",),
            make_params=spec.make_params,
            make_cells=spec.make_cells,
            title=spec.title,
            derive=lambda rows, params: [r for r in rows if r["value"] > 1],
        )
        run = run_experiment(spec)
        assert [r["value"] for r in run.rows] == [2, 3]


class TestErrors:
    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="quick/default/paper"):
            run_experiment("fig3", scale="enormous")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells([], jobs=0)


class TestPeakRss:
    """The runner reports the worker-side memory high-water mark next to
    the rows -- but never inside the payload (byte-identity)."""

    def test_helper_reports_positive_mib(self):
        from repro.exp.runner import peak_rss_mb

        assert peak_rss_mb() > 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_run_records_worker_peak(self, tmp_path, jobs):
        run = run_experiment(counting_spec(tmp_path / "m"), jobs=jobs)
        assert run.peak_rss_mb is not None and run.peak_rss_mb > 0

    def test_fully_cached_run_measures_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = counting_spec(tmp_path / "m")
        run_experiment(spec, cache=cache)
        warm = run_experiment(spec, cache=cache)
        assert warm.cells_cached == warm.cells_total
        assert warm.peak_rss_mb is None

    def test_not_part_of_the_payload(self, tmp_path):
        run = run_experiment(counting_spec(tmp_path / "m"))
        assert "peak_rss_mb" not in run.payload()


class TestParamOverrides:
    def test_nodes_override_restricts_the_xscale_sweep(self):
        run = run_experiment(
            "xscale", scale="quick", param_overrides={"nodes": (16,)}
        )
        assert run.rows and {r["nodes"] for r in run.rows} == {16}

    def test_override_equal_to_scale_default_changes_nothing(self, tmp_path):
        plain = run_experiment(counting_spec(tmp_path / "a"))
        overridden = run_experiment(
            counting_spec(tmp_path / "b"),
            param_overrides={"values": [1, 2, 3]},
        )
        assert overridden.rows == plain.rows

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter override"):
            run_experiment("xscale", scale="quick", param_overrides={"nodez": 1})


class TestSanitize:
    def test_non_serializable_fields_stripped_without_mutation(self):
        marker = object()
        rows = [{"a": 1, "result": marker, "nested": (1, 2)}]
        clean = sanitize_rows(rows)
        assert clean == [{"a": 1, "nested": [1, 2]}]
        # Emit-layer stripping must never destroy the caller's rows.
        assert rows[0]["result"] is marker


class TestWorkloadLabel:
    """The schema-v3 payload ``workload`` must reflect what the rows
    actually ran, not the CLI axis default (regression: fig6 payloads
    once claimed workload=matmul)."""

    def test_fig6_payload_labels_bitonic(self):
        run = run_experiment("fig6", scale="quick")
        assert run.payload()["workload"] == "bitonic"

    def test_fig2_payload_labels_its_micro_kernel(self):
        run = run_experiment("fig2", scale="quick")
        assert run.payload()["workload"] == "fig2-flow"

    def test_xwork_readfrac_payload_labels_zipf(self):
        run = run_experiment("xwork-readfrac", scale="quick")
        assert run.payload()["workload"] == "zipf"
