"""Content-addressed result cache: hit/miss, invalidation, corruption."""

import json

from repro.exp import Cell, ResultCache, cell_key


def _cell_fn(x=0, label="a"):
    return [{"x": x, "label": label}]


def make_cell(**kw):
    return Cell.make(_cell_fn, **kw)


class TestCellKey:
    def test_stable(self):
        assert cell_key(_cell_fn, {"x": 1}) == cell_key(_cell_fn, {"x": 1})

    def test_kwarg_order_irrelevant(self):
        assert cell_key(_cell_fn, {"x": 1, "label": "b"}) == cell_key(
            _cell_fn, {"label": "b", "x": 1}
        )

    def test_parameter_change_changes_key(self):
        assert cell_key(_cell_fn, {"x": 1}) != cell_key(_cell_fn, {"x": 2})
        assert cell_key(_cell_fn, {"x": 1}) != cell_key(_cell_fn, {"x": 1, "label": "b"})

    def test_tuple_and_list_parameters_equivalent(self):
        # Canonicalization: a sweep given as tuple or list is the same cell.
        assert cell_key(_cell_fn, {"x": (1, 2)}) == cell_key(_cell_fn, {"x": [1, 2]})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell(x=1)
        assert cache.get(cell) is None
        rows = cell.run()
        cache.put(cell, rows)
        assert cache.get(cell) == rows
        assert cache.hits == 1 and cache.misses == 1

    def test_parameter_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell(x=1)
        cache.put(cell, cell.run())
        assert cache.get(make_cell(x=2)) is None
        assert cache.get(make_cell(x=1, label="b")) is None
        assert cache.get(cell) is not None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell(x=3)
        path = cache.put(cell, cell.run())
        path.write_text("{ not json")
        assert cache.get(cell) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A file renamed/copied to the wrong address must not be served."""
        cache = ResultCache(tmp_path)
        a, b = make_cell(x=1), make_cell(x=2)
        path_a = cache.put(a, a.run())
        payload = json.loads(path_a.read_text())
        cache.path(b).write_text(json.dumps(payload))
        assert cache.get(b) is None

    def test_rows_round_trip_json_types(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell(x=4)
        rows = [{"f": 1.5, "i": 2, "s": "x", "n": None, "b": True}]
        cache.put(cell, rows)
        assert cache.get(cell) == rows
