"""Zero-failure fast path pinned by golden files.

The failure axis must be invisible when unused: ``tests/exp/goldens/``
holds the quick-scale fig3/fig4 payloads captured *before* the
fault-injection subsystem landed (schema v5).  A fresh run must
reproduce them byte-for-byte -- rows, columns, params -- with only the
top-level ``schema_version`` tag advanced.  Any drift here means the
failure axis leaked into the static-network hot path.
"""

import json
import pathlib

import pytest

from repro.exp import run_experiment
from repro.network.topology import make_topology
from repro.workloads import get_workload

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", ["fig3", "fig4"])
def test_zero_failure_payload_matches_pre_failure_golden(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.quick.json").read_text())
    fresh = run_experiment(name, scale="quick").payload()
    # The only sanctioned difference: the schema tag (v5 -> v6 added the
    # failure axis, which these experiments do not use).
    assert golden.pop("schema_version") == 5
    assert fresh.pop("schema_version") >= 6
    assert fresh == golden


class TestEmptyScheduleFastPath:
    """``failures=None``, ``"none"``, and ``""`` are the same build: no
    view installed, identical results, zero availability counters."""

    @staticmethod
    def _run(failures):
        wl = get_workload("zipf")
        return wl.run(
            make_topology("mesh", 4), "4-ary", seed=2,
            params={"n_vars": 16, "ops": 24, "alpha": 0.8, "read_frac": 0.8},
            **({} if failures is ... else {"failures": failures}),
        )

    @pytest.mark.parametrize("failures", [None, "none", ""])
    def test_identical_to_omitting_the_axis(self, failures):
        base = self._run(...)
        res = self._run(failures)
        assert res.time == base.time
        assert res.stats == base.stats
        assert res.as_dict() == base.as_dict()

    @pytest.mark.parametrize("failures", [None, "none", ...])
    def test_no_view_and_zero_counters(self, failures):
        res = self._run(failures)
        rt = res.extra["runtime"]
        assert rt._failview is None
        assert rt.sim._failview is None
        assert res.failure_events == 0
        assert res.requests_failed == res.requests_stalled == 0
        assert res.requests_retried == res.repairs == 0
        assert rt.failure_spec == "none"
