"""Zero-failure fast path pinned by golden files.

Later schema axes must be invisible when unused: ``tests/exp/goldens/``
holds the quick-scale fig3/fig4 payloads captured *before* the
fault-injection subsystem landed (schema v5).  A fresh run must
reproduce every golden quantity byte-for-byte -- on each row, the
projection onto the golden row's keys equals the golden row exactly --
while newer schema versions may only *add* columns (v6 availability
counters, v7 metric suite).  Any drift in a golden value means a later
axis leaked into the static-network hot path.
"""

import json
import pathlib

import pytest

from repro.exp import run_experiment
from repro.metrics import MetricsBundle
from repro.network.topology import make_topology
from repro.workloads import get_workload

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", ["fig3", "fig4"])
def test_zero_failure_payload_matches_pre_failure_golden(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.quick.json").read_text())
    fresh = run_experiment(name, scale="quick").payload()
    assert golden.pop("schema_version") == 5
    assert fresh.pop("schema_version") >= 7
    golden_rows = golden.pop("rows")
    fresh_rows = fresh.pop("rows")
    # Everything outside the rows -- params, columns, axes -- is unchanged.
    assert fresh == golden
    assert len(fresh_rows) == len(golden_rows)
    for got, want in zip(fresh_rows, golden_rows):
        # Byte-identical simulated quantities on every golden column ...
        assert {k: got[k] for k in want} == want
        # ... and the v7 metric suite rides along, well-formed.
        assert 0.0 <= got["latency_p50"] <= got["latency_p95"] <= got["latency_p99"]
        assert got["storage_cost"] >= 0.0
        assert got["effective_network_usage"] >= 0.0
        assert set(MetricsBundle.ROW_KEYS) <= set(got)


class TestEmptyScheduleFastPath:
    """``failures=None``, ``"none"``, and ``""`` are the same build: no
    view installed, identical results, zero availability counters."""

    @staticmethod
    def _run(failures):
        wl = get_workload("zipf")
        return wl.run(
            make_topology("mesh", 4), "4-ary", seed=2,
            params={"n_vars": 16, "ops": 24, "alpha": 0.8, "read_frac": 0.8},
            **({} if failures is ... else {"failures": failures}),
        )

    @pytest.mark.parametrize("failures", [None, "none", ""])
    def test_identical_to_omitting_the_axis(self, failures):
        base = self._run(...)
        res = self._run(failures)
        assert res.time == base.time
        assert res.stats == base.stats
        assert res.as_dict() == base.as_dict()

    @pytest.mark.parametrize("failures", [None, "none", ...])
    def test_no_view_and_zero_counters(self, failures):
        res = self._run(failures)
        rt = res.extra["runtime"]
        assert rt._failview is None
        assert rt.sim._failview is None
        assert res.failure_events == 0
        assert res.requests_failed == res.requests_stalled == 0
        assert res.requests_retried == res.repairs == 0
        assert rt.failure_spec == "none"
